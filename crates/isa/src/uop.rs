//! Decoded micro-operations (uops).
//!
//! Frontend structures after the decoder (decoded cache, trace cache, XBC)
//! all store uops rather than architectural instructions. A uop carries the
//! identity of its parent instruction so redundancy ("the same uop stored
//! twice", paper §2.3) is well defined and checkable.

use crate::{Addr, BranchKind};
use std::fmt;

/// Functional class of a uop. The frontend does not execute uops, but the
/// class is kept because real fill units and renamers steer on it, and our
/// examples/tests use it to build realistic mixes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum UopKind {
    /// Integer ALU operation.
    #[default]
    Alu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch resolution uop (always the last uop of a branch instruction).
    Branch,
    /// Floating-point / SIMD operation.
    Fp,
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopKind::Alu => "alu",
            UopKind::Load => "load",
            UopKind::Store => "store",
            UopKind::Branch => "branch",
            UopKind::Fp => "fp",
        };
        f.write_str(s)
    }
}

/// Globally unique identity of a uop: the parent instruction IP plus the
/// uop's slot within the instruction's expansion.
///
/// Two frontend storage locations holding the same `UopId` are redundant
/// copies — the XBC's central invariant is that this never happens
/// (paper §3.3).
///
/// # Examples
///
/// ```
/// use xbc_isa::{Addr, UopId};
///
/// let id = UopId::new(Addr::new(0x100), 1);
/// assert_eq!(id.inst_ip, Addr::new(0x100));
/// assert_eq!(id.slot, 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UopId {
    /// IP of the parent architectural instruction.
    pub inst_ip: Addr,
    /// Index of this uop within the instruction's expansion (0-based).
    pub slot: u8,
}

impl UopId {
    /// Creates a uop identity.
    #[inline]
    pub const fn new(inst_ip: Addr, slot: u8) -> Self {
        UopId { inst_ip, slot }
    }
}

impl fmt::Display for UopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.inst_ip, self.slot)
    }
}

/// A decoded micro-operation.
///
/// Carries everything the frontend needs: identity, functional class,
/// whether it is the last uop of its instruction (so downstream structures
/// can recover instruction boundaries), and the parent instruction's
/// control-flow class on the *last* uop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Uop {
    /// Identity (parent instruction IP + slot).
    pub id: UopId,
    /// Functional class.
    pub kind: UopKind,
    /// True on the final uop of the parent instruction's expansion.
    pub ends_inst: bool,
    /// Control-flow class of the parent instruction. Meaningful only when
    /// `ends_inst` is true (branch behaviour is attached to the last uop);
    /// earlier uops always carry [`BranchKind::None`].
    pub branch: BranchKind,
}

impl Uop {
    /// Creates a uop.
    pub const fn new(id: UopId, kind: UopKind, ends_inst: bool, branch: BranchKind) -> Self {
        Uop { id, kind, ends_inst, branch }
    }

    /// True if this uop terminates an extended block (paper §3.1): it is the
    /// last uop of a conditional branch, indirect jump/call or return.
    #[inline]
    pub fn ends_xb(&self) -> bool {
        self.ends_inst && self.branch.ends_xb()
    }

    /// True if this uop terminates a classical basic block.
    #[inline]
    pub fn ends_basic_block(&self) -> bool {
        self.ends_inst && self.branch.ends_basic_block()
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id, self.kind)?;
        if self.ends_inst && self.branch.is_branch() {
            write!(f, " [{}]", self.branch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uop(slot: u8, ends: bool, br: BranchKind) -> Uop {
        Uop::new(UopId::new(Addr::new(0x100), slot), UopKind::Alu, ends, br)
    }

    #[test]
    fn xb_end_requires_last_uop() {
        // A conditional branch instruction's non-final uop must not end a XB.
        assert!(!uop(0, false, BranchKind::None).ends_xb());
        assert!(uop(1, true, BranchKind::CondDirect).ends_xb());
        assert!(!uop(1, true, BranchKind::UncondDirect).ends_xb());
        assert!(uop(1, true, BranchKind::UncondDirect).ends_basic_block());
    }

    #[test]
    fn uop_id_ordering_is_by_ip_then_slot() {
        let a = UopId::new(Addr::new(1), 3);
        let b = UopId::new(Addr::new(2), 0);
        let c = UopId::new(Addr::new(2), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_forms() {
        let u = uop(2, true, BranchKind::Return);
        let s = format!("{u}");
        assert!(s.contains("#2"));
        assert!(s.contains("[ret]"));
        assert_eq!(format!("{}", UopKind::Load), "load");
    }
}
