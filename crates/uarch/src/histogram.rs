//! Small fixed-range histogram used for block-length distributions
//! (paper Figure 1) and bandwidth distributions.

use std::fmt;

/// A histogram over `1..=max` with saturation: values above `max` land in
/// the top bin, values of zero are rejected.
///
/// # Examples
///
/// ```
/// use xbc_uarch::Histogram;
///
/// let mut h = Histogram::new(16);
/// h.record(8);
/// h.record(8);
/// h.record(16);
/// h.record(99); // clamps into the 16 bin
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin(8), 2);
/// assert_eq!(h.bin(16), 2);
/// assert!((h.mean() - 12.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>, // index 0 <=> value 1
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram over `1..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn new(max: usize) -> Self {
        assert!(max > 0, "histogram needs at least one bin");
        Histogram { bins: vec![0; max], count: 0, sum: 0 }
    }

    /// Largest representable value (top, saturating bin).
    pub fn max(&self) -> usize {
        self.bins.len()
    }

    /// Records one observation. Values above `max` saturate into the top
    /// bin; the *mean* still uses the saturated value so it matches what a
    /// quota-limited structure would see.
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    pub fn record(&mut self, value: usize) {
        assert!(value > 0, "histogram values start at 1");
        let v = value.min(self.bins.len());
        self.bins[v - 1] += 1;
        self.count += 1;
        self.sum += v as u64;
    }

    /// Records `weight` observations of `value` at once.
    pub fn record_n(&mut self, value: usize, weight: u64) {
        assert!(value > 0, "histogram values start at 1");
        let v = value.min(self.bins.len());
        self.bins[v - 1] += weight;
        self.count += weight;
        self.sum += v as u64 * weight;
    }

    /// Count in the bin for `value` (1-based).
    pub fn bin(&self, value: usize) -> u64 {
        assert!(value >= 1 && value <= self.bins.len(), "bin {value} out of range");
        self.bins[value - 1]
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the (saturated) observations; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fraction of observations in the bin for `value`.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bin(value) as f64 / self.count as f64
        }
    }

    /// Smallest value `v` with `P(X <= v) >= q`. `q` in `[0,1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or the histogram is empty.
    pub fn quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0,1]");
        assert!(self.count > 0, "quantile of empty histogram");
        let threshold = (q * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &b) in self.bins.iter().enumerate() {
            acc += b;
            if acc >= threshold {
                return i + 1;
            }
        }
        self.bins.len()
    }

    /// Merges another histogram of the same range into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "histogram ranges differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Iterates `(value, count)` pairs, value ascending from 1.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins.iter().enumerate().map(|(i, &c)| (i + 1, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "n={} mean={:.2}", self.count, self.mean())?;
        for (v, c) in self.iter() {
            if c > 0 {
                writeln!(f, "  {v:>3}: {c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_bins() {
        let mut h = Histogram::new(4);
        h.record(1);
        h.record(3);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.bin(3), 1);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn saturation() {
        let mut h = Histogram::new(4);
        h.record(10);
        assert_eq!(h.bin(4), 1);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(10);
        for v in 1..=10 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn merge_adds() {
        let mut a = Histogram::new(4);
        let mut b = Histogram::new(4);
        a.record(2);
        b.record_n(2, 3);
        a.merge(&b);
        assert_eq!(a.bin(2), 4);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_empty_is_zero() {
        let h = Histogram::new(4);
        assert_eq!(h.fraction(1), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn zero_rejected() {
        Histogram::new(4).record(0);
    }

    #[test]
    #[should_panic(expected = "ranges differ")]
    fn merge_range_mismatch_panics() {
        Histogram::new(4).merge(&Histogram::new(5));
    }

    #[test]
    fn display_nonempty() {
        let mut h = Histogram::new(4);
        h.record(2);
        let s = format!("{h}");
        assert!(s.contains("n=1"));
        assert!(s.contains("2:"));
    }
}
