//! Block-based trace cache frontend (paper §2.4, after Black/Rychlik/Shen
//! ISCA'99).
//!
//! The BBTC splits the trace cache into two structures:
//!
//! * a **block cache** of decoded basic blocks, indexed by block start IP
//!   (one copy per block — like the XBC it removes *instruction*
//!   redundancy), and
//! * a **trace table** of block-pointer sequences, indexed by the first
//!   block's IP (redundancy moves to the pointers).
//!
//! As the paper notes, this trades the TC's instruction redundancy for
//! *pointer* redundancy and **more fragmentation**: blocks are stored at a
//! finer granularity, so a short block still burns a whole fixed-size
//! block-cache entry.

use crate::build::{BuildEngine, FillSink, Predictors, TimingConfig};
use crate::frontend::Frontend;
use crate::metrics::FrontendMetrics;
use crate::oracle::OracleStream;
use crate::probe::Probe;
use xbc_isa::{Addr, BranchKind};
use xbc_obs::{CycleKind, D2bCause, Event, EventSink, MispredictKind, UopSource};
use xbc_predict::{BtbConfig, GshareConfig};
use xbc_uarch::{DecoderConfig, ICacheConfig, SetAssoc};
use xbc_workload::DynInst;

/// Configuration of a [`BbtcFrontend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BbtcConfig {
    /// Block-cache capacity in uop slots. Each entry reserves
    /// `block_uops` slots (fragmentation is real).
    pub total_uops: usize,
    /// Uop slots per block-cache entry.
    pub block_uops: usize,
    /// Block-cache associativity.
    pub block_ways: usize,
    /// Trace-table entries (sequences of block pointers).
    pub trace_entries: usize,
    /// Trace-table associativity.
    pub trace_ways: usize,
    /// Block pointers per trace-table entry.
    pub blocks_per_trace: usize,
    /// Build-path instruction cache.
    pub icache: ICacheConfig,
    /// Build-path BTB.
    pub btb: BtbConfig,
    /// Build-path decoder.
    pub decoder: DecoderConfig,
    /// Timing constants.
    pub timing: TimingConfig,
    /// Conditional predictor.
    pub gshare: GshareConfig,
}

impl Default for BbtcConfig {
    /// A 32K-uop block cache (4-way, 8-uop entries) with a 4K-entry trace
    /// table of 4-block pointer sequences — the Blac99-class design
    /// point at the paper's headline budget.
    fn default() -> Self {
        BbtcConfig {
            total_uops: 32 * 1024,
            block_uops: 8,
            block_ways: 4,
            trace_entries: 4096,
            trace_ways: 4,
            blocks_per_trace: 4,
            icache: ICacheConfig::default(),
            btb: BtbConfig::default(),
            decoder: DecoderConfig::default(),
            timing: TimingConfig::default(),
            gshare: GshareConfig::default(),
        }
    }
}

impl BbtcConfig {
    /// Block-cache sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry.
    pub fn block_sets(&self) -> usize {
        assert!(self.block_uops > 0 && self.block_ways > 0);
        let entries = self.total_uops / self.block_uops;
        assert!(
            entries > 0 && entries.is_multiple_of(self.block_ways),
            "block-cache capacity must divide into ways"
        );
        entries / self.block_ways
    }

    /// Trace-table sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry.
    pub fn trace_sets(&self) -> usize {
        assert!(self.trace_ways > 0 && self.trace_entries.is_multiple_of(self.trace_ways));
        self.trace_entries / self.trace_ways
    }
}

/// One decoded basic block in the block cache: the committed instructions
/// from its start up to (and including) its ending branch, capped at
/// `block_uops`.
#[derive(Clone, Debug)]
struct Block {
    insts: Vec<DynInst>,
    uops: usize,
}

/// One trace-table entry: the start IPs of up to `blocks_per_trace`
/// consecutive blocks, with the embedded conditional direction taken when
/// the trace was built.
#[derive(Clone, Debug)]
struct TracePtrs {
    blocks: Vec<Addr>,
}

/// Fill unit: forms basic blocks and block-pointer traces.
#[derive(Clone, Debug)]
struct BbtcFill {
    block_uops: usize,
    blocks_per_trace: usize,
    cur: Vec<DynInst>,
    cur_uops: usize,
    /// Completed blocks awaiting installation.
    done_blocks: Vec<Block>,
    /// Start IPs of blocks accumulated toward the current trace.
    trace_acc: Vec<Addr>,
    /// Completed traces awaiting installation.
    done_traces: Vec<TracePtrs>,
}

impl BbtcFill {
    fn new(block_uops: usize, blocks_per_trace: usize) -> Self {
        BbtcFill {
            block_uops,
            blocks_per_trace,
            cur: Vec::new(),
            cur_uops: 0,
            done_blocks: Vec::new(),
            trace_acc: Vec::new(),
            done_traces: Vec::new(),
        }
    }

    fn finalize_block(&mut self, ends_trace: bool) {
        if self.cur.is_empty() {
            return;
        }
        let start = self.cur[0].inst.ip;
        self.done_blocks.push(Block { insts: std::mem::take(&mut self.cur), uops: self.cur_uops });
        self.cur_uops = 0;
        self.trace_acc.push(start);
        if self.trace_acc.len() >= self.blocks_per_trace || ends_trace {
            self.done_traces.push(TracePtrs { blocks: std::mem::take(&mut self.trace_acc) });
        }
    }

    fn clear(&mut self) {
        self.cur.clear();
        self.cur_uops = 0;
        self.done_blocks.clear();
        self.trace_acc.clear();
        self.done_traces.clear();
    }
}

impl FillSink for BbtcFill {
    fn observe(&mut self, d: &DynInst) {
        if self.cur_uops + d.inst.uops as usize > self.block_uops {
            self.finalize_block(false);
        }
        self.cur.push(*d);
        self.cur_uops += d.inst.uops as usize;
        if d.inst.branch.ends_basic_block() {
            // Indirect transfers end the whole trace (next block unknown
            // from the pointer sequence).
            let ends_trace = d.inst.branch.is_indirect();
            self.finalize_block(ends_trace);
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Build,
    Delivery,
}

/// The block-based trace cache frontend.
///
/// # Examples
///
/// ```
/// use xbc_frontend::{BbtcConfig, BbtcFrontend, Frontend};
/// use xbc_workload::standard_traces;
///
/// let trace = standard_traces()[0].capture(20_000);
/// let mut fe = BbtcFrontend::new(BbtcConfig::default());
/// let m = fe.run(&trace);
/// assert!(m.structure_uops > 0);
/// ```
#[derive(Clone, Debug)]
pub struct BbtcFrontend {
    cfg: BbtcConfig,
    blocks: SetAssoc<Block>,
    traces: SetAssoc<TracePtrs>,
    engine: BuildEngine,
    preds: Predictors,
    fill: BbtcFill,
    mode: Mode,
    pending_uops: usize,
    pending_resteer: Option<u64>,
    stall: u64,
}

impl BbtcFrontend {
    /// Creates a cold BBTC frontend.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry.
    pub fn new(cfg: BbtcConfig) -> Self {
        BbtcFrontend {
            blocks: SetAssoc::new(cfg.block_sets(), cfg.block_ways),
            traces: SetAssoc::new(cfg.trace_sets(), cfg.trace_ways),
            engine: BuildEngine::new(cfg.icache, cfg.btb, cfg.decoder, cfg.timing),
            preds: Predictors::new(cfg.gshare),
            fill: BbtcFill::new(cfg.block_uops, cfg.blocks_per_trace),
            mode: Mode::Build,
            pending_uops: 0,
            pending_resteer: None,
            stall: 0,
            cfg,
        }
    }

    /// Number of blocks resident in the block cache.
    pub fn blocks_cached(&self) -> usize {
        self.blocks.len()
    }

    /// Number of pointer traces resident in the trace table.
    pub fn traces_cached(&self) -> usize {
        self.traces.len()
    }

    fn slot_for(sets: u64, ip: Addr) -> (usize, u64) {
        ((ip.raw() % sets) as usize, ip.raw() / sets)
    }

    fn block_slot(&self, ip: Addr) -> (usize, u64) {
        Self::slot_for(self.blocks.sets() as u64, ip)
    }

    fn trace_slot(&self, ip: Addr) -> (usize, u64) {
        Self::slot_for(self.traces.sets() as u64, ip)
    }

    /// Walks the pointed-to blocks against the oracle, mirroring the TC
    /// walk but going through the block cache for every pointer.
    ///
    /// An associated fn over disjoint fields so the caller can keep the
    /// `TracePtrs` borrowed from the trace table while the walk touches
    /// the block cache and predictors — blocks are read in place via
    /// index handles instead of being cloned per pointer.
    ///
    /// Returns `(accepted uops, resteer penalty, leading-block miss,
    /// mispredict kind)` — the walk does no accounting itself; the
    /// caller emits the events (and thereby the counter bumps).
    fn walk(
        blocks: &mut SetAssoc<Block>,
        preds: &mut Predictors,
        timing: &TimingConfig,
        ptrs: &TracePtrs,
        oracle: &OracleStream<'_>,
    ) -> (usize, Option<u64>, bool, Option<MispredictKind>) {
        let mut accepted = 0usize;
        let mut j = 0usize; // oracle lookahead in instructions
        for (bi, &start) in ptrs.blocks.iter().enumerate() {
            // The leading block was verified by the trace-table lookup;
            // later blocks may have been evicted from the block cache.
            let (set, tag) = Self::slot_for(blocks.sets() as u64, start);
            let Some(idx) = blocks.get_index(set, tag) else {
                return (accepted, None, bi == 0, None);
            };
            let block = blocks.data_at(idx);
            // Validate the pointer against the committed path.
            match oracle.peek(j) {
                Some(od) if od.inst.ip == start => {}
                _ => return (accepted, None, false, None),
            }
            for td in &block.insts {
                let Some(od) = oracle.peek(j) else { return (accepted, None, false, None) };
                if td.inst.ip != od.inst.ip {
                    return (accepted, None, false, None);
                }
                accepted += td.inst.uops as usize;
                j += 1;
                let ip = td.inst.ip;
                match td.inst.branch {
                    BranchKind::None => {}
                    BranchKind::UncondDirect => {}
                    BranchKind::CallDirect => preds.rsb.push(td.inst.next_seq()),
                    BranchKind::CondDirect => {
                        let pred = preds.dir.predict(ip);
                        let correct = pred == od.taken;
                        preds.dir.update(ip, od.taken);
                        if !correct {
                            return (
                                accepted,
                                Some(timing.mispredict_penalty),
                                false,
                                Some(MispredictKind::Cond),
                            );
                        }
                        if pred != td.taken {
                            // Correctly predicted off the embedded path.
                            return (accepted, None, false, None);
                        }
                    }
                    BranchKind::IndirectJump | BranchKind::IndirectCall => {
                        let hist = preds.dir.history();
                        let pred = preds.indirect.predict(ip, hist);
                        preds.indirect.update(ip, hist, od.next_ip);
                        if td.inst.branch == BranchKind::IndirectCall {
                            preds.rsb.push(td.inst.next_seq());
                        }
                        if pred != Some(od.next_ip) {
                            return (
                                accepted,
                                Some(timing.mispredict_penalty),
                                false,
                                Some(MispredictKind::Target),
                            );
                        }
                        return (accepted, None, false, None);
                    }
                    BranchKind::Return => {
                        let pred = preds.rsb.pop();
                        if pred != Some(od.next_ip) {
                            return (
                                accepted,
                                Some(timing.mispredict_penalty),
                                false,
                                Some(MispredictKind::Target),
                            );
                        }
                        return (accepted, None, false, None);
                    }
                }
            }
        }
        (accepted, None, false, None)
    }

    fn delivery_cycle<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        if self.stall > 0 {
            self.stall -= 1;
            probe.emit(Event::Cycle(CycleKind::Stall));
            return;
        }
        if self.pending_uops == 0 {
            let ip = oracle.fetch_ip();
            let (set, tag) = self.trace_slot(ip);
            let Some(idx) = self.traces.get_index(set, tag) else {
                probe.emit(Event::StructureMiss);
                probe.emit(Event::SwitchToBuild(D2bCause::StructureMiss));
                self.mode = Mode::Build;
                self.fill.clear();
                probe.emit(Event::Cycle(CycleKind::Stall));
                return;
            };
            let ptrs = self.traces.data_at(idx);
            let (accepted, resteer, leading_miss, mispredict) =
                Self::walk(&mut self.blocks, &mut self.preds, &self.cfg.timing, ptrs, oracle);
            if leading_miss {
                probe.emit(Event::StructureMiss);
            }
            if let Some(kind) = mispredict {
                probe.emit(Event::Mispredict(kind));
            }
            if accepted == 0 {
                // Leading block evicted from the block cache.
                probe.emit(Event::SwitchToBuild(D2bCause::StructureMiss));
                self.mode = Mode::Build;
                self.fill.clear();
                probe.emit(Event::Cycle(CycleKind::Stall));
                return;
            }
            self.pending_uops = accepted;
            self.pending_resteer = resteer;
        }
        let budget = self.cfg.timing.renamer_width.min(self.pending_uops);
        let mut delivered = 0;
        while delivered < budget {
            let n = oracle.take_uops(budget - delivered);
            if n == 0 {
                self.pending_uops = delivered;
                break;
            }
            delivered += n;
        }
        self.pending_uops -= delivered;
        if delivered > 0 {
            probe.emit(Event::Uops {
                src: UopSource::Structure,
                n: xbc_obs::saturate_u16(delivered),
            });
        }
        probe.emit(Event::Cycle(CycleKind::Delivery));
        if self.pending_uops == 0 {
            if let Some(p) = self.pending_resteer.take() {
                self.stall += p;
            }
        }
    }

    fn build_cycle<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        let kind = self.engine.cycle(oracle, &mut self.preds, probe, &mut self.fill);
        for block in std::mem::take(&mut self.fill.done_blocks) {
            let (set, tag) = self.block_slot(block.insts[0].inst.ip);
            // One copy per block start: same-tag insertion replaces.
            self.blocks.insert(set, tag, block);
        }
        let built_any = !self.fill.done_traces.is_empty();
        for t in std::mem::take(&mut self.fill.done_traces) {
            let (set, tag) = self.trace_slot(t.blocks[0]);
            self.traces.insert(set, tag, t);
        }
        if built_any && !oracle.done() && oracle.uop_offset() == 0 {
            let (set, tag) = self.trace_slot(oracle.fetch_ip());
            if self.traces.probe(set, tag).is_some() {
                self.mode = Mode::Delivery;
                self.fill.clear();
                probe.emit(Event::SwitchToDelivery);
            }
        }
        probe.emit(Event::Cycle(kind));
    }

    fn step_probe<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        match self.mode {
            Mode::Build => self.build_cycle(oracle, probe),
            Mode::Delivery => self.delivery_cycle(oracle, probe),
        }
    }

    /// Redundancy audit of the *block cache*: `(stored uop slots used,
    /// distinct uop identities)`. The BBTC shares blocks, so like the XBC
    /// these should be equal; its cost is fragmentation instead.
    pub fn block_redundancy(&self) -> (usize, usize) {
        let mut ids = std::collections::HashSet::new();
        let mut total = 0usize;
        for set in 0..self.blocks.sets() {
            for (_, b) in self.blocks.set_entries(set) {
                total += b.uops;
                for d in &b.insts {
                    for slot in 0..d.inst.uops {
                        ids.insert((d.inst.ip, slot));
                    }
                }
            }
        }
        (total, ids.len())
    }
}

impl Frontend for BbtcFrontend {
    fn name(&self) -> &str {
        "bbtc"
    }

    fn step(&mut self, oracle: &mut OracleStream<'_>, metrics: &mut FrontendMetrics) {
        self.step_probe(oracle, &mut Probe::untraced(metrics));
    }

    fn step_traced(
        &mut self,
        oracle: &mut OracleStream<'_>,
        metrics: &mut FrontendMetrics,
        sink: &mut dyn EventSink,
    ) {
        self.step_probe(oracle, &mut Probe::traced(metrics, sink));
    }

    fn mode_label(&self) -> &'static str {
        match self.mode {
            Mode::Build => "build",
            Mode::Delivery => "delivery",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_isa::Inst;
    use xbc_workload::{standard_traces, CondBehavior, ProgramBuilder, Trace};

    #[test]
    fn geometry() {
        let cfg = BbtcConfig::default();
        assert_eq!(cfg.block_sets(), 1024); // 32K/8 = 4K entries, 4-way
        assert_eq!(cfg.trace_sets(), 1024);
    }

    #[test]
    fn delivers_whole_trace() {
        let t = standard_traces()[0].capture(30_000);
        let mut fe = BbtcFrontend::new(BbtcConfig::default());
        let m = fe.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
        assert_eq!(m.cycles, m.build_cycles + m.delivery_cycles + m.stall_cycles);
    }

    #[test]
    fn hot_loop_served_from_bbtc() {
        let mut b = ProgramBuilder::new();
        for i in 0..6u64 {
            b.push(Inst::plain(Addr::new(0x100 + i), 1, 2));
        }
        b.push_cond(
            Inst::new(Addr::new(0x106), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
            CondBehavior::Bernoulli { p_taken: 1.0 },
        );
        b.push(Inst::new(Addr::new(0x108), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x100), 1);
        let t = Trace::capture("loop", &p, 0, 4_000);
        let mut fe = BbtcFrontend::new(BbtcConfig { total_uops: 4096, ..Default::default() });
        let m = fe.run(&t);
        assert!(m.uop_miss_rate() < 0.05, "miss {}", m.uop_miss_rate());
        assert!(m.delivery_bandwidth() > 4.0);
    }

    #[test]
    fn blocks_are_shared_across_traces() {
        // Two paths joining at a common tail: the tail block must be
        // stored once even though two pointer traces reference it.
        let t = standard_traces()[8].capture(60_000);
        let mut fe = BbtcFrontend::new(BbtcConfig::default());
        fe.run(&t);
        let (stored, distinct) = fe.block_redundancy();
        // Block identities are start-IP keyed, so one copy per block; the
        // residual overlap comes from quota-split boundaries shifting with
        // the entry point (post-resteer / post-interrupt), which re-slices
        // a few straight-line regions. Far below the TC's per-trace copies.
        let dup = (stored - distinct) as f64 / stored.max(1) as f64;
        assert!(dup < 0.05, "block overlap {:.2}% out of band", 100.0 * dup);
        assert!(fe.traces_cached() > 0 && fe.blocks_cached() > 0);
    }

    #[test]
    fn fill_unit_block_boundaries() {
        let mut fill = BbtcFill::new(8, 4);
        let mk = |ip: u64, uops: u8, br: BranchKind| DynInst {
            inst: match br {
                BranchKind::None => Inst::plain(Addr::new(ip), 1, uops),
                BranchKind::UncondDirect => {
                    Inst::new(Addr::new(ip), 1, uops, br, Some(Addr::new(0x99)))
                }
                _ => Inst::new(Addr::new(ip), 1, uops, br, None),
            },
            taken: false,
            next_ip: Addr::new(ip + 1),
        };
        // An unconditional jump ends a *block* here (unlike an XB).
        fill.observe(&mk(0x10, 2, BranchKind::None));
        fill.observe(&mk(0x11, 1, BranchKind::UncondDirect));
        assert_eq!(fill.done_blocks.len(), 1);
        // Quota split at 8 uops.
        for i in 0..3 {
            fill.observe(&mk(0x20 + i, 4, BranchKind::None));
        }
        assert_eq!(fill.done_blocks.len(), 2);
        assert_eq!(fill.done_blocks[1].uops, 8);
        // An indirect ends the pointer trace immediately.
        fill.observe(&mk(0x30, 1, BranchKind::Return));
        assert_eq!(fill.done_traces.len(), 1);
    }

    #[test]
    fn intermediate_vs_tc_on_redundant_workload_at_small_budget() {
        use crate::tc::{TcConfig, TraceCacheFrontend};
        // The §2.4 positioning: the BBTC removes instruction redundancy but
        // adds fragmentation and pointer indirection. Its win shows where
        // capacity pressure is highest — at small budgets on fan-in-heavy
        // workloads — while larger budgets favor the TC's simpler path.
        let t = standard_traces()[11].capture(120_000); // sys.access
        let mut tc = TraceCacheFrontend::new(TcConfig { total_uops: 4096, ..Default::default() });
        let mut bbtc = BbtcFrontend::new(BbtcConfig { total_uops: 4096, ..Default::default() });
        let mt = tc.run(&t);
        let mb = bbtc.run(&t);
        assert!(
            mb.uop_miss_rate() < mt.uop_miss_rate(),
            "bbtc {} vs tc {}",
            mb.uop_miss_rate(),
            mt.uop_miss_rate()
        );
    }
}
