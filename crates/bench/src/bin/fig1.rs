//! Regenerates paper **Figure 1**: the length distribution of dynamic
//! instruction blocks (basic block, XB, XB with promotion, dual XB), all
//! capped at 16 uops.
//!
//! Paper-reported averages: basic block 7.7 uops, XB 8.0, XB with
//! promotion 10.0, dual XB 12.7.
//!
//! ```text
//! cargo run --release -p xbc-bench --bin fig1 [-- --inst N --traces a,b]
//! ```

use xbc_sim::{map_traces_parallel, HarnessArgs};
use xbc_uarch::Histogram;
use xbc_workload::{block_length_stats, BLOCK_QUOTA};

fn main() {
    let args = HarnessArgs::from_env();
    let store = args.open_store();
    // Capture + histogram each trace in parallel (`--threads` workers);
    // results come back in input order, so the merge is deterministic.
    let per_trace = map_traces_parallel(
        &args.traces,
        args.insts,
        args.threads,
        store.as_deref(),
        |spec, trace| {
            let s = block_length_stats(trace);
            eprintln!(
                "{:<18} bb={:5.2} xb={:5.2} promo={:5.2} dual={:5.2}",
                spec.name,
                s.basic_block.mean(),
                s.xb.mean(),
                s.xb_promoted.mean(),
                s.dual_xb.mean()
            );
            s
        },
    );
    let mut agg: Option<xbc_workload::BlockLengthStats> = None;
    for s in per_trace {
        match &mut agg {
            None => agg = Some(s),
            Some(a) => a.merge(&s),
        }
    }
    let agg = agg.expect("at least one trace");

    println!(
        "Figure 1: block length distribution (fractions per length, {} traces)",
        args.traces.len()
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12}",
        "len", "basic-block", "xb", "xb-promoted", "dual-xb"
    );
    let fraction = |h: &Histogram, v: usize| 100.0 * h.fraction(v);
    for len in 1..=BLOCK_QUOTA {
        println!(
            "{:>4} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}%",
            len,
            fraction(&agg.basic_block, len),
            fraction(&agg.xb, len),
            fraction(&agg.xb_promoted, len),
            fraction(&agg.dual_xb, len),
        );
    }
    println!();
    println!(
        "averages (paper: 7.7 / 8.0 / 10.0 / 12.7): {:.2} / {:.2} / {:.2} / {:.2}",
        agg.basic_block.mean(),
        agg.xb.mean(),
        agg.xb_promoted.mean(),
        agg.dual_xb.mean()
    );
}
