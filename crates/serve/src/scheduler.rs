//! Fair cell scheduler for the sweep daemon.
//!
//! PR 7's daemon used a single FIFO `VecDeque` of cells: a client that
//! submitted a 1000-cell grid starved everyone who arrived after it,
//! because the whole grid was enqueued ahead of any later request. This
//! module replaces the FIFO with a two-level policy:
//!
//! 1. **Priority classes** — every sweep request carries a `priority`
//!    (default 0); queued cells of a higher class are always dispatched
//!    before any lower class. Priorities affect *queued* cells only:
//!    a running cell is never preempted mid-simulation.
//! 2. **Round-robin within a class** — among requests of equal
//!    priority, workers take one cell per client in rotation, so a
//!    2-cell request finishes in roughly 2 dispatch turns regardless of
//!    how many thousand cells its neighbor queued first.
//!
//! The scheduler also owns the daemon's drain protocol: once
//! [`Scheduler::begin_drain`] is called new requests are refused, but
//! every already-registered cell is still simulated and streamed, so a
//! `shutdown` racing an active sweep drains instead of severing
//! mid-stream. Counters ([`Scheduler::stats`]) feed the `done` trailer
//! and the CLI's observability output.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// How many times a cell is re-dispatched after a worker dies inside it
/// (fault-injection campaigns; a real panic would abort the scope).
#[cfg_attr(not(feature = "check"), allow(dead_code))]
pub(crate) const MAX_CELL_ATTEMPTS: u32 = 2;

/// Queue-depth and throughput counters, reported in every `done`
/// trailer and by `xbcsim submit --shutdown`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Cells queued and not yet dispatched, across all clients.
    pub queue_depth: u64,
    /// Cells ever enqueued (including retries' first attempts, not the
    /// re-dispatches themselves).
    pub enqueued_cells: u64,
    /// Cells that finished simulation.
    pub completed_cells: u64,
    /// Cells resolved by sharing another request's in-flight result.
    pub deduped_cells: u64,
    /// Cells re-dispatched after a worker died inside them.
    pub retried_cells: u64,
    /// Cells dropped because their job failed or its client vanished.
    pub cancelled_cells: u64,
    /// Per-client pending queue sizes at the time of the snapshot,
    /// ordered by client id.
    pub clients: Vec<ClientCells>,
}

/// One client's slice of the queue in a [`SchedStats`] snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientCells {
    /// Connection id the daemon assigned at accept time.
    pub client: u64,
    /// Priority class of this client's active request.
    pub priority: u32,
    /// Cells still queued for this client.
    pub queued: u64,
}

/// A unit of queued work: which job, which cell index within it, and
/// which attempt (0 = first dispatch).
pub(crate) struct CellTicket<J> {
    pub job: J,
    pub cell: usize,
    pub attempt: u32,
}

struct ClientQueue<J> {
    client: u64,
    priority: u32,
    job: J,
    pending: VecDeque<(usize, u32)>,
}

struct Inner<J> {
    queues: Vec<ClientQueue<J>>,
    /// Round-robin cursor into `queues` (within the winning priority
    /// class).
    rr: usize,
    draining: bool,
    /// Cells currently inside a worker.
    running: usize,
}

/// The daemon-wide cell queue. `J` is the job handle workers carry
/// back (an `Arc<Job>` in the daemon; tests use lighter types).
pub(crate) struct Scheduler<J: Clone> {
    inner: Mutex<Inner<J>>,
    cv: Condvar,
    enqueued: AtomicU64,
    completed: AtomicU64,
    deduped: AtomicU64,
    retried: AtomicU64,
    cancelled: AtomicU64,
}

impl<J: Clone> Scheduler<J> {
    pub fn new() -> Scheduler<J> {
        Scheduler {
            inner: Mutex::new(Inner { queues: Vec::new(), rr: 0, draining: false, running: 0 }),
            cv: Condvar::new(),
            enqueued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        }
    }

    /// Enqueues `cells` cell indices for one client's request. Refused
    /// once draining: the caller reports the error to the client
    /// instead of accepting work that would outlive the daemon.
    pub fn register(
        &self,
        client: u64,
        priority: u32,
        job: J,
        cells: impl IntoIterator<Item = usize>,
    ) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap();
        if inner.draining {
            return Err("daemon is draining; request refused".to_owned());
        }
        let pending: VecDeque<(usize, u32)> = cells.into_iter().map(|c| (c, 0)).collect();
        if pending.is_empty() {
            return Ok(());
        }
        self.enqueued.fetch_add(pending.len() as u64, Ordering::Relaxed);
        inner.queues.push(ClientQueue { client, priority, job, pending });
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks for the next cell under the priority + round-robin
    /// policy. Returns `None` when the daemon is draining and every
    /// queued *and running* cell has finished — the worker-exit
    /// condition that makes shutdown drain instead of sever.
    pub fn pop(&self) -> Option<CellTicket<J>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(ticket) = Self::take_next(&mut inner) {
                inner.running += 1;
                return Some(ticket);
            }
            if inner.draining && inner.running == 0 {
                // Wake siblings so every worker observes the exit
                // condition, not just the one notified last.
                self.cv.notify_all();
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    fn take_next(inner: &mut Inner<J>) -> Option<CellTicket<J>> {
        if inner.queues.is_empty() {
            return None;
        }
        let top = inner.queues.iter().map(|q| q.priority).max().unwrap();
        let n = inner.queues.len();
        // Start the scan at the cursor so equal-priority clients take
        // turns; the first queue in the winning class wins this turn.
        let start = inner.rr % n;
        let idx = (0..n).map(|o| (start + o) % n).find(|&i| inner.queues[i].priority == top)?;
        let queue = &mut inner.queues[idx];
        let (cell, attempt) = queue.pending.pop_front().expect("queues hold pending cells");
        let job = queue.job.clone();
        if queue.pending.is_empty() {
            inner.queues.remove(idx);
            // Removal shifts later queues left; keep the cursor aimed
            // at the element after the one we just served.
            inner.rr = if inner.queues.is_empty() { 0 } else { idx % inner.queues.len() };
        } else {
            inner.rr = (idx + 1) % n;
        }
        Some(CellTicket { job, cell, attempt })
    }

    /// Marks a dispatched cell finished (success or permanent failure).
    pub fn complete(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        inner.running -= 1;
        drop(inner);
        self.cv.notify_all();
    }

    /// Puts a cell back at the *front* of its client's queue after a
    /// worker died inside it. The retry jumps the round-robin line so a
    /// faulted cell cannot starve behind newly queued work. Callers
    /// bound attempts with [`MAX_CELL_ATTEMPTS`].
    #[cfg_attr(not(feature = "check"), allow(dead_code))]
    pub fn requeue(&self, client: u64, priority: u32, job: J, cell: usize, attempt: u32) {
        self.retried.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        inner.running -= 1;
        if let Some(queue) = inner.queues.iter_mut().find(|q| q.client == client) {
            queue.pending.push_front((cell, attempt));
        } else {
            inner.queues.push(ClientQueue {
                client,
                priority,
                job,
                pending: VecDeque::from([(cell, attempt)]),
            });
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Drops every still-queued cell of one client (its job failed or
    /// its connection went away). Running cells finish on their own.
    pub fn cancel(&self, client: u64) {
        let mut inner = self.inner.lock().unwrap();
        let mut dropped = 0u64;
        inner.queues.retain(|q| {
            if q.client == client {
                dropped += q.pending.len() as u64;
                false
            } else {
                true
            }
        });
        if !inner.queues.is_empty() {
            inner.rr %= inner.queues.len();
        } else {
            inner.rr = 0;
        }
        drop(inner);
        if dropped > 0 {
            self.cancelled.fetch_add(dropped, Ordering::Relaxed);
        }
        self.cv.notify_all();
    }

    /// Counts cells resolved by single-flight sharing (for `stats`).
    pub fn note_deduped(&self, n: u64) {
        self.deduped.fetch_add(n, Ordering::Relaxed);
    }

    /// Flips the drain flag and wakes all workers; returns the number
    /// of cells still queued or running, which the `bye` line reports
    /// to the shutdown caller.
    pub fn begin_drain(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.draining = true;
        let remaining =
            inner.queues.iter().map(|q| q.pending.len() as u64).sum::<u64>() + inner.running as u64;
        drop(inner);
        self.cv.notify_all();
        remaining
    }

    /// Snapshot for the `done` trailer and observability counters.
    pub fn stats(&self) -> SchedStats {
        let inner = self.inner.lock().unwrap();
        let mut clients: Vec<ClientCells> = inner
            .queues
            .iter()
            .map(|q| ClientCells {
                client: q.client,
                priority: q.priority,
                queued: q.pending.len() as u64,
            })
            .collect();
        clients.sort_by_key(|c| c.client);
        SchedStats {
            queue_depth: inner.queues.iter().map(|q| q.pending.len() as u64).sum(),
            enqueued_cells: self.enqueued.load(Ordering::Relaxed),
            completed_cells: self.completed.load(Ordering::Relaxed),
            deduped_cells: self.deduped.load(Ordering::Relaxed),
            retried_cells: self.retried.load(Ordering::Relaxed),
            cancelled_cells: self.cancelled.load(Ordering::Relaxed),
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(sched: &Scheduler<u64>) -> Vec<(u64, usize)> {
        let mut order = Vec::new();
        sched.begin_drain();
        while let Some(t) = sched.pop() {
            order.push((t.job, t.cell));
            sched.complete();
        }
        order
    }

    #[test]
    fn round_robin_interleaves_equal_priority_clients() {
        let sched: Scheduler<u64> = Scheduler::new();
        sched.register(1, 0, 1, [10, 11, 12, 13]).unwrap();
        sched.register(2, 0, 2, [20, 21]).unwrap();
        let order = drain_order(&sched);
        // Client 2's two cells are done by turn 4 even though client 1
        // queued four cells first.
        let last_c2 = order.iter().rposition(|&(job, _)| job == 2).unwrap();
        assert!(last_c2 <= 3, "round-robin should finish the small client early: {order:?}");
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn higher_priority_class_runs_first() {
        let sched: Scheduler<u64> = Scheduler::new();
        sched.register(1, 0, 1, [10, 11, 12]).unwrap();
        sched.register(2, 5, 2, [20, 21]).unwrap();
        let order = drain_order(&sched);
        assert_eq!(&order[..2], &[(2, 20), (2, 21)], "priority 5 preempts queued priority 0");
    }

    #[test]
    fn register_refused_while_draining_but_queued_work_drains() {
        let sched: Scheduler<u64> = Scheduler::new();
        sched.register(1, 0, 1, [10, 11]).unwrap();
        let remaining = sched.begin_drain();
        assert_eq!(remaining, 2);
        assert!(sched.register(2, 0, 2, [20]).is_err());
        let mut served = 0;
        while let Some(_t) = sched.pop() {
            served += 1;
            sched.complete();
        }
        assert_eq!(served, 2, "queued cells still drain after begin_drain");
        assert!(sched.pop().is_none());
    }

    #[test]
    fn requeue_puts_cell_at_front_and_counts_retry() {
        let sched: Scheduler<u64> = Scheduler::new();
        sched.register(1, 0, 1, [10, 11]).unwrap();
        let t = sched.pop().unwrap();
        assert_eq!((t.job, t.cell, t.attempt), (1, 10, 0));
        sched.requeue(1, 0, 1, t.cell, t.attempt + 1);
        let t = sched.pop().unwrap();
        assert_eq!((t.cell, t.attempt), (10, 1), "retried cell jumps the queue");
        sched.complete();
        assert_eq!(sched.stats().retried_cells, 1);
        sched.cancel(1);
        assert_eq!(sched.stats().cancelled_cells, 1);
    }

    #[test]
    fn cancel_drops_only_that_client() {
        let sched: Scheduler<u64> = Scheduler::new();
        sched.register(1, 0, 1, [10, 11, 12]).unwrap();
        sched.register(2, 0, 2, [20]).unwrap();
        sched.cancel(1);
        let order = drain_order(&sched);
        assert_eq!(order, vec![(2, 20)]);
        assert_eq!(sched.stats().cancelled_cells, 3);
    }

    #[test]
    fn stats_snapshot_reports_per_client_depth() {
        let sched: Scheduler<u64> = Scheduler::new();
        sched.register(7, 0, 7, [1, 2, 3]).unwrap();
        sched.register(3, 2, 3, [4]).unwrap();
        let stats = sched.stats();
        assert_eq!(stats.queue_depth, 4);
        assert_eq!(stats.enqueued_cells, 4);
        assert_eq!(
            stats.clients,
            vec![
                ClientCells { client: 3, priority: 2, queued: 1 },
                ClientCells { client: 7, priority: 0, queued: 3 },
            ]
        );
    }

    #[test]
    fn workers_block_until_drain_even_when_idle() {
        use std::sync::Arc;
        let sched: Arc<Scheduler<u64>> = Arc::new(Scheduler::new());
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                let mut served = 0;
                while let Some(_t) = sched.pop() {
                    served += 1;
                    sched.complete();
                }
                served
            })
        };
        // The worker is idle-blocked; late work still reaches it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.register(1, 0, 1, [10]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.begin_drain();
        assert_eq!(worker.join().unwrap(), 1);
    }
}
