//! Synthetic program generation.
//!
//! Builds a random — but statistically controlled — program from a
//! [`WorkloadProfile`]: functions of basic blocks laid out sequentially,
//! with conditional branches (Bernoulli or loop behaviour), unconditional
//! jumps, calls along a hot-skewed call graph, returns, and indirect
//! jumps/calls with weighted target sets. Deterministic for a fixed seed.
//!
//! The knobs map one-to-one onto the workload properties the paper's
//! results depend on; see DESIGN.md §3.

use crate::profile::WorkloadProfile;
use crate::program::{CondBehavior, IndirectTargets, Program, ProgramBuilder};
use crate::rng::Rng64;
use xbc_isa::{Addr, BranchKind, Inst};

/// Byte distance between consecutive function images. Functions are far
/// smaller than this, so images never overlap.
const FUNCTION_STRIDE: u64 = 1 << 16;
/// Base address of the program image.
const IMAGE_BASE: u64 = 0x1000_0000;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TermKind {
    Cond,
    Jmp,
    Call,
    Ret,
    IndirectJmp,
    IndirectCall,
}

/// One planned (not yet addressed) basic block.
#[derive(Clone, Debug)]
struct PlannedBlock {
    /// `(len_bytes, uops)` of each body instruction (terminator excluded).
    body: Vec<(u8, u8)>,
    term: TermKind,
    term_shape: (u8, u8),
    /// Address of the first instruction; filled by the layout pass.
    start: Addr,
    /// Address of the terminator; filled by the layout pass.
    term_ip: Addr,
}

#[derive(Clone, Debug)]
struct PlannedFunction {
    entry: Addr,
    blocks: Vec<PlannedBlock>,
    joins: Vec<usize>,
}

/// Deterministic random program generator.
///
/// # Examples
///
/// ```
/// use xbc_workload::{ProgramGenerator, WorkloadProfile};
///
/// let program = ProgramGenerator::new(WorkloadProfile::default(), 42).generate();
/// assert!(program.stats().static_uops > 1000);
/// // Same seed, same program.
/// let again = ProgramGenerator::new(WorkloadProfile::default(), 42).generate();
/// assert_eq!(program.stats(), again.stats());
/// ```
#[derive(Debug)]
pub struct ProgramGenerator {
    profile: WorkloadProfile,
    rng: Rng64,
}

impl ProgramGenerator {
    /// Creates a generator for the given profile and seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        profile.validate();
        ProgramGenerator { profile, rng: Rng64::seed_from_u64(seed) }
    }

    /// Generates the program (consumes the generator; the RNG state is
    /// single-use by design so a seed always maps to exactly one program).
    ///
    /// Function 0 is a *dispatcher*: an event loop of indirect calls fanning
    /// out across the rest of the program, modeling the driver loop of an
    /// interactive application (and, incidentally, exercising the XiBTB).
    /// Remaining functions form a DAG call graph with hot shared leaves.
    pub fn generate(mut self) -> Program {
        let nfun = self.profile.functions;
        let mut functions = Vec::with_capacity(nfun.saturating_sub(1));
        for f in 1..nfun {
            functions.push(self.plan_function(f));
        }
        self.realize(functions)
    }

    /// Samples `Geometric(p)` (number of failures before first success).
    fn geometric(&mut self, p: f64) -> usize {
        debug_assert!(p > 0.0 && p <= 1.0);
        let mut n = 0;
        while self.rng.gen::<f64>() >= p && n < 4096 {
            n += 1;
        }
        n
    }

    fn sample_term(&mut self, is_last: bool) -> TermKind {
        if is_last {
            return TermKind::Ret;
        }
        let m = &self.profile.terminators;
        let total = m.total();
        let x = self.rng.gen::<f64>() * total;
        let mut acc = m.cond;
        if x < acc {
            return TermKind::Cond;
        }
        acc += m.jmp;
        if x < acc {
            return TermKind::Jmp;
        }
        acc += m.call;
        if x < acc {
            return TermKind::Call;
        }
        acc += m.ret;
        if x < acc {
            return TermKind::Ret;
        }
        acc += m.ijmp;
        if x < acc {
            return TermKind::IndirectJmp;
        }
        TermKind::IndirectCall
    }

    fn sample_inst_shape(&mut self) -> (u8, u8) {
        // Encoded length: weighted toward 2–4 bytes like IA32 integer code.
        const LEN_WEIGHTS: [(u8, f64); 11] = [
            (1, 0.10),
            (2, 0.18),
            (3, 0.22),
            (4, 0.18),
            (5, 0.12),
            (6, 0.08),
            (7, 0.05),
            (8, 0.03),
            (9, 0.02),
            (10, 0.01),
            (11, 0.01),
        ];
        let x = self.rng.gen::<f64>();
        let mut acc = 0.0;
        let mut len = 3;
        for (l, w) in LEN_WEIGHTS {
            acc += w;
            if x < acc {
                len = l;
                break;
            }
        }
        let uw = self.profile.uops_per_inst_weights;
        let total: f64 = uw.iter().sum();
        let y = self.rng.gen::<f64>() * total;
        let mut acc = 0.0;
        let mut uops = 1;
        for (i, w) in uw.iter().enumerate() {
            acc += w;
            if y < acc {
                uops = (i + 1) as u8;
                break;
            }
        }
        (len, uops)
    }

    fn term_shape(&mut self, term: TermKind) -> (u8, u8) {
        match term {
            TermKind::Cond | TermKind::Jmp => (2 + self.rng.gen_range(0u8..4), 1),
            TermKind::Call => (5, 1),
            TermKind::Ret => (1, 1),
            TermKind::IndirectJmp | TermKind::IndirectCall => {
                (2 + self.rng.gen_range(0u8..2), 1 + self.rng.gen_range(0u8..2))
            }
        }
    }

    fn plan_function(&mut self, index: usize) -> PlannedFunction {
        let mean = self.profile.blocks_per_fn_mean;
        // 3 + geometric tail around the configured mean.
        let tail_mean = (mean - 3.0).max(1.0);
        let nb = 3 + self.geometric(1.0 / (tail_mean + 1.0)).min(512);
        let mut blocks = Vec::with_capacity(nb);
        for b in 0..nb {
            let n_insts = 1 + self.geometric(self.profile.insts_per_block_p).min(24);
            // Terminator replaces the last instruction slot so block length
            // statistics include it.
            let body_len = n_insts.saturating_sub(1);
            let body = (0..body_len).map(|_| self.sample_inst_shape()).collect();
            let term = self.sample_term(b == nb - 1);
            let term_shape = self.term_shape(term);
            blocks.push(PlannedBlock {
                body,
                term,
                term_shape,
                start: Addr::NULL,
                term_ip: Addr::NULL,
            });
        }
        // Join blocks: a few shared merge points in the middle of the
        // function that many branches target (fan-in ⇒ shared suffixes).
        let njoins = (nb / 8).clamp(1, 4);
        let joins = (0..njoins).map(|_| self.rng.gen_range(1..nb)).collect();
        // Layout pass: assign addresses.
        let base = Addr::new(IMAGE_BASE + index as u64 * FUNCTION_STRIDE);
        let mut f = PlannedFunction { entry: base, blocks, joins };
        let mut cursor = base;
        for b in &mut f.blocks {
            b.start = cursor;
            for (len, _) in &b.body {
                cursor = cursor.offset(*len as u64);
            }
            b.term_ip = cursor;
            cursor = cursor.offset(b.term_shape.0 as u64);
        }
        assert!(
            cursor.raw() - base.raw() < FUNCTION_STRIDE,
            "function image overflowed its address stride"
        );
        f
    }

    fn sample_cond_behavior(&mut self) -> CondBehavior {
        let x = self.rng.gen::<f64>();
        let p = &self.profile;
        if x < p.loop_frac {
            // Cap the geometric tail: an unbounded trip count lets one loop
            // nest monopolize the whole trace.
            let trip = 1 + self.geometric(1.0 / p.loop_trip_mean).min(24) as u32;
            CondBehavior::Loop { trip }
        } else if x < p.loop_frac + p.biased_taken_frac {
            CondBehavior::Bernoulli { p_taken: self.rng.gen_range(0.991..0.9995) }
        } else if x < p.loop_frac + p.biased_taken_frac + p.biased_not_taken_frac {
            CondBehavior::Bernoulli { p_taken: self.rng.gen_range(0.0005..0.009) }
        } else if x < p.loop_frac + p.biased_taken_frac + p.biased_not_taken_frac + 0.03 {
            // Genuinely hard branches: near-coin-flip, iid.
            CondBehavior::Bernoulli { p_taken: self.rng.gen_range(0.30..0.70) }
        } else {
            // One-sided but not monotonic: an iid stand-in for the mostly-
            // predictable correlated branches of real integer code. Tuned so
            // overall gshare accuracy lands near the ~85-95% typical of
            // SPECint-class workloads (iid branches cap what any predictor
            // can achieve at E[max(p, 1-p)]).
            let p_taken = if self.rng.gen::<bool>() {
                self.rng.gen_range(0.90..0.985)
            } else {
                self.rng.gen_range(0.015..0.10)
            };
            CondBehavior::Bernoulli { p_taken }
        }
    }

    /// Picks a callee function index. The call graph is a DAG (callee index
    /// strictly greater than the caller's) so random call cycles cannot trap
    /// execution in unbounded recursion; the *hot* functions live at the top
    /// of the index range, making them shared leaves that every caller
    /// reaches — which concentrates dynamic code footprint realistically.
    fn sample_callee(&mut self, nfun: usize, caller: usize) -> usize {
        if caller + 1 >= nfun {
            // The last function has no forward callee; a self-call is
            // bounded by the executor's stack cap and extremely rare.
            return caller;
        }
        let hot = ((nfun as f64 * self.profile.hot_fraction).ceil() as usize).clamp(1, nfun);
        let hot_lo = (nfun - hot).max(caller + 1);
        if self.rng.gen::<f64>() < self.profile.hot_call_prob {
            // Zipf-ish rank from the very last function backwards; the
            // gentle tail (p = 0.06) spreads heat over dozens of functions
            // rather than a handful.
            let rank = self.geometric(0.06);
            (nfun - 1 - rank.min(nfun - 1 - hot_lo)).max(hot_lo)
        } else {
            self.rng.gen_range(caller + 1..nfun)
        }
    }

    /// Picks a loop-head block index behind `from`. Excluding `from` itself
    /// keeps single-block self-loops — which would otherwise dominate the
    /// dynamic stream with 1-instruction blocks — out of the mix.
    fn pick_backward_index(&mut self, from: usize) -> usize {
        let span = self.profile.loop_span;
        if from == 0 {
            0
        } else {
            self.rng.gen_range(from.saturating_sub(span)..from)
        }
    }

    /// How a branch target relates to its source block.
    fn pick_branch_target(&mut self, f: &PlannedFunction, from: usize, backward: bool) -> Addr {
        let nb = f.blocks.len();
        if backward {
            let idx = self.pick_backward_index(from);
            return f.blocks[idx].start;
        }
        // Forward targets only: any backward unconditional or heavily-biased
        // edge risks a cycle with no probabilistic exit. Join blocks (shared
        // merge points creating fan-in) are used when they lie ahead.
        if self.rng.gen::<f64>() < self.profile.join_bias {
            let ahead: Vec<usize> = f.joins.iter().copied().filter(|&j| j > from).collect();
            if !ahead.is_empty() {
                let j = ahead[self.rng.gen_range(0..ahead.len())];
                return f.blocks[j].start;
            }
        }
        let hi = (from + 10).min(nb - 1);
        let idx = if from + 1 > hi { from } else { self.rng.gen_range(from + 1..=hi) };
        f.blocks[idx].start
    }

    /// Emits the dispatcher (function 0): a loop of indirect-call sites
    /// fanning out over the program, ended by a deterministic back-edge and
    /// a return (which wraps the trace).
    fn build_dispatcher(
        &mut self,
        builder: &mut ProgramBuilder,
        functions: &[PlannedFunction],
    ) -> Addr {
        let entry = Addr::new(IMAGE_BASE);
        let nfun = functions.len() + 1; // combined numbering includes us
        let mut ip = entry;
        let sites = 40.min(functions.len());
        for _ in 0..sites {
            for _ in 0..2 {
                let (len, uops) = self.sample_inst_shape();
                builder.push(Inst::plain(ip, len, uops));
                ip = ip.offset(len as u64);
            }
            // Dispatcher targets are sampled *uniformly* over the whole
            // program (an event loop reaches everything), with zipf-ish
            // weights so each site still has a dominant target.
            let ntargets = 12.min(functions.len());
            let weighted: Vec<(Addr, f64)> = (0..ntargets)
                .map(|k| {
                    let callee = self.rng.gen_range(1..nfun);
                    (functions[callee - 1].entry, 1.0 / (k + 1) as f64)
                })
                .collect();
            builder.push_indirect(
                Inst::new(ip, 2, 1, BranchKind::IndirectCall, None),
                IndirectTargets::new(&weighted),
            );
            ip = ip.offset(2);
        }
        if sites > 0 {
            builder.push_cond(
                Inst::new(ip, 2, 1, BranchKind::CondDirect, Some(entry)),
                CondBehavior::Loop { trip: 32 },
            );
            ip = ip.offset(2);
        } else {
            // Degenerate single-function program: keep the image non-empty.
            builder.push(Inst::plain(ip, 2, 1));
            ip = ip.offset(2);
        }
        builder.push(Inst::new(ip, 1, 1, BranchKind::Return, None));
        entry
    }

    fn realize(&mut self, functions: Vec<PlannedFunction>) -> Program {
        // Combined function numbering: 0 is the dispatcher, planned function
        // `pf` is index `pf + 1`.
        let nfun = functions.len() + 1;
        let mut builder = ProgramBuilder::new();
        let dispatcher_entry = self.build_dispatcher(&mut builder, &functions);
        builder.add_function_entry(dispatcher_entry);
        for f in &functions {
            builder.add_function_entry(f.entry);
        }
        for (pf, f) in functions.iter().enumerate() {
            let fi = pf + 1;
            let nb = f.blocks.len();
            // Back-edges placed so far in this function, as (head, tail)
            // block-index intervals; used to cap loop-nesting depth.
            let mut back_edges: Vec<(usize, usize)> = Vec::new();
            for (bi, b) in f.blocks.iter().enumerate() {
                // Body instructions.
                let mut ip = b.start;
                for (len, uops) in &b.body {
                    builder.push(Inst::plain(ip, *len, *uops));
                    ip = ip.offset(*len as u64);
                }
                debug_assert_eq!(ip, b.term_ip);
                let (tlen, tuops) = b.term_shape;
                match b.term {
                    TermKind::Cond => {
                        let behavior = self.sample_cond_behavior();
                        // Deterministic loops go backward. A quarter of the
                        // *moderately* biased branches also loop back (their
                        // exit probability is ≥ 0.1, so they cannot trap
                        // execution); monotonic branches stay forward.
                        let backward = match behavior {
                            CondBehavior::Loop { .. } => true,
                            CondBehavior::Bernoulli { p_taken } => {
                                (0.03..=0.97).contains(&p_taken)
                                    && self.rng.gen::<f64>() < self.profile.moderate_backward_prob
                            }
                        };
                        // Loop nests multiply trip counts; past depth 2 a
                        // single nest would monopolize the dynamic stream,
                        // so deeper candidates are redirected forward.
                        let target = if backward {
                            let head = self.pick_backward_index(bi);
                            let nest = back_edges
                                .iter()
                                .filter(|(lo, hi)| {
                                    (*lo <= head && bi <= *hi) || (head <= *lo && *hi <= bi)
                                })
                                .count();
                            if nest >= 2 {
                                self.pick_branch_target(f, bi, false)
                            } else {
                                back_edges.push((head, bi));
                                f.blocks[head].start
                            }
                        } else {
                            self.pick_branch_target(f, bi, false)
                        };
                        builder.push_cond(
                            Inst::new(ip, tlen, tuops, BranchKind::CondDirect, Some(target)),
                            behavior,
                        );
                    }
                    TermKind::Jmp => {
                        let target = self.pick_branch_target(f, bi, false);
                        builder.push(Inst::new(
                            ip,
                            tlen,
                            tuops,
                            BranchKind::UncondDirect,
                            Some(target),
                        ));
                    }
                    TermKind::Call => {
                        let callee = self.sample_callee(nfun, fi);
                        if callee == fi {
                            // The last function has no forward callee; emit a
                            // forward jump instead of self-recursion, which
                            // would otherwise burst the call stack on every
                            // visit to this hot leaf.
                            let target = self.pick_branch_target(f, bi, false);
                            builder.push(Inst::new(
                                ip,
                                tlen,
                                tuops,
                                BranchKind::UncondDirect,
                                Some(target),
                            ));
                        } else {
                            let target = functions[callee - 1].entry;
                            builder.push(Inst::new(
                                ip,
                                tlen,
                                tuops,
                                BranchKind::CallDirect,
                                Some(target),
                            ));
                        }
                    }
                    TermKind::Ret => {
                        builder.push(Inst::new(ip, tlen, tuops, BranchKind::Return, None));
                    }
                    TermKind::IndirectJmp => {
                        let n =
                            2 + self.rng.gen_range(0..self.profile.indirect_targets_max.max(2) - 1);
                        let weighted: Vec<(Addr, f64)> = (0..n)
                            .map(|k| {
                                let t = self.pick_branch_target(f, bi.min(nb - 1), false);
                                (t, 1.0 / (k + 1) as f64)
                            })
                            .collect();
                        builder.push_indirect(
                            Inst::new(ip, tlen, tuops, BranchKind::IndirectJump, None),
                            IndirectTargets::new(&weighted),
                        );
                    }
                    TermKind::IndirectCall => {
                        let n =
                            2 + self.rng.gen_range(0..self.profile.indirect_targets_max.max(2) - 1);
                        let weighted: Vec<(Addr, f64)> = (0..n)
                            .map(|k| {
                                let callee = self.sample_callee(nfun, fi);
                                let target = if callee == fi {
                                    // Leaf function: point the slot at a
                                    // forward block instead of recursing.
                                    self.pick_branch_target(f, bi, false)
                                } else {
                                    functions[callee - 1].entry
                                };
                                (target, 1.0 / (k + 1) as f64)
                            })
                            .collect();
                        builder.push_indirect(
                            Inst::new(ip, tlen, tuops, BranchKind::IndirectCall, None),
                            IndirectTargets::new(&weighted),
                        );
                    }
                }
            }
        }
        // Kernel handlers: when asynchronous interrupts are modeled, the
        // last few functions double as shared interrupt handlers (they
        // remain ordinary callees too — kernel code is code).
        if self.profile.interrupt_interval.is_some() {
            let n_handlers = 3.min(functions.len());
            let handlers =
                functions[functions.len() - n_handlers..].iter().map(|f| f.entry).collect();
            builder.set_interrupt_handlers(handlers);
        }
        builder.build(dispatcher_entry, nfun)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadProfile;

    fn small_profile() -> WorkloadProfile {
        WorkloadProfile { functions: 8, blocks_per_fn_mean: 10.0, ..WorkloadProfile::default() }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = ProgramGenerator::new(small_profile(), 1).generate();
        let b = ProgramGenerator::new(small_profile(), 1).generate();
        assert_eq!(a.stats(), b.stats());
        // Spot-check a concrete instruction.
        let ip = a.entry();
        assert_eq!(a.inst_at(ip), b.inst_at(ip));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramGenerator::new(small_profile(), 1).generate();
        let b = ProgramGenerator::new(small_profile(), 2).generate();
        assert_ne!(a.stats(), b.stats());
    }

    #[test]
    fn every_function_entry_has_an_instruction() {
        let p = ProgramGenerator::new(small_profile(), 3).generate();
        for &e in p.function_entries() {
            assert!(p.inst_at(e).is_some(), "function entry {e} missing");
        }
        assert_eq!(p.function_entries().len(), 8);
    }

    #[test]
    fn direct_targets_point_at_instructions() {
        let p = ProgramGenerator::new(small_profile(), 4).generate();
        let mut checked = 0;
        for &e in p.function_entries() {
            // Walk the function image sequentially.
            let mut ip = e;
            while let Some(inst) = p.inst_at(ip) {
                if let Some(t) = inst.target {
                    assert!(p.inst_at(t).is_some(), "target {t} of {ip} dangles");
                    checked += 1;
                }
                if inst.branch == BranchKind::Return {
                    break;
                }
                ip = inst.next_seq();
            }
        }
        assert!(checked > 0, "no branches checked");
    }

    #[test]
    fn conditional_branches_have_behavior() {
        let p = ProgramGenerator::new(small_profile(), 5).generate();
        let mut conds = 0;
        for &e in p.function_entries() {
            let mut ip = e;
            while let Some(inst) = p.inst_at(ip) {
                if inst.branch == BranchKind::CondDirect {
                    assert!(p.cond_behavior(ip).is_some());
                    conds += 1;
                }
                if inst.branch == BranchKind::Return {
                    break;
                }
                ip = inst.next_seq();
            }
        }
        assert!(conds > 0);
        assert_eq!(p.stats().cond_branches, p.stats().cond_branches);
    }

    #[test]
    fn indirect_branches_have_targets() {
        let mut profile = small_profile();
        profile.terminators.ijmp = 0.3; // force plenty of indirects
        let p = ProgramGenerator::new(profile, 6).generate();
        let mut found = 0;
        for &e in p.function_entries() {
            let mut ip = e;
            while let Some(inst) = p.inst_at(ip) {
                if inst.branch == BranchKind::IndirectJump {
                    let t = p.indirect_targets(ip).expect("annotated");
                    assert!(t.targets().len() >= 2);
                    for &target in t.targets() {
                        assert!(p.inst_at(target).is_some());
                    }
                    found += 1;
                }
                if inst.branch == BranchKind::Return {
                    break;
                }
                ip = inst.next_seq();
            }
        }
        assert!(found > 0, "expected indirect jumps in this profile");
    }

    #[test]
    fn footprint_tracks_profile_estimate() {
        let profile = WorkloadProfile { functions: 64, ..WorkloadProfile::default() };
        let est = profile.approx_static_uops();
        let p = ProgramGenerator::new(profile, 9).generate();
        let actual = p.stats().static_uops as f64;
        assert!(
            actual > est * 0.5 && actual < est * 2.0,
            "estimate {est} vs actual {actual} diverge wildly"
        );
    }
}
