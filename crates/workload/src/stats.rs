//! Dynamic block-length statistics (paper Figure 1).
//!
//! Figure 1 plots the length distribution of four dynamic block kinds, all
//! capped at 16 uops: classical basic blocks, extended blocks (XBs), XBs
//! with branch promotion, and dual XBs (two consecutive XBs). The averages
//! the paper reports are 7.7, 8.0, 10.0, and 12.7 uops respectively.
//!
//! Promotion is modeled the way hardware measures it: an online 7-bit
//! [`BiasCounter`] per static conditional branch; a monotonic branch that
//! resolves in its biased direction does not end the promoted block
//! (paper §3.8).

use crate::trace::Trace;
use std::collections::HashMap;
use xbc_isa::BranchKind;
use xbc_predict::BiasCounter;
use xbc_uarch::Histogram;

/// The block-size quota used everywhere in the paper (and for the XBC
/// fetch width): 16 uops.
pub const BLOCK_QUOTA: usize = 16;

/// Length histograms for the four block kinds of Figure 1.
#[derive(Clone, Debug)]
pub struct BlockLengthStats {
    /// Classical basic blocks (end on any branch).
    pub basic_block: Histogram,
    /// Extended blocks (transparent to unconditional direct jumps).
    pub xb: Histogram,
    /// Extended blocks with monotonic-branch promotion.
    pub xb_promoted: Histogram,
    /// Two consecutive extended blocks, jointly capped at the quota.
    pub dual_xb: Histogram,
}

impl BlockLengthStats {
    fn new() -> Self {
        BlockLengthStats {
            basic_block: Histogram::new(BLOCK_QUOTA),
            xb: Histogram::new(BLOCK_QUOTA),
            xb_promoted: Histogram::new(BLOCK_QUOTA),
            dual_xb: Histogram::new(BLOCK_QUOTA),
        }
    }

    /// Merges statistics from another trace (for suite-level aggregates).
    pub fn merge(&mut self, other: &BlockLengthStats) {
        self.basic_block.merge(&other.basic_block);
        self.xb.merge(&other.xb);
        self.xb_promoted.merge(&other.xb_promoted);
        self.dual_xb.merge(&other.dual_xb);
    }
}

/// Accumulates uops into quota-capped blocks; overflow splits the block and
/// carries the remainder, as a 16-uop fill buffer would.
#[derive(Clone, Copy, Debug, Default)]
struct BlockAcc {
    uops: usize,
}

impl BlockAcc {
    /// Adds an instruction's uops, recording any quota-forced splits.
    /// Returns the number of full-quota blocks that were closed.
    fn add(&mut self, uops: usize, hist: &mut Histogram) -> usize {
        self.uops += uops;
        let mut splits = 0;
        while self.uops > BLOCK_QUOTA {
            hist.record(BLOCK_QUOTA);
            self.uops -= BLOCK_QUOTA;
            splits += 1;
        }
        splits
    }

    /// Ends the block, recording its length (if non-empty).
    fn end(&mut self, hist: &mut Histogram) -> Option<usize> {
        if self.uops == 0 {
            return None;
        }
        let len = self.uops;
        hist.record(len);
        self.uops = 0;
        Some(len)
    }
}

/// Pairs consecutive XB lengths into dual-XB observations.
#[derive(Clone, Copy, Debug, Default)]
struct DualAcc {
    pending: Option<usize>,
}

impl DualAcc {
    /// Feeds one completed XB; returns a dual-XB length when a pair closes.
    fn feed(&mut self, len: usize) -> Option<usize> {
        match self.pending.take() {
            None => {
                self.pending = Some(len);
                None
            }
            Some(first) => Some((first + len).min(BLOCK_QUOTA)),
        }
    }
}

/// Computes Figure-1 block-length statistics over a trace.
///
/// # Examples
///
/// ```
/// use xbc_workload::{block_length_stats, ProgramGenerator, Trace, WorkloadProfile};
///
/// let p = ProgramGenerator::new(WorkloadProfile::default(), 5).generate();
/// let t = Trace::capture("demo", &p, 5, 50_000);
/// let stats = block_length_stats(&t);
/// // XBs are at least as long as basic blocks, promotion only helps,
/// // and pairing two XBs is longer still.
/// assert!(stats.xb.mean() >= stats.basic_block.mean() - 1e-9);
/// assert!(stats.xb_promoted.mean() >= stats.xb.mean() - 1e-9);
/// assert!(stats.dual_xb.mean() >= stats.xb_promoted.mean() - 1e-9);
/// ```
pub fn block_length_stats(trace: &Trace) -> BlockLengthStats {
    let mut stats = BlockLengthStats::new();
    let mut bb = BlockAcc::default();
    let mut xb = BlockAcc::default();
    let mut promo = BlockAcc::default();
    let mut dual = DualAcc::default();
    let mut bias: HashMap<u64, BiasCounter> = HashMap::new();

    for d in trace.iter() {
        let uops = d.inst.uops as usize;
        let branch = d.inst.branch;

        // Basic blocks: end on any branch.
        bb.add(uops, &mut stats.basic_block);
        if branch.ends_basic_block() {
            bb.end(&mut stats.basic_block);
        }

        // Extended blocks: end per the XB boundary convention. Quota splits
        // also close an XB (the fill buffer behaves the same way), so they
        // feed the dual pairing too.
        let splits = xb.add(uops, &mut stats.xb);
        for _ in 0..splits {
            if let Some(pair) = dual.feed(BLOCK_QUOTA) {
                stats.dual_xb.record(pair);
            }
        }
        if branch.ends_xb_boundary() {
            if let Some(len) = xb.end(&mut stats.xb) {
                if let Some(pair) = dual.feed(len) {
                    stats.dual_xb.record(pair);
                }
            }
        }

        // Promoted XBs: monotonic conditionals behaving monotonically are
        // transparent.
        promo.add(uops, &mut stats.xb_promoted);
        let ends_promoted = if branch == BranchKind::CondDirect {
            let c = bias.entry(d.inst.ip.raw()).or_default();
            let monotonic_and_behaving = c.bias().map(|b| b.as_taken() == d.taken).unwrap_or(false);
            c.update(d.taken);
            !monotonic_and_behaving
        } else {
            branch.ends_xb_boundary()
        };
        if ends_promoted {
            promo.end(&mut stats.xb_promoted);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CondBehavior, ProgramBuilder};
    use crate::{ProgramGenerator, WorkloadProfile};
    use xbc_isa::{Addr, Inst};

    /// A straight-line loop: 3 plain insts (1 uop each) + always-taken
    /// branch back. BB = XB = 4 uops, promotion merges everything to quota.
    fn monotonic_loop_trace(n: usize) -> Trace {
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x10), 1, 1));
        b.push(Inst::plain(Addr::new(0x11), 1, 1));
        b.push(Inst::plain(Addr::new(0x12), 1, 1));
        b.push_cond(
            Inst::new(Addr::new(0x13), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x10))),
            CondBehavior::Bernoulli { p_taken: 1.0 },
        );
        b.push(Inst::new(Addr::new(0x15), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        Trace::capture("loop", &p, 0, n)
    }

    #[test]
    fn simple_loop_block_lengths() {
        // Long enough that the 64-update bias warm-up (during which nothing
        // is promoted) is a small fraction of the trace.
        let t = monotonic_loop_trace(4000);
        let s = block_length_stats(&t);
        // Every BB/XB is the 4-uop loop body.
        assert!((s.basic_block.mean() - 4.0).abs() < 0.1, "bb {}", s.basic_block.mean());
        assert!((s.xb.mean() - 4.0).abs() < 0.1);
        // Dual XBs pair to 8.
        assert!((s.dual_xb.mean() - 8.0).abs() < 0.2, "dual {}", s.dual_xb.mean());
        // After warm-up the monotonic branch is promoted: blocks run to quota.
        assert!(s.xb_promoted.mean() > 10.0, "promo {}", s.xb_promoted.mean());
    }

    #[test]
    fn uncond_jumps_lengthen_xbs_only() {
        // b0: 3 uops then jmp -> b1: 3 uops then ret.
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x10), 1, 3));
        b.push(Inst::new(Addr::new(0x11), 2, 1, BranchKind::UncondDirect, Some(Addr::new(0x20))));
        b.push(Inst::plain(Addr::new(0x20), 1, 3));
        b.push(Inst::new(Addr::new(0x21), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        let t = Trace::capture("j", &p, 0, 400);
        let s = block_length_stats(&t);
        // BBs: [3+1]=4 and [3+1]=4 → mean 4. XBs merge across the jmp: 8.
        assert!((s.basic_block.mean() - 4.0).abs() < 0.1);
        assert!((s.xb.mean() - 8.0).abs() < 0.2, "xb {}", s.xb.mean());
    }

    #[test]
    fn quota_caps_all_kinds() {
        let t = monotonic_loop_trace(2000);
        let s = block_length_stats(&t);
        for h in [&s.basic_block, &s.xb, &s.xb_promoted, &s.dual_xb] {
            assert!(h.mean() <= BLOCK_QUOTA as f64 + 1e-9);
        }
    }

    #[test]
    fn generated_workload_matches_figure_1_ordering() {
        let p = ProgramGenerator::new(WorkloadProfile::default(), 33).generate();
        let t = Trace::capture("gen", &p, 33, 150_000);
        let s = block_length_stats(&t);
        let bb = s.basic_block.mean();
        let xb = s.xb.mean();
        let promo = s.xb_promoted.mean();
        let dual = s.dual_xb.mean();
        assert!(bb <= xb && xb <= promo && promo <= dual, "{bb} {xb} {promo} {dual}");
        // Loose bands around the paper's 7.7 / 8.0 / 10.0 / 12.7.
        assert!((5.5..10.5).contains(&bb), "bb mean {bb}");
        assert!((6.0..11.0).contains(&xb), "xb mean {xb}");
        assert!((10.0..16.0).contains(&dual), "dual mean {dual}");
    }

    #[test]
    fn merge_combines_counts() {
        let t = monotonic_loop_trace(100);
        let mut a = block_length_stats(&t);
        let b = block_length_stats(&t);
        let n = a.basic_block.count();
        a.merge(&b);
        assert_eq!(a.basic_block.count(), 2 * n);
    }
}
