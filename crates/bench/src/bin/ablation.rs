//! Ablations of the XBC's design choices (DESIGN.md experiment index):
//!
//! * `promotion` — branch promotion on/off (§3.8),
//! * `banks` — 2/4/8 banks at a fixed budget (§3.2),
//! * `placement` — smart + dynamic placement on/off (§3.10),
//! * `setsearch` — set search on/off (§3.9),
//! * `xbtb` — XBTB size sweep (§3.5),
//! * `xbs` — 1 vs 2 vs 3 XBs fetched per cycle (prediction bandwidth),
//! * `xbq` — XBQ fetch-ahead decoupling depth (§3.6, Rein99-style),
//! * `predictor` — the XBP family: gshare (paper) vs bimodal vs local,
//! * `baselines` — all five frontend models at the same 32K budget (§2),
//! * `tcpath` — path-associative TC (Jacobson et al. — "Jaco97", §2.3) vs the base TC and XBC.
//!
//! ```text
//! cargo run --release -p xbc-bench --bin ablation -- <mode> [--inst N]
//! ```

use xbc::{PromotionMode, XbcConfig, XbcFrontend};
use xbc_frontend::FrontendMetrics;
use xbc_sim::{sweep_custom, HarnessArgs};

fn print_table(title: &str, labels: &[&str], rows: &[(String, String, FrontendMetrics)]) {
    println!("{title}");
    println!("{:<18} {:>14} {:>14}", "config", "avg miss%", "avg bw");
    for label in labels {
        let sel: Vec<&FrontendMetrics> =
            rows.iter().filter(|(_, l, _)| l == label).map(|(_, _, m)| m).collect();
        let miss =
            100.0 * sel.iter().map(|m| m.uop_miss_rate()).sum::<f64>() / sel.len().max(1) as f64;
        let bw = sel.iter().map(|m| m.delivery_bandwidth()).sum::<f64>() / sel.len().max(1) as f64;
        println!("{label:<18} {miss:>13.2}% {bw:>14.2}");
    }
    println!();
}

fn main() {
    let args = HarnessArgs::from_env();
    let store = args.open_store();
    let mode = args.positional.first().map(String::as_str).unwrap_or("promotion");
    let base = XbcConfig::default();

    match mode {
        "promotion" => {
            // Promotion buys fetch bandwidth when *prediction bandwidth*
            // binds (paper §3.1/§3.8): cross it with the XBs-per-cycle
            // limit. At n=2 the 16-uop fetch width already saturates, so
            // the n=1 column is where the effect shows.
            let labels = ["chain/1xb", "merge/1xb", "off/1xb", "chain/2xb", "merge/2xb", "off/2xb"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| {
                    use PromotionMode::*;
                    let (promotion, xbs) =
                        [(Chain, 1), (Merge, 1), (Off, 1), (Chain, 2), (Merge, 2), (Off, 2)][i];
                    Box::new(XbcFrontend::new(XbcConfig { promotion, xbs_per_cycle: xbs, ..base }))
                },
            );
            print_table("Ablation: branch promotion (paper §3.8)", &labels, &rows);
        }
        "banks" => {
            // Keep the budget fixed; the fetch width (banks × 4 uops) and
            // conflict probability change.
            let labels = ["4-banks-2-way", "8-banks-1-way", "8-banks-2-way"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| {
                    let (banks, ways) = [(4, 2), (8, 1), (8, 2)][i];
                    Box::new(XbcFrontend::new(XbcConfig { banks, ways, ..base }))
                },
            );
            print_table("Ablation: bank structure (paper §3.2)", &labels, &rows);
        }
        "placement" => {
            let labels = ["smart+dynamic", "smart-only", "dynamic-only", "neither"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| {
                    let (smart, dynamic) =
                        [(true, true), (true, false), (false, true), (false, false)][i];
                    Box::new(XbcFrontend::new(XbcConfig {
                        smart_placement: smart,
                        dynamic_placement: dynamic,
                        ..base
                    }))
                },
            );
            print_table("Ablation: bank placement policies (paper §3.10)", &labels, &rows);
            println!("(look at avg bw: placement exists to recover bank-conflict bandwidth)");
        }
        "setsearch" => {
            let labels = ["set-search-on", "set-search-off"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| Box::new(XbcFrontend::new(XbcConfig { set_search: i == 0, ..base })),
            );
            print_table("Ablation: set search (paper §3.9)", &labels, &rows);
        }
        "xbtb" => {
            let labels = ["xbtb-1k", "xbtb-2k", "xbtb-4k", "xbtb-8k", "xbtb-16k"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| {
                    let entries = [1024, 2048, 4096, 8192, 16384][i];
                    Box::new(XbcFrontend::new(XbcConfig { xbtb_entries: entries, ..base }))
                },
            );
            print_table("Ablation: XBTB capacity (paper §3.5, fixed at 8K)", &labels, &rows);
        }
        "xbs" => {
            let labels = ["1-xb-per-cycle", "2-xbs-per-cycle", "3-xbs-per-cycle"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| Box::new(XbcFrontend::new(XbcConfig { xbs_per_cycle: i + 1, ..base })),
            );
            print_table(
                "Ablation: prediction bandwidth (paper §3.1: n XBs per cycle)",
                &labels,
                &rows,
            );
        }
        "predictor" => {
            use xbc_frontend::Predictors;
            use xbc_predict::{DirPredictor, GshareConfig, LocalConfig, TournamentConfig};
            let labels = ["gshare-16", "gshare-12", "bimodal-14", "local-10", "tournament"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| {
                    let dir = match i {
                        0 => DirPredictor::gshare(GshareConfig { history_bits: 16 }),
                        1 => DirPredictor::gshare(GshareConfig { history_bits: 12 }),
                        2 => DirPredictor::bimodal(14),
                        3 => DirPredictor::local(LocalConfig::default()),
                        _ => DirPredictor::tournament(TournamentConfig::default()),
                    };
                    let mut fe = XbcFrontend::new(base);
                    fe.set_predictors(Predictors::with_dir(dir));
                    Box::new(fe)
                },
            );
            print_table(
                "Ablation: XBP direction predictor family (paper fixes gshare-16)",
                &labels,
                &rows,
            );
        }
        "xbq" => {
            let labels = ["no-xbq", "xbq-24", "xbq-48"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| {
                    let depth = [0usize, 24, 48][i];
                    Box::new(XbcFrontend::new(XbcConfig { xbq_depth: depth, ..base }))
                },
            );
            print_table("Ablation: XBQ decoupling depth (paper §3.6)", &labels, &rows);
        }
        "tcpath" => {
            use xbc_frontend::{TcConfig, TraceCacheFrontend};
            let labels = ["tc", "tc-path-assoc", "xbc"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| match i {
                    0 => Box::new(TraceCacheFrontend::new(TcConfig::default())),
                    1 => Box::new(TraceCacheFrontend::new(TcConfig {
                        path_associative: true,
                        ..TcConfig::default()
                    })),
                    _ => Box::new(XbcFrontend::new(base)),
                },
            );
            print_table(
                "Ablation: TC path associativity ([Jaco97], paper §2.3) at 32K uops",
                &labels,
                &rows,
            );
        }
        "baselines" => {
            use xbc_frontend::{
                BbtcConfig, BbtcFrontend, IcFrontend, IcFrontendConfig, TcConfig,
                TraceCacheFrontend, UopCacheConfig, UopCacheFrontend,
            };
            let labels = ["ic", "uop-cache", "bbtc", "tc", "xbc"];
            let rows = sweep_custom(
                &args.traces,
                args.insts,
                &labels,
                args.threads,
                store.as_deref(),
                |i| match i {
                    0 => Box::new(IcFrontend::new(IcFrontendConfig::default())),
                    1 => Box::new(UopCacheFrontend::new(UopCacheConfig::default())),
                    2 => Box::new(BbtcFrontend::new(BbtcConfig::default())),
                    3 => Box::new(TraceCacheFrontend::new(TcConfig::default())),
                    _ => Box::new(XbcFrontend::new(base)),
                },
            );
            print_table("All frontend models at 32K uops (paper §2 + §3)", &labels, &rows);
        }
        other => {
            eprintln!("unknown ablation: {other}");
            eprintln!(
                "modes: promotion | banks | placement | setsearch | xbtb | xbs | xbq | predictor | baselines | tcpath"
            );
            std::process::exit(2);
        }
    }
}
