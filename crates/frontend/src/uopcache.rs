//! Decoded (uop) cache frontend (paper §2.2).
//!
//! Caches the decoder's output at *instruction* granularity: each entry
//! holds one instruction's uops in a fixed-size slot (the addressing
//! problem of §2.2 forces a full [`xbc_isa::Inst::MAX_UOPS`]-uop slot per
//! instruction, so short instructions fragment the array). Removes decode
//! latency/width limits on hits but keeps the IC's bandwidth behaviour:
//! one consecutive run per cycle, broken by taken branches.

use crate::build::{BuildEngine, FillSink, Predictors, TimingConfig};
use crate::frontend::Frontend;
use crate::metrics::FrontendMetrics;
use crate::oracle::OracleStream;
use crate::probe::Probe;
use xbc_isa::Inst;
use xbc_obs::{CycleKind, D2bCause, Event, EventSink, MispredictKind, UopSource};
use xbc_predict::{BtbConfig, GshareConfig};
use xbc_uarch::{DecoderConfig, ICacheConfig, SetAssoc};
use xbc_workload::DynInst;

/// Configuration of a [`UopCacheFrontend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UopCacheConfig {
    /// Total uop-slot capacity. Divided by `MAX_UOPS` to get entries, since
    /// every entry must reserve space for the worst-case expansion.
    pub total_uops: usize,
    /// Associativity.
    pub ways: usize,
    /// Build path instruction cache.
    pub icache: ICacheConfig,
    /// Build path BTB.
    pub btb: BtbConfig,
    /// Build path decoder.
    pub decoder: DecoderConfig,
    /// Timing constants.
    pub timing: TimingConfig,
    /// Conditional predictor.
    pub gshare: GshareConfig,
}

impl Default for UopCacheConfig {
    fn default() -> Self {
        UopCacheConfig {
            total_uops: 32 * 1024,
            ways: 4,
            icache: ICacheConfig::default(),
            btb: BtbConfig::default(),
            decoder: DecoderConfig::default(),
            timing: TimingConfig::default(),
            gshare: GshareConfig::default(),
        }
    }
}

impl UopCacheConfig {
    /// Entries implied by the geometry (one instruction per entry).
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not divide evenly.
    pub fn entries(&self) -> usize {
        let entries = self.total_uops / Inst::MAX_UOPS as usize;
        assert!(entries > 0 && entries.is_multiple_of(self.ways), "capacity must divide into ways");
        entries
    }
}

/// Fill sink installing decoded instructions into the uop cache.
#[derive(Clone, Debug, Default)]
struct UcFill {
    pending: Vec<DynInst>,
}

impl FillSink for UcFill {
    fn observe(&mut self, d: &DynInst) {
        self.pending.push(*d);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Build,
    Delivery,
}

/// The decoded-cache frontend.
///
/// # Examples
///
/// ```
/// use xbc_frontend::{Frontend, UopCacheConfig, UopCacheFrontend};
/// use xbc_workload::standard_traces;
///
/// let trace = standard_traces()[0].capture(20_000);
/// let mut uc = UopCacheFrontend::new(UopCacheConfig::default());
/// let m = uc.run(&trace);
/// assert!(m.structure_uops > 0);
/// ```
#[derive(Clone, Debug)]
pub struct UopCacheFrontend {
    cfg: UopCacheConfig,
    cache: SetAssoc<u8>, // payload: uop count of the cached instruction
    engine: BuildEngine,
    preds: Predictors,
    fill: UcFill,
    mode: Mode,
    stall: u64,
}

impl UopCacheFrontend {
    /// Creates a cold decoded-cache frontend.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`UopCacheConfig::entries`]).
    pub fn new(cfg: UopCacheConfig) -> Self {
        let entries = cfg.entries();
        UopCacheFrontend {
            cache: SetAssoc::new(entries / cfg.ways, cfg.ways),
            engine: BuildEngine::new(cfg.icache, cfg.btb, cfg.decoder, cfg.timing),
            preds: Predictors::new(cfg.gshare),
            fill: UcFill::default(),
            mode: Mode::Build,
            stall: 0,
            cfg,
        }
    }

    fn set_and_tag(&self, ip: xbc_isa::Addr) -> (usize, u64) {
        let sets = self.cache.sets() as u64;
        let key = ip.raw();
        ((key % sets) as usize, key / sets)
    }

    fn install_pending(&mut self) {
        for d in std::mem::take(&mut self.fill.pending) {
            let (set, tag) = self.set_and_tag(d.inst.ip);
            self.cache.insert(set, tag, d.inst.uops);
        }
    }

    fn delivery_cycle<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        if self.stall > 0 {
            self.stall -= 1;
            probe.emit(Event::Cycle(CycleKind::Stall));
            return;
        }
        // Deliver a consecutive run of cached instructions, up to the
        // renamer width, stopping at a taken branch or a cache miss.
        let mut delivered = 0usize;
        let mut any_hit = false;
        while delivered < self.cfg.timing.renamer_width {
            let Some(d) = oracle.current().copied() else { break };
            let (set, tag) = self.set_and_tag(d.inst.ip);
            if self.cache.get(set, tag).is_none() {
                if !any_hit {
                    // Leading miss: switch to build mode.
                    probe.emit(Event::StructureMiss);
                    probe.emit(Event::SwitchToBuild(D2bCause::StructureMiss));
                    self.mode = Mode::Build;
                    probe.emit(Event::Cycle(CycleKind::Stall));
                    return;
                }
                break;
            }
            if delivered + d.inst.uops as usize > self.cfg.timing.renamer_width {
                break;
            }
            any_hit = true;
            let n = oracle.take_inst();
            delivered += n;
            if d.inst.branch.is_branch() {
                // The uop cache entry knows the branch kind: fetch is
                // BTB-independent on hits.
                let correct = self.preds.resolve(&d, true);
                if !correct {
                    probe.emit(Event::Mispredict(
                        if d.inst.branch == xbc_isa::BranchKind::CondDirect {
                            MispredictKind::Cond
                        } else {
                            MispredictKind::Target
                        },
                    ));
                    self.stall += self.cfg.timing.mispredict_penalty;
                    break;
                }
                if d.taken {
                    break;
                }
            }
        }
        if delivered > 0 {
            probe.emit(Event::Uops {
                src: UopSource::Structure,
                n: xbc_obs::saturate_u16(delivered),
            });
        }
        probe.emit(Event::Cycle(CycleKind::Delivery));
    }

    fn step_probe<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        match self.mode {
            Mode::Build => {
                let kind = self.engine.cycle(oracle, &mut self.preds, probe, &mut self.fill);
                self.install_pending();
                if !oracle.done() && oracle.uop_offset() == 0 {
                    let (set, tag) = self.set_and_tag(oracle.fetch_ip());
                    if self.cache.probe(set, tag).is_some() {
                        self.mode = Mode::Delivery;
                        probe.emit(Event::SwitchToDelivery);
                    }
                }
                probe.emit(Event::Cycle(kind));
            }
            Mode::Delivery => self.delivery_cycle(oracle, probe),
        }
    }
}

impl Frontend for UopCacheFrontend {
    fn name(&self) -> &str {
        "uopcache"
    }

    fn step(&mut self, oracle: &mut OracleStream<'_>, metrics: &mut FrontendMetrics) {
        self.step_probe(oracle, &mut Probe::untraced(metrics));
    }

    fn step_traced(
        &mut self,
        oracle: &mut OracleStream<'_>,
        metrics: &mut FrontendMetrics,
        sink: &mut dyn EventSink,
    ) {
        self.step_probe(oracle, &mut Probe::traced(metrics, sink));
    }

    fn mode_label(&self) -> &'static str {
        match self.mode {
            Mode::Build => "build",
            Mode::Delivery => "delivery",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_workload::standard_traces;

    #[test]
    fn delivers_whole_trace() {
        let t = standard_traces()[0].capture(30_000);
        let mut uc = UopCacheFrontend::new(UopCacheConfig::default());
        let m = uc.run(&t);
        assert_eq!(m.total_uops(), t.uop_count());
    }

    #[test]
    fn mostly_hits_after_warmup_on_compact_code() {
        let t = standard_traces()[0].capture(60_000); // spec.compress: small footprint
        let mut uc = UopCacheFrontend::new(UopCacheConfig::default());
        let m = uc.run(&t);
        assert!(m.uop_miss_rate() < 0.5, "miss rate {}", m.uop_miss_rate());
    }

    #[test]
    fn fragmentation_costs_capacity_vs_tc() {
        // An 8K-uop decoded cache holds only 2K instructions; the same
        // budget as a TC holds fewer *uops* of short instructions.
        let cfg = UopCacheConfig { total_uops: 8192, ..UopCacheConfig::default() };
        assert_eq!(cfg.entries(), 2048);
    }

    #[test]
    fn geometry_panics_on_bad_capacity() {
        let cfg = UopCacheConfig { total_uops: 4, ways: 8, ..UopCacheConfig::default() };
        let r = std::panic::catch_unwind(|| cfg.entries());
        assert!(r.is_err());
    }
}
