//! Captured dynamic traces.
//!
//! The paper's methodology is trace-driven: a fixed dynamic instruction
//! stream is replayed through each frontend configuration so comparisons
//! see identical committed paths. [`Trace`] materializes a stream from the
//! executor once and hands out slices to any number of simulations.

use crate::codec::{Encoder, StreamEncoder, TraceError, TraceReader};
use crate::exec::{DynInst, ExecStats, Executor};
use crate::program::Program;
use std::fmt;
use std::io::{Read, Seek, Write};

/// Instructions per chunk of a streamed capture: the unit of buffering
/// between the executor and the encoder (and, when a replay is tee'd off
/// the capture, the granularity of the producer/consumer channel). Peak
/// live memory of `capture_streamed` is O(this), not O(trace).
pub const CAPTURE_CHUNK: usize = 8_192;

/// A named, captured dynamic instruction stream.
///
/// # Examples
///
/// ```
/// use xbc_workload::{ProgramGenerator, Trace, WorkloadProfile};
///
/// let program = ProgramGenerator::new(WorkloadProfile::default(), 1).generate();
/// let trace = Trace::capture("demo", &program, 1, 10_000);
/// assert_eq!(trace.inst_count(), 10_000);
/// assert!(trace.uop_count() >= 10_000); // every inst has ≥ 1 uop
/// ```
#[derive(Clone)]
pub struct Trace {
    name: String,
    insts: Vec<DynInst>,
    uops: u64,
    exec_stats: ExecStats,
    /// Lazily built uop prefix sums (`prefix[i]` = uops of `insts[..i]`),
    /// shared by every replay cursor over this trace. u64: a >4G-uop
    /// trace (~1G instructions at 4 uops each) overflows a u32 sum.
    uop_prefix: std::sync::OnceLock<Vec<u64>>,
}

/// Builds the uop prefix-sum table from per-instruction uop counts.
/// Factored out of [`Trace::uop_prefix`] so the u64 accumulator can be
/// regression-tested past the u32 ceiling without capturing a 4G-uop
/// trace.
fn uop_prefix_from(counts: impl Iterator<Item = u32>) -> Vec<u64> {
    let mut cum = Vec::with_capacity(counts.size_hint().0 + 1);
    let mut total = 0u64;
    cum.push(0);
    for c in counts {
        total += u64::from(c);
        cum.push(total);
    }
    cum
}

impl Trace {
    /// Runs the executor for `n_insts` dynamic instructions and records the
    /// committed path.
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` is zero.
    pub fn capture(name: &str, program: &Program, seed: u64, n_insts: usize) -> Self {
        Self::capture_with_stickiness(name, program, seed, n_insts, 0.85)
    }

    /// Like [`Trace::capture`] but with explicit indirect-target
    /// stickiness (see [`Executor::with_stickiness`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` is zero.
    pub fn capture_with_stickiness(
        name: &str,
        program: &Program,
        seed: u64,
        n_insts: usize,
        stickiness: f64,
    ) -> Self {
        Self::capture_with_options(name, program, seed, n_insts, stickiness, None)
    }

    /// Full-option capture: stickiness plus asynchronous-interrupt interval
    /// (see [`Executor::with_options`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` is zero.
    pub fn capture_with_options(
        name: &str,
        program: &Program,
        seed: u64,
        n_insts: usize,
        stickiness: f64,
        interrupt_interval: Option<usize>,
    ) -> Self {
        assert!(n_insts > 0, "a trace needs at least one instruction");
        let mut exec = Executor::with_options(program, seed, stickiness, interrupt_interval);
        let mut insts = Vec::with_capacity(n_insts);
        let mut uops = 0u64;
        for _ in 0..n_insts {
            let d = exec.next().expect("executor is infinite");
            uops += d.uops() as u64;
            insts.push(d);
        }
        Trace {
            name: name.to_owned(),
            insts,
            uops,
            exec_stats: exec.stats(),
            uop_prefix: std::sync::OnceLock::new(),
        }
    }

    /// Streaming capture: runs the executor for `n_insts` dynamic
    /// instructions and encodes them to `writer` in [`CAPTURE_CHUNK`]
    /// batches as they are produced, never materializing the trace. The
    /// bytes written are identical to [`Trace::capture_with_options`]
    /// followed by [`Trace::save`] (CI asserts this for every standard
    /// trace), but peak live memory is O(chunk) instead of O(trace), so
    /// giga-instruction captures fit in a bounded footprint.
    ///
    /// `on_chunk` is invoked once per encoded chunk with the chunk's
    /// instructions and the running total captured so far — the hook for
    /// progress reporting and for tee'ing the stream into a live replay
    /// channel (see `ChannelSource`).
    ///
    /// Returns the capture's [`ExecStats`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn capture_streamed<W, F>(
        name: &str,
        program: &Program,
        seed: u64,
        n_insts: usize,
        stickiness: f64,
        interrupt_interval: Option<usize>,
        writer: W,
        mut on_chunk: F,
    ) -> Result<ExecStats, TraceError>
    where
        W: Write + Seek,
        F: FnMut(&[DynInst], u64),
    {
        assert!(n_insts > 0, "a trace needs at least one instruction");
        let mut exec = Executor::with_options(program, seed, stickiness, interrupt_interval);
        let mut enc = StreamEncoder::new(writer, name, n_insts as u64)?;
        let mut chunk: Vec<DynInst> = Vec::with_capacity(CAPTURE_CHUNK.min(n_insts));
        let mut done = 0u64;
        while done < n_insts as u64 {
            let take = CAPTURE_CHUNK.min(n_insts - done as usize);
            chunk.clear();
            for _ in 0..take {
                chunk.push(exec.next().expect("executor is infinite"));
            }
            for d in &chunk {
                enc.record(d)?;
            }
            done += take as u64;
            on_chunk(&chunk, done);
        }
        let stats = exec.stats();
        enc.finish(stats)?;
        Ok(stats)
    }

    /// Builds a trace directly from a committed instruction sequence (the
    /// uop count is recomputed; executor statistics are zeroed). This is
    /// the mutation entry point for checkers: `xbc-check` injects
    /// divergences by editing one [`DynInst`] of a captured stream.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty.
    pub fn from_parts(name: &str, insts: Vec<DynInst>) -> Self {
        assert!(!insts.is_empty(), "a trace needs at least one instruction");
        let uops = insts.iter().map(|d| d.uops() as u64).sum();
        Trace {
            name: name.to_owned(),
            insts,
            uops,
            exec_stats: ExecStats::default(),
            uop_prefix: std::sync::OnceLock::new(),
        }
    }

    /// Trace name (e.g. `"spec.gcc"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The committed dynamic instructions, in order.
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Number of dynamic instructions.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Number of dynamic uops.
    pub fn uop_count(&self) -> u64 {
        self.uops
    }

    /// Uop prefix sums over the committed stream: `prefix()[i]` is the
    /// total uop count of `insts()[..i]` (so the slice is one longer than
    /// the trace). Built on first use and cached, so replay cursors that
    /// resolve uop windows against instruction boundaries share one dense
    /// table instead of re-walking the instruction records.
    pub fn uop_prefix(&self) -> &[u64] {
        self.uop_prefix.get_or_init(|| uop_prefix_from(self.insts.iter().map(|d| d.uops())))
    }

    /// Executor corner-case statistics from the capture.
    pub fn exec_stats(&self) -> ExecStats {
        self.exec_stats
    }

    /// Iterates over the dynamic instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInst> {
        self.insts.iter()
    }

    /// Serializes the trace in the compact `XBT1` binary format (varint
    /// deltas, CRC32 trailer — see [`crate::codec`]). Interchange format
    /// for the `xbcsim capture` / `xbcsim run --from` workflow and the
    /// on-disk unit of `xbc-store`'s trace cache.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), TraceError> {
        let mut enc = Encoder::new(writer, &self.name, self.insts.len() as u64, self.exec_stats)?;
        for d in &self.insts {
            enc.record(d)?;
        }
        enc.finish()
    }

    /// Deserializes a trace previously written by [`Trace::save`],
    /// verifying the CRC trailer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on I/O failure, corruption (bad magic,
    /// truncation, CRC mismatch, out-of-range fields), a format-version
    /// mismatch, or an empty instruction stream.
    pub fn load<R: Read>(reader: R) -> Result<Self, TraceError> {
        let mut r = TraceReader::new(reader)?;
        let name = r.name().to_owned();
        let exec_stats = r.exec_stats();
        // Cap the preallocation: the count field is read before the CRC is
        // verified, so a corrupted header must not turn into a huge
        // allocation — the reader streams and detects the lie itself.
        let mut insts = Vec::with_capacity((r.inst_count() as usize).min(1 << 20));
        let mut uops = 0u64;
        for d in r.by_ref() {
            let d = d?;
            uops += d.uops() as u64;
            insts.push(d);
        }
        if insts.is_empty() {
            return Err(TraceError::Corrupt("trace file contains no instructions".into()));
        }
        Ok(Trace { name, insts, uops, exec_stats, uop_prefix: std::sync::OnceLock::new() })
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("name", &self.name)
            .field("insts", &self.insts.len())
            .field("uops", &self.uops)
            .finish()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramGenerator, WorkloadProfile};

    fn program() -> Program {
        ProgramGenerator::new(WorkloadProfile { functions: 10, ..Default::default() }, 3).generate()
    }

    #[test]
    fn capture_is_deterministic() {
        let p = program();
        let a = Trace::capture("a", &p, 9, 2000);
        let b = Trace::capture("b", &p, 9, 2000);
        assert_eq!(a.insts(), b.insts());
        assert_eq!(a.uop_count(), b.uop_count());
    }

    #[test]
    fn uop_count_sums_inst_uops() {
        let p = program();
        let t = Trace::capture("t", &p, 1, 500);
        let sum: u64 = t.iter().map(|d| d.uops() as u64).sum();
        assert_eq!(sum, t.uop_count());
    }

    #[test]
    fn into_iterator_walks_all() {
        let p = program();
        let t = Trace::capture("t", &p, 1, 100);
        assert_eq!((&t).into_iter().count(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_capture_rejected() {
        let p = program();
        let _ = Trace::capture("t", &p, 1, 0);
    }

    #[test]
    fn capture_streamed_matches_resident_bytes() {
        let p = program();
        // Cross several chunk boundaries, including a ragged tail.
        let n = CAPTURE_CHUNK * 2 + 137;
        let resident = Trace::capture_with_options("streamed", &p, 7, n, 0.85, None);
        let mut resident_bytes = Vec::new();
        resident.save(&mut resident_bytes).unwrap();
        let mut cursor = std::io::Cursor::new(Vec::new());
        let mut seen = 0u64;
        let stats = Trace::capture_streamed(
            "streamed",
            &p,
            7,
            n,
            0.85,
            None,
            &mut cursor,
            |chunk, done| {
                seen += chunk.len() as u64;
                assert_eq!(seen, done);
            },
        )
        .unwrap();
        assert_eq!(seen, n as u64);
        assert_eq!(stats, resident.exec_stats());
        assert_eq!(cursor.into_inner(), resident_bytes);
    }

    #[test]
    fn uop_prefix_survives_u32_overflow() {
        // Three synthetic counts whose running sum crosses the u32
        // ceiling: the old u32 accumulator wrapped silently here.
        let cum = uop_prefix_from([u32::MAX, u32::MAX, 7].into_iter());
        assert_eq!(
            cum,
            vec![0, u64::from(u32::MAX), 2 * u64::from(u32::MAX), 2 * u64::from(u32::MAX) + 7]
        );
    }

    #[test]
    fn uop_prefix_matches_uop_count() {
        let p = program();
        let t = Trace::capture("t", &p, 2, 700);
        let cum = t.uop_prefix();
        assert_eq!(cum.len(), t.inst_count() + 1);
        assert_eq!(cum[0], 0);
        assert_eq!(*cum.last().unwrap(), t.uop_count());
    }

    #[test]
    fn save_load_roundtrip() {
        let p = program();
        let t = Trace::capture("roundtrip", &p, 4, 300);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = Trace::load(buf.as_slice()).unwrap();
        assert_eq!(back.name(), "roundtrip");
        assert_eq!(back.insts(), t.insts());
        assert_eq!(back.uop_count(), t.uop_count());
        assert_eq!(back.exec_stats(), t.exec_stats());
    }

    #[test]
    fn load_rejects_garbage_and_corruption() {
        // Not a trace file at all.
        assert!(Trace::load(&b"not a trace"[..]).is_err());
        assert!(Trace::load(&b""[..]).is_err());
        // A flipped payload byte fails the CRC check.
        let p = program();
        let t = Trace::capture("x", &p, 4, 3);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        assert!(Trace::load(buf.as_slice()).is_err());
    }
}
