//! Compares all four frontend models of the paper's Section 2 on the same
//! committed instruction stream: instruction cache (§2.1), decoded/uop
//! cache (§2.2), trace cache (§2.3), and the XBC (§3).
//!
//! ```text
//! cargo run --release --example frontend_compare [trace-name]
//! ```

use xbc::{XbcConfig, XbcFrontend};
use xbc_frontend::{
    Frontend, IcFrontend, IcFrontendConfig, TcConfig, TraceCacheFrontend, UopCacheConfig,
    UopCacheFrontend,
};
use xbc_workload::standard_traces;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sys.winword".to_owned());
    let spec = standard_traces().into_iter().find(|t| t.name == name).unwrap_or_else(|| {
        eprintln!("unknown trace {name}; try one of:");
        for t in standard_traces() {
            eprintln!("  {}", t.name);
        }
        std::process::exit(2);
    });
    println!("capturing {} (300k instructions)...", spec.name);
    let trace = spec.capture(300_000);

    let mut frontends: Vec<Box<dyn Frontend>> = vec![
        Box::new(IcFrontend::new(IcFrontendConfig::default())),
        Box::new(UopCacheFrontend::new(UopCacheConfig::default())),
        Box::new(TraceCacheFrontend::new(TcConfig::default())),
        Box::new(XbcFrontend::new(XbcConfig::default())),
    ];

    println!();
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>24}",
        "frontend", "miss%", "bandwidth", "uops/cyc", "mispred/kuop", "steady/trans/stall"
    );
    for fe in &mut frontends {
        let m = fe.run(&trace);
        let (s, t, st) = m.phase_breakdown();
        println!(
            "{:<10} {:>9.2}% {:>12.2} {:>10.2} {:>12.2} {:>9.0}%/{:>3.0}%/{:>3.0}%",
            fe.name(),
            100.0 * m.uop_miss_rate(),
            m.delivery_bandwidth(),
            m.overall_uops_per_cycle(),
            m.mispredicts_per_kuop(),
            100.0 * s,
            100.0 * t,
            100.0 * st,
        );
    }
    println!();
    println!("(all four replayed the identical committed path; 32K-uop budgets;");
    println!(" phases per the paper's §1 steady/transition/stall framing)");
}
