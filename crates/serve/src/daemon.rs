//! The sweep service daemon.
//!
//! One process holds the content-addressed [`Store`] and a fixed worker
//! pool; clients connect over a Unix-domain or TCP socket (see
//! [`Endpoint`]), submit sweep grids, and stream rows back as cells
//! complete. The scheduling model is the same cell model as
//! `xbc_sim::Sweep`: the unit of work is one (trace × frontend) cell,
//! cells from *all* concurrent requests drain through one shared
//! [`Scheduler`] (priority classes, round-robin across clients within a
//! class), each request's rows are reassembled in deterministic
//! trace-major order, and `elapsed_ms` is apportioned with the same
//! [`capture_share`] arithmetic — so a daemon-simulated row is
//! indistinguishable from a `Sweep`-simulated one.
//!
//! **Single-flight dedup.** Concurrent requests overlapping on a cell
//! simulate it once: cells are keyed by the same content hash as the
//! result cache (`result_key`), the first worker to reach a key leads
//! the simulation, and every other request's worker shares the leader's
//! finished row. Before simulating, a leader re-probes the result cache
//! — a concurrent request may have stored the row after this request's
//! cache probe — so a cell is never re-simulated (and its stored
//! `elapsed_ms` never overwritten) just because two clients raced.
//! Shared rows are counted as `deduped_cells`, keeping the accounting
//! identity: summed over concurrent clients, `simulated_cells` equals
//! the number of *distinct* cold cells. Trace capture dedups the same
//! way through [`Store::get_or_capture_shared`].
//!
//! Replay is streaming-first: a cell whose trace is already stored
//! replays through [`Store::open_trace_stream`] and
//! `Frontend::run_streamed`, keeping worker memory O(window). The first
//! cell of a not-yet-captured trace *overlaps* capture with its own
//! simulation: the leader of [`Store::stream_capture_shared`] replays
//! the committed-instruction stream live off a bounded channel while a
//! capture thread encodes the same chunks to the store, so the cell's
//! capture cost hides behind its simulation (reported as
//! `overlapped_cells` / `overlap_ms` in the `done` trailer). With
//! streaming capture off (or no store) the first cell captures resident
//! (once, shared behind the store's capture flight — or the job's
//! `OnceLock` when the daemon runs uncached) — either way the trace
//! lands on disk, so later cells of the same trace stream it.
//!
//! **Shutdown drains.** A `shutdown` request flips the scheduler into
//! drain mode: new sweeps are refused, but every already-registered
//! cell is simulated and streamed before the workers exit, so a
//! shutdown racing an active sweep reports the remaining cell count in
//! its `bye` line instead of severing the active stream.

use crate::protocol::{self, Request, SweepRequest};
#[cfg(feature = "check")]
use crate::scheduler::MAX_CELL_ATTEMPTS;
use crate::scheduler::{CellTicket, Scheduler};
use crate::transport::{self, Conn, Endpoint, Listener};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};
use xbc_sim::{
    capture_share, resolve_threads, result_key, rows_from_json, FrontendSpec, Row, SweepBench,
};
use xbc_store::{CaptureOutcome, Flight, SingleFlight, Store, StreamCapture};
use xbc_workload::{standard_traces, Trace, TraceSpec};

#[cfg(feature = "check")]
use crate::faults::{FaultInjector, RowFault};

/// How often blocked connection reads wake to check the shutdown flag
/// and idle budget.
const READ_POLL: Duration = Duration::from_millis(200);

/// Daemon configuration for [`serve`] / [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Where to listen: a Unix-domain socket path or a TCP `host:port`
    /// (port 0 binds ephemeral; [`Server::endpoint`] reports the
    /// resolved address).
    pub listen: Endpoint,
    /// Worker threads for the shared cell pool (0 = one per core,
    /// resolved via `xbc_sim::resolve_threads`).
    pub threads: usize,
    /// Shared trace/result store; `None` disables caching (every
    /// request re-simulates, nothing streams).
    pub store: Option<Arc<Store>>,
    /// Emit per-request progress lines to stderr.
    pub progress: bool,
    /// Concurrent-connection cap; excess clients get one `error` line
    /// ("server at capacity") and a clean close instead of a hang.
    pub max_connections: usize,
    /// Close a connection that sends no request for this long
    /// (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Per-connection send timeout, bounding how long a stalled client
    /// can pin a connection thread mid-row (`None` = block forever).
    pub write_timeout: Option<Duration>,
    /// Overlap cold-trace capture with the leading cell's simulation
    /// via [`Store::stream_capture_shared`] (default on; no effect
    /// without a store).
    pub stream_capture: bool,
    /// Fault-injection triggers for this daemon (tests only; the hooks
    /// compile only under the `check` feature).
    #[cfg(feature = "check")]
    pub faults: Option<Arc<FaultInjector>>,
}

impl ServeConfig {
    /// A config with defaults: 0 threads (one per core), no store, no
    /// progress, 64-connection cap, no idle/write timeouts.
    pub fn new(listen: Endpoint) -> ServeConfig {
        ServeConfig {
            listen,
            threads: 0,
            store: None,
            progress: false,
            max_connections: 64,
            idle_timeout: None,
            write_timeout: None,
            stream_capture: true,
            #[cfg(feature = "check")]
            faults: None,
        }
    }
}

/// One (trace, frontend) cell of a request, with its rank among the
/// trace's missing cells (for the deterministic capture-cost share).
struct Cell {
    trace: usize,
    fe: usize,
    rank: usize,
    missing: usize,
}

/// How a job resolved a cold trace, shared by the trace's cells.
enum TraceHandle {
    /// Captured resident (uncached daemon, streaming off, or an
    /// eviction race), with its capture wall time — later cells of the
    /// trace simulate from memory and take a `capture_share`.
    Resident(Arc<Trace>, u64),
    /// The trace landed on disk (overlapped streamed capture, or
    /// another request's flight) — later cells of the trace stream it.
    OnDisk,
}

/// One submitted sweep: the grid, its pending cells, and the slots its
/// connection thread drains in index order.
struct Job {
    client: u64,
    /// Read by the retry path, which only exists under `check` (the
    /// sole source of worker deaths is the fault injector).
    #[cfg_attr(not(feature = "check"), allow(dead_code))]
    priority: u32,
    traces: Vec<TraceSpec>,
    frontends: Vec<FrontendSpec>,
    insts: usize,
    cells: Vec<Cell>,
    /// Per-trace cold-path resolution, shared by the trace's cells
    /// within this job. (With a store, the store's capture and
    /// streamed-capture flights share across jobs too.)
    shared_traces: Vec<OnceLock<TraceHandle>>,
    /// The full grid; workers fill cells, the connection thread takes
    /// them in trace-major order as the filled prefix grows.
    rows: Mutex<Vec<Option<Row>>>,
    row_cv: Condvar,
    /// Set when the job cannot finish (worker died twice in a cell);
    /// the connection thread reports it as an `error` line.
    failed: Mutex<Option<String>>,
    captures: AtomicU64,
    capture_ms: AtomicU64,
    sim_ms: AtomicU64,
    /// Cells replayed via the streaming path (O(window) memory).
    streamed_cells: AtomicU64,
    /// Cells resolved by sharing another request's in-flight simulation
    /// or a late result-cache hit.
    deduped_cells: AtomicU64,
    /// Cold cells whose capture ran overlapped with their own replay.
    overlapped_cells: AtomicU64,
    /// Capture milliseconds hidden behind simulation on those cells.
    overlap_ms: AtomicU64,
}

impl Job {
    #[cfg_attr(not(feature = "check"), allow(dead_code))]
    fn fail(&self, why: &str) {
        {
            let mut failed = self.failed.lock().expect("job failed lock");
            if failed.is_none() {
                *failed = Some(why.to_owned());
            }
        }
        // Serialize with the connection thread's wait loop: it checks
        // `failed` while holding the rows mutex, so taking (and
        // releasing) that mutex before notifying guarantees the waiter
        // either saw the failure before parking or receives this wake.
        drop(self.rows.lock().expect("job rows lock"));
        self.row_cv.notify_all();
    }
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    endpoint: Endpoint,
    store: Option<Arc<Store>>,
    threads: usize,
    progress: bool,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    stream_capture: bool,
    sched: Scheduler<Arc<Job>>,
    /// Daemon-wide in-flight table keyed by `result_key` content hash:
    /// the single-flight dedup for concurrently requested cells.
    cell_flights: SingleFlight<Row>,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    next_client: AtomicU64,
    #[cfg(feature = "check")]
    faults: Option<Arc<FaultInjector>>,
}

/// How a finished cell's row was obtained, for the job's accounting.
enum CellSource {
    Simulated,
    Deduped,
}

/// Fills a finished cell's slot and wakes the connection thread.
fn deliver(shared: &Shared, job: &Job, ci: usize, row: Row, source: CellSource) {
    if let CellSource::Deduped = source {
        job.deduped_cells.fetch_add(1, Ordering::Relaxed);
        shared.sched.note_deduped(1);
    }
    let cell = &job.cells[ci];
    let mut rows = job.rows.lock().expect("job rows lock");
    rows[cell.trace * job.frontends.len() + cell.fe] = Some(row);
    drop(rows);
    job.row_cv.notify_all();
}

/// Simulates one cell: streaming replay when the trace is already
/// stored, otherwise the shared resident capture — mirroring `Sweep`'s
/// phase 3 exactly (same `result_key`, same `capture_share` arithmetic,
/// same result-cache write), so served rows match swept rows.
fn simulate_cell(shared: &Shared, job: &Job, ci: usize) -> Row {
    let cell = &job.cells[ci];
    let spec = &job.traces[cell.trace];
    let fespec = &job.frontends[cell.fe];
    let mut frontend = fespec.instantiate();
    let streamed = shared.store.as_ref().and_then(|store| {
        let open0 = Instant::now();
        let stream = store.open_trace_stream(spec, job.insts)?;
        Some((stream, open0.elapsed().as_millis() as u64))
    });
    match streamed {
        Some((mut stream, open_ms)) => {
            let sim0 = Instant::now();
            let m = frontend.run_streamed(&mut stream);
            let sim_ms = sim0.elapsed().as_millis() as u64;
            job.capture_ms.fetch_add(open_ms, Ordering::Relaxed);
            job.sim_ms.fetch_add(sim_ms, Ordering::Relaxed);
            job.streamed_cells.fetch_add(1, Ordering::Relaxed);
            let mut row = Row::new(spec.name, &spec.suite.to_string(), *fespec, job.insts, &m);
            // The stream open+validation is this cell's own trace cost
            // (streamed cells share nothing), analogous to a capture
            // share of 1.
            row.elapsed_ms = open_ms + sim_ms;
            row
        }
        None => {
            // Cold trace. The first cell to arrive resolves it for the
            // job: with streaming capture it leads an overlapped
            // capture+replay (simulating live off the capture channel,
            // smuggling its finished row out through `leader_row`);
            // otherwise it captures resident. Later cells of the trace
            // see the resolution through the `OnceLock`.
            let mut leader_row: Option<Row> = None;
            let handle = job.shared_traces[cell.trace].get_or_init(|| {
                if shared.stream_capture {
                    if let Some(store) = &shared.store {
                        match store.stream_capture_shared(spec, job.insts) {
                            StreamCapture::Leader(mut cap) => {
                                let t0 = Instant::now();
                                let mut src = cap.take_source();
                                let m = frontend.run_streamed(&mut src);
                                let cap_ms = cap.finish();
                                let wall = t0.elapsed().as_millis() as u64;
                                job.captures.fetch_add(1, Ordering::Relaxed);
                                job.capture_ms.fetch_add(cap_ms, Ordering::Relaxed);
                                // Attribute `cap_ms` of the cell's wall
                                // to capture and the rest to simulation
                                // — the two sum to the wall time, no
                                // double-counting.
                                job.sim_ms
                                    .fetch_add(wall.saturating_sub(cap_ms), Ordering::Relaxed);
                                job.overlap_ms.fetch_add(cap_ms.min(wall), Ordering::Relaxed);
                                job.overlapped_cells.fetch_add(1, Ordering::Relaxed);
                                job.streamed_cells.fetch_add(1, Ordering::Relaxed);
                                let mut row = Row::new(
                                    spec.name,
                                    &spec.suite.to_string(),
                                    *fespec,
                                    job.insts,
                                    &m,
                                );
                                row.elapsed_ms = wall;
                                leader_row = Some(row);
                                return TraceHandle::OnDisk;
                            }
                            // Raced onto disk, or joined another
                            // request's streamed capture — either way
                            // the trace is (about to be) stored and
                            // that flight's leader counted the capture.
                            StreamCapture::CacheHit | StreamCapture::Joined => {
                                return TraceHandle::OnDisk;
                            }
                        }
                    }
                }
                let c0 = Instant::now();
                let t = match &shared.store {
                    Some(store) => {
                        let (t, outcome) = store.get_or_capture_shared(spec, job.insts);
                        // A joiner shared another request's capture;
                        // only the side that did the work (or the
                        // store load) counts it.
                        if !matches!(outcome, CaptureOutcome::Joined) {
                            job.captures.fetch_add(1, Ordering::Relaxed);
                        }
                        t
                    }
                    None => {
                        job.captures.fetch_add(1, Ordering::Relaxed);
                        Arc::new(spec.capture(job.insts))
                    }
                };
                let ms = c0.elapsed().as_millis() as u64;
                job.capture_ms.fetch_add(ms, Ordering::Relaxed);
                TraceHandle::Resident(t, ms)
            });
            if let Some(row) = leader_row {
                return row;
            }
            match handle {
                TraceHandle::Resident(trace, cap_ms) => {
                    let sim0 = Instant::now();
                    let m = frontend.run(trace);
                    let sim_ms = sim0.elapsed().as_millis() as u64;
                    job.sim_ms.fetch_add(sim_ms, Ordering::Relaxed);
                    let mut row =
                        Row::new(spec.name, &spec.suite.to_string(), *fespec, job.insts, &m);
                    row.elapsed_ms = capture_share(*cap_ms, cell.missing, cell.rank) + sim_ms;
                    row
                }
                TraceHandle::OnDisk => {
                    let store = shared.store.as_ref().expect("OnDisk handle implies a store");
                    let open0 = Instant::now();
                    match store.open_trace_stream(spec, job.insts) {
                        Some(mut stream) => {
                            let open_ms = open0.elapsed().as_millis() as u64;
                            let sim0 = Instant::now();
                            let m = frontend.run_streamed(&mut stream);
                            let sim_ms = sim0.elapsed().as_millis() as u64;
                            job.capture_ms.fetch_add(open_ms, Ordering::Relaxed);
                            job.sim_ms.fetch_add(sim_ms, Ordering::Relaxed);
                            job.streamed_cells.fetch_add(1, Ordering::Relaxed);
                            let mut row = Row::new(
                                spec.name,
                                &spec.suite.to_string(),
                                *fespec,
                                job.insts,
                                &m,
                            );
                            row.elapsed_ms = open_ms + sim_ms;
                            row
                        }
                        None => {
                            // The entry was evicted between the leader
                            // landing it and this cell streaming it —
                            // fall back to the shared resident capture.
                            let c0 = Instant::now();
                            let (trace, outcome) = store.get_or_capture_shared(spec, job.insts);
                            if !matches!(outcome, CaptureOutcome::Joined) {
                                job.captures.fetch_add(1, Ordering::Relaxed);
                            }
                            let cap_ms = c0.elapsed().as_millis() as u64;
                            job.capture_ms.fetch_add(cap_ms, Ordering::Relaxed);
                            let sim0 = Instant::now();
                            let m = frontend.run(&trace);
                            let sim_ms = sim0.elapsed().as_millis() as u64;
                            job.sim_ms.fetch_add(sim_ms, Ordering::Relaxed);
                            let mut row = Row::new(
                                spec.name,
                                &spec.suite.to_string(),
                                *fespec,
                                job.insts,
                                &m,
                            );
                            row.elapsed_ms =
                                capture_share(cap_ms, cell.missing, cell.rank) + sim_ms;
                            row
                        }
                    }
                }
            }
        }
    }
}

/// Resolves one dispatched cell through the single-flight table: lead
/// the simulation, or share a concurrent leader's row.
fn run_cell(shared: &Shared, job: &Job, ci: usize) {
    let cell = &job.cells[ci];
    let key = result_key(&job.traces[cell.trace], &job.frontends[cell.fe], job.insts);
    loop {
        match shared.cell_flights.join(&key) {
            Flight::Leader(lead) => {
                // Re-probe the result cache before simulating: a
                // concurrent request may have stored this cell after
                // our cache probe. Re-simulating would overwrite the
                // stored row with a different `elapsed_ms` and break
                // byte-identical replay.
                if let Some(store) = &shared.store {
                    if let Some(body) = store.load_result(&key) {
                        if let Ok(parsed) = rows_from_json(&body) {
                            if parsed.len() == 1 {
                                let row = parsed.into_iter().next().expect("one row");
                                lead.complete(row.clone());
                                deliver(shared, job, ci, row, CellSource::Deduped);
                                return;
                            }
                        }
                    }
                }
                let row = simulate_cell(shared, job, ci);
                if let Some(store) = &shared.store {
                    store.store_result(&key, &xbc_sim::to_json(std::slice::from_ref(&row)));
                }
                lead.complete(row.clone());
                deliver(shared, job, ci, row, CellSource::Simulated);
                return;
            }
            Flight::Shared(row) => {
                deliver(shared, job, ci, row, CellSource::Deduped);
                return;
            }
            // The leader died without publishing (injected worker
            // kill); re-race the key — somebody has to do the work.
            Flight::Failed(_) => continue,
        }
    }
}

/// Worker loop: drain the scheduler; exit once it reports drained
/// (drain flag set *and* no queued or running cells — graceful shutdown
/// finishes every accepted request).
fn worker(shared: &Shared) {
    while let Some(CellTicket { job, cell, attempt }) = shared.sched.pop() {
        #[cfg(feature = "check")]
        if let Some(faults) = &shared.faults {
            if faults.take_worker_kill() {
                // The worker "died" inside this cell. Retry the cell
                // once; a second death fails the owning request.
                if attempt + 1 < MAX_CELL_ATTEMPTS {
                    shared.sched.requeue(
                        job.client,
                        job.priority,
                        Arc::clone(&job),
                        cell,
                        attempt + 1,
                    );
                } else {
                    job.fail(&format!(
                        "worker died {MAX_CELL_ATTEMPTS} times in cell {cell}; request failed"
                    ));
                    shared.sched.cancel(job.client);
                    shared.sched.complete();
                }
                continue;
            }
        }
        let _ = attempt;
        run_cell(shared, &job, cell);
        shared.sched.complete();
    }
}

/// Writes one line and flushes.
fn send_line(out: &mut Conn, line: &str) -> std::io::Result<()> {
    writeln!(out, "{line}")?;
    out.flush()
}

/// Streams the job's rows in index order. `Ok(true)` means all rows and
/// the `done` trailer went out; `Ok(false)` means the job failed and an
/// `error` line was sent instead (connection stays usable).
fn stream_rows(
    shared: &Shared,
    job: &Arc<Job>,
    out: &mut Conn,
    wall0: Instant,
    cached_cells: usize,
    stats0: Option<xbc_store::StoreStats>,
) -> std::io::Result<bool> {
    enum Got {
        Row(Row),
        Failed(String),
    }
    let n_cells = job.traces.len() * job.frontends.len();
    for idx in 0..n_cells {
        let got = {
            let mut slots = job.rows.lock().expect("job rows lock");
            loop {
                if let Some(r) = slots[idx].take() {
                    break Got::Row(r);
                }
                // Checked under the rows mutex (which `Job::fail` also
                // takes before notifying), so the failure wake cannot
                // slip between this check and the wait.
                if let Some(why) = job.failed.lock().expect("job failed lock").clone() {
                    break Got::Failed(why);
                }
                slots = job.row_cv.wait(slots).expect("job row cv");
            }
        };
        let row = match got {
            Got::Row(row) => row,
            Got::Failed(why) => {
                send_line(out, &protocol::error_line(&why))?;
                return Ok(false);
            }
        };
        #[cfg(feature = "check")]
        if let Some(faults) = &shared.faults {
            match faults.next_row_fault() {
                RowFault::None => {}
                RowFault::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
                RowFault::Drop => {
                    return Err(std::io::Error::other("injected connection drop"));
                }
                RowFault::Truncate => {
                    let line = protocol::row_line(idx, &row);
                    let bytes = line.as_bytes();
                    out.write_all(&bytes[..bytes.len() / 2])?;
                    out.flush()?;
                    return Err(std::io::Error::other("injected connection truncate"));
                }
            }
        }
        send_line(out, &protocol::row_line(idx, &row))?;
    }

    let deduped = job.deduped_cells.load(Ordering::Relaxed) as usize;
    let bench = SweepBench {
        threads: shared.threads,
        traces: job.traces.len(),
        frontends: job.frontends.len(),
        total_cells: n_cells,
        cached_cells,
        // The dedup identity: over concurrent clients, simulated_cells
        // sums to the number of distinct cold cells.
        simulated_cells: job.cells.len() - deduped,
        deduped_cells: deduped,
        captures: job.captures.load(Ordering::Relaxed),
        capture_ms: job.capture_ms.load(Ordering::Relaxed),
        sim_ms: job.sim_ms.load(Ordering::Relaxed),
        overlapped_cells: job.overlapped_cells.load(Ordering::Relaxed) as usize,
        overlap_ms: job.overlap_ms.load(Ordering::Relaxed),
        wall_ms: wall0.elapsed().as_millis() as u64,
        // The pool is daemon-global, not per-request: per-worker stats
        // are not attributable to one request, so the trailer's worker
        // list is empty by design.
        workers: Vec::new(),
    };
    let delta = stats0.map(|before| {
        protocol::stats_delta(
            &before,
            &shared.store.as_ref().expect("stats0 implies store").stats(),
        )
    });
    let sched = shared.sched.stats();
    send_line(out, &protocol::done_line(n_cells, &bench, delta.as_ref(), Some(&sched)))?;
    if shared.progress {
        eprintln!(
            "[xbc-serve] client {}: {} cells ({} cached, {} simulated, {} deduped, {} streamed, \
             {} overlapped) in {} ms (queue depth {})",
            job.client,
            n_cells,
            cached_cells,
            bench.simulated_cells,
            deduped,
            job.streamed_cells.load(Ordering::Relaxed),
            bench.overlapped_cells,
            bench.wall_ms,
            sched.queue_depth,
        );
    }
    Ok(true)
}

/// Serves one sweep request on an open connection: probe the result
/// cache, register the missing cells with the scheduler, stream rows
/// back in trace-major index order as the completed prefix grows, close
/// with the `done` trailer (per-request bench + store-stats delta +
/// scheduler snapshot).
fn handle_sweep(
    shared: &Shared,
    out: &mut Conn,
    client: u64,
    req: SweepRequest,
) -> std::io::Result<()> {
    let wall0 = Instant::now();
    let all = standard_traces();
    let mut specs: Vec<TraceSpec> = Vec::with_capacity(req.traces.len());
    for name in &req.traces {
        match all.iter().find(|t| t.name == *name) {
            Some(s) => specs.push(s.clone()),
            None => {
                return send_line(out, &protocol::error_line(&format!("unknown trace: {name}")));
            }
        }
    }
    if specs.is_empty() || req.frontends.is_empty() || req.insts == 0 {
        return send_line(
            out,
            &protocol::error_line("sweep needs at least one trace, one frontend, and insts > 0"),
        );
    }
    let stats0 = shared.store.as_ref().map(|s| s.stats());
    let n_fe = req.frontends.len();
    let n_cells = specs.len() * n_fe;
    let mut rows: Vec<Option<Row>> = vec![None; n_cells];

    // Probe the result cache — same sequential pass, same eviction of
    // undecodable entries, as `Sweep::run_with_bench` phase 1.
    if let Some(store) = &shared.store {
        for (ti, spec) in specs.iter().enumerate() {
            for (fi, fe) in req.frontends.iter().enumerate() {
                let key = result_key(spec, fe, req.insts);
                let Some(body) = store.load_result(&key) else { continue };
                match rows_from_json(&body) {
                    Ok(parsed) if parsed.len() == 1 => {
                        rows[ti * n_fe + fi] = parsed.into_iter().next();
                    }
                    Ok(parsed) => {
                        store.evict_result(
                            &key,
                            &format!("expected 1 cached row, found {}", parsed.len()),
                        );
                    }
                    Err(e) => {
                        store.evict_result(&key, &format!("undecodable cached row: {e}"));
                    }
                }
            }
        }
    }

    // Plan the missing cells trace-major (phase 2: deterministic ranks).
    let mut cells: Vec<Cell> = Vec::new();
    for ti in 0..specs.len() {
        let start = cells.len();
        for fi in 0..n_fe {
            if rows[ti * n_fe + fi].is_none() {
                cells.push(Cell { trace: ti, fe: fi, rank: cells.len() - start, missing: 0 });
            }
        }
        let missing = cells.len() - start;
        for c in &mut cells[start..] {
            c.missing = missing;
        }
    }
    let cached_cells = n_cells - cells.len();

    let job = Arc::new(Job {
        client,
        priority: req.priority,
        shared_traces: (0..specs.len()).map(|_| OnceLock::new()).collect(),
        traces: specs,
        frontends: req.frontends,
        insts: req.insts,
        cells,
        rows: Mutex::new(rows),
        row_cv: Condvar::new(),
        failed: Mutex::new(None),
        captures: AtomicU64::new(0),
        capture_ms: AtomicU64::new(0),
        sim_ms: AtomicU64::new(0),
        streamed_cells: AtomicU64::new(0),
        deduped_cells: AtomicU64::new(0),
        overlapped_cells: AtomicU64::new(0),
        overlap_ms: AtomicU64::new(0),
    });
    if !job.cells.is_empty() {
        if let Err(refused) =
            shared.sched.register(client, req.priority, Arc::clone(&job), 0..job.cells.len())
        {
            return send_line(out, &protocol::error_line(&refused));
        }
    }

    // Stream rows in index order as soon as each is available; cached
    // rows flow out immediately. On any stream error — the client hung
    // up, or a fault severed the connection — drop the client's
    // still-queued cells so one dead client cannot occupy the pool.
    let streamed = stream_rows(shared, &job, out, wall0, cached_cells, stats0);
    if streamed.is_err() {
        shared.sched.cancel(client);
    }
    streamed.map(|_| ())
}

/// Reads one request line, polling so blocked reads observe shutdown
/// and the idle budget. Returns `Ok(None)` on EOF, idle timeout, or
/// daemon drain.
fn read_request_line(
    shared: &Shared,
    reader: &mut BufReader<Conn>,
) -> std::io::Result<Option<String>> {
    // Partial lines accumulate across poll timeouts: read_until appends
    // whatever arrived before the timeout, so the buffer must persist
    // (and must NOT be cleared) between retries.
    let mut buf: Vec<u8> = Vec::new();
    let idle0 = Instant::now();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return Ok(None), // EOF
            Ok(_) => {
                // Requests are not required to be valid UTF-8 — a
                // malformed byte is a parse error, not a dead daemon.
                return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
                if let Some(limit) = shared.idle_timeout {
                    if buf.is_empty() && idle0.elapsed() > limit {
                        return Ok(None);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// One client connection: hello, then serve requests line by line until
/// the client disconnects (or asks for shutdown).
fn handle_connection(shared: &Shared, conn: Conn, client: u64) -> std::io::Result<()> {
    conn.set_read_timeout(Some(READ_POLL))?;
    let mut out = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    send_line(&mut out, &protocol::hello_line(shared.threads))?;
    while let Some(line) = read_request_line(shared, &mut reader)? {
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err(e) => send_line(&mut out, &protocol::error_line(&e))?,
            Ok(Request::Ping) => send_line(&mut out, &protocol::pong_line())?,
            Ok(Request::Shutdown) => {
                let draining = shared.sched.begin_drain();
                shared.shutdown.store(true, Ordering::Release);
                send_line(&mut out, &protocol::bye_line(draining))?;
                // Unblock the accept loop so it observes the flag.
                transport::connect(&shared.endpoint).ok();
                return Ok(());
            }
            Ok(Request::Sweep(req)) => handle_sweep(shared, &mut out, client, req)?,
        }
    }
    Ok(())
}

/// A bound, not-yet-running daemon. Splitting bind from run lets
/// callers learn the resolved endpoint (TCP port 0) before the accept
/// loop blocks.
pub struct Server {
    listener: Listener,
    config: ServeConfig,
}

impl Server {
    /// Binds the configured endpoint without serving yet.
    ///
    /// # Errors
    ///
    /// Returns the bind error — including "another live daemon already
    /// answers on this Unix socket".
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = Listener::bind(&config.listen)?;
        Ok(Server { listener, config })
    }

    /// The resolved listening endpoint (actual port for TCP `:0`).
    pub fn endpoint(&self) -> &Endpoint {
        self.listener.endpoint()
    }

    /// Runs the daemon: spawns the worker pool and accepts clients
    /// until one of them sends `shutdown`. Queued work is drained
    /// before returning; a Unix socket file is removed on exit.
    ///
    /// # Errors
    ///
    /// Returns the accept-loop IO error if the listener dies.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, config } = self;
        let threads = resolve_threads(config.threads);
        let shared = Shared {
            endpoint: listener.endpoint().clone(),
            store: config.store.clone(),
            threads,
            progress: config.progress,
            max_connections: config.max_connections.max(1),
            idle_timeout: config.idle_timeout,
            stream_capture: config.stream_capture,
            sched: Scheduler::new(),
            cell_flights: SingleFlight::new(),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            next_client: AtomicU64::new(1),
            #[cfg(feature = "check")]
            faults: config.faults.clone(),
        };
        if config.progress {
            eprintln!(
                "[xbc-serve] listening on {} ({} workers, store {}, max {} connections)",
                shared.endpoint,
                threads,
                match &shared.store {
                    Some(s) => s.root().display().to_string(),
                    None => "off".to_owned(),
                },
                shared.max_connections,
            );
        }
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| worker(&shared));
            }
            loop {
                let conn = listener.accept();
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(conn) => {
                        if shared.active_conns.load(Ordering::Acquire) >= shared.max_connections {
                            let mut conn = conn;
                            let refusal = protocol::error_line(&format!(
                                "server at capacity ({} connections); retry later",
                                shared.max_connections
                            ));
                            send_line(&mut conn, &refusal).ok();
                            continue;
                        }
                        shared.active_conns.fetch_add(1, Ordering::AcqRel);
                        let client = shared.next_client.fetch_add(1, Ordering::Relaxed);
                        if let Some(budget) = config.write_timeout {
                            conn.set_write_timeout(Some(budget)).ok();
                        }
                        let shared = &shared;
                        scope.spawn(move || {
                            if let Err(e) = handle_connection(shared, conn, client) {
                                // A client hanging up mid-response is its
                                // prerogative, not a daemon failure.
                                if shared.progress {
                                    eprintln!("[xbc-serve] client {client} ended: {e}");
                                }
                            }
                            shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                    Err(e) => {
                        if shared.progress {
                            eprintln!("[xbc-serve] accept failed: {e}");
                        }
                    }
                }
            }
            // Shutdown: the drain flag is set; wake any workers parked
            // on an empty queue so they observe it.
            shared.sched.begin_drain();
        });
        listener.cleanup();
        if config.progress {
            eprintln!("[xbc-serve] shut down");
        }
        Ok(())
    }
}

/// Binds and runs the daemon — see [`Server`].
///
/// # Errors
///
/// Returns the bind/IO error if the endpoint cannot be set up, or if
/// another live daemon already answers on it.
pub fn serve(config: &ServeConfig) -> std::io::Result<()> {
    Server::bind(config.clone())?.run()
}
