//! Single-flight cell dedup across concurrent clients.
//!
//! N clients submit overlapping *cold* grids at the same instant. The
//! daemon must simulate each distinct (trace × frontend × insts) cell
//! exactly once — the accounting identity is that `simulated_cells`
//! summed over the clients equals the number of distinct cells, with
//! every other resolution showing up as `cached_cells` (the request's
//! cache probe ran after a rival stored the row) or `deduped_cells`
//! (the row was shared from a rival's in-flight simulation or a late
//! store hit). Each client's rows must still be byte-identical to a
//! one-shot `Sweep` of its grid against the same store. Both transports
//! are held to the same contract.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use xbc_serve::protocol::SweepRequest;
use xbc_serve::{ping, shutdown, submit, Endpoint, ServeConfig, Server, SubmitOutcome};
use xbc_sim::{result_key, to_json, FrontendSpec, Sweep};
use xbc_store::Store;
use xbc_workload::standard_traces;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbc-serve-dedup-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_until_live(endpoint: &Endpoint) {
    for _ in 0..500 {
        if ping(endpoint).is_ok() {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {endpoint}");
}

fn xbc(total_uops: usize) -> FrontendSpec {
    FrontendSpec::Xbc { total_uops, ways: 2, promotion: true }
}

/// Three clients × overlapping grids over a cold store: pairwise
/// overlaps guarantee contention on every frontend column.
fn run_dedup_campaign(endpoint: Endpoint, dir: &std::path::Path) {
    const INSTS: usize = 20_000;
    let store = Arc::new(Store::open(dir.join("cache")).unwrap());
    let traces: Vec<_> = standard_traces().into_iter().take(2).collect();
    let names: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();
    let sizes = [8 * 1024, 16 * 1024, 32 * 1024];
    // Client i sweeps sizes {i, i+1 mod 3}: every size is wanted by
    // exactly two clients, so every cell is contended.
    let grids: Vec<Vec<FrontendSpec>> =
        (0..3).map(|i| vec![xbc(sizes[i]), xbc(sizes[(i + 1) % 3])]).collect();

    // The distinct-cell count the daemon must not exceed.
    let mut distinct: HashSet<String> = HashSet::new();
    for grid in &grids {
        for spec in &traces {
            for fe in grid {
                distinct.insert(result_key(spec, fe, INSTS));
            }
        }
    }
    assert_eq!(distinct.len(), traces.len() * sizes.len(), "grid construction sanity");

    let mut config = ServeConfig::new(endpoint.clone());
    config.threads = 4;
    config.store = Some(Arc::clone(&store));
    let server = Server::bind(config).unwrap();
    let endpoint = server.endpoint().clone();
    let daemon = thread::spawn(move || server.run());
    wait_until_live(&endpoint);

    let outcomes: Vec<SubmitOutcome> = thread::scope(|s| {
        let handles: Vec<_> = grids
            .iter()
            .map(|grid| {
                let req = SweepRequest {
                    traces: names.clone(),
                    frontends: grid.clone(),
                    insts: INSTS,
                    priority: 0,
                };
                let endpoint = endpoint.clone();
                s.spawn(move || submit(&endpoint, &req).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The dedup identity: every distinct cold cell simulated exactly
    // once across the daemon, every distinct trace captured exactly
    // once — however the three requests interleaved.
    let simulated: usize = outcomes.iter().map(|o| o.bench.simulated_cells).sum();
    let captures: u64 = outcomes.iter().map(|o| o.bench.captures).sum();
    assert_eq!(
        simulated,
        distinct.len(),
        "distinct cold cells must be simulated exactly once across clients: {:?}",
        outcomes.iter().map(|o| &o.bench).collect::<Vec<_>>()
    );
    assert_eq!(captures, traces.len() as u64, "each trace captured once across clients");
    for out in &outcomes {
        assert_eq!(
            out.bench.cached_cells + out.bench.simulated_cells + out.bench.deduped_cells,
            out.bench.total_cells,
            "per-client accounting must add up: {:?}",
            out.bench
        );
    }
    let deduped: usize = outcomes.iter().map(|o| o.bench.deduped_cells).sum();
    let cached: usize = outcomes.iter().map(|o| o.bench.cached_cells).sum();
    assert_eq!(simulated + deduped + cached, 3 * traces.len() * 2, "all cells resolved");

    // Byte-identity per client: a one-shot sweep of the same grid from
    // the same store replays exactly the rows the client streamed.
    for (grid, out) in grids.iter().zip(&outcomes) {
        let mut replay =
            Sweep::new(traces.clone(), grid.clone(), INSTS).with_store(Arc::clone(&store));
        replay.progress = false;
        assert_eq!(
            to_json(&replay.run()),
            to_json(&out.rows),
            "client rows must be byte-identical to a one-shot sweep"
        );
    }

    shutdown(&endpoint).unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn concurrent_cold_clients_dedup_over_unix() {
    let dir = scratch_dir("unix");
    run_dedup_campaign(Endpoint::unix(dir.join("d.sock")), &dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_cold_clients_dedup_over_tcp() {
    let dir = scratch_dir("tcp");
    run_dedup_campaign(Endpoint::tcp("127.0.0.1:0"), &dir);
    std::fs::remove_dir_all(&dir).ok();
}
