//! Bimodal (per-address 2-bit counter) direction predictor.
//!
//! Not used by the headline configuration (the paper uses gshare) but kept
//! as the classical baseline for predictor ablations.

use crate::PredictorStats;
use xbc_isa::Addr;

/// A table of 2-bit saturating counters indexed by branch address bits.
///
/// # Examples
///
/// ```
/// use xbc_predict::Bimodal;
/// use xbc_isa::Addr;
///
/// let mut b = Bimodal::new(12);
/// for _ in 0..3 { b.update(Addr::new(0x40), true); }
/// assert!(b.predict(Addr::new(0x40)));
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u64,
    stats: PredictorStats,
}

impl Bimodal {
    /// Creates a predictor with `2^index_bits` counters, all weakly
    /// not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or above 30.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=30).contains(&index_bits), "index_bits must be in 1..=30");
        let size = 1usize << index_bits;
        Bimodal { table: vec![1; size], mask: (size - 1) as u64, stats: PredictorStats::default() }
    }

    #[inline]
    fn index(&self, ip: Addr) -> usize {
        ((ip.raw() >> 1) & self.mask) as usize
    }

    /// Predicts the direction of the conditional branch at `ip`.
    #[inline]
    pub fn predict(&self, ip: Addr) -> bool {
        self.table[self.index(ip)] >= 2
    }

    /// Updates with the resolved direction; returns whether the prediction
    /// made by the pre-update state was correct.
    pub fn update(&mut self, ip: Addr, taken: bool) -> bool {
        let idx = self.index(ip);
        let correct = (self.table[idx] >= 2) == taken;
        if correct {
            self.stats.correct += 1;
        } else {
            self.stats.incorrect += 1;
        }
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        correct
    }

    /// Accuracy statistics so far.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_directions() {
        let mut b = Bimodal::new(4);
        let ip = Addr::new(8);
        for _ in 0..10 {
            b.update(ip, true);
        }
        assert!(b.predict(ip));
        for _ in 0..10 {
            b.update(ip, false);
        }
        assert!(!b.predict(ip));
    }

    #[test]
    fn hysteresis_survives_single_flip() {
        let mut b = Bimodal::new(4);
        let ip = Addr::new(8);
        for _ in 0..4 {
            b.update(ip, true);
        }
        b.update(ip, false); // one not-taken
        assert!(b.predict(ip), "2-bit counter keeps predicting taken after one flip");
    }

    #[test]
    fn aliasing_between_far_addresses() {
        let mut b = Bimodal::new(2); // 4 entries: 0x2 and 0x12 alias (>>1 & 3)
        b.update(Addr::new(0x2), true);
        b.update(Addr::new(0x2), true);
        b.update(Addr::new(0x2), true);
        assert!(b.predict(Addr::new(0x12)), "aliased entry shares the counter");
    }

    #[test]
    fn stats_track() {
        let mut b = Bimodal::new(4);
        b.update(Addr::new(2), false); // init=1 predicts NT, correct
        assert_eq!(b.stats().correct, 1);
    }
}
