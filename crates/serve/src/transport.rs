//! Transport layer: one protocol, two wire carriers.
//!
//! The `xbc-serve-v1` conversation (see [`crate::protocol`]) is plain
//! JSONL and never cares what carries the bytes. This module gives the
//! daemon and client a single [`Endpoint`] address type and two
//! carriers behind it:
//!
//! * **Unix-domain socket** — the PR 6 transport, still the default for
//!   same-host use (`--socket PATH`),
//! * **TCP** — `--listen HOST:PORT` / `--connect HOST:PORT`, for
//!   serving sweeps across hosts. Binding port 0 picks an ephemeral
//!   port; [`Listener::endpoint`] reports the resolved address.
//!
//! Both carriers support per-connection read/write timeouts, which the
//! daemon uses for its idle-connection reaping and slow-client write
//! budget; the byte stream semantics are identical either way.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A serve/submit rendezvous address: a Unix-socket path or a TCP
/// `host:port`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP socket at this `host:port` address.
    Tcp(String),
}

impl Endpoint {
    /// A Unix-domain-socket endpoint.
    pub fn unix<P: Into<PathBuf>>(path: P) -> Endpoint {
        Endpoint::Unix(path.into())
    }

    /// A TCP endpoint (`"127.0.0.1:7700"`; port 0 binds ephemeral).
    pub fn tcp<S: Into<String>>(addr: S) -> Endpoint {
        Endpoint::Tcp(addr.into())
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl From<&Path> for Endpoint {
    fn from(p: &Path) -> Endpoint {
        Endpoint::Unix(p.to_path_buf())
    }
}

/// One accepted or dialed connection, over either carrier.
pub(crate) enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    /// Clones the underlying descriptor (for split read/write halves).
    pub fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    /// Sets the receive timeout (None = block forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }

    /// Sets the send timeout (None = block forever).
    pub fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_write_timeout(d),
            Conn::Tcp(s) => s.set_write_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Dials an endpoint.
pub(crate) fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
    Ok(match endpoint {
        Endpoint::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
        Endpoint::Tcp(addr) => Conn::Tcp(TcpStream::connect(addr.as_str())?),
    })
}

/// A bound listener over either carrier.
pub(crate) struct Listener {
    inner: ListenerInner,
    /// The *resolved* endpoint: for TCP port 0 this carries the actual
    /// ephemeral port the OS assigned.
    endpoint: Endpoint,
}

enum ListenerInner {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the endpoint. A stale Unix socket file (left by a dead
    /// daemon) is removed and rebound; a *live* one — another daemon
    /// answers a connect probe — is an error, as is an in-use TCP port.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(socket) => {
                if socket.exists() {
                    // A socket file can outlive its daemon (SIGKILL).
                    // Probe it: a live daemon answers the connect; a
                    // dead one leaves ECONNREFUSED.
                    match UnixStream::connect(socket) {
                        Ok(_) => {
                            return Err(io::Error::other(format!(
                                "{} is already served by a live daemon",
                                socket.display()
                            )));
                        }
                        Err(_) => {
                            std::fs::remove_file(socket)?;
                        }
                    }
                }
                Ok(Listener {
                    inner: ListenerInner::Unix(UnixListener::bind(socket)?),
                    endpoint: endpoint.clone(),
                })
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let resolved = Endpoint::Tcp(listener.local_addr()?.to_string());
                Ok(Listener { inner: ListenerInner::Tcp(listener), endpoint: resolved })
            }
        }
    }

    /// The resolved listening endpoint (actual port for TCP `:0`).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Blocks for the next connection.
    pub fn accept(&self) -> io::Result<Conn> {
        Ok(match &self.inner {
            ListenerInner::Unix(l) => Conn::Unix(l.accept()?.0),
            ListenerInner::Tcp(l) => Conn::Tcp(l.accept()?.0),
        })
    }

    /// Removes the Unix socket file on daemon exit (no-op for TCP).
    pub fn cleanup(&self) {
        if let Endpoint::Unix(path) = &self.endpoint {
            std::fs::remove_file(path).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display_and_conversion() {
        let u = Endpoint::unix("/tmp/x.sock");
        assert_eq!(u.to_string(), "unix:/tmp/x.sock");
        let t = Endpoint::tcp("127.0.0.1:7700");
        assert_eq!(t.to_string(), "tcp:127.0.0.1:7700");
        assert_eq!(Endpoint::from(Path::new("/a")), Endpoint::unix("/a"));
    }

    #[test]
    fn tcp_ephemeral_bind_reports_real_port() {
        let l = Listener::bind(&Endpoint::tcp("127.0.0.1:0")).unwrap();
        let Endpoint::Tcp(addr) = l.endpoint().clone() else { panic!("tcp endpoint") };
        assert!(!addr.ends_with(":0"), "resolved endpoint must carry the real port: {addr}");
        // Round-trip one byte through a dialed connection.
        let mut client = connect(l.endpoint()).unwrap();
        let mut served = l.accept().unwrap();
        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        let mut byte = [0u8; 1];
        served.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }
}
