//! `xbcsim` — command-line driver for the XBC reproduction.
//!
//! ```text
//! xbcsim list
//! xbcsim run   --frontend xbc --size 32768 --trace spec.gcc --inst 500000 [--stream on] [--trace-events ev.jsonl]
//! xbcsim run   --frontend tc  --from trace.xbt --stream on
//! xbcsim sweep --frontends tc,xbc --sizes 8192,32768 --inst 200000 [--traces a,b] [--json out.json] [--bench-json BENCH_sweep.json] [--threads N] [--cache DIR|off] [--stream-capture on|off] [--trace-events ev.jsonl]
//! xbcsim serve --socket target/xbcsim.sock [--threads N] [--cache DIR|off] [--conn-cap N] [--idle-timeout-ms N] [--stream-capture on|off]
//! xbcsim serve --listen 0.0.0.0:7700 [--threads N] [--cache DIR|off]
//! xbcsim submit --socket target/xbcsim.sock --frontends tc,xbc --sizes 8192 --inst 200000 [--priority N] [--json out.json] [--bench-json FILE]
//! xbcsim submit --connect host:7700 --frontends tc,xbc --sizes 8192 --inst 200000
//! xbcsim submit --socket target/xbcsim.sock --ping on | --shutdown on
//! xbcsim inspect --events ev.jsonl
//! xbcsim capture --trace sys.access --insts 1000000000 --out trace.xbt
//! xbcsim dot --trace spec.gcc --function 3 > f3.dot
//! ```

use std::fs::File;
use std::io::BufReader;
use std::process::exit;
use xbc_serve::protocol::SweepRequest;
use xbc_serve::Endpoint;
use xbc_sim::{pivot_table, FrontendSpec, Row, Sweep};
use xbc_workload::{function_dot, standard_traces, Trace, TraceStream};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  xbcsim list");
    eprintln!("  xbcsim run --frontend ic|uopcache|bbtc|tc|xbc [--size N] [--check on] [--stream on] [--trace-events FILE] (--trace NAME --inst N | --from FILE)");
    eprintln!("  xbcsim sweep [--frontends tc,xbc] [--sizes 8192,32768] [--traces a,b] [--inst N] [--json FILE] [--bench-json FILE] [--threads N] [--cache DIR|off] [--stream-capture on|off] [--check on] [--trace-events FILE]");
    eprintln!("  xbcsim serve [--socket PATH | --listen HOST:PORT] [--threads N] [--cache DIR|off] [--conn-cap N] [--idle-timeout-ms N] [--stream-capture on|off]");
    eprintln!("  xbcsim submit [--socket PATH | --connect HOST:PORT] [--frontends tc,xbc] [--sizes 8192,32768] [--traces a,b] [--inst N] [--priority N] [--json FILE] [--bench-json FILE] [--ping on] [--shutdown on]");
    eprintln!("  xbcsim inspect --events FILE   (render an xbc-events-v1 stream)");
    eprintln!("  xbcsim capture --trace NAME --insts N --out FILE   (streamed; N may exceed 1e9)");
    eprintln!("  xbcsim dot --trace NAME [--function K]   (DOT CFG to stdout)");
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

/// Tiny flag parser: `--key value` pairs after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            if !k.starts_with("--") {
                fail(&format!("unexpected argument: {k}"));
            }
            let v = it.next().unwrap_or_else(|| fail(&format!("{k} needs a value")));
            out.push((k[2..].to_owned(), v.clone()));
        }
        Flags(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> usize {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| fail(&format!("bad --{key}: {v}"))),
        }
    }

    fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.get(key) {
            None => default,
            Some("true" | "on" | "1") => true,
            Some("false" | "off" | "0") => false,
            Some(v) => fail(&format!("bad --{key}: {v} (want on|off)")),
        }
    }
}

fn frontend_spec(kind: &str, size: usize) -> FrontendSpec {
    match kind {
        "ic" => FrontendSpec::Ic,
        "uopcache" => FrontendSpec::UopCache { total_uops: size },
        "bbtc" => FrontendSpec::Bbtc { total_uops: size },
        "tc" => FrontendSpec::Tc { total_uops: size, ways: 4 },
        "xbc" => FrontendSpec::Xbc { total_uops: size, ways: 2, promotion: true },
        other => fail(&format!("unknown frontend: {other}")),
    }
}

fn load_trace_by_name(name: &str, insts: usize) -> Trace {
    let spec = standard_traces()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| fail(&format!("unknown trace: {name} (see `xbcsim list`)")));
    spec.capture(insts)
}

/// Resolves the cache-directory convention shared by `sweep` and
/// `serve`: `--cache DIR`, else `$XBC_CACHE_DIR`, else
/// `target/xbc-cache`; `--cache off` disables the store.
fn resolve_cache(flags: &Flags) -> Option<String> {
    let cache = flags
        .get("cache")
        .map(str::to_owned)
        .or_else(|| std::env::var("XBC_CACHE_DIR").ok())
        .unwrap_or_else(|| "target/xbc-cache".to_owned());
    (cache != "off").then_some(cache)
}

/// The grid shared by `sweep` and `submit`: trace names, frontend
/// specs (kinds × sizes), and the instruction budget.
fn resolve_grid(flags: &Flags) -> (Vec<String>, Vec<FrontendSpec>, usize) {
    let all = standard_traces();
    let traces: Vec<String> = match flags.get("traces") {
        None => all.iter().map(|t| t.name.to_owned()).collect(),
        Some(list) => list
            .split(',')
            .map(|name| {
                all.iter()
                    .find(|t| t.name == name)
                    .map(|t| t.name.to_owned())
                    .unwrap_or_else(|| fail(&format!("unknown trace: {name}")))
            })
            .collect(),
    };
    let kinds: Vec<&str> = flags.get("frontends").unwrap_or("tc,xbc").split(',').collect();
    let sizes: Vec<usize> = flags
        .get("sizes")
        .unwrap_or("8192,32768")
        .split(',')
        .map(|s| s.parse().unwrap_or_else(|_| fail(&format!("bad size: {s}"))))
        .collect();
    let mut frontends = Vec::new();
    for &size in &sizes {
        for kind in &kinds {
            frontends.push(frontend_spec(kind, size));
        }
    }
    (traces, frontends, flags.get_usize("inst", 200_000))
}

fn cmd_list() {
    println!("{:<18} {:>10} {:>10} {:>6}", "trace", "suite", "functions", "seed");
    for t in standard_traces() {
        println!("{:<18} {:>10} {:>10} {:>6}", t.name, t.suite.to_string(), t.functions, t.seed);
    }
}

/// `run --stream on`: replay through the bounded-window oracle instead
/// of a resident `Trace`. `--from FILE` streams straight off the file
/// (host memory stays O(window) however big it is); `--trace NAME`
/// captures, encodes to the XBT1 wire format in memory, and streams
/// that — same replay path, demonstrating metric equivalence.
fn cmd_run_streamed(flags: &Flags, spec: &FrontendSpec, check: bool) {
    let input: Box<dyn std::io::Read> = if let Some(path) = flags.get("from") {
        Box::new(BufReader::new(
            File::open(path).unwrap_or_else(|e| fail(&format!("open {path}: {e}"))),
        ))
    } else {
        let name = flags.get("trace").unwrap_or_else(|| fail("run needs --trace or --from"));
        let trace = load_trace_by_name(name, flags.get_usize("inst", 500_000));
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap_or_else(|e| fail(&format!("encode {name}: {e}")));
        Box::new(std::io::Cursor::new(buf))
    };
    let mut stream = TraceStream::new(input).unwrap_or_else(|e| fail(&format!("open stream: {e}")));
    let name = stream.name().to_owned();
    let mut fe = spec.instantiate();
    let m = if let Some(path) = flags.get("trace-events") {
        let mut sink = xbc_obs::VecSink::new();
        let m = if check {
            xbc_sim::run_checked_streamed(&mut *fe, &mut stream, &name, &mut sink)
        } else {
            fe.run_streamed_traced(&mut stream, &mut sink)
        };
        let mut out = String::new();
        xbc_obs::jsonl::write_section(&mut out, &spec.label(), &name, &sink.events);
        std::fs::write(path, out).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path} ({} events)", sink.events.len());
        m
    } else if check {
        xbc_sim::run_checked_streamed(&mut *fe, &mut stream, &name, &mut xbc_obs::NullSink)
    } else {
        fe.run_streamed(&mut stream)
    };
    println!("{} on {} (streamed, {} uops):", spec.label(), name, m.total_uops());
    println!("{m}");
}

fn cmd_run(flags: &Flags) {
    let kind = flags.get("frontend").unwrap_or("xbc");
    let size = flags.get_usize("size", 32 * 1024);
    let spec = frontend_spec(kind, size);
    let check = flags.get_bool("check", false);
    if flags.get_bool("stream", false) {
        cmd_run_streamed(flags, &spec, check);
        return;
    }
    let trace = if let Some(path) = flags.get("from") {
        let f = File::open(path).unwrap_or_else(|e| fail(&format!("open {path}: {e}")));
        Trace::load(f).unwrap_or_else(|e| fail(&format!("load {path}: {e}")))
    } else {
        let name = flags.get("trace").unwrap_or_else(|| fail("run needs --trace or --from"));
        load_trace_by_name(name, flags.get_usize("inst", 500_000))
    };
    let mut fe = spec.instantiate();
    let m = if let Some(path) = flags.get("trace-events") {
        let mut sink = xbc_obs::VecSink::new();
        let m = if check {
            xbc_sim::run_checked_traced(&mut *fe, &trace, trace.name(), &mut sink)
        } else {
            fe.run_traced(&trace, &mut sink)
        };
        let mut out = String::new();
        xbc_obs::jsonl::write_section(&mut out, &spec.label(), trace.name(), &sink.events);
        std::fs::write(path, out).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path} ({} events)", sink.events.len());
        m
    } else if check {
        // Verified replay: per-cycle accounting identities + structural
        // audit, same metrics as the plain run.
        xbc_sim::run_checked(&mut *fe, &trace, trace.name())
    } else {
        fe.run(&trace)
    };
    println!("{} on {} ({} uops):", spec.label(), trace.name(), trace.uop_count());
    println!("{m}");
}

fn cmd_inspect(flags: &Flags) {
    let path = flags.get("events").unwrap_or_else(|| fail("inspect needs --events FILE"));
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    match xbc_sim::render_inspect(&text) {
        Ok(report) => print!("{report}"),
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn print_rows(rows: &[Row]) {
    println!("{}", pivot_table(rows, "uop miss rate (%)", |r| 100.0 * r.miss_rate));
    println!("{}", pivot_table(rows, "delivery bandwidth (uops/cycle)", |r| r.bandwidth));
}

fn write_artifacts(flags: &Flags, rows: &[Row], bench_json: &str) {
    if let Some(path) = flags.get("json") {
        std::fs::write(path, xbc_sim::to_json(rows))
            .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("bench-json") {
        std::fs::write(path, bench_json).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

fn cmd_sweep(flags: &Flags) {
    let (trace_names, frontends, insts) = resolve_grid(flags);
    let all = standard_traces();
    let traces: Vec<_> = trace_names
        .iter()
        .map(|name| all.iter().find(|t| t.name == *name).cloned().expect("resolved above"))
        .collect();
    let mut sweep = Sweep::new(traces, frontends, insts);
    sweep.threads = flags.get_usize("threads", 0);
    sweep.check = flags.get_bool("check", false);
    sweep.stream_capture = flags.get_bool("stream-capture", true);
    sweep.trace_events = flags.get("trace-events").map(str::to_owned);
    if let Some(cache) = resolve_cache(flags) {
        match xbc_store::Store::open(&cache) {
            Ok(store) => sweep = sweep.with_store(std::sync::Arc::new(store)),
            Err(e) => eprintln!("[xbc-store] cannot open {cache}: {e}; running uncached"),
        }
    }
    let (rows, bench): (Vec<Row>, _) = sweep.run_with_bench();
    print_rows(&rows);
    write_artifacts(flags, &rows, &bench.to_json());
}

/// The rendezvous convention shared by `serve` and `submit`:
/// `--listen`/`--connect HOST:PORT` picks TCP, `--socket PATH` (default
/// `target/xbcsim.sock`) a Unix-domain socket.
fn endpoint(flags: &Flags, tcp_flag: &str) -> Endpoint {
    match flags.get(tcp_flag) {
        Some(addr) => {
            if flags.get("socket").is_some() {
                fail(&format!("--socket and --{tcp_flag} are mutually exclusive"));
            }
            Endpoint::tcp(addr)
        }
        None => Endpoint::unix(flags.get("socket").unwrap_or("target/xbcsim.sock")),
    }
}

fn cmd_serve(flags: &Flags) {
    let store = resolve_cache(flags).and_then(|cache| match xbc_store::Store::open(&cache) {
        Ok(store) => Some(std::sync::Arc::new(store)),
        Err(e) => {
            eprintln!("[xbc-store] cannot open {cache}: {e}; serving uncached");
            None
        }
    });
    let mut config = xbc_serve::ServeConfig::new(endpoint(flags, "listen"));
    config.threads = flags.get_usize("threads", 0);
    config.store = store;
    config.progress = true;
    config.max_connections = flags.get_usize("conn-cap", 64);
    config.stream_capture = flags.get_bool("stream-capture", true);
    let idle_ms = flags.get_usize("idle-timeout-ms", 0);
    config.idle_timeout = (idle_ms > 0).then(|| std::time::Duration::from_millis(idle_ms as u64));
    if let Err(e) = xbc_serve::serve(&config) {
        fail(&format!("serve: {e}"));
    }
}

fn cmd_submit(flags: &Flags) {
    let endpoint = endpoint(flags, "connect");
    if flags.get_bool("ping", false) {
        match xbc_serve::ping(&endpoint) {
            Ok(()) => println!("pong from {endpoint}"),
            Err(e) => fail(&e),
        }
        return;
    }
    if flags.get_bool("shutdown", false) {
        match xbc_serve::shutdown(&endpoint) {
            Ok(draining) => {
                println!("daemon at {endpoint} shutting down ({draining} cells draining)");
            }
            Err(e) => fail(&e),
        }
        return;
    }
    let (traces, frontends, insts) = resolve_grid(flags);
    let priority = flags.get_usize("priority", 0);
    let priority =
        u32::try_from(priority).unwrap_or_else(|_| fail(&format!("bad --priority: {priority}")));
    let req = SweepRequest { traces, frontends, insts, priority };
    let outcome = xbc_serve::submit(&endpoint, &req).unwrap_or_else(|e| fail(&e));
    print_rows(&outcome.rows);
    write_artifacts(flags, &outcome.rows, &outcome.bench.to_json());
    if let Some(stats) = &outcome.store {
        eprintln!("[xbc-serve] store delta: {stats}");
    }
    if let Some(sched) = &outcome.sched {
        eprintln!(
            "[xbc-serve] queue depth {} ({} enqueued, {} completed, {} deduped, {} retried, {} cancelled)",
            sched.queue_depth,
            sched.enqueued_cells,
            sched.completed_cells,
            sched.deduped_cells,
            sched.retried_cells,
            sched.cancelled_cells,
        );
    }
    eprintln!("[xbc-serve] {}", outcome.bench);
}

/// `capture` encodes straight to the XBT1 file through the chunked
/// streaming encoder: peak memory stays O(chunk) however large
/// `--insts` is, so giga-instruction captures (`--insts 1000000000` and
/// beyond) need no more RAM than a toy one. The bytes written are
/// identical to a resident capture-then-save.
fn cmd_capture(flags: &Flags) {
    let name = flags.get("trace").unwrap_or_else(|| fail("capture needs --trace"));
    let out = flags.get("out").unwrap_or_else(|| fail("capture needs --out"));
    // `--insts` is the documented spelling; `--inst` still works for
    // symmetry with `run`/`sweep`.
    let insts = match flags.get("insts") {
        Some(_) => flags.get_usize("insts", 0),
        None => flags.get_usize("inst", 100_000),
    };
    if insts == 0 {
        fail("capture needs --insts > 0");
    }
    let spec = standard_traces()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| fail(&format!("unknown trace: {name} (see `xbcsim list`)")));
    let f = File::create(out).unwrap_or_else(|e| fail(&format!("create {out}: {e}")));
    let mut w = std::io::BufWriter::new(f);
    let t0 = std::time::Instant::now();
    // Progress on stderr every ~1% (at least every 8M insts), so a
    // multi-minute giga-capture is visibly alive.
    let tick = (insts as u64 / 100).max(8 * 1024 * 1024);
    let mut next_tick = tick;
    let stats = spec
        .capture_streamed(insts, &mut w, |_chunk, done| {
            if done >= next_tick && done < insts as u64 {
                next_tick = (done / tick + 1) * tick;
                let secs = t0.elapsed().as_secs_f64();
                eprintln!(
                    "[capture] {done}/{insts} insts ({:.0}%, {:.1} Minsts/s)",
                    100.0 * done as f64 / insts as f64,
                    done as f64 / secs.max(1e-9) / 1e6,
                );
            }
        })
        .unwrap_or_else(|e| fail(&format!("capture {name}: {e}")));
    use std::io::Write as _;
    w.flush().unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "wrote {out}: {} insts, {} uops ({:.1} Minsts/s)",
        stats.insts,
        stats.uops,
        stats.insts as f64 / secs.max(1e-9) / 1e6,
    );
}

fn cmd_dot(flags: &Flags) {
    let name = flags.get("trace").unwrap_or_else(|| fail("dot needs --trace"));
    let k = flags.get_usize("function", 1);
    let spec = standard_traces()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| fail(&format!("unknown trace: {name}")));
    let program = spec.program();
    let entries = program.function_entries();
    if k >= entries.len() {
        fail(&format!("--function {k} out of range (program has {} functions)", entries.len()));
    }
    print!("{}", function_dot(&program, entries[k]));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = Flags::parse(&args[1..]);
    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&flags),
        "sweep" => cmd_sweep(&flags),
        "serve" => cmd_serve(&flags),
        "submit" => cmd_submit(&flags),
        "inspect" => cmd_inspect(&flags),
        "capture" => cmd_capture(&flags),
        "dot" => cmd_dot(&flags),
        _ => usage(),
    }
}
