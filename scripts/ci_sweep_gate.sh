#!/usr/bin/env bash
# CI gate for the cell-level sweep scheduler:
#
#   1. runs a small fig9-style sweep twice, --threads 1 vs --threads 0,
#      both uncached, and fails if any row differs (elapsed_ms excluded —
#      it is a wall-clock measurement, not simulation output);
#   2. emits results/BENCH_sweep.json from the parallel run, which CI
#      uploads as an artifact so sweep throughput is tracked per commit.
#
# Usage: scripts/ci_sweep_gate.sh [INSTS] (default 20000)
set -euo pipefail
cd "$(dirname "$0")/.."
INSTS="${1:-20000}"
TRACES="spec.gcc,games.quake"

cargo build --release -p xbc-bench
mkdir -p results
B=target/release

"$B/fig9" --inst "$INSTS" --traces "$TRACES" --threads 1 --no-cache \
  --json results/ci_rows_t1.json > /dev/null
"$B/fig9" --inst "$INSTS" --traces "$TRACES" --threads 0 --no-cache \
  --json results/ci_rows_t0.json --bench-json results/BENCH_sweep.json > /dev/null

# Strip the one timing-derived field; everything else must be
# bit-identical across thread counts.
grep -v '"elapsed_ms"' results/ci_rows_t1.json > results/ci_rows_t1.cmp
grep -v '"elapsed_ms"' results/ci_rows_t0.json > results/ci_rows_t0.cmp
if ! diff -u results/ci_rows_t1.cmp results/ci_rows_t0.cmp; then
  echo "FAIL: parallel sweep rows differ from --threads 1" >&2
  exit 1
fi
echo "OK: rows bit-identical across thread counts ($TRACES x 12 configs, $INSTS insts)"
echo "bench: $(cat results/BENCH_sweep.json)"
