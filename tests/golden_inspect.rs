//! Golden-snapshot test for `xbcsim inspect`.
//!
//! A small seeded trace through the XBC frontend renders a report that
//! is pinned byte-for-byte under `tests/golden/`. Any change to the
//! event vocabulary, the JSONL encoding, or the inspect renderer shows
//! up here as a readable diff.
//!
//! To re-bless after an intentional format change:
//!
//! ```text
//! XBC_BLESS=1 cargo test --test golden_inspect
//! ```

use xbc::{XbcConfig, XbcFrontend};
use xbc_frontend::Frontend;
use xbc_obs::jsonl::write_section;
use xbc_obs::VecSink;
use xbc_workload::standard_traces;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn compare_or_bless(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("XBC_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with XBC_BLESS=1 to create it", path.display())
    });
    assert_eq!(
        actual,
        expected,
        "inspect output drifted from {}; if intentional, re-bless with XBC_BLESS=1",
        path.display()
    );
}

#[test]
fn inspect_report_matches_golden_snapshot() {
    // spec.compress, tiny budget: everything here is seeded, so the
    // captured trace — and therefore the event stream and the report —
    // is identical on every run and every machine.
    let spec = standard_traces().into_iter().find(|t| t.name == "spec.compress").unwrap();
    let trace = spec.capture(8_000);
    let mut fe = XbcFrontend::new(XbcConfig { total_uops: 4096, ..Default::default() });
    let mut sink = VecSink::new();
    fe.run_traced(&trace, &mut sink);

    let mut file = String::new();
    write_section(&mut file, "xbc-4k", trace.name(), &sink.events);
    let report = xbc_sim::render_inspect(&file).expect("generated stream must render");
    compare_or_bless("inspect_xbc_small.txt", &report);
}
