//! Streaming instruction sources.
//!
//! The paper's traces are 30M instructions; server-class follow-ups
//! (ROADMAP item 3) want billions. Holding a `Vec<DynInst>` per trace
//! caps what a host can replay, so the replay path also accepts an
//! [`InstSource`]: a pull-based producer of committed instructions that
//! the oracle cursor consumes through a bounded sliding window, keeping
//! host memory O(window) instead of O(trace).
//!
//! [`TraceStream`] adapts the `XBT1` streaming decoder
//! ([`crate::codec::TraceReader`]) into an `InstSource`, so a trace on
//! disk replays without ever being materialized. [`IterSource`] adapts
//! any in-memory iterator (tests, generators).

use crate::codec::{TraceError, TraceReader};
use crate::exec::{DynInst, ExecStats};
use std::io::Read;
use std::sync::mpsc;

/// Chunk-queue depth of a capture/replay overlap channel (see
/// [`ChannelSource::bounded`]): small enough that a stalled consumer
/// backpressures the producer at O(chunks) memory, large enough that
/// neither side stalls on normal jitter.
pub const CHANNEL_DEPTH: usize = 4;

/// A pull-based producer of committed dynamic instructions.
///
/// The contract is exactly `Iterator<Item = DynInst>` minus the blanket
/// machinery: `next_inst` returns instructions in committed order and
/// `None` once — permanently — at end of stream. Sources are consumed
/// by `OracleStream::streaming` (in `xbc-frontend`), which buffers a
/// bounded lookahead window on top.
pub trait InstSource {
    /// The next committed instruction, or `None` at end of stream.
    fn next_inst(&mut self) -> Option<DynInst>;

    /// Diagnostic name of the stream (trace name where known).
    fn source_name(&self) -> &str {
        "<stream>"
    }
}

/// Streams a serialized `XBT1` trace as an [`InstSource`], decoding one
/// record at a time — O(1) memory however long the trace is.
///
/// # Panics
///
/// `next_inst` panics on mid-stream corruption (I/O error, CRC
/// mismatch, truncation). A replay that has already delivered uops from
/// a stream that turns out to be corrupt cannot produce a correct
/// result, so there is nothing graceful left to do; callers that need
/// corruption to degrade to a miss (the store) validate the whole file
/// with a cheap streaming pre-pass first (`Store::open_trace_stream`).
///
/// # Examples
///
/// ```
/// use xbc_workload::{standard_traces, TraceStream};
///
/// let trace = standard_traces()[0].capture(500);
/// let mut buf = Vec::new();
/// trace.save(&mut buf).unwrap();
/// let mut stream = TraceStream::new(buf.as_slice()).unwrap();
/// assert_eq!(stream.name(), trace.name());
/// assert_eq!(stream.inst_count(), 500);
/// ```
pub struct TraceStream<R: Read> {
    reader: TraceReader<R>,
    yielded: u64,
}

impl<R: Read> TraceStream<R> {
    /// Opens a stream over serialized trace bytes, validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on a bad magic, malformed header or
    /// format-version mismatch.
    pub fn new(input: R) -> Result<Self, TraceError> {
        Ok(TraceStream { reader: TraceReader::new(input)?, yielded: 0 })
    }

    /// Trace name from the header.
    pub fn name(&self) -> &str {
        self.reader.name()
    }

    /// Dynamic instruction count declared in the header.
    pub fn inst_count(&self) -> u64 {
        self.reader.inst_count()
    }

    /// Executor statistics recorded at capture time.
    pub fn exec_stats(&self) -> ExecStats {
        self.reader.exec_stats()
    }
}

impl<R: Read> crate::stream::InstSource for TraceStream<R> {
    fn next_inst(&mut self) -> Option<DynInst> {
        match self.reader.next() {
            None => None,
            Some(Ok(d)) => {
                self.yielded += 1;
                Some(d)
            }
            Some(Err(e)) => panic!(
                "streaming replay of {:?} failed after {} instructions: {e}",
                self.reader.name(),
                self.yielded
            ),
        }
    }

    fn source_name(&self) -> &str {
        self.reader.name()
    }
}

/// Replays committed instructions from a bounded producer/consumer
/// channel fed by a live capture: the consumer half of capture/simulate
/// overlap. The producer (a streaming capture thread) sends each encoded
/// chunk through the channel as it is written to disk; the simulation
/// pulls instructions out the other end, so a cold cell's first replay
/// runs *while* its capture is still executing instead of after it.
///
/// # Panics
///
/// `next_inst` panics if the channel disconnects before `expected`
/// instructions have been yielded — the producer died mid-capture, and a
/// replay that has already consumed part of the stream cannot recover
/// (same contract as [`TraceStream`] on mid-stream corruption).
pub struct ChannelSource {
    rx: mpsc::Receiver<Box<[DynInst]>>,
    chunk: Box<[DynInst]>,
    pos: usize,
    name: String,
    expected: u64,
    yielded: u64,
}

impl ChannelSource {
    /// Creates a channel expecting exactly `expected` instructions and
    /// returns `(producer, consumer)`. The producer sends whole chunks
    /// (boxed so a send is a pointer move); the channel holds at most
    /// [`CHANNEL_DEPTH`] chunks, backpressuring a capture that outruns
    /// the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero.
    pub fn bounded(name: &str, expected: u64) -> (mpsc::SyncSender<Box<[DynInst]>>, Self) {
        assert!(expected > 0, "a channel source needs at least one instruction");
        let (tx, rx) = mpsc::sync_channel(CHANNEL_DEPTH);
        let src = ChannelSource {
            rx,
            chunk: Box::new([]),
            pos: 0,
            name: name.to_owned(),
            expected,
            yielded: 0,
        };
        (tx, src)
    }
}

impl InstSource for ChannelSource {
    fn next_inst(&mut self) -> Option<DynInst> {
        if self.yielded == self.expected {
            return None;
        }
        while self.pos == self.chunk.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.chunk = chunk;
                    self.pos = 0;
                }
                Err(_) => panic!(
                    "live capture of {:?} died after {} of {} instructions",
                    self.name, self.yielded, self.expected
                ),
            }
        }
        let d = self.chunk[self.pos];
        self.pos += 1;
        self.yielded += 1;
        Some(d)
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

/// Adapts any in-memory instruction iterator into an [`InstSource`]
/// (resident replays, tests, synthetic generators).
///
/// # Examples
///
/// ```
/// use xbc_workload::{standard_traces, IterSource, InstSource};
///
/// let trace = standard_traces()[0].capture(10);
/// let mut src = IterSource::new(trace.insts().iter().copied());
/// assert!(src.next_inst().is_some());
/// ```
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = DynInst>> IterSource<I> {
    /// Wraps `iter` as an instruction source.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = DynInst>> InstSource for IterSource<I> {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.iter.next()
    }

    fn source_name(&self) -> &str {
        "<iter>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_traces;

    #[test]
    fn trace_stream_yields_the_resident_sequence() {
        let trace = standard_traces()[1].capture(700);
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let mut s = TraceStream::new(buf.as_slice()).unwrap();
        let mut got = Vec::new();
        while let Some(d) = s.next_inst() {
            got.push(d);
        }
        assert_eq!(got, trace.insts());
        assert_eq!(s.next_inst(), None, "a drained stream stays drained");
    }

    #[test]
    #[should_panic(expected = "streaming replay")]
    fn trace_stream_panics_on_midstream_corruption() {
        let trace = standard_traces()[2].capture(400);
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let mut s = TraceStream::new(buf.as_slice()).unwrap();
        while s.next_inst().is_some() {}
    }

    #[test]
    fn channel_source_yields_the_produced_sequence() {
        let trace = standard_traces()[0].capture(300);
        let insts = trace.insts().to_vec();
        let (tx, mut src) = ChannelSource::bounded(trace.name(), insts.len() as u64);
        let feeder = std::thread::spawn(move || {
            for chunk in insts.chunks(64) {
                tx.send(chunk.to_vec().into_boxed_slice()).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(d) = src.next_inst() {
            got.push(d);
        }
        feeder.join().unwrap();
        assert_eq!(got, trace.insts());
        assert_eq!(src.next_inst(), None, "a drained channel source stays drained");
    }

    #[test]
    #[should_panic(expected = "died after")]
    fn channel_source_panics_on_producer_death() {
        let trace = standard_traces()[1].capture(100);
        let (tx, mut src) = ChannelSource::bounded("dying", 200);
        tx.send(trace.insts().to_vec().into_boxed_slice()).unwrap();
        drop(tx); // producer dies 100 insts short of the declared 200
        while src.next_inst().is_some() {}
    }

    #[test]
    fn iter_source_drains_in_order() {
        let trace = standard_traces()[0].capture(50);
        let mut src = IterSource::new(trace.insts().iter().copied());
        for want in trace.insts() {
            assert_eq!(src.next_inst().as_ref(), Some(want));
        }
        assert_eq!(src.next_inst(), None);
    }
}
