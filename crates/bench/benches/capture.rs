//! Capture-pipeline bench: how fast the streamed `Executor → XBT1`
//! encoder captures (host Minsts/s), how little memory it holds while
//! doing so, and how much of a cold sweep cell's capture cost hides
//! behind its own simulation (DESIGN.md §16).
//!
//! Three measurements, written as a `xbc-capture-bench-v1` document
//! with `-- --json PATH` (the artifact the `capture` CI gate diffs
//! against `results/BENCH_capture.json`):
//!
//! * `streamed_minsts_per_sec` / `resident_minsts_per_sec` — capture
//!   throughput of `TraceSpec::capture_streamed` (to a temp file)
//!   versus resident `capture` + `save`. The streamed path encodes the
//!   same bytes, so any large gap is pipeline overhead.
//! * `streamed_peak_bytes` / `resident_peak_bytes` — peak live heap
//!   during each capture, tracked by a byte-counting
//!   `#[global_allocator]`. Streamed stays O(chunk); resident carries
//!   the whole `Vec<DynInst>`.
//! * `overlap_fraction` — from a cold two-trace sweep against a fresh
//!   store with streaming capture on: the fraction of total capture
//!   time that ran concurrently with the leading cells' simulation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use xbc_sim::{FrontendSpec, Sweep};
use xbc_workload::standard_traces;

const CAPTURE_INSTS: usize = 300_000;
const SWEEP_INSTS: usize = 150_000;
const RUNS: usize = 3;

/// Byte-counting allocator (live bytes + high-water mark); peaks are
/// measured as deltas against a baseline taken just before the region.
struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn bump(n: u64) {
    let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                bump((new_size - layout.size()) as u64);
            } else {
                LIVE.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
            }
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Runs `f` `RUNS` times; returns the minimum wall seconds and the
/// maximum observed peak-byte delta (min time because noise only adds,
/// max peak because the bound must hold on every run).
fn measure<F: FnMut()>(mut f: F) -> (f64, u64) {
    f(); // warmup
    let (mut best, mut peak) = (f64::INFINITY, 0u64);
    for _ in 0..RUNS {
        let baseline = LIVE.load(Ordering::Relaxed);
        PEAK.store(baseline, Ordering::Relaxed);
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
        peak = peak.max(PEAK.load(Ordering::Relaxed).saturating_sub(baseline));
    }
    (best, peak)
}

fn report(name: &str, secs: f64, peak: u64, insts: usize) {
    println!("{name:<24} {:>8.1} Minsts/s  peak {:>6} KiB", insts as f64 / secs / 1e6, peak / 1024,);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a PATH").clone());

    let spec = standard_traces()[0].clone();
    println!("capture_pipeline ({CAPTURE_INSTS} insts per run, trace {})", spec.name);

    // Streamed capture to a real temp file — the giga-capture path.
    let tmp = std::env::temp_dir().join(format!("xbc-capture-bench-{}.xbt", std::process::id()));
    let (streamed_secs, streamed_peak) = measure(|| {
        let file = std::fs::File::create(&tmp).unwrap();
        let mut w = std::io::BufWriter::new(file);
        let stats = spec.capture_streamed(CAPTURE_INSTS, &mut w, |_, _| {}).unwrap();
        w.flush().unwrap();
        assert_eq!(stats.insts, CAPTURE_INSTS as u64);
    });
    report("capture_streamed", streamed_secs, streamed_peak, CAPTURE_INSTS);

    // Resident capture + save of the same workload, for the comparison
    // column (and to show what peak the streamed path avoids).
    let (resident_secs, resident_peak) = measure(|| {
        let trace = spec.capture(CAPTURE_INSTS);
        let file = std::fs::File::create(&tmp).unwrap();
        let mut w = std::io::BufWriter::new(file);
        trace.save(&mut w).unwrap();
        w.flush().unwrap();
    });
    report("capture_resident", resident_secs, resident_peak, CAPTURE_INSTS);
    std::fs::remove_file(&tmp).ok();

    // Cold sweep against a fresh store: every trace's first cell leads
    // an overlapped capture+replay, so the bench records how much
    // capture time the overlap actually hides.
    let store_dir =
        std::env::temp_dir().join(format!("xbc-capture-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store = xbc_store::Store::open(&store_dir).expect("open bench store");
    let traces: Vec<_> = standard_traces().into_iter().take(2).collect();
    let mut sweep = Sweep::new(
        traces,
        vec![FrontendSpec::Xbc { total_uops: 8192, ways: 2, promotion: true }],
        SWEEP_INSTS,
    );
    sweep.threads = 2;
    sweep = sweep.with_store(std::sync::Arc::new(store));
    let (rows, bench) = sweep.run_with_bench();
    assert_eq!(rows.len(), 2);
    assert_eq!(bench.overlapped_cells, 2, "cold cells must overlap capture with simulation");
    assert!(bench.overlap_fraction() > 0.0, "overlap must hide a nonzero share of capture");
    println!(
        "cold_sweep_overlap       {} of {} cells overlapped, {:.0}% of capture hidden",
        bench.overlapped_cells,
        bench.total_cells,
        100.0 * bench.overlap_fraction(),
    );
    std::fs::remove_dir_all(&store_dir).ok();

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"schema\": \"xbc-capture-bench-v1\",\n  \
             \"capture_insts\": {CAPTURE_INSTS},\n  \"runs\": {RUNS},\n  \
             \"streamed_minsts_per_sec\": {:.2},\n  \"resident_minsts_per_sec\": {:.2},\n  \
             \"streamed_peak_bytes\": {streamed_peak},\n  \
             \"resident_peak_bytes\": {resident_peak},\n  \
             \"sweep_insts\": {SWEEP_INSTS},\n  \"overlapped_cells\": {},\n  \
             \"overlap_fraction\": {:.3}\n}}\n",
            CAPTURE_INSTS as f64 / streamed_secs / 1e6,
            CAPTURE_INSTS as f64 / resident_secs / 1e6,
            bench.overlapped_cells,
            bench.overlap_fraction(),
        );
        std::fs::write(&path, json).expect("write --json output");
        println!("wrote {path}");
    }
}
