//! `xbcsim inspect` — renders an `xbc-events-v1` JSONL event stream as a
//! human-readable run report: a per-cycle pipeline timeline, occupancy
//! and XB-length histograms, the promotion lifecycle, and the metrics
//! reconciled from the stream (fold of [`Reconciler`], so the numbers
//! shown are — by construction — exactly what the live run counted).
//!
//! The output is fully deterministic for a given event file, which is
//! what the golden-snapshot test under `tests/golden/` pins down.

use xbc_frontend::Reconciler;
use xbc_obs::jsonl::{parse_jsonl, Section};
use xbc_obs::{CycleKind, D2bCause, Event, FillKind, LookupKind};

/// Cycles shown in the timeline strip (8 rows of 64).
const TIMELINE_CYCLES: usize = 512;

/// Width of the longest histogram bar, in `#` characters.
const BAR_WIDTH: usize = 32;

fn bar(count: u64, max: u64) -> String {
    if max == 0 {
        return String::new();
    }
    let w = ((count as u128 * BAR_WIDTH as u128).div_ceil(max as u128)) as usize;
    "#".repeat(w.min(BAR_WIDTH))
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Everything `inspect` derives from one section's event stream that the
/// reconciled [`FrontendMetrics`](xbc_frontend::FrontendMetrics) does not
/// already carry: timeline, histograms, lookup outcomes, lifecycles.
#[derive(Default)]
struct Digest {
    timeline: String,
    d2b: [u64; 8],
    lookups: [(u64, u64); 3], // (hits, total) per LookupKind
    fill_kinds: [u64; 4],
    fill_count: u64,
    /// XB length histogram: bucket i counts fills of 4i+1..=4(i+1) uops.
    len_hist: [u64; 8],
    /// Banks-per-fill histogram (1..=8 banks).
    bank_hist: [u64; 8],
    evicted_lines: u64,
    occ_last: Option<(u32, u32)>,
    occ_peak: (u32, u32),
    bank_conflicts: u64,
}

fn digest(events: &[Event]) -> Digest {
    let mut d = Digest::default();
    let mut cycles = 0usize;
    for e in events {
        match *e {
            Event::Cycle(kind) => {
                if cycles < TIMELINE_CYCLES {
                    d.timeline.push(match kind {
                        CycleKind::Build => 'B',
                        CycleKind::Delivery => 'D',
                        CycleKind::Stall => 'S',
                    });
                }
                cycles += 1;
            }
            Event::SwitchToBuild(cause) => {
                d.d2b[match cause {
                    D2bCause::XbtbMiss => 0,
                    D2bCause::NoPointer => 1,
                    D2bCause::StalePointer => 2,
                    D2bCause::ArrayMiss => 3,
                    D2bCause::Return => 4,
                    D2bCause::Indirect => 5,
                    D2bCause::Misfetch => 6,
                    D2bCause::StructureMiss => 7,
                }] += 1;
            }
            Event::Lookup { what, hit } => {
                let slot = match what {
                    LookupKind::Xbtb => 0,
                    LookupKind::Xibtb => 1,
                    LookupKind::Xrsb => 2,
                };
                d.lookups[slot].0 += u64::from(hit);
                d.lookups[slot].1 += 1;
            }
            Event::Fill { kind, uops, banks } => {
                d.fill_kinds[match kind {
                    FillKind::Fresh => 0,
                    FillKind::Contained => 1,
                    FillKind::Extended => 2,
                    FillKind::Complex => 3,
                }] += 1;
                d.fill_count += 1;
                let bucket = ((uops.max(1) as usize - 1) / 4).min(7);
                d.len_hist[bucket] += 1;
                if banks >= 1 {
                    d.bank_hist[(banks as usize - 1).min(7)] += 1;
                }
            }
            Event::Eviction { lines } => d.evicted_lines += u64::from(lines),
            Event::Occupancy { lines, uops } => {
                d.occ_last = Some((lines, uops));
                d.occ_peak.0 = d.occ_peak.0.max(lines);
                d.occ_peak.1 = d.occ_peak.1.max(uops);
            }
            Event::BankConflict { .. } => d.bank_conflicts += 1,
            _ => {}
        }
    }
    d
}

fn render_section(out: &mut String, s: &Section) {
    use std::fmt::Write;
    let m = Reconciler::fold(s.events.iter());
    let d = digest(&s.events);

    let _ = writeln!(out, "== {} on {} ==", s.frontend, s.trace);
    let _ = writeln!(
        out,
        "cycles {}  (build {} / delivery {} / stall {})",
        m.cycles, m.build_cycles, m.delivery_cycles, m.stall_cycles
    );
    let _ = writeln!(
        out,
        "uops {}  (structure {} / ic {})  upc {:.3}  miss {:.2}%",
        m.total_uops(),
        m.structure_uops,
        m.ic_uops,
        m.overall_uops_per_cycle(),
        100.0 * m.uop_miss_rate()
    );
    let _ = writeln!(
        out,
        "mispredicts  cond {}  target {}   bank-conflict uops {} ({} conflicts)",
        m.cond_mispredicts, m.target_mispredicts, m.bank_conflict_uops, d.bank_conflicts
    );
    let _ = writeln!(
        out,
        "set searches {} (hits {})   promotions {}  depromotions {}",
        m.set_searches, m.set_search_hits, m.promotions, m.depromotions
    );

    let _ =
        writeln!(out, "timeline (first {} cycles, B/D/S):", TIMELINE_CYCLES.min(m.cycles as usize));
    for row in d.timeline.as_bytes().chunks(64) {
        let _ = writeln!(out, "  {}", std::str::from_utf8(row).expect("ascii timeline"));
    }

    let _ = writeln!(out, "delivery->build switches ({} total):", m.delivery_to_build);
    let labels = [
        ("xbtb_miss", m.d2b_xbtb_miss),
        ("no_pointer", m.d2b_no_pointer),
        ("stale_pointer", m.d2b_stale_pointer),
        ("array_miss", m.d2b_array_miss),
        ("return", m.d2b_return),
        ("indirect", m.d2b_indirect),
        ("misfetch", m.d2b_misfetch),
        ("structure_miss", m.d2b_structure_miss),
    ];
    let max = labels.iter().map(|&(_, n)| n).max().unwrap_or(0);
    for (name, n) in labels {
        if n > 0 {
            let _ = writeln!(out, "  {name:<14} {n:>8}  {}", bar(n, max));
        }
    }
    let _ = writeln!(out, "build->delivery switches: {}", m.build_to_delivery);

    if d.lookups.iter().any(|&(_, t)| t > 0) {
        let _ = writeln!(out, "pointer lookups (hit/total):");
        for (name, (h, t)) in ["xbtb", "xibtb", "xrsb"].iter().zip(d.lookups) {
            if t > 0 {
                let _ = writeln!(out, "  {name:<6} {h:>8}/{t:<8} ({:.1}%)", pct(h, t));
            }
        }
    }

    if d.fill_count > 0 {
        let _ = writeln!(
            out,
            "fills {} (fresh {}, contained {}, extended {}, complex {})  evicted lines {}",
            d.fill_count,
            d.fill_kinds[0],
            d.fill_kinds[1],
            d.fill_kinds[2],
            d.fill_kinds[3],
            d.evicted_lines
        );
        let _ = writeln!(out, "XB length at fill (uops):");
        let max = d.len_hist.iter().copied().max().unwrap_or(0);
        for (i, &n) in d.len_hist.iter().enumerate() {
            if n > 0 {
                let _ =
                    writeln!(out, "  {:>2}-{:<2} {n:>8}  {}", 4 * i + 1, 4 * (i + 1), bar(n, max));
            }
        }
        let _ = writeln!(out, "banks per fill:");
        let max = d.bank_hist.iter().copied().max().unwrap_or(0);
        for (i, &n) in d.bank_hist.iter().enumerate() {
            if n > 0 {
                let _ = writeln!(out, "  {:>2}   {n:>8}  {}", i + 1, bar(n, max));
            }
        }
        if let Some((lines, uops)) = d.occ_last {
            let _ = writeln!(
                out,
                "occupancy: final {lines} lines / {uops} uops, peak {} lines / {} uops",
                d.occ_peak.0, d.occ_peak.1
            );
        }
    }
    out.push('\n');
}

/// Renders an `xbc-events-v1` JSONL event stream (the content of a
/// `--trace-events` file) as a deterministic, human-readable report —
/// one block per `(frontend, trace)` section.
///
/// # Errors
///
/// Returns a line-annotated message when the input is not a valid
/// `xbc-events-v1` stream.
pub fn render_inspect(text: &str) -> Result<String, String> {
    let sections = parse_jsonl(text)?;
    let mut out = String::new();
    for s in &sections {
        render_section(&mut out, s);
    }
    if sections.is_empty() {
        out.push_str("(no event sections)\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_obs::jsonl::write_section;
    use xbc_obs::{Event, MispredictKind, UopSource};

    fn sample() -> String {
        let events = vec![
            Event::Cycle(CycleKind::Build),
            Event::Fill { kind: FillKind::Fresh, uops: 9, banks: 3 },
            Event::Occupancy { lines: 3, uops: 9 },
            Event::SwitchToDelivery,
            Event::Cycle(CycleKind::Build),
            Event::Lookup { what: LookupKind::Xbtb, hit: true },
            Event::Uops { src: UopSource::Structure, n: 8 },
            Event::Cycle(CycleKind::Delivery),
            Event::Mispredict(MispredictKind::Cond),
            Event::SwitchToBuild(D2bCause::NoPointer),
            Event::Cycle(CycleKind::Stall),
        ];
        let mut out = String::new();
        write_section(&mut out, "xbc-4k", "spec.gcc", &events);
        out
    }

    #[test]
    fn renders_reconciled_numbers() {
        let r = render_inspect(&sample()).unwrap();
        assert!(r.contains("== xbc-4k on spec.gcc =="), "{r}");
        assert!(r.contains("cycles 4  (build 2 / delivery 1 / stall 1)"), "{r}");
        assert!(r.contains("BBDS"), "{r}");
        assert!(r.contains("no_pointer"), "{r}");
        assert!(r.contains("fills 1 (fresh 1, contained 0, extended 0, complex 0)"), "{r}");
        assert!(r.contains("occupancy: final 3 lines / 9 uops"), "{r}");
    }

    #[test]
    fn deterministic() {
        let a = render_inspect(&sample()).unwrap();
        let b = render_inspect(&sample()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(render_inspect("{\"nope\":1}\n").is_err());
    }

    #[test]
    fn empty_input_is_empty_report() {
        assert_eq!(render_inspect("").unwrap(), "(no event sections)\n");
    }
}
