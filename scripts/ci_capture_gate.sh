#!/usr/bin/env bash
# CI gate for the streaming capture pipeline (the perf job):
#
#   1. runs the in-tree capture bench, writing the measurements to
#      results/ci_capture.json (schema xbc-capture-bench-v1);
#   2. diffs streamed capture throughput against the committed
#      reference results/BENCH_capture.json, failing if it dropped more
#      than TOL below the reference (speed-ups never fail);
#   3. checks the O(chunk) claim structurally: streamed peak bytes must
#      stay under 2x the committed reference (absolute bytes vary with
#      allocator and libc, so the bound is relative), and far below the
#      resident peak measured in the same run;
#   4. requires the cold-sweep overlap to be live: every cold cell
#      overlapped, hiding a nonzero fraction of capture time.
#
# The bench itself asserts overlap > 0, so step 4 double-checks the
# recorded artifact rather than the process exit alone.
#
# Usage: scripts/ci_capture_gate.sh [TOL]  (fractional slowdown
#                                           tolerance, default 0.25)
set -euo pipefail
cd "$(dirname "$0")/.."
TOL="${1:-0.25}"
REF=results/BENCH_capture.json
OUT=results/ci_capture.json

[ -f "$REF" ] || { echo "missing reference $REF" >&2; exit 1; }
mkdir -p results

cargo bench -p xbc-bench --bench capture -- --json "$PWD/$OUT"

field() { # field NAME FILE -> numeric value
  grep -o "\"$1\": [0-9.]*" "$2" | awk '{print $2}'
}

REF_RATE=$(field streamed_minsts_per_sec "$REF")
CUR_RATE=$(field streamed_minsts_per_sec "$OUT")
REF_PEAK=$(field streamed_peak_bytes "$REF")
CUR_PEAK=$(field streamed_peak_bytes "$OUT")
CUR_RESIDENT_PEAK=$(field resident_peak_bytes "$OUT")
CUR_OVERLAP=$(field overlap_fraction "$OUT")
CUR_OVERLAPPED=$(field overlapped_cells "$OUT")

status=0

FLOOR=$(awk -v r="$REF_RATE" -v t="$TOL" 'BEGIN {printf "%.2f", r * (1 - t)}')
if awk -v c="$CUR_RATE" -v f="$FLOOR" 'BEGIN {exit !(c >= f)}'; then
  echo "capture throughput    ref $REF_RATE Minsts/s  now $CUR_RATE  floor $FLOOR  ok"
else
  echo "capture throughput    ref $REF_RATE Minsts/s  now $CUR_RATE  floor $FLOOR  REGRESSED"
  status=1
fi

PEAK_CEIL=$((REF_PEAK * 2))
if [ "$CUR_PEAK" -le "$PEAK_CEIL" ]; then
  echo "streamed peak bytes   ref $REF_PEAK  now $CUR_PEAK  ceiling $PEAK_CEIL  ok"
else
  echo "streamed peak bytes   ref $REF_PEAK  now $CUR_PEAK  ceiling $PEAK_CEIL  GREW"
  status=1
fi

if [ "$CUR_PEAK" -lt $((CUR_RESIDENT_PEAK / 2)) ]; then
  echo "streamed vs resident  $CUR_PEAK < half of $CUR_RESIDENT_PEAK  ok"
else
  echo "streamed vs resident  $CUR_PEAK not meaningfully below $CUR_RESIDENT_PEAK  FAIL"
  status=1
fi

if [ "$CUR_OVERLAPPED" -gt 0 ] && awk -v o="$CUR_OVERLAP" 'BEGIN {exit !(o > 0)}'; then
  echo "cold-sweep overlap    $CUR_OVERLAPPED cells, fraction $CUR_OVERLAP  ok"
else
  echo "cold-sweep overlap    $CUR_OVERLAPPED cells, fraction $CUR_OVERLAP  FAIL"
  status=1
fi

[ "$status" -eq 0 ] || exit "$status"
echo "OK: streaming capture within ${TOL} of the committed reference"
