//! Oracle replay cursor over a captured trace.
//!
//! The stand-alone frontend methodology (paper §4) replays a fixed committed
//! path. [`OracleStream`] is the cursor the frontend models advance as they
//! deliver uops: it exposes the current instruction, uop-granular progress
//! within it (the 8-uop renamer cap can split an instruction across
//! cycles), and bounded lookahead for fill units.

use xbc_isa::Addr;
use xbc_workload::{DynInst, Trace};

/// A uop-granular cursor over a trace's committed instructions.
///
/// # Examples
///
/// ```
/// use xbc_frontend::OracleStream;
/// use xbc_workload::{ProgramGenerator, Trace, WorkloadProfile};
///
/// let p = ProgramGenerator::new(WorkloadProfile::default(), 3).generate();
/// let t = Trace::capture("t", &p, 3, 100);
/// let mut o = OracleStream::new(&t);
/// let first = o.current().unwrap();
/// o.take_uops(first.inst.uops as usize);
/// assert_eq!(o.inst_index(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct OracleStream<'a> {
    insts: &'a [DynInst],
    pos: usize,
    /// Uops of the current instruction already delivered.
    uop_pos: u8,
    delivered_uops: u64,
}

impl<'a> OracleStream<'a> {
    /// Creates a cursor at the start of `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        OracleStream { insts: trace.insts(), pos: 0, uop_pos: 0, delivered_uops: 0 }
    }

    /// The current (not yet fully delivered) instruction, or `None` at end.
    #[inline]
    pub fn current(&self) -> Option<&'a DynInst> {
        self.insts.get(self.pos)
    }

    /// Looks ahead `k` whole instructions past the current one.
    #[inline]
    pub fn peek(&self, k: usize) -> Option<&'a DynInst> {
        self.insts.get(self.pos + k)
    }

    /// Index of the current instruction.
    #[inline]
    pub fn inst_index(&self) -> usize {
        self.pos
    }

    /// Uops of the current instruction already delivered.
    #[inline]
    pub fn uop_offset(&self) -> u8 {
        self.uop_pos
    }

    /// Total uops delivered so far.
    #[inline]
    pub fn delivered_uops(&self) -> u64 {
        self.delivered_uops
    }

    /// True once every instruction has been fully delivered.
    #[inline]
    pub fn done(&self) -> bool {
        self.pos >= self.insts.len()
    }

    /// Fetch address of the next undelivered work: the current instruction's
    /// IP (partial instructions resume at their own IP — real frontends
    /// refetch the whole instruction, but uop accounting is what matters
    /// here).
    ///
    /// # Panics
    ///
    /// Panics at end of trace.
    #[inline]
    pub fn fetch_ip(&self) -> Addr {
        self.current().expect("fetch_ip at end of trace").inst.ip
    }

    /// Uops of the current instruction not yet delivered (0 at end).
    #[inline]
    pub fn uops_remaining_in_inst(&self) -> usize {
        match self.current() {
            Some(d) => (d.inst.uops - self.uop_pos) as usize,
            None => 0,
        }
    }

    /// Delivers up to `budget` uops of the *current instruction only*.
    /// Returns the number delivered; advances to the next instruction when
    /// the current one completes.
    pub fn take_uops(&mut self, budget: usize) -> usize {
        let Some(d) = self.current() else { return 0 };
        let remaining = (d.inst.uops - self.uop_pos) as usize;
        let n = remaining.min(budget);
        self.uop_pos += n as u8;
        self.delivered_uops += n as u64;
        if self.uop_pos == d.inst.uops {
            self.pos += 1;
            self.uop_pos = 0;
        }
        n
    }

    /// Delivers the rest of the current instruction unconditionally
    /// (convenience for engines that treat instructions atomically).
    pub fn take_inst(&mut self) -> usize {
        self.take_uops(usize::MAX)
    }

    /// Finds the instruction whose **last** uop is the `window_uops`-th
    /// upcoming uop (counting undelivered uops of the current instruction
    /// first). Returns that instruction and the count of *whole*
    /// instructions the window spans past the current one.
    ///
    /// Used by XB-granular frontends: an XB pointer covers `offset` uops,
    /// and the XB's ending branch is the instruction closing that window.
    /// Returns `None` if the trace ends first or the window does not align
    /// with an instruction boundary.
    pub fn window_end(&self, window_uops: usize) -> Option<(&'a DynInst, usize)> {
        let mut remaining = window_uops;
        let mut j = 0usize;
        loop {
            let d = self.insts.get(self.pos + j)?;
            let avail =
                if j == 0 { (d.inst.uops - self.uop_pos) as usize } else { d.inst.uops as usize };
            if remaining <= avail {
                return if remaining == avail { Some((d, j)) } else { None };
            }
            remaining -= avail;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_isa::Inst;
    use xbc_workload::{ProgramBuilder, Trace};

    fn trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x10), 1, 3));
        b.push(Inst::plain(Addr::new(0x11), 1, 2));
        b.push(Inst::new(Addr::new(0x12), 1, 1, xbc_isa::BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        Trace::capture("t", &p, 0, 3)
    }

    #[test]
    fn partial_instruction_delivery() {
        let t = trace();
        let mut o = OracleStream::new(&t);
        assert_eq!(o.take_uops(2), 2);
        assert_eq!(o.inst_index(), 0);
        assert_eq!(o.uop_offset(), 2);
        assert_eq!(o.uops_remaining_in_inst(), 1);
        assert_eq!(o.take_uops(8), 1); // completes inst 0
        assert_eq!(o.inst_index(), 1);
        assert_eq!(o.uop_offset(), 0);
    }

    #[test]
    fn runs_to_completion() {
        let t = trace();
        let mut o = OracleStream::new(&t);
        let mut total = 0;
        while !o.done() {
            total += o.take_inst();
        }
        assert_eq!(total, 6);
        assert_eq!(o.delivered_uops(), 6);
        assert_eq!(o.take_uops(4), 0);
    }

    #[test]
    fn peek_does_not_advance() {
        let t = trace();
        let o = OracleStream::new(&t);
        assert_eq!(o.peek(1).unwrap().inst.ip, Addr::new(0x11));
        assert_eq!(o.inst_index(), 0);
    }

    #[test]
    fn fetch_ip_tracks_current() {
        let t = trace();
        let mut o = OracleStream::new(&t);
        assert_eq!(o.fetch_ip(), Addr::new(0x10));
        o.take_inst();
        assert_eq!(o.fetch_ip(), Addr::new(0x11));
    }

    #[test]
    fn window_end_finds_instruction_boundaries() {
        let t = trace(); // uops per inst: 3, 2, 1
        let o = OracleStream::new(&t);
        // Aligned windows resolve to the closing instruction.
        assert_eq!(o.window_end(3).unwrap().0.inst.ip, Addr::new(0x10));
        assert_eq!(o.window_end(5).unwrap().0.inst.ip, Addr::new(0x11));
        assert_eq!(o.window_end(6).unwrap().0.inst.ip, Addr::new(0x12));
        // Misaligned windows are rejected.
        assert!(o.window_end(2).is_none());
        assert!(o.window_end(4).is_none());
        // Past the end of the trace.
        assert!(o.window_end(7).is_none());
    }

    #[test]
    fn window_end_respects_partial_first_instruction() {
        let t = trace();
        let mut o = OracleStream::new(&t);
        o.take_uops(2); // 1 uop of inst 0 remains
        assert_eq!(o.window_end(1).unwrap().0.inst.ip, Addr::new(0x10));
        assert_eq!(o.window_end(3).unwrap().0.inst.ip, Addr::new(0x11));
        assert!(o.window_end(2).is_none());
    }
}
