//! Fault campaign for the sweep daemon, driven through the
//! `xbc_serve::faults` seam (compiled under the `check` feature):
//! clients vanishing mid-stream, malformed request lines, workers dying
//! inside cells, injected store-lock timeouts, and daemon-side
//! connection drops/truncations. After every fault the daemon must
//! still serve the next request correctly.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use xbc_serve::protocol::SweepRequest;
use xbc_serve::{ping, shutdown, submit, Endpoint, FaultInjector, ServeConfig};
use xbc_sim::{to_json, FrontendSpec};
use xbc_store::Store;
use xbc_workload::standard_traces;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbc-serve-faults-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_until_live(endpoint: &Endpoint) {
    for _ in 0..500 {
        if ping(endpoint).is_ok() {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {endpoint}");
}

fn xbc(total_uops: usize) -> FrontendSpec {
    FrontendSpec::Xbc { total_uops, ways: 2, promotion: true }
}

fn req(names: &[String], frontends: Vec<FrontendSpec>, insts: usize) -> SweepRequest {
    SweepRequest { traces: names.to_vec(), frontends, insts, priority: 0 }
}

#[test]
fn daemon_survives_the_fault_campaign() {
    let dir = scratch_dir("campaign");
    let socket = dir.join("d.sock");
    let endpoint = Endpoint::unix(&socket);
    let store = Arc::new(Store::open(dir.join("cache")).unwrap());
    let faults = Arc::new(FaultInjector::new());

    let traces: Vec<_> = standard_traces().into_iter().take(2).collect();
    let names: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();

    let mut config = ServeConfig::new(endpoint.clone());
    config.threads = 2;
    config.store = Some(Arc::clone(&store));
    config.faults = Some(Arc::clone(&faults));
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    wait_until_live(&endpoint);

    // ── Scenario 1: client disconnects mid-stream ────────────────────
    // A raw client submits a sweep, reads one row, and vanishes. The
    // daemon must drop its remaining cells and keep serving others.
    faults.delay_rows(30); // widen the window so the hangup is mid-stream
    {
        let mut raw = UnixStream::connect(&socket).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // hello
        let wire = xbc_serve::protocol::render_sweep_request(&req(
            &names,
            vec![xbc(8 * 1024), xbc(16 * 1024)],
            5_000,
        ));
        writeln!(raw, "{wire}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"row\""), "first row should stream: {line}");
        // Hang up with rows still in flight.
    }
    faults.reset();
    let healthy = submit(&endpoint, &req(&names, vec![xbc(8 * 1024)], 5_000)).unwrap();
    assert_eq!(healthy.rows.len(), 2, "daemon serves the next client after a mid-stream hangup");

    // ── Scenario 2: truncated request line ───────────────────────────
    // Half a JSON object is a parse error, not a poisoned connection:
    // the same connection must answer the next (valid) request.
    {
        let mut raw = UnixStream::connect(&socket).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // hello
        writeln!(raw, "{{\"type\":\"sweep\",\"traces\":[\"sp").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"error\""), "truncated request gets an error reply: {line}");
        writeln!(raw, "{{\"type\":\"ping\"}}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\""), "connection stays usable after the error: {line}");
    }

    // ── Scenario 3: worker dies once — cell retried exactly once ─────
    faults.kill_next_cells(1);
    let retried = submit(&endpoint, &req(&names[..1], vec![xbc(48 * 1024)], 5_000))
        .expect("one worker death must be absorbed by the retry");
    assert_eq!(retried.rows.len(), 1);
    let sched = retried.sched.as_ref().expect("sched snapshot in done trailer");
    assert_eq!(sched.retried_cells, 1, "the killed cell is retried exactly once");

    // ── Scenario 4: worker dies twice — request fails, daemon lives ──
    faults.kill_next_cells(2);
    let err = submit(&endpoint, &req(&names[..1], vec![xbc(56 * 1024)], 5_000))
        .expect_err("two deaths in one cell exhaust the retry budget");
    assert!(err.contains("worker died"), "failure names the cause: {err}");
    ping(&endpoint).unwrap();
    faults.reset();
    let recovered = submit(&endpoint, &req(&names[..1], vec![xbc(56 * 1024)], 5_000))
        .expect("the same grid succeeds once the fault is cleared");
    assert_eq!(recovered.rows.len(), 1);

    // ── Scenario 5: store lock-acquire timeout ───────────────────────
    // PR 6 semantics: on lock timeout the store proceeds unlocked
    // (advisory locking degrades, correctness holds). A cold sweep
    // under forced timeouts must still produce rows that replay warm.
    xbc_store::test_faults::force_lock_timeout(true);
    let locked_out = submit(&endpoint, &req(&names, vec![xbc(24 * 1024)], 5_000))
        .expect("lock timeouts degrade to unlocked writes, not failures");
    xbc_store::test_faults::force_lock_timeout(false);
    let warm = submit(&endpoint, &req(&names, vec![xbc(24 * 1024)], 5_000)).unwrap();
    assert_eq!(
        to_json(&warm.rows),
        to_json(&locked_out.rows),
        "rows stored under lock timeout replay byte-identically"
    );
    assert_eq!(warm.bench.simulated_cells, 0, "second pass is fully cached");

    // ── Scenario 6: daemon-side connection drop and truncation ───────
    for arm in [
        FaultInjector::drop_connection_after as fn(&FaultInjector, u64),
        FaultInjector::truncate_after,
    ] {
        faults.reset();
        arm(&faults, 1);
        let err = submit(&endpoint, &req(&names, vec![xbc(8 * 1024)], 5_000))
            .expect_err("a severed response stream must surface as a client error");
        assert!(
            err.contains("closed the connection") || err.contains("response"),
            "client reports the severed stream: {err}"
        );
        faults.reset();
        let next = submit(&endpoint, &req(&names, vec![xbc(8 * 1024)], 5_000)).unwrap();
        assert_eq!(next.rows.len(), 2, "daemon serves the next request after severing one");
    }

    shutdown(&endpoint).unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
