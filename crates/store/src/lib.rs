//! # xbc-store — content-addressed trace & result store
//!
//! The paper's methodology is trace-driven: capture a committed
//! instruction stream *once*, replay it through every frontend (§4).
//! This crate makes "once" literal across process boundaries. It is a
//! two-layer on-disk artifact cache:
//!
//! * **Trace store** — captured [`Trace`]s in the compact `XBT1` binary
//!   encoding (varint deltas, CRC32 trailer; see `xbc_workload::codec`),
//!   keyed by a content hash of `(TraceSpec, insts, format_version)`.
//!   Files are written atomically (tmp + rename) so concurrent sweeps
//!   never observe a half-written trace.
//! * **Result cache** — opaque result blobs (the sim layer stores sweep
//!   `Row`s as JSON) keyed by a caller-composed string that includes the
//!   trace identity, the frontend configuration, the instruction budget
//!   and a code-version stamp. Re-running any figure binary with
//!   unchanged parameters is a pure cache hit: zero captures, zero
//!   simulations.
//!
//! Corruption — a flipped bit, a truncated file, a stale format version —
//! degrades gracefully: the store logs the problem to stderr, deletes the
//! entry, and reports a miss so the caller regenerates. It never panics
//! on bad cache contents.
//!
//! # Examples
//!
//! ```
//! use xbc_store::Store;
//! use xbc_workload::standard_traces;
//!
//! let dir = std::env::temp_dir().join(format!("xbc-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir).unwrap();
//! let spec = &standard_traces()[0];
//! let first = store.get_or_capture(spec, 2_000);   // capture + store
//! let second = store.get_or_capture(spec, 2_000);  // pure disk hit
//! assert_eq!(first.insts(), second.insts());
//! assert_eq!(store.stats().trace_hits, 1);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use xbc_workload::codec::{crc32, FORMAT_VERSION};
use xbc_workload::{Trace, TraceSpec};

/// Magic of result-cache entries.
const RESULT_MAGIC: [u8; 4] = *b"XBR1";

/// FNV-1a 64-bit hash — the store's content-addressing primitive.
/// Stable by construction (unlike `DefaultHasher`, whose algorithm is
/// explicitly unspecified across releases), so cache keys survive
/// toolchain upgrades.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Counter snapshot of one [`Store`]'s activity (see [`Store::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Trace loads served from disk.
    pub trace_hits: u64,
    /// Trace loads that missed (no entry, or a corrupt entry deleted).
    pub trace_misses: u64,
    /// Result loads served from disk.
    pub result_hits: u64,
    /// Result loads that missed.
    pub result_misses: u64,
    /// Bytes read from cache files.
    pub bytes_read: u64,
    /// Bytes written to cache files.
    pub bytes_written: u64,
    /// Corrupt entries detected and deleted.
    pub corrupt_entries: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "traces {}/{} hit, results {}/{} hit, {} KiB read, {} KiB written{}",
            self.trace_hits,
            self.trace_hits + self.trace_misses,
            self.result_hits,
            self.result_hits + self.result_misses,
            self.bytes_read / 1024,
            self.bytes_written / 1024,
            if self.corrupt_entries > 0 {
                format!(", {} corrupt entries regenerated", self.corrupt_entries)
            } else {
                String::new()
            }
        )
    }
}

#[derive(Default)]
struct Counters {
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    corrupt_entries: AtomicU64,
}

/// A content-addressed artifact store rooted at one directory
/// (`<root>/traces/*.xbt`, `<root>/results/*.xbr`).
///
/// All methods take `&self`; the store is safe to share across sweep
/// worker threads (stats are atomic, writes are tmp + rename).
pub struct Store {
    root: PathBuf,
    c: Counters,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store").field("root", &self.root).finish()
    }
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory tree cannot be created.
    pub fn open<P: AsRef<Path>>(dir: P) -> std::io::Result<Store> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join("traces"))?;
        fs::create_dir_all(root.join("results"))?;
        Ok(Store { root, c: Counters::default() })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of hit/miss/byte counters since `open`.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            trace_hits: self.c.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.c.trace_misses.load(Ordering::Relaxed),
            result_hits: self.c.result_hits.load(Ordering::Relaxed),
            result_misses: self.c.result_misses.load(Ordering::Relaxed),
            bytes_read: self.c.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.c.bytes_written.load(Ordering::Relaxed),
            corrupt_entries: self.c.corrupt_entries.load(Ordering::Relaxed),
        }
    }

    /// The identity of a `(spec, insts)` capture: every field that
    /// determines the committed stream, plus the on-disk format version
    /// so format bumps invalidate rather than misdecode.
    fn trace_key(spec: &TraceSpec, insts: usize) -> u64 {
        let canon = format!(
            "trace|name={}|suite={}|seed={}|functions={}|insts={insts}|fmt={FORMAT_VERSION}",
            spec.name, spec.suite, spec.seed, spec.functions
        );
        fnv1a64(canon.as_bytes())
    }

    fn trace_path(&self, spec: &TraceSpec, insts: usize) -> PathBuf {
        let key = Self::trace_key(spec, insts);
        self.root.join("traces").join(format!("{}-{key:016x}.xbt", spec.name))
    }

    /// Loads a cached trace, or returns `None` on a miss. A corrupt or
    /// mismatched entry is logged, deleted and reported as a miss.
    pub fn load_trace(&self, spec: &TraceSpec, insts: usize) -> Option<Trace> {
        let path = self.trace_path(spec, insts);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(_) => {
                self.c.trace_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let size = file.metadata().map(|m| m.len()).unwrap_or(0);
        match Trace::load(BufReader::new(file)) {
            Ok(trace) if trace.name() == spec.name && trace.inst_count() == insts => {
                self.c.trace_hits.fetch_add(1, Ordering::Relaxed);
                self.c.bytes_read.fetch_add(size, Ordering::Relaxed);
                Some(trace)
            }
            Ok(trace) => {
                self.evict(
                    &path,
                    &format!(
                        "entry is {} x {} insts, wanted {} x {insts} insts",
                        trace.name(),
                        trace.inst_count(),
                        spec.name
                    ),
                );
                None
            }
            Err(e) => {
                self.evict(&path, &e.to_string());
                None
            }
        }
    }

    /// Writes a captured trace atomically (tmp + rename). A failure to
    /// persist is logged and swallowed: the cache is an accelerator, not
    /// a correctness dependency.
    pub fn store_trace(&self, spec: &TraceSpec, insts: usize, trace: &Trace) {
        let path = self.trace_path(spec, insts);
        match self.write_atomic(&path, |w| trace.save(w).map_err(std::io::Error::other)) {
            Ok(bytes) => {
                self.c.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            }
            Err(e) => eprintln!("[xbc-store] failed to store trace {}: {e}", path.display()),
        }
    }

    /// Loads the trace from the store or captures it fresh (storing the
    /// capture for next time). The returned trace is identical either
    /// way — that is the store's whole contract.
    pub fn get_or_capture(&self, spec: &TraceSpec, insts: usize) -> Trace {
        if let Some(t) = self.load_trace(spec, insts) {
            return t;
        }
        let t = spec.capture(insts);
        self.store_trace(spec, insts, &t);
        t
    }

    fn result_path(&self, key: &str) -> PathBuf {
        self.root.join("results").join(format!("{:016x}.xbr", fnv1a64(key.as_bytes())))
    }

    /// Loads a cached result blob for `key`, or `None` on a miss.
    /// Entries failing the CRC check are logged, deleted and reported as
    /// misses.
    pub fn load_result(&self, key: &str) -> Option<String> {
        let path = self.result_path(key);
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(_) => {
                self.c.result_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let mut raw = Vec::new();
        if let Err(e) = file.read_to_end(&mut raw) {
            self.evict(&path, &format!("read failed: {e}"));
            return None;
        }
        match Self::parse_result(&raw, key) {
            Ok(body) => {
                self.c.result_hits.fetch_add(1, Ordering::Relaxed);
                self.c.bytes_read.fetch_add(raw.len() as u64, Ordering::Relaxed);
                Some(body)
            }
            Err(why) => {
                self.evict(&path, &why);
                None
            }
        }
    }

    /// Parses and validates a result-cache entry: magic, CRC over the
    /// key + body, and the full key string (so hash collisions read as
    /// misses, not as wrong results).
    fn parse_result(raw: &[u8], key: &str) -> Result<String, String> {
        if raw.len() < 12 || raw[..4] != RESULT_MAGIC {
            return Err("bad result magic".into());
        }
        let stored_crc = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
        let key_len = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes")) as usize;
        let rest = &raw[12..];
        if key_len > rest.len() {
            return Err("truncated result entry".into());
        }
        let computed = crc32(rest);
        if computed != stored_crc {
            return Err(format!(
                "CRC mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
            ));
        }
        let (stored_key, body) = rest.split_at(key_len);
        if stored_key != key.as_bytes() {
            return Err("key collision (different key hashed to this entry)".into());
        }
        String::from_utf8(body.to_vec()).map_err(|_| "result body is not UTF-8".into())
    }

    /// Stores a result blob under `key`, atomically. Failures are logged
    /// and swallowed.
    pub fn store_result(&self, key: &str, body: &str) {
        let path = self.result_path(key);
        let mut payload = Vec::with_capacity(key.len() + body.len());
        payload.extend_from_slice(key.as_bytes());
        payload.extend_from_slice(body.as_bytes());
        let crc = crc32(&payload);
        let write = |w: &mut dyn Write| -> std::io::Result<()> {
            w.write_all(&RESULT_MAGIC)?;
            w.write_all(&crc.to_le_bytes())?;
            w.write_all(&(key.len() as u32).to_le_bytes())?;
            w.write_all(&payload)
        };
        match self.write_atomic(&path, write) {
            Ok(bytes) => {
                self.c.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            }
            Err(e) => eprintln!("[xbc-store] failed to store result {}: {e}", path.display()),
        }
    }

    /// Deletes the result entry for `key` and counts it as corrupt.
    ///
    /// For callers that loaded a CRC-valid body ([`Store::load_result`]
    /// returned it, counting a hit) but found it undecodable at a higher
    /// layer — e.g. a sweep row written by an older schema. Eviction
    /// takes the same log + delete + `corrupt_entries` path as any other
    /// bad entry (plus a result miss, since the caller is about to
    /// recompute), so the stale file stops costing a recompute on every
    /// subsequent run.
    pub fn evict_result(&self, key: &str, why: &str) {
        self.evict(&self.result_path(key), why);
    }

    /// Writes `path` via a unique same-directory temp file and a final
    /// rename, so readers only ever see complete files. Returns bytes
    /// written.
    fn write_atomic<F>(&self, path: &Path, write: F) -> std::io::Result<u64>
    where
        F: FnOnce(&mut dyn Write) -> std::io::Result<()>,
    {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = path.parent().expect("store paths have a parent");
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
            path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
        ));
        let result = (|| {
            let file = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            write(&mut w)?;
            w.flush()?;
            let bytes = w.get_ref().metadata()?.len();
            drop(w);
            fs::rename(&tmp, path)?;
            Ok(bytes)
        })();
        if result.is_err() {
            fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Logs and deletes a bad entry, counting it as corrupt + miss.
    fn evict(&self, path: &Path, why: &str) {
        eprintln!("[xbc-store] discarding {}: {why}; regenerating", path.display());
        fs::remove_file(path).ok();
        self.c.corrupt_entries.fetch_add(1, Ordering::Relaxed);
        if path.extension().is_some_and(|e| e == "xbt") {
            self.c.trace_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.c.result_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_workload::standard_traces;

    /// Unique per-test scratch directory (removed on drop).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir =
                std::env::temp_dir().join(format!("xbc-store-test-{}-{tag}", std::process::id()));
            fs::remove_dir_all(&dir).ok();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn trace_roundtrip_and_hit_accounting() {
        let s = Scratch::new("roundtrip");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[0];
        let fresh = store.get_or_capture(spec, 1_500);
        assert_eq!(store.stats().trace_misses, 1);
        assert!(store.stats().bytes_written > 0);
        let cached = store.get_or_capture(spec, 1_500);
        assert_eq!(store.stats().trace_hits, 1);
        assert_eq!(fresh.insts(), cached.insts());
        assert_eq!(fresh.uop_count(), cached.uop_count());
        assert_eq!(fresh.exec_stats(), cached.exec_stats());
    }

    #[test]
    fn different_insts_are_different_entries() {
        let s = Scratch::new("insts");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[1];
        store.get_or_capture(spec, 1_000);
        store.get_or_capture(spec, 2_000);
        assert_eq!(store.stats().trace_misses, 2);
        assert_eq!(fs::read_dir(s.0.join("traces")).unwrap().count(), 2);
    }

    #[test]
    fn corrupt_trace_is_evicted_and_regenerated() {
        let s = Scratch::new("corrupt");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[2];
        let fresh = store.get_or_capture(spec, 1_200);
        // Flip a byte in the middle of the single cache file.
        let path = fs::read_dir(s.0.join("traces")).unwrap().next().unwrap().unwrap().path();
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x5A;
        fs::write(&path, &raw).unwrap();
        // The corrupt entry must read as a miss and be deleted...
        let again = store.get_or_capture(spec, 1_200);
        assert_eq!(again.insts(), fresh.insts());
        assert_eq!(store.stats().corrupt_entries, 1);
        // ...and the regenerated file must now hit.
        assert!(store.load_trace(spec, 1_200).is_some());
    }

    #[test]
    fn truncated_trace_is_evicted() {
        let s = Scratch::new("trunc");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[3];
        store.get_or_capture(spec, 1_000);
        let path = fs::read_dir(s.0.join("traces")).unwrap().next().unwrap().unwrap().path();
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() / 3]).unwrap();
        assert!(store.load_trace(spec, 1_000).is_none());
        assert!(!path.exists(), "truncated entry must be deleted");
        assert_eq!(store.stats().corrupt_entries, 1);
    }

    #[test]
    fn result_cache_roundtrip() {
        let s = Scratch::new("result");
        let store = Store::open(&s.0).unwrap();
        let key = "row|trace=spec.gcc|fe=xbc-32k|insts=1000|code=1";
        assert!(store.load_result(key).is_none());
        store.store_result(key, "{\"miss_rate\":0.25}");
        assert_eq!(store.load_result(key).as_deref(), Some("{\"miss_rate\":0.25}"));
        let st = store.stats();
        assert_eq!((st.result_hits, st.result_misses), (1, 1));
    }

    #[test]
    fn corrupt_result_is_evicted() {
        let s = Scratch::new("result-corrupt");
        let store = Store::open(&s.0).unwrap();
        store.store_result("k", "body-bytes");
        let path = fs::read_dir(s.0.join("results")).unwrap().next().unwrap().unwrap().path();
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 1;
        fs::write(&path, &raw).unwrap();
        assert!(store.load_result("k").is_none());
        assert!(!path.exists());
        // Different key, same store: independent entry.
        store.store_result("k2", "other");
        assert_eq!(store.load_result("k2").as_deref(), Some("other"));
    }

    #[test]
    fn evict_result_removes_stale_entry() {
        let s = Scratch::new("evict-result");
        let store = Store::open(&s.0).unwrap();
        store.store_result("k", "stale-schema-body");
        assert!(store.load_result("k").is_some());
        // A higher layer found the (CRC-valid) body undecodable.
        store.evict_result("k", "undecodable at the sweep layer");
        assert_eq!(fs::read_dir(s.0.join("results")).unwrap().count(), 0);
        assert_eq!(store.stats().corrupt_entries, 1);
        assert!(store.load_result("k").is_none());
    }

    #[test]
    fn keys_are_stable() {
        // The content address must never change between runs or builds:
        // pin the FNV-1a primitive with a known vector.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let s = Scratch::new("threads");
        let store = Store::open(&s.0).unwrap();
        let specs = standard_traces();
        std::thread::scope(|scope| {
            for spec in specs.iter().take(4) {
                scope.spawn(|| {
                    let t = store.get_or_capture(spec, 800);
                    assert_eq!(t.inst_count(), 800);
                });
            }
        });
        assert_eq!(store.stats().trace_misses, 4);
    }
}
