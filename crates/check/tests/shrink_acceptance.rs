//! End-to-end acceptance for the fuzz → detect → shrink → replay loop.
//!
//! Injects a divergence (one corrupted committed instruction), verifies the
//! differential harness reports it with useful context, shrinks it to a
//! tiny case, round-trips the reproducer through JSON, and replays it
//! deterministically — the full life of a fuzz finding, in one test.

use xbc_check::{run_case, shrink, Failure, FuzzCase, MIN_INSTS};

#[test]
fn injected_divergence_is_caught_shrunk_and_replayable() {
    let case = FuzzCase { corrupt: Some(98_765), ..FuzzCase::from_seed(0xD1FF) };

    // 1. The harness catches the injected corruption.
    let failure = run_case(&case).expect_err("corrupted stream must fail");
    if let Failure::Divergence(d) = &failure {
        // The report carries actionable context.
        assert!(!d.frontend.is_empty());
        assert!(!d.window.is_empty(), "divergence should carry a context window");
    }

    // 2. Shrinking reaches a small, still-failing case.
    let shrunk = shrink(&case, 300);
    assert!(shrunk.case.insts <= MIN_INSTS, "shrunk to {} insts", shrunk.case.insts);
    assert!(shrunk.case.functions <= 10, "shrunk to {} functions", shrunk.case.functions);
    assert!(shrunk.attempts > 0);

    // 3. The reproducer survives a JSON round-trip byte-for-byte.
    let json = shrunk.case.to_json();
    let back = FuzzCase::from_json(&json).expect("reproducer must parse");
    assert_eq!(back, shrunk.case);
    assert_eq!(back.to_json(), json);

    // 4. Replay is deterministic: same failure classification both times.
    let a = run_case(&back).expect_err("replay 1 must fail");
    let b = run_case(&back).expect_err("replay 2 must fail");
    assert_eq!(a.to_string(), b.to_string(), "replays must be identical");
}
