#!/usr/bin/env bash
# CI gate for the observability layer (xbc-obs):
#
#   1. runs one traced sweep, writing the cycle-level event stream to
#      results/ci_events.jsonl with --check on, so every cell asserts
#      Reconciler::fold(events) == FrontendMetrics as it simulates;
#   2. validates the file against the xbc-events-v1 schema by rendering
#      it with `xbcsim inspect` (the parser rejects any malformed line,
#      unknown event tag, or wrong schema header);
#   3. sanity-checks the section count: one header per (trace x
#      frontend) cell.
#
# CI uploads results/ci_events.jsonl as an artifact so a failing run's
# full event stream can be replayed locally with `xbcsim inspect`.
#
# Usage: scripts/ci_obs_gate.sh [INSTS] (default 20000)
set -euo pipefail
cd "$(dirname "$0")/.."
INSTS="${1:-20000}"
TRACES="spec.gcc,games.quake"

cargo build --release -p xbc-serve
mkdir -p results
B=target/release

# 2 traces x (ic, tc@8k, xbc@8k): small enough for CI, covers the IC
# build path, a non-XBC structure, and the full XBC event vocabulary.
"$B/xbcsim" sweep --frontends ic,tc,xbc --sizes 8192 --traces "$TRACES" \
  --inst "$INSTS" --threads 0 --cache off --check on \
  --trace-events results/ci_events.jsonl > /dev/null

"$B/xbcsim" inspect --events results/ci_events.jsonl > results/ci_events_report.txt

SECTIONS=$(grep -c '"schema":"xbc-events-v1"' results/ci_events.jsonl)
echo "OK: $(wc -l < results/ci_events.jsonl) event lines in $SECTIONS sections, all reconciled"
head -n 40 results/ci_events_report.txt
