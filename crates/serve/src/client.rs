//! The client side of the `xbc-serve-v1` protocol (`xbcsim submit`).

use crate::protocol::{self, SweepRequest};
use crate::scheduler::SchedStats;
use crate::transport::{self, Conn, Endpoint};
use std::io::{BufRead, BufReader, Write};
use xbc_sim::json::Json;
use xbc_sim::{Row, SweepBench};
use xbc_store::StoreStats;

/// Everything one sweep submission returns.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// Result rows in deterministic trace-major, frontend-minor order —
    /// the same order (and, for a warm store, the same bytes once
    /// re-encoded) as a one-shot `Sweep` of the grid.
    pub rows: Vec<Row>,
    /// The daemon's per-request scheduler accounting.
    pub bench: SweepBench,
    /// Store-counter delta over the request (`None` when the daemon
    /// runs uncached). The store is shared across clients, so this
    /// includes concurrent requests' activity.
    pub store: Option<StoreStats>,
    /// The daemon's queue snapshot at completion time (`None` from
    /// pre-scheduler daemons).
    pub sched: Option<SchedStats>,
}

/// Opens a connection and consumes the server hello. A daemon at its
/// connection cap answers with an `error` line instead of a hello; that
/// message comes back as the `Err`.
fn connect(endpoint: &Endpoint) -> Result<(BufReader<Conn>, Conn), String> {
    let conn = transport::connect(endpoint)
        .map_err(|e| format!("connect {endpoint}: {e} (is the daemon running?)"))?;
    let out = conn.try_clone().map_err(|e| format!("clone connection: {e}"))?;
    let mut reader = BufReader::new(conn);
    let mut hello = String::new();
    reader.read_line(&mut hello).map_err(|e| format!("read hello: {e}"))?;
    let j = Json::parse(hello.trim()).map_err(|e| format!("malformed hello: {e}"))?;
    if j.get("type").and_then(Json::as_str) == Some("error") {
        return Err(j
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("server refused the connection")
            .to_owned());
    }
    match j.get("schema").and_then(Json::as_str) {
        Some(protocol::SCHEMA) => Ok((reader, out)),
        Some(other) => Err(format!("server speaks {other:?}, expected {:?}", protocol::SCHEMA)),
        None => Err("server hello carries no schema".into()),
    }
}

fn send_line(out: &mut Conn, line: &str) -> Result<(), String> {
    writeln!(out, "{line}").and_then(|()| out.flush()).map_err(|e| format!("send request: {e}"))
}

fn read_response_line(reader: &mut BufReader<Conn>) -> Result<Json, String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| format!("read response: {e}"))?;
    if n == 0 {
        return Err("server closed the connection mid-response".into());
    }
    Json::parse(line.trim()).map_err(|e| format!("malformed response line: {e}"))
}

/// Liveness probe: sends `ping`, expects `pong`.
///
/// # Errors
///
/// Returns a message describing the connection or protocol failure.
pub fn ping(endpoint: &Endpoint) -> Result<(), String> {
    let (mut reader, mut out) = connect(endpoint)?;
    send_line(&mut out, "{\"type\":\"ping\"}")?;
    let j = read_response_line(&mut reader)?;
    match j.get("type").and_then(Json::as_str) {
        Some("pong") => Ok(()),
        other => Err(format!("expected pong, got {other:?}")),
    }
}

/// Asks the daemon to shut down gracefully. Returns the number of cells
/// (queued or running) the daemon reported it would drain — active
/// sweeps keep streaming until their rows are out.
///
/// # Errors
///
/// Returns a message describing the connection or protocol failure.
pub fn shutdown(endpoint: &Endpoint) -> Result<u64, String> {
    let (mut reader, mut out) = connect(endpoint)?;
    send_line(&mut out, "{\"type\":\"shutdown\"}")?;
    let j = read_response_line(&mut reader)?;
    match j.get("type").and_then(Json::as_str) {
        Some("bye") => Ok(j.get("draining").and_then(Json::as_u64).unwrap_or(0)),
        other => Err(format!("expected bye, got {other:?}")),
    }
}

/// Submits a sweep grid and collects the full response: rows stream in
/// index order (the protocol guarantees it; this client enforces it)
/// followed by the `done` trailer.
///
/// # Errors
///
/// Returns the server's `error` message, or a description of any
/// connection/protocol failure.
pub fn submit(endpoint: &Endpoint, req: &SweepRequest) -> Result<SubmitOutcome, String> {
    let (mut reader, mut out) = connect(endpoint)?;
    send_line(&mut out, &protocol::render_sweep_request(req))?;
    let mut rows: Vec<Row> = Vec::new();
    loop {
        let j = read_response_line(&mut reader)?;
        match j.get("type").and_then(Json::as_str) {
            Some("row") => {
                let index =
                    j.get("index").and_then(Json::as_usize).ok_or("row line missing index")?;
                if index != rows.len() {
                    return Err(format!(
                        "rows out of order: got index {index}, expected {}",
                        rows.len()
                    ));
                }
                let row = Row::from_json(j.get("row").ok_or("row line missing row")?)?;
                rows.push(row);
            }
            Some("done") => {
                let declared =
                    j.get("rows").and_then(Json::as_usize).ok_or("done line missing rows")?;
                if declared != rows.len() {
                    return Err(format!(
                        "done declares {declared} rows but {} arrived",
                        rows.len()
                    ));
                }
                let bench =
                    protocol::bench_from_json(j.get("bench").ok_or("done line missing bench")?)?;
                let store = match j.get("store") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(protocol::stats_from_json(s)?),
                };
                let sched = match j.get("sched") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(protocol::sched_from_json(s)?),
                };
                return Ok(SubmitOutcome { rows, bench, store, sched });
            }
            Some("error") => {
                return Err(j
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_owned());
            }
            other => return Err(format!("unexpected response type {other:?}")),
        }
    }
}
