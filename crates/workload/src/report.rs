//! Workload characterization reports.
//!
//! The whole substitution argument (DESIGN.md §3) rests on the synthetic
//! traces exhibiting the properties the paper's results depend on. This
//! module *measures* those properties on any trace so they can be
//! asserted in tests and inspected in `workload_explorer`:
//!
//! * dynamic branch mix and taken rate,
//! * conditional predictability under the paper's own 16-bit gshare,
//! * indirect-target locality (last-target hit rate),
//! * dynamic code footprint,
//! * control-flow fan-in (distinct sources per join target — the property
//!   that creates trace-cache redundancy and complex XBs).

use crate::stats::{block_length_stats, BlockLengthStats};
use crate::trace::Trace;
use std::collections::{HashMap, HashSet};
use xbc_isa::BranchKind;
use xbc_predict::{Gshare, GshareConfig};

/// Dynamic frequencies of the control-flow classes, as fractions of all
/// instructions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BranchMix {
    /// Conditional direct branches.
    pub cond: f64,
    /// Unconditional direct jumps.
    pub jmp: f64,
    /// Direct calls.
    pub call: f64,
    /// Returns.
    pub ret: f64,
    /// Indirect jumps.
    pub ijmp: f64,
    /// Indirect calls.
    pub icall: f64,
}

impl BranchMix {
    /// Fraction of instructions that are any kind of branch.
    pub fn total(&self) -> f64 {
        self.cond + self.jmp + self.call + self.ret + self.ijmp + self.icall
    }
}

/// A full characterization of one trace.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Dynamic instructions analyzed.
    pub insts: usize,
    /// Dynamic uops.
    pub uops: u64,
    /// Dynamic branch mix.
    pub mix: BranchMix,
    /// Fraction of conditional branches that were taken.
    pub cond_taken_rate: f64,
    /// Accuracy of a fresh 16-bit gshare replaying the trace (the paper's
    /// predictor, §4).
    pub gshare_accuracy: f64,
    /// Fraction of indirect transfers (jump/call) repeating their previous
    /// target — dispatch burstiness.
    pub indirect_repeat_rate: f64,
    /// Dynamic code footprint in uops (distinct instructions touched).
    pub footprint_uops: usize,
    /// Mean distinct predecessor blocks per join target (fan-in ≥ 1; > 1
    /// means shared suffixes exist).
    pub mean_fanin: f64,
    /// Fraction of reached targets with fan-in ≥ 2.
    pub join_fraction: f64,
    /// Figure-1 block length statistics.
    pub blocks: BlockLengthStats,
}

/// Analyzes a trace.
///
/// # Examples
///
/// ```
/// use xbc_workload::{analyze, standard_traces};
///
/// let report = analyze(&standard_traces()[0].capture(20_000));
/// assert!(report.mix.cond > 0.05, "integer code is branchy");
/// assert!(report.gshare_accuracy > 0.6, "branches are predictable, not random");
/// assert!(report.mean_fanin >= 1.0);
/// ```
pub fn analyze(trace: &Trace) -> WorkloadReport {
    let mut counts = [0usize; 7];
    let mut cond_taken = 0usize;
    let mut gshare = Gshare::new(GshareConfig::default());
    let mut last_target: HashMap<u64, u64> = HashMap::new();
    let mut indirect_total = 0usize;
    let mut indirect_repeat = 0usize;
    let mut seen = HashSet::new();
    let mut footprint_uops = 0usize;
    // Fan-in: distinct source (branch) IPs per entered target IP, counted
    // across taken control transfers.
    let mut fanin: HashMap<u64, HashSet<u64>> = HashMap::new();

    for d in trace.iter() {
        let idx = match d.inst.branch {
            BranchKind::None => 0,
            BranchKind::CondDirect => 1,
            BranchKind::UncondDirect => 2,
            BranchKind::CallDirect => 3,
            BranchKind::Return => 4,
            BranchKind::IndirectJump => 5,
            BranchKind::IndirectCall => 6,
        };
        counts[idx] += 1;
        if seen.insert(d.inst.ip.raw()) {
            footprint_uops += d.inst.uops as usize;
        }
        match d.inst.branch {
            BranchKind::CondDirect => {
                if d.taken {
                    cond_taken += 1;
                }
                gshare.update(d.inst.ip, d.taken);
            }
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                indirect_total += 1;
                let prev = last_target.insert(d.inst.ip.raw(), d.next_ip.raw());
                if prev == Some(d.next_ip.raw()) {
                    indirect_repeat += 1;
                }
            }
            _ => {}
        }
        if d.inst.branch.is_branch() && d.taken {
            fanin.entry(d.next_ip.raw()).or_default().insert(d.inst.ip.raw());
        }
    }

    let n = trace.inst_count() as f64;
    let mix = BranchMix {
        cond: counts[1] as f64 / n,
        jmp: counts[2] as f64 / n,
        call: counts[3] as f64 / n,
        ret: counts[4] as f64 / n,
        ijmp: counts[5] as f64 / n,
        icall: counts[6] as f64 / n,
    };
    let joins = fanin.values().filter(|s| s.len() >= 2).count();
    let mean_fanin = if fanin.is_empty() {
        0.0
    } else {
        fanin.values().map(|s| s.len() as f64).sum::<f64>() / fanin.len() as f64
    };
    WorkloadReport {
        insts: trace.inst_count(),
        uops: trace.uop_count(),
        mix,
        cond_taken_rate: if counts[1] == 0 { 0.0 } else { cond_taken as f64 / counts[1] as f64 },
        gshare_accuracy: gshare.stats().accuracy(),
        indirect_repeat_rate: if indirect_total == 0 {
            0.0
        } else {
            indirect_repeat as f64 / indirect_total as f64
        },
        footprint_uops,
        mean_fanin,
        join_fraction: if fanin.is_empty() { 0.0 } else { joins as f64 / fanin.len() as f64 },
        blocks: block_length_stats(trace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_traces;

    #[test]
    fn standard_traces_have_paper_class_properties() {
        // One representative per suite; bands chosen to catch calibration
        // drift, not to pin exact values.
        for (i, name) in [(0usize, "spec"), (8, "sysmark"), (16, "games")] {
            let r = analyze(&standard_traces()[i].capture(60_000));
            assert!(
                (0.05..0.30).contains(&r.mix.cond),
                "{name}: conditional fraction {}",
                r.mix.cond
            );
            assert!(r.mix.total() < 0.5, "{name}: branch density {}", r.mix.total());
            // Synthetic branches are iid, which maximizes global-history
            // entropy: gshare's table warms far more slowly than on real
            // correlated code, so accuracy is horizon-limited (it climbs
            // toward the mixture's E[max(p,1-p)] ≈ 0.90 over millions of
            // instructions). Band accordingly at this test's short horizon.
            assert!(
                (0.60..0.97).contains(&r.gshare_accuracy),
                "{name}: gshare accuracy {}",
                r.gshare_accuracy
            );
            // Cold first-visits count against the repeat rate, so short
            // horizons under-report burstiness (it converges to the
            // configured stickiness over longer runs).
            assert!(
                r.indirect_repeat_rate > 0.4,
                "{name}: dispatch must be bursty, got {}",
                r.indirect_repeat_rate
            );
            assert!(r.mean_fanin >= 1.0, "{name}: fan-in {}", r.mean_fanin);
            assert!(
                r.join_fraction > 0.02,
                "{name}: joins must exist for redundancy to matter: {}",
                r.join_fraction
            );
            assert!(r.footprint_uops > 2_000, "{name}: footprint {}", r.footprint_uops);
        }
    }

    #[test]
    fn suites_differ_in_footprint() {
        let spec = analyze(&standard_traces()[0].capture(60_000));
        let sys = analyze(&standard_traces()[8].capture(60_000));
        assert!(
            sys.footprint_uops > spec.footprint_uops,
            "sysmark-like footprints exceed compress-like ones: {} vs {}",
            sys.footprint_uops,
            spec.footprint_uops
        );
    }

    #[test]
    fn report_is_deterministic() {
        let t = standard_traces()[2].capture(10_000);
        let a = analyze(&t);
        let b = analyze(&t);
        assert_eq!(a.gshare_accuracy, b.gshare_accuracy);
        assert_eq!(a.footprint_uops, b.footprint_uops);
        assert_eq!(a.mean_fanin, b.mean_fanin);
    }
}
