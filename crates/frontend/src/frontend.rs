//! The common frontend interface.

use crate::metrics::FrontendMetrics;
use xbc_workload::Trace;

/// A trace-driven frontend model: replays a committed instruction stream
/// and reports how many cycles it took and where the uops came from.
///
/// Implementations in this workspace: [`crate::IcFrontend`] (pure
/// instruction cache), [`crate::UopCacheFrontend`] (decoded cache, paper
/// §2.2), [`crate::TraceCacheFrontend`] (paper §2.3), and the XBC frontend
/// in the `xbc` crate (paper §3).
pub trait Frontend {
    /// Short machine-readable name (used in report tables).
    fn name(&self) -> &str;

    /// Replays the whole trace, returning accumulated metrics.
    ///
    /// A frontend is single-shot per run: internal predictor/cache state
    /// persists across calls, which models a warm restart; create a fresh
    /// instance for an independent run.
    fn run(&mut self, trace: &Trace) -> FrontendMetrics;
}
