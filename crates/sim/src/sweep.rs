//! The sweep engine: runs (trace × frontend-configuration) grids in
//! parallel and collects result rows.
//!
//! Parallelism is **cell-level**: the unit of scheduled work is one
//! `(trace, frontend)` cell pulled from a single shared queue, so a
//! sweep of N configurations over M traces scales to `min(threads, N×M)`
//! busy workers — not `min(threads, M)` as a trace-major scheduler
//! would. Each trace is still captured exactly once per run: the first
//! worker that needs it captures into an `Arc<Trace>` behind a per-trace
//! [`OnceLock`]; workers that reach sibling cells in the meantime block
//! on that lock and then share the capture. Row order stays
//! deterministic (trace-major, frontend-minor) regardless of threading.
//!
//! When a [`Store`] is attached ([`Sweep::with_store`]), the engine is
//! fully cached: each (trace, frontend, insts) cell first consults the
//! result cache, and only cells that miss cost a capture + simulation.
//! A re-run with unchanged parameters performs zero captures and zero
//! simulations — it is a pure replay of cached rows.

use crate::bench::{SweepBench, WorkerStat};
use crate::report::{rows_from_json, Row};
use crate::spec::FrontendSpec;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use xbc_frontend::{Frontend, FrontendMetrics, OracleStream, Reconciler};
use xbc_obs::{jsonl, EventSink, NullSink, VecSink};
use xbc_store::{CaptureOutcome, Store, StreamCapture};
use xbc_workload::{InstSource, Trace, TraceSpec};

/// Bumped whenever simulator semantics change, so stale cached results
/// are invalidated rather than silently replayed.
pub const CODE_VERSION: u32 = 1;

/// The result-cache key of one (trace, frontend, insts) cell: every
/// input that determines the row, plus [`CODE_VERSION`]. Public so
/// tests and tooling can address individual cells (e.g. to forge or
/// evict an entry).
pub fn result_key(spec: &TraceSpec, fe: &FrontendSpec, insts: usize) -> String {
    format!(
        "row|name={}|suite={}|seed={}|functions={}|insts={insts}|fe={}|code={CODE_VERSION}",
        spec.name,
        spec.suite,
        spec.seed,
        spec.functions,
        fe.key()
    )
}

/// Resolves a requested worker count: `0` means one worker per
/// available core (falling back to 4 when the core count is unknown).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        requested
    }
}

/// Runs `work(i)` for every cell index in `0..cells`, distributing the
/// cells over at most `threads` workers that pull from one shared
/// atomic queue. Returns one [`WorkerStat`] per spawned worker.
fn parallel_cells<F>(cells: usize, threads: usize, work: F) -> Vec<WorkerStat>
where
    F: Fn(usize) + Sync,
{
    let next = AtomicUsize::new(0);
    let stats: Mutex<Vec<WorkerStat>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(cells) {
            scope.spawn(|| {
                let mut busy = Duration::ZERO;
                let mut done = 0usize;
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= cells {
                        break;
                    }
                    let t0 = Instant::now();
                    work(idx);
                    busy += t0.elapsed();
                    done += 1;
                }
                stats
                    .lock()
                    .expect("worker stats lock")
                    .push(WorkerStat { cells: done, busy_ms: busy.as_millis() as u64 });
            });
        }
    });
    stats.into_inner().expect("workers joined")
}

/// The capture-cost share of the `rank`-th cell (0-based) among the
/// `missing` cells whose shared capture cost `total_ms`: every cell
/// gets the truncated average, and the first `total_ms % missing` cells
/// get one extra millisecond, so the shares sum to exactly `total_ms`
/// — no remainder is dropped. Public so other schedulers over the same
/// cell model (the `xbc-serve` daemon) apportion capture cost the same
/// way.
pub fn capture_share(total_ms: u64, missing: usize, rank: usize) -> u64 {
    debug_assert!(rank < missing, "share rank out of range");
    total_ms / missing as u64 + u64::from((rank as u64) < total_ms % missing as u64)
}

/// One unit of scheduled work: a (trace, frontend) cell that missed the
/// result cache, plus its rank among the trace's missing cells (used to
/// apportion the shared capture cost deterministically).
struct Cell {
    trace: usize,
    fe: usize,
    rank: usize,
    missing: usize,
}

/// How a sweep's workers obtain one trace's committed stream after the
/// per-trace `OnceLock` leader resolved it.
enum TraceHandle {
    /// Materialized in memory (uncached sweeps, checked/traced runs, or
    /// `stream_capture` off), with the leader's capture/load cost.
    Resident(Arc<Trace>, u64),
    /// On disk in the store — captured streamed (possibly overlapped
    /// with the leader's own simulation) or already cached. Sibling
    /// cells stream it from the store; nobody holds the whole trace.
    OnDisk,
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Traces to replay.
    pub traces: Vec<TraceSpec>,
    /// Frontend configurations to run each trace through.
    pub frontends: Vec<FrontendSpec>,
    /// Dynamic instructions per trace.
    pub insts: usize,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Optional trace/result store; `None` disables caching.
    pub store: Option<Arc<Store>>,
    /// Emit per-trace progress lines to stderr (default on).
    pub progress: bool,
    /// Verify accounting identities and structural invariants while
    /// simulating (default off). Checked runs produce *identical* rows —
    /// the checks observe, they never perturb — so [`CODE_VERSION`] is
    /// unaffected; cells replayed from the result cache are not re-run.
    pub check: bool,
    /// Write a cycle-level `xbc-events-v1` JSONL event stream for every
    /// cell to this path. Tracing bypasses the result cache (every cell
    /// is simulated so the stream is complete) and the file is written
    /// in deterministic trace-major cell order after all workers join —
    /// byte-identical regardless of `threads`. Rows are unaffected:
    /// tracing observes, it never perturbs.
    pub trace_events: Option<String>,
    /// Capture cold traces *streamed* into the store, overlapping the
    /// capture with the leader cell's simulation (default on; only takes
    /// effect with a store attached, on plain runs — checked and traced
    /// runs need the resident trace). Off restores strict
    /// capture-then-simulate, the A/B baseline for the overlap win. Rows
    /// are identical either way — the committed stream is byte-identical
    /// by construction.
    pub stream_capture: bool,
}

impl Sweep {
    /// Creates an uncached sweep over the given traces and frontends
    /// with `insts` instructions per trace.
    ///
    /// # Panics
    ///
    /// Panics if any list is empty or `insts` is zero.
    pub fn new(traces: Vec<TraceSpec>, frontends: Vec<FrontendSpec>, insts: usize) -> Self {
        assert!(!traces.is_empty(), "sweep needs at least one trace");
        assert!(!frontends.is_empty(), "sweep needs at least one frontend");
        assert!(insts > 0, "sweep needs a positive instruction budget");
        Sweep {
            traces,
            frontends,
            insts,
            threads: 0,
            store: None,
            progress: true,
            check: false,
            trace_events: None,
            stream_capture: true,
        }
    }

    /// Attaches a trace/result store; subsequent [`run`](Sweep::run)
    /// calls consult it before capturing or simulating anything.
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Runs the sweep. Every `(trace, frontend)` cell is one unit of
    /// work on a shared queue; each trace is captured at most once and
    /// shared by all its cells, so every configuration sees the
    /// identical committed path (the paper's trace-driven methodology).
    /// With a store attached, cells whose results are cached skip both
    /// the capture and the simulation.
    ///
    /// Rows are returned grouped by trace (in input order), then by
    /// frontend (in input order) — deterministic regardless of threading.
    pub fn run(&self) -> Vec<Row> {
        self.run_with_bench().0
    }

    /// Runs the sweep and also returns the scheduler's performance
    /// accounting: wall time, capture/sim split, cache effectiveness,
    /// and per-worker utilization (the `--bench-json` payload).
    pub fn run_with_bench(&self) -> (Vec<Row>, SweepBench) {
        let wall0 = Instant::now();
        let n_fe = self.frontends.len();
        let n_cells = self.traces.len() * n_fe;
        let mut rows: Vec<Option<Row>> = vec![None; n_cells];

        // Phase 1: probe the result cache. Sequential on purpose — each
        // probe is one small CRC-checked read, negligible next to a
        // simulation, and a single pass gives a deterministic view of
        // which cells miss before any work is scheduled. A traced sweep
        // skips the probe: cached cells would leave holes in the event
        // stream, so every cell is simulated (captures stay cached).
        if let Some(store) = self.store.as_ref().filter(|_| self.trace_events.is_none()) {
            for (ti, spec) in self.traces.iter().enumerate() {
                for (fi, fe) in self.frontends.iter().enumerate() {
                    let key = result_key(spec, fe, self.insts);
                    let Some(body) = store.load_result(&key) else { continue };
                    match rows_from_json(&body) {
                        Ok(parsed) if parsed.len() == 1 => {
                            rows[ti * n_fe + fi] = parsed.into_iter().next();
                        }
                        Ok(parsed) => {
                            // CRC-valid but not a single row (e.g. written
                            // by an older schema): evict so the stale entry
                            // stops costing a recompute on every run.
                            store.evict_result(
                                &key,
                                &format!("expected 1 cached row, found {}", parsed.len()),
                            );
                        }
                        Err(e) => {
                            store.evict_result(&key, &format!("undecodable cached row: {e}"));
                        }
                    }
                }
            }
        }

        // Phase 2: plan the missing cells, trace-major, so each cell's
        // rank among its trace's misses — and therefore its share of
        // the capture cost — is deterministic.
        let mut cells: Vec<Cell> = Vec::new();
        let mut trace_missing = vec![0usize; self.traces.len()];
        for (ti, tm) in trace_missing.iter_mut().enumerate() {
            let start = cells.len();
            for fi in 0..n_fe {
                if rows[ti * n_fe + fi].is_none() {
                    cells.push(Cell { trace: ti, fe: fi, rank: cells.len() - start, missing: 0 });
                }
            }
            *tm = cells.len() - start;
            for c in &mut cells[start..] {
                c.missing = *tm;
            }
            if self.progress && *tm == 0 {
                eprintln!("[sweep] {:<18} {n_fe} cached, 0 simulated", self.traces[ti].name);
            }
        }

        // Phase 3: drain the cell queue. The first cell of a trace to
        // run resolves its committed stream behind the trace's OnceLock:
        // with streamed capture, a cold trace is captured to the store
        // in the background *while the leader cell simulates it live*
        // off a bounded channel; sibling cells then stream it from disk.
        // Otherwise the leader captures (or loads) a resident trace that
        // siblings share by Arc. Workers then simulate independently.
        let threads = resolve_threads(self.threads);
        // Overlap needs the store (the capture's destination) and the
        // plain replay loop — checked/traced runs replay resident.
        let overlap_ok = self.stream_capture && !self.check && self.trace_events.is_none();
        let shared: Vec<OnceLock<TraceHandle>> =
            (0..self.traces.len()).map(|_| OnceLock::new()).collect();
        let done_rows: Mutex<Vec<(usize, Row)>> = Mutex::new(Vec::new());
        let event_sections: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let remaining: Vec<AtomicUsize> =
            trace_missing.iter().map(|&m| AtomicUsize::new(m)).collect();
        let trace_sim_ms: Vec<AtomicU64> =
            (0..self.traces.len()).map(|_| AtomicU64::new(0)).collect();
        let captures = AtomicU64::new(0);
        let capture_ms_total = AtomicU64::new(0);
        let sim_ms_total = AtomicU64::new(0);
        let overlap_ms_total = AtomicU64::new(0);
        let overlapped_cells = AtomicU64::new(0);
        let workers = parallel_cells(cells.len(), threads, |i| {
            let cell = &cells[i];
            let spec = &self.traces[cell.trace];
            let fe = &self.frontends[cell.fe];
            // The overlapped leader simulates its own cell *inside* the
            // OnceLock closure (the channel exists only there); its
            // result rides out through this slot.
            let mut leader_sim: Option<(FrontendMetrics, u64, u64)> = None;
            let handle = shared[cell.trace].get_or_init(|| {
                if let Some(store) = self.store.as_ref().filter(|_| overlap_ok) {
                    match store.stream_capture_shared(spec, self.insts) {
                        StreamCapture::Leader(mut cap) => {
                            // Cold cell: simulate the live stream while
                            // the capture writes it to the store.
                            let t0 = Instant::now();
                            let mut src = cap.take_source();
                            let mut frontend = fe.instantiate();
                            let m = frontend.run_streamed(&mut src);
                            let cap_ms = cap.finish();
                            let wall = t0.elapsed().as_millis() as u64;
                            captures.fetch_add(1, Ordering::Relaxed);
                            capture_ms_total.fetch_add(cap_ms, Ordering::Relaxed);
                            overlap_ms_total.fetch_add(cap_ms.min(wall), Ordering::Relaxed);
                            overlapped_cells.fetch_add(1, Ordering::Relaxed);
                            leader_sim = Some((m, wall, cap_ms));
                            return TraceHandle::OnDisk;
                        }
                        // Entry already on disk (or a concurrent job
                        // just captured it): every cell streams it, no
                        // capture to account here.
                        StreamCapture::CacheHit | StreamCapture::Joined => {
                            return TraceHandle::OnDisk;
                        }
                    }
                }
                let c0 = Instant::now();
                let t = match &self.store {
                    Some(store) => store.get_or_capture(spec, self.insts),
                    None => spec.capture(self.insts),
                };
                let ms = c0.elapsed().as_millis() as u64;
                captures.fetch_add(1, Ordering::Relaxed);
                capture_ms_total.fetch_add(ms, Ordering::Relaxed);
                TraceHandle::Resident(Arc::new(t), ms)
            });
            let (m, elapsed_ms, cap_ms, sim_ms) = match handle {
                TraceHandle::Resident(trace, cap_ms) => {
                    let trace = Arc::clone(trace);
                    let sim0 = Instant::now();
                    let mut frontend = fe.instantiate();
                    let m = if self.trace_events.is_some() {
                        let mut sink = VecSink::new();
                        let m = if self.check {
                            run_checked_traced(&mut *frontend, &trace, spec.name, &mut sink)
                        } else {
                            frontend.run_traced(&trace, &mut sink)
                        };
                        if self.check {
                            let folded = Reconciler::fold(sink.events.iter());
                            assert_eq!(
                                folded,
                                m,
                                "[--check] {} on {}: event stream does not reconcile to metrics",
                                fe.label(),
                                spec.name
                            );
                        }
                        let mut section = String::new();
                        jsonl::write_section(&mut section, &fe.label(), spec.name, &sink.events);
                        event_sections
                            .lock()
                            .expect("event section lock")
                            .push((cell.trace * n_fe + cell.fe, section));
                        m
                    } else if self.check {
                        run_checked(&mut *frontend, &trace, spec.name)
                    } else {
                        frontend.run(&trace)
                    };
                    let sim_ms = sim0.elapsed().as_millis() as u64;
                    (m, capture_share(*cap_ms, cell.missing, cell.rank) + sim_ms, *cap_ms, sim_ms)
                }
                TraceHandle::OnDisk => {
                    if let Some((m, wall, cap_ms)) = leader_sim.take() {
                        // The overlapped leader: its cell's wall clock
                        // covers capture and simulation together; the
                        // capture share is `cap_ms` and the rest is sim,
                        // so attributions sum to the measured wall with
                        // no double-counting.
                        (m, wall, cap_ms, wall.saturating_sub(cap_ms))
                    } else {
                        let store = self.store.as_ref().expect("on-disk handle implies a store");
                        let open0 = Instant::now();
                        match store.open_trace_stream(spec, self.insts) {
                            Some(mut stream) => {
                                let open_ms = open0.elapsed().as_millis() as u64;
                                let sim0 = Instant::now();
                                let mut frontend = fe.instantiate();
                                let m = frontend.run_streamed(&mut stream);
                                let sim_ms = sim0.elapsed().as_millis() as u64;
                                (m, open_ms + sim_ms, 0, sim_ms)
                            }
                            None => {
                                // Eviction race: the entry vanished
                                // between the leader's capture and this
                                // replay. Regenerate resident.
                                let c0 = Instant::now();
                                let (trace, outcome) =
                                    store.get_or_capture_shared(spec, self.insts);
                                let cap_ms = c0.elapsed().as_millis() as u64;
                                if matches!(outcome, CaptureOutcome::Captured) {
                                    captures.fetch_add(1, Ordering::Relaxed);
                                    capture_ms_total.fetch_add(cap_ms, Ordering::Relaxed);
                                }
                                let sim0 = Instant::now();
                                let mut frontend = fe.instantiate();
                                let m = frontend.run(&trace);
                                let sim_ms = sim0.elapsed().as_millis() as u64;
                                (m, cap_ms + sim_ms, cap_ms, sim_ms)
                            }
                        }
                    }
                }
            };
            sim_ms_total.fetch_add(sim_ms, Ordering::Relaxed);
            trace_sim_ms[cell.trace].fetch_add(sim_ms, Ordering::Relaxed);
            let mut row = Row::new(spec.name, &spec.suite.to_string(), *fe, self.insts, &m);
            row.elapsed_ms = elapsed_ms;
            if let Some(store) = &self.store {
                store.store_result(
                    &result_key(spec, fe, self.insts),
                    &crate::report::to_json(std::slice::from_ref(&row)),
                );
            }
            done_rows.lock().expect("sweep result lock").push((cell.trace * n_fe + cell.fe, row));
            if remaining[cell.trace].fetch_sub(1, Ordering::AcqRel) == 1 && self.progress {
                eprintln!(
                    "[sweep] {:<18} {} cached, {} simulated, capture {} ms, sim {} ms",
                    spec.name,
                    n_fe - cell.missing,
                    cell.missing,
                    cap_ms,
                    trace_sim_ms[cell.trace].load(Ordering::Relaxed)
                );
            }
        });
        for (idx, row) in done_rows.into_inner().expect("workers joined") {
            rows[idx] = Some(row);
        }
        if let Some(path) = &self.trace_events {
            // Deterministic trace-major cell order, whatever the thread
            // interleaving was.
            let mut sections = event_sections.into_inner().expect("workers joined");
            sections.sort_by_key(|(idx, _)| *idx);
            let out: String = sections.into_iter().map(|(_, s)| s).collect();
            match std::fs::write(path, out) {
                Ok(()) => {
                    if self.progress {
                        eprintln!("[sweep] wrote event trace {path}");
                    }
                }
                Err(e) => eprintln!("[sweep] failed to write event trace {path}: {e}"),
            }
        }

        let bench = SweepBench {
            threads,
            traces: self.traces.len(),
            frontends: n_fe,
            total_cells: n_cells,
            cached_cells: n_cells - cells.len(),
            simulated_cells: cells.len(),
            deduped_cells: 0,
            captures: captures.into_inner(),
            capture_ms: capture_ms_total.into_inner(),
            sim_ms: sim_ms_total.into_inner(),
            overlapped_cells: overlapped_cells.into_inner() as usize,
            overlap_ms: overlap_ms_total.into_inner(),
            wall_ms: wall0.elapsed().as_millis() as u64,
            workers,
        };
        if self.progress {
            if let Some(store) = &self.store {
                eprintln!("[xbc-store] {}", store.stats());
            }
            eprintln!("[sweep-bench] {bench}");
        }
        (rows.into_iter().map(|r| r.expect("every cell filled")).collect(), bench)
    }
}

/// Steps a frontend to completion while asserting, every cycle, the
/// accounting identities any correct model maintains (uop conservation
/// and the build/delivery/stall partition), then runs the frontend's
/// structural self-audit. Behaviorally identical to [`Frontend::run`] —
/// only observation is added — so checked and unchecked rows match.
///
/// # Panics
///
/// Panics with a diagnostic naming the frontend, trace, and cycle on the
/// first violation.
pub fn run_checked(fe: &mut dyn Frontend, trace: &Trace, trace_name: &str) -> FrontendMetrics {
    run_checked_traced(fe, trace, trace_name, &mut NullSink)
}

/// [`run_checked`] with an event sink attached: every step goes through
/// [`Frontend::step_traced`], so the sink sees the full `xbc-obs` event
/// stream while the per-cycle identities are asserted. With a
/// [`NullSink`] this *is* `run_checked`.
///
/// # Panics
///
/// Panics with a diagnostic naming the frontend, trace, and cycle on the
/// first violation.
pub fn run_checked_traced(
    fe: &mut dyn Frontend,
    trace: &Trace,
    trace_name: &str,
    sink: &mut dyn EventSink,
) -> FrontendMetrics {
    run_checked_oracle(fe, &mut OracleStream::new(trace), trace_name, sink)
}

/// [`run_checked`] over a streaming instruction source: the checked
/// replay loop against a windowed oracle (`Frontend::run_streamed` with
/// every per-cycle identity asserted), so verified replays too are
/// O(window) in host memory.
///
/// # Panics
///
/// Same contract as [`run_checked`]; additionally panics on mid-stream
/// corruption (see `xbc_workload::TraceStream`).
pub fn run_checked_streamed(
    fe: &mut dyn Frontend,
    source: &mut dyn InstSource,
    trace_name: &str,
    sink: &mut dyn EventSink,
) -> FrontendMetrics {
    run_checked_oracle(fe, &mut OracleStream::streaming(source), trace_name, sink)
}

/// The checked replay loop itself, over an already-built oracle cursor
/// (resident or streaming): asserts the accounting identities after
/// every cycle, then runs the structural self-audits.
///
/// # Panics
///
/// Panics with a diagnostic naming the frontend, trace, and cycle on the
/// first violation.
pub fn run_checked_oracle(
    fe: &mut dyn Frontend,
    oracle: &mut OracleStream<'_>,
    trace_name: &str,
    sink: &mut dyn EventSink,
) -> FrontendMetrics {
    let mut metrics = FrontendMetrics::default();
    let mut stuck = 0u32;
    let mut last_delivered = 0u64;
    while !oracle.done() {
        let before = metrics.cycles;
        fe.step_traced(oracle, &mut metrics, sink);
        assert!(
            metrics.cycles > before,
            "[--check] {} on {trace_name}: step added no cycle at uop {}",
            fe.name(),
            oracle.delivered_uops()
        );
        assert_eq!(
            metrics.cycles,
            metrics.build_cycles + metrics.delivery_cycles + metrics.stall_cycles,
            "[--check] {} on {trace_name}: cycle partition broken at cycle {}",
            fe.name(),
            metrics.cycles
        );
        assert_eq!(
            metrics.d2b_cause_sum(),
            metrics.delivery_to_build,
            "[--check] {} on {trace_name}: delivery-to-build switch without a cause at cycle {}",
            fe.name(),
            metrics.cycles
        );
        assert_eq!(
            metrics.total_uops(),
            oracle.delivered_uops(),
            "[--check] {} on {trace_name}: uop conservation broken at cycle {}",
            fe.name(),
            metrics.cycles
        );
        if oracle.delivered_uops() == last_delivered {
            stuck += 1;
            assert!(
                stuck < 10_000,
                "[--check] {} on {trace_name}: livelock at inst {}",
                fe.name(),
                oracle.inst_index()
            );
        } else {
            last_delivered = oracle.delivered_uops();
            stuck = 0;
        }
    }
    if let Err(e) = fe.check_invariants() {
        panic!("[--check] {} on {trace_name}: invariant violation: {e}", fe.name());
    }
    if let Err(e) = xbc::XbcInvariants::check_metrics(&metrics) {
        panic!("[--check] {} on {trace_name}: metrics invariant violation: {e}", fe.name());
    }
    metrics
}

/// One `(trace, label, metrics)` result of [`sweep_custom`].
pub type CustomRow = (String, String, FrontendMetrics);

/// A fully custom sweep for ablations: `make(config_index)` builds a cold
/// frontend for each labelled configuration. Scheduling is cell-level,
/// like [`Sweep::run`]: every (trace, label) cell is one queue item, and
/// each trace is captured once and shared by all its cells. Returns
/// `(trace, label, metrics)` tuples in deterministic trace-major order.
///
/// With a `store`, captures go through the trace cache; results are not
/// cached (the configurations are opaque closures, so they have no
/// stable identity to key on).
pub fn sweep_custom<F>(
    traces: &[TraceSpec],
    insts: usize,
    labels: &[&str],
    threads: usize,
    store: Option<&Store>,
    make: F,
) -> Vec<CustomRow>
where
    F: Fn(usize) -> Box<dyn Frontend + Send> + Sync,
{
    assert!(!traces.is_empty() && !labels.is_empty() && insts > 0, "empty custom sweep");
    let n_cfg = labels.len();
    let shared: Vec<OnceLock<Arc<Trace>>> = (0..traces.len()).map(|_| OnceLock::new()).collect();
    let results: Mutex<Vec<(usize, CustomRow)>> = Mutex::new(Vec::new());
    parallel_cells(traces.len() * n_cfg, resolve_threads(threads), |cell| {
        let (ti, ci) = (cell / n_cfg, cell % n_cfg);
        let spec = &traces[ti];
        let trace = Arc::clone(shared[ti].get_or_init(|| {
            Arc::new(match store {
                Some(s) => s.get_or_capture(spec, insts),
                None => spec.capture(insts),
            })
        }));
        let mut fe = make(ci);
        let m = fe.run(&trace);
        results
            .lock()
            .expect("sweep result lock")
            .push((cell, (spec.name.to_owned(), labels[ci].to_owned(), m)));
    });
    let mut rows = results.into_inner().expect("workers joined");
    rows.sort_by_key(|(idx, _)| *idx);
    rows.into_iter().map(|(_, row)| row).collect()
}

/// Captures (or loads, with a `store`) each trace and applies `f` to it,
/// distributing the traces over `threads` workers. Results come back in
/// input order. This is the per-trace building block for harnesses that
/// analyze traces without sweeping frontends (e.g. fig1), so they scale
/// with `--threads` too.
pub fn map_traces_parallel<T, F>(
    specs: &[TraceSpec],
    insts: usize,
    threads: usize,
    store: Option<&Store>,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&TraceSpec, &Trace) -> T + Sync,
{
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
    parallel_cells(specs.len(), resolve_threads(threads), |i| {
        let spec = &specs[i];
        let trace = match store {
            Some(s) => s.get_or_capture(spec, insts),
            None => spec.capture(insts),
        };
        results.lock().expect("map result lock").push((i, f(spec, &trace)));
    });
    let mut out = results.into_inner().expect("workers joined");
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_workload::standard_traces;

    #[test]
    fn small_sweep_is_deterministic_and_ordered() {
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(3).collect();
        let frontends = vec![
            FrontendSpec::Tc { total_uops: 4096, ways: 4 },
            FrontendSpec::Xbc { total_uops: 4096, ways: 2, promotion: true },
        ];
        let sweep = Sweep::new(traces.clone(), frontends.clone(), 5_000);
        let a = sweep.run();
        let b = sweep.run();
        assert_eq!(a.len(), 6);
        // Ordering: trace-major, frontend-minor.
        assert_eq!(a[0].trace, traces[0].name);
        assert_eq!(a[1].trace, traces[0].name);
        assert_eq!(a[2].trace, traces[1].name);
        assert_eq!(a[0].frontend.label(), "tc-4k");
        assert_eq!(a[1].frontend.label(), "xbc-4k");
        // Determinism.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.miss_rate, y.miss_rate);
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let frontends = vec![FrontendSpec::Ic];
        let mut sweep = Sweep::new(traces, frontends, 3_000);
        let par = sweep.run();
        sweep.threads = 1;
        let seq = sweep.run();
        assert_eq!(par.len(), seq.len());
        for (x, y) in par.iter().zip(&seq) {
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    fn capture_shares_sum_to_the_measured_time() {
        // The remainder is spread over the first `total % missing`
        // cells, one extra millisecond each, so nothing is dropped.
        for (total, missing) in
            [(0u64, 1usize), (1, 3), (7, 3), (9, 3), (100, 7), (6, 6), (5, 8), (1234, 11)]
        {
            let shares: Vec<u64> = (0..missing).map(|r| capture_share(total, missing, r)).collect();
            assert_eq!(shares.iter().sum::<u64>(), total, "total={total} missing={missing}");
            // Shares are within 1 ms of each other, largest first.
            assert!(shares.windows(2).all(|w| w[0] >= w[1] && w[0] - w[1] <= 1));
        }
        // Overlapped cells use a different split of the same invariant:
        // the leader's wall clock covers capture and simulation
        // together, the capture attribution is the capture's own wall
        // (clamped to the cell's), and the rest is sim — so the two
        // attributions sum to exactly the measured cell time, never
        // more (the old strictly-serial accounting would have summed to
        // wall + capture, double-counting the hidden capture).
        for (wall, cap_ms) in [(100u64, 60u64), (100, 100), (50, 80), (0, 0), (7, 0)] {
            let capture_attr = cap_ms.min(wall);
            let sim_attr = wall.saturating_sub(cap_ms);
            assert_eq!(capture_attr + sim_attr, wall, "wall={wall} cap={cap_ms}");
        }
    }

    #[test]
    fn streamed_sweep_overlaps_and_matches_resident() {
        let dir =
            std::env::temp_dir().join(format!("xbc-sweep-overlap-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let frontends = vec![FrontendSpec::Ic, FrontendSpec::xbc_default()];

        // Baseline rows: no store, resident capture.
        let mut resident = Sweep::new(traces.clone(), frontends.clone(), 4_000);
        resident.progress = false;
        resident.stream_capture = false;
        let baseline = resident.run();

        // Cold streamed sweep: every trace is captured overlapped with
        // its leader cell's simulation.
        let store = Arc::new(Store::open(&dir).unwrap());
        let mut streamed = Sweep::new(traces.clone(), frontends, 4_000).with_store(store);
        streamed.progress = false;
        let (rows, bench) = streamed.run_with_bench();
        assert_eq!(bench.captures, traces.len() as u64, "one capture per distinct trace");
        assert_eq!(bench.overlapped_cells, traces.len(), "every cold trace overlaps one cell");
        assert!(bench.overlap_ms <= bench.capture_ms);
        assert!(bench.overlap_fraction() <= 1.0);
        for (b, r) in baseline.iter().zip(&rows) {
            assert_eq!(b.trace, r.trace);
            assert_eq!(b.cycles, r.cycles, "streamed capture must not perturb results");
            assert_eq!(b.miss_rate, r.miss_rate);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn thread_resolution() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_traces_rejected() {
        let _ = Sweep::new(vec![], vec![FrontendSpec::Ic], 10);
    }

    #[test]
    fn cached_rerun_simulates_nothing_and_matches() {
        let dir = std::env::temp_dir().join(format!("xbc-sweep-cache-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let frontends = vec![FrontendSpec::Ic, FrontendSpec::xbc_default()];
        let store = Arc::new(Store::open(&dir).unwrap());
        let mut sweep = Sweep::new(traces, frontends, 3_000).with_store(Arc::clone(&store));
        sweep.progress = false;
        let fresh = sweep.run();
        let after_fresh = store.stats();
        assert_eq!(after_fresh.result_misses, 4);
        assert_eq!(after_fresh.result_hits, 0);
        let (cached, bench) = sweep.run_with_bench();
        let after_cached = store.stats();
        // The re-run hit every result cell and never touched a trace
        // (the fresh run's sibling cells streamed the freshly captured
        // entries from disk, so trace hits exist — but must not grow).
        assert_eq!(after_cached.result_hits, 4);
        assert_eq!(after_cached.trace_hits, after_fresh.trace_hits);
        assert_eq!(after_cached.trace_misses, after_fresh.trace_misses);
        assert_eq!(bench.cached_cells, 4);
        assert_eq!(bench.simulated_cells, 0);
        assert_eq!(bench.captures, 0);
        assert!(bench.workers.is_empty(), "a fully cached sweep spawns no workers");
        for (f, c) in fresh.iter().zip(&cached) {
            assert_eq!(f.trace, c.trace);
            assert_eq!(f.frontend, c.frontend);
            assert_eq!(f.cycles, c.cycles);
            assert_eq!(f.miss_rate, c.miss_rate);
            assert_eq!(f.elapsed_ms, c.elapsed_ms, "cached rows keep the original cost");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checked_sweep_rows_match_unchecked() {
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let frontends = vec![FrontendSpec::Ic, FrontendSpec::xbc_default()];
        let mut plain = Sweep::new(traces.clone(), frontends.clone(), 4_000);
        plain.progress = false;
        let mut checked = Sweep::new(traces, frontends, 4_000);
        checked.progress = false;
        checked.check = true;
        for (p, c) in plain.run().iter().zip(&checked.run()) {
            assert_eq!(p.cycles, c.cycles, "--check must observe, never perturb");
            assert_eq!(p.miss_rate, c.miss_rate);
        }
    }

    #[test]
    fn custom_sweep_runs_all_configs() {
        use xbc::{XbcConfig, XbcFrontend};
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let rows = sweep_custom(&traces, 3_000, &["promo", "nopromo"], 0, None, |i| {
            use xbc::PromotionMode;
            Box::new(XbcFrontend::new(XbcConfig {
                total_uops: 4096,
                promotion: if i == 0 { PromotionMode::Chain } else { PromotionMode::Off },
                ..XbcConfig::default()
            }))
        });
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].1, "promo");
        assert_eq!(rows[1].1, "nopromo");
        assert_eq!(rows[0].0, traces[0].name);
    }

    #[test]
    fn map_traces_parallel_keeps_input_order() {
        let specs: Vec<TraceSpec> = standard_traces().into_iter().take(3).collect();
        let names = map_traces_parallel(&specs, 1_000, 0, None, |spec, trace| {
            assert_eq!(trace.inst_count(), 1_000);
            spec.name.to_owned()
        });
        let expected: Vec<String> = specs.iter().map(|s| s.name.to_owned()).collect();
        assert_eq!(names, expected);
    }
}
