//! In-tree pseudo-random number generation.
//!
//! The workload generator and executor need a fast, seedable,
//! deterministic PRNG — nothing cryptographic. This module provides
//! xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the
//! standard pairing: SplitMix64 turns an arbitrary 64-bit seed into a
//! well-mixed 256-bit state, xoshiro256** generates from it.
//!
//! Keeping the PRNG in-tree makes the build hermetic (no registry
//! dependency) and freezes the generated workloads: they can never shift
//! underneath us because an external crate changed its stream.
//!
//! # Examples
//!
//! ```
//! use xbc_workload::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(42);
//! let mut b = Rng64::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x: f64 = a.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!((0..10).contains(&a.gen_range(0u64..10)));
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (SplitMix64 state fill).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform integer in `[0, span)` (Lemire's multiply-shift with
    /// rejection, so the distribution is exactly uniform).
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    #[inline]
    pub fn uniform(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (self.next_u64() as u128) * (span as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Samples a value of type `T` (`f64` uniform in `[0,1)`, fair `bool`).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types [`Rng64::gen`] can produce.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut Rng64) -> Self;
}

impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut Rng64) -> f64 {
        // 53 top bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut Rng64) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut Rng64) -> u64 {
        rng.next_u64()
    }
}

/// Ranges [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.uniform(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.uniform(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 10k uniforms is ~0.5 (sd ~0.003).
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::seed_from_u64(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x = r.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(0u8..=2);
            assert!(y <= 2);
            seen_lo |= y == 0;
            seen_hi |= y == 2;
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive range must reach both ends");
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let mut r = Rng64::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.uniform(4) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} out of band");
        }
    }

    #[test]
    fn bool_is_fair() {
        let mut r = Rng64::seed_from_u64(6);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = Rng64::seed_from_u64(0);
        let _ = r.gen_range(5usize..5);
    }
}
