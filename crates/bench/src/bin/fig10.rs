//! Regenerates paper **Figure 10**: uop miss rate versus associativity at
//! the 32K-uop budget.
//!
//! The paper's findings: both structures show the classic associativity
//! curve; moving from direct-mapped to 2-way cuts misses by about 60%,
//! with a smaller further gain at 4-way.
//!
//! ```text
//! cargo run --release -p xbc-bench --bin fig10 [-- --inst N --traces a,b]
//! ```

use xbc_sim::{average_miss_rate, pivot_table, FrontendSpec, HarnessArgs, Row};

const SIZE: usize = 32 * 1024;
const WAYS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = HarnessArgs::from_env();
    let mut frontends = Vec::new();
    for &w in &WAYS {
        frontends.push(FrontendSpec::Tc { total_uops: SIZE, ways: w });
        frontends.push(FrontendSpec::Xbc { total_uops: SIZE, ways: w, promotion: true });
    }
    let rows = args.run_sweep(frontends);

    println!(
        "{}",
        pivot_table(&rows, "Figure 10: uop miss rate (%) vs associativity at 32K uops", |r| {
            100.0 * r.miss_rate
        })
    );

    let by = |rows: &[Row], spec: FrontendSpec| -> Vec<Row> {
        rows.iter().filter(|r| r.frontend == spec).cloned().collect()
    };
    println!("{:>6} {:>10} {:>10}", "ways", "tc-miss%", "xbc-miss%");
    let mut avgs = Vec::new();
    for &w in &WAYS {
        let tc = average_miss_rate(&by(&rows, FrontendSpec::Tc { total_uops: SIZE, ways: w }));
        let xbc = average_miss_rate(&by(
            &rows,
            FrontendSpec::Xbc { total_uops: SIZE, ways: w, promotion: true },
        ));
        println!("{:>6} {:>9.2}% {:>9.2}%", w, 100.0 * tc, 100.0 * xbc);
        avgs.push((tc, xbc));
    }
    let (tc1, xbc1) = avgs[0];
    let (tc2, xbc2) = avgs[1];
    let (tc4, xbc4) = avgs[2];
    println!();
    println!(
        "1-way -> 2-way miss reduction: tc {:.1}%, xbc {:.1}% (paper: ~60%)",
        100.0 * (1.0 - tc2 / tc1),
        100.0 * (1.0 - xbc2 / xbc1)
    );
    println!(
        "2-way -> 4-way miss reduction: tc {:.1}%, xbc {:.1}% (paper: smaller)",
        100.0 * (1.0 - tc4 / tc2),
        100.0 * (1.0 - xbc4 / xbc2)
    );
    args.maybe_dump_json(&rows);
}
