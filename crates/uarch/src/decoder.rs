//! Decode-bandwidth model for the build-mode (IC-based) pipeline.
//!
//! Paper §2.1: an instruction-cache frontend is limited each cycle to one
//! fetch line's worth of consecutive instructions, a decoder width in
//! instructions, a uop-translation width, and stops at the first taken
//! branch. [`Decoder`] is a per-cycle budget tracker that frontends consult
//! while walking the committed path in build mode.

use xbc_isa::Inst;

/// Width limits of the decode pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecoderConfig {
    /// Maximum architectural instructions decoded per cycle.
    pub insts_per_cycle: usize,
    /// Maximum uops emitted per cycle.
    pub uops_per_cycle: usize,
}

impl Default for DecoderConfig {
    /// A 4-wide decoder emitting up to 6 uops — comparable to the class of
    /// machine the paper assumes (renamer capped separately at 8 uops).
    fn default() -> Self {
        DecoderConfig { insts_per_cycle: 4, uops_per_cycle: 6 }
    }
}

/// Per-cycle decode budget.
///
/// Call [`Decoder::begin_cycle`], then [`Decoder::try_consume`] for each
/// sequential instruction; it returns `false` when the instruction no longer
/// fits this cycle (caller then ends the cycle).
///
/// # Examples
///
/// ```
/// use xbc_uarch::{Decoder, DecoderConfig};
/// use xbc_isa::{Addr, Inst};
///
/// let mut d = Decoder::new(DecoderConfig { insts_per_cycle: 2, uops_per_cycle: 8 });
/// d.begin_cycle();
/// assert!(d.try_consume(&Inst::plain(Addr::new(0), 1, 1)));
/// assert!(d.try_consume(&Inst::plain(Addr::new(1), 1, 1)));
/// assert!(!d.try_consume(&Inst::plain(Addr::new(2), 1, 1))); // width exhausted
/// ```
#[derive(Clone, Debug)]
pub struct Decoder {
    cfg: DecoderConfig,
    insts_left: usize,
    uops_left: usize,
}

impl Decoder {
    /// Creates a decoder with the given widths.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero.
    pub fn new(cfg: DecoderConfig) -> Self {
        assert!(
            cfg.insts_per_cycle > 0 && cfg.uops_per_cycle > 0,
            "decoder widths must be non-zero"
        );
        Decoder { cfg, insts_left: 0, uops_left: 0 }
    }

    /// The configured widths.
    pub fn config(&self) -> DecoderConfig {
        self.cfg
    }

    /// Resets the per-cycle budget.
    pub fn begin_cycle(&mut self) {
        self.insts_left = self.cfg.insts_per_cycle;
        self.uops_left = self.cfg.uops_per_cycle;
    }

    /// Attempts to decode `inst` within the current cycle's budget.
    ///
    /// Returns `true` (and consumes budget) if the instruction fits. An
    /// instruction wider than `uops_per_cycle` is allowed only as the first
    /// instruction of a cycle (it then monopolizes the cycle), mirroring how
    /// real decoders sequence long flows through the microcode engine.
    pub fn try_consume(&mut self, inst: &Inst) -> bool {
        if self.insts_left == 0 {
            return false;
        }
        let uops = inst.uops as usize;
        if uops > self.uops_left {
            // Allow a fresh cycle to sequence an over-wide instruction alone.
            if self.uops_left == self.cfg.uops_per_cycle {
                self.insts_left = 0;
                self.uops_left = 0;
                return true;
            }
            return false;
        }
        self.insts_left -= 1;
        self.uops_left -= uops;
        true
    }

    /// uop budget still available this cycle.
    pub fn uops_left(&self) -> usize {
        self.uops_left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_isa::Addr;

    fn plain(uops: u8) -> Inst {
        Inst::plain(Addr::new(0x10), 1, uops)
    }

    #[test]
    fn uop_width_limits_cycle() {
        let mut d = Decoder::new(DecoderConfig { insts_per_cycle: 8, uops_per_cycle: 6 });
        d.begin_cycle();
        assert!(d.try_consume(&plain(4)));
        assert!(d.try_consume(&plain(2)));
        assert!(!d.try_consume(&plain(1)));
    }

    #[test]
    fn inst_width_limits_cycle() {
        let mut d = Decoder::new(DecoderConfig { insts_per_cycle: 2, uops_per_cycle: 100 });
        d.begin_cycle();
        assert!(d.try_consume(&plain(1)));
        assert!(d.try_consume(&plain(1)));
        assert!(!d.try_consume(&plain(1)));
        d.begin_cycle();
        assert!(d.try_consume(&plain(1)));
    }

    #[test]
    fn overwide_instruction_takes_whole_cycle() {
        let mut d = Decoder::new(DecoderConfig { insts_per_cycle: 4, uops_per_cycle: 3 });
        d.begin_cycle();
        assert!(d.try_consume(&plain(4))); // wider than per-cycle uop budget
        assert!(!d.try_consume(&plain(1)));
        d.begin_cycle();
        // But not when the cycle already started.
        assert!(d.try_consume(&plain(1)));
        assert!(!d.try_consume(&plain(4)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_rejected() {
        let _ = Decoder::new(DecoderConfig { insts_per_cycle: 0, uops_per_cycle: 4 });
    }
}
