//! Oracle replay cursor over a captured trace.
//!
//! The stand-alone frontend methodology (paper §4) replays a fixed committed
//! path. [`OracleStream`] is the cursor the frontend models advance as they
//! deliver uops: it exposes the current instruction, uop-granular progress
//! within it (the 8-uop renamer cap can split an instruction across
//! cycles), and bounded lookahead for fill units.
//!
//! The cursor has two backings. [`OracleStream::new`] walks a resident
//! `&[DynInst]` — the classic in-RAM replay. [`OracleStream::streaming`]
//! pulls from an [`InstSource`] through a bounded sliding window, so a
//! trace replays from disk in O(window) host memory however many
//! instructions it has. Both backings expose the identical cursor API and
//! produce bit-identical delivery sequences; the only observable
//! difference is that streaming lookahead is capped (generously — see
//! [`OracleStream::streaming_with_window`]) instead of trace-length.

use xbc_isa::Addr;
use xbc_workload::{DynInst, InstSource, Trace};

/// Default sliding-window capacity of a streaming cursor, in
/// instructions (~1.5 MiB of buffered `DynInst`s).
pub const DEFAULT_STREAM_WINDOW: usize = 32 * 1024;

/// Default guaranteed lookahead of a streaming cursor, in instructions.
/// Far beyond what any frontend in this workspace peeks: the deepest
/// lookahead is `window_end` over one XB (≤ fetch budget + a `u8` uop
/// offset, so ≤ ~300 instructions even at one uop each).
pub const DEFAULT_STREAM_LOOKAHEAD: usize = 4 * 1024;

/// A uop-granular cursor over a trace's committed instructions.
///
/// # Examples
///
/// ```
/// use xbc_frontend::OracleStream;
/// use xbc_workload::{ProgramGenerator, Trace, WorkloadProfile};
///
/// let p = ProgramGenerator::new(WorkloadProfile::default(), 3).generate();
/// let t = Trace::capture("t", &p, 3, 100);
/// let mut o = OracleStream::new(&t);
/// let first = *o.current().unwrap();
/// o.take_uops(first.inst.uops as usize);
/// assert_eq!(o.inst_index(), 1);
/// ```
pub struct OracleStream<'a> {
    /// Resident committed stream (empty when streaming).
    insts: &'a [DynInst],
    /// Uop prefix sums over `insts` (resident only): `cum[i]` is the uop
    /// count of `insts[..i]`, so `window_end` resolves window boundaries
    /// by scanning a dense array instead of walking the (much larger)
    /// `DynInst` records uop-run by uop-run. Borrowed from the trace's
    /// shared table; empty when streaming.
    cum: &'a [u64],
    /// Streaming refill source; `None` selects the resident backing.
    source: Option<&'a mut dyn InstSource>,
    /// Sliding lookahead buffer (streaming only).
    window: Vec<DynInst>,
    /// Absolute instruction index of `window[0]`.
    base: usize,
    /// Window capacity in instructions (fixed; `window` never grows past
    /// it, so refills after the first fill are allocation-free).
    cap: usize,
    /// Guaranteed buffered lookahead: unless the source is exhausted, at
    /// least this many instructions past the cursor are in the window.
    lookahead: usize,
    /// The source returned `None`; the window holds the trace's tail.
    eof: bool,
    pos: usize,
    /// Uops of the current instruction already delivered.
    uop_pos: u8,
    delivered_uops: u64,
}

impl<'a> OracleStream<'a> {
    /// Creates a cursor at the start of `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        OracleStream {
            insts: trace.insts(),
            cum: trace.uop_prefix(),
            source: None,
            window: Vec::new(),
            base: 0,
            cap: 0,
            lookahead: 0,
            eof: true,
            pos: 0,
            uop_pos: 0,
            delivered_uops: 0,
        }
    }

    /// Creates a streaming cursor over `source` with the default window
    /// ([`DEFAULT_STREAM_WINDOW`] / [`DEFAULT_STREAM_LOOKAHEAD`]).
    ///
    /// The cursor buffers at most `DEFAULT_STREAM_WINDOW` instructions;
    /// replay memory is O(window), independent of trace length, and the
    /// delivery sequence is bit-identical to a resident replay of the
    /// same stream.
    pub fn streaming(source: &'a mut dyn InstSource) -> Self {
        Self::streaming_with_window(source, DEFAULT_STREAM_WINDOW, DEFAULT_STREAM_LOOKAHEAD)
    }

    /// [`OracleStream::streaming`] with an explicit window capacity and
    /// lookahead guarantee (both in instructions).
    ///
    /// `lookahead` is the contract with the consumer: [`peek`] /
    /// [`window_end`] may reach at most that many instructions past the
    /// cursor. Exceeding it while the source still has data panics
    /// loudly (a silent `None` would change simulation results); hitting
    /// the true end of the stream returns `None` exactly like the
    /// resident backing.
    ///
    /// [`peek`]: OracleStream::peek
    /// [`window_end`]: OracleStream::window_end
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero or `window < 2 * lookahead` (the
    /// window must fit the guarantee plus room to amortize refills).
    pub fn streaming_with_window(
        source: &'a mut dyn InstSource,
        window: usize,
        lookahead: usize,
    ) -> Self {
        assert!(lookahead > 0, "streaming oracle needs a positive lookahead");
        assert!(
            window >= 2 * lookahead,
            "window ({window}) must be at least twice the lookahead ({lookahead})"
        );
        let mut o = OracleStream {
            insts: &[],
            cum: &[],
            source: Some(source),
            window: Vec::with_capacity(window),
            base: 0,
            cap: window,
            lookahead,
            eof: false,
            pos: 0,
            uop_pos: 0,
            delivered_uops: 0,
        };
        o.refill();
        o
    }

    /// Slides and refills the streaming window until at least
    /// `lookahead` instructions past the cursor are buffered (or the
    /// source is exhausted). The consumed prefix is dropped with
    /// `Vec::drain` (a memmove within the existing allocation) and the
    /// tail is topped up to `cap`, so steady-state refills never touch
    /// the heap.
    fn refill(&mut self) {
        if self.eof {
            return;
        }
        if self.base + self.window.len() - self.pos >= self.lookahead {
            return;
        }
        let consumed = self.pos - self.base;
        if consumed > 0 {
            self.window.drain(..consumed);
            self.base = self.pos;
        }
        let src = self.source.as_deref_mut().expect("refill is streaming-only");
        while self.window.len() < self.cap {
            match src.next_inst() {
                Some(d) => self.window.push(d),
                None => {
                    self.eof = true;
                    break;
                }
            }
        }
    }

    /// The instruction at absolute index `abs`, from whichever backing
    /// is active. Streaming: `abs` must stay within the lookahead
    /// contract (asserted); past-the-end reads return `None` only at the
    /// true end of the stream. Reads *behind* the window (an index whose
    /// instruction was already drained) are a caller bug and panic with
    /// a dedicated message — before this check, `abs - base` wrapped to
    /// a huge offset and the read was indistinguishable from running off
    /// the end, silently returning `None` at EOF.
    #[inline]
    fn at(&self, abs: usize) -> Option<&DynInst> {
        match self.source {
            None => self.insts.get(abs),
            Some(_) => {
                assert!(
                    abs >= self.base,
                    "streaming oracle read behind the window: instruction {abs} was already \
                     drained (window starts at {})",
                    self.base
                );
                match self.window.get(abs - self.base) {
                    Some(d) => Some(d),
                    None => {
                        assert!(
                            self.eof,
                            "streaming oracle lookahead exceeded: instruction {} is {} past the \
                             cursor but only {} are guaranteed (raise the window)",
                            abs,
                            abs - self.pos,
                            self.lookahead
                        );
                        None
                    }
                }
            }
        }
    }

    /// The current (not yet fully delivered) instruction, or `None` at end.
    #[inline]
    pub fn current(&self) -> Option<&DynInst> {
        self.at(self.pos)
    }

    /// Looks ahead `k` whole instructions past the current one.
    #[inline]
    pub fn peek(&self, k: usize) -> Option<&DynInst> {
        self.at(self.pos + k)
    }

    /// Index of the current instruction.
    #[inline]
    pub fn inst_index(&self) -> usize {
        self.pos
    }

    /// Uops of the current instruction already delivered.
    #[inline]
    pub fn uop_offset(&self) -> u8 {
        self.uop_pos
    }

    /// Total uops delivered so far.
    #[inline]
    pub fn delivered_uops(&self) -> u64 {
        self.delivered_uops
    }

    /// True once every instruction has been fully delivered.
    #[inline]
    pub fn done(&self) -> bool {
        self.current().is_none()
    }

    /// Fetch address of the next undelivered work: the current instruction's
    /// IP (partial instructions resume at their own IP — real frontends
    /// refetch the whole instruction, but uop accounting is what matters
    /// here).
    ///
    /// # Panics
    ///
    /// Panics at end of trace.
    #[inline]
    pub fn fetch_ip(&self) -> Addr {
        self.current().expect("fetch_ip at end of trace").inst.ip
    }

    /// Uops of the current instruction not yet delivered (0 at end).
    #[inline]
    pub fn uops_remaining_in_inst(&self) -> usize {
        match self.current() {
            Some(d) => (d.inst.uops - self.uop_pos) as usize,
            None => 0,
        }
    }

    /// Delivers up to `budget` uops of the *current instruction only*.
    /// Returns the number delivered; advances to the next instruction when
    /// the current one completes.
    pub fn take_uops(&mut self, budget: usize) -> usize {
        let Some(d) = self.current() else { return 0 };
        let uops = d.inst.uops;
        let remaining = (uops - self.uop_pos) as usize;
        let n = remaining.min(budget);
        self.uop_pos += n as u8;
        self.delivered_uops += n as u64;
        if self.uop_pos == uops {
            self.pos += 1;
            self.uop_pos = 0;
            if self.source.is_some() {
                self.refill();
            }
        }
        n
    }

    /// Delivers the rest of the current instruction unconditionally
    /// (convenience for engines that treat instructions atomically).
    pub fn take_inst(&mut self) -> usize {
        self.take_uops(usize::MAX)
    }

    /// Finds the instruction whose **last** uop is the `window_uops`-th
    /// upcoming uop (counting undelivered uops of the current instruction
    /// first). Returns that instruction and the count of *whole*
    /// instructions the window spans past the current one.
    ///
    /// Used by XB-granular frontends: an XB pointer covers `offset` uops,
    /// and the XB's ending branch is the instruction closing that window.
    /// Returns `None` if the trace ends first or the window does not align
    /// with an instruction boundary.
    pub fn window_end(&self, window_uops: usize) -> Option<(&DynInst, usize)> {
        if self.source.is_none() {
            // Resident backing: the closing instruction is the unique `j`
            // with `cum[pos + j + 1] == cum[pos] + uop_pos + window` —
            // prefix sums are strictly increasing (every instruction has
            // at least one uop), and windows span at most a fetch group,
            // so a short forward scan over the dense prefix array beats
            // both a global binary search and walking the wide `DynInst`
            // records themselves.
            let target = self.cum[self.pos] + self.uop_pos as u64 + window_uops as u64;
            let tail = &self.cum[self.pos + 1..];
            for (j, &c) in tail.iter().enumerate() {
                if c >= target {
                    return (c == target).then(|| (&self.insts[self.pos + j], j));
                }
            }
            return None;
        }
        let mut remaining = window_uops;
        let mut j = 0usize;
        loop {
            let d = self.at(self.pos + j)?;
            let avail =
                if j == 0 { (d.inst.uops - self.uop_pos) as usize } else { d.inst.uops as usize };
            if remaining <= avail {
                return if remaining == avail { Some((d, j)) } else { None };
            }
            remaining -= avail;
            j += 1;
        }
    }
}

impl std::fmt::Debug for OracleStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleStream")
            .field("backing", &if self.source.is_none() { "resident" } else { "streaming" })
            .field("pos", &self.pos)
            .field("uop_pos", &self.uop_pos)
            .field("delivered_uops", &self.delivered_uops)
            .field(
                "buffered",
                &if self.source.is_none() {
                    self.insts.len() - self.pos.min(self.insts.len())
                } else {
                    self.base + self.window.len() - self.pos
                },
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_isa::Inst;
    use xbc_workload::{IterSource, ProgramBuilder, Trace};

    fn trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x10), 1, 3));
        b.push(Inst::plain(Addr::new(0x11), 1, 2));
        b.push(Inst::new(Addr::new(0x12), 1, 1, xbc_isa::BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        Trace::capture("t", &p, 0, 3)
    }

    #[test]
    fn partial_instruction_delivery() {
        let t = trace();
        let mut o = OracleStream::new(&t);
        assert_eq!(o.take_uops(2), 2);
        assert_eq!(o.inst_index(), 0);
        assert_eq!(o.uop_offset(), 2);
        assert_eq!(o.uops_remaining_in_inst(), 1);
        assert_eq!(o.take_uops(8), 1); // completes inst 0
        assert_eq!(o.inst_index(), 1);
        assert_eq!(o.uop_offset(), 0);
    }

    #[test]
    fn runs_to_completion() {
        let t = trace();
        let mut o = OracleStream::new(&t);
        let mut total = 0;
        while !o.done() {
            total += o.take_inst();
        }
        assert_eq!(total, 6);
        assert_eq!(o.delivered_uops(), 6);
        assert_eq!(o.take_uops(4), 0);
    }

    #[test]
    fn peek_does_not_advance() {
        let t = trace();
        let o = OracleStream::new(&t);
        assert_eq!(o.peek(1).unwrap().inst.ip, Addr::new(0x11));
        assert_eq!(o.inst_index(), 0);
    }

    #[test]
    fn fetch_ip_tracks_current() {
        let t = trace();
        let mut o = OracleStream::new(&t);
        assert_eq!(o.fetch_ip(), Addr::new(0x10));
        o.take_inst();
        assert_eq!(o.fetch_ip(), Addr::new(0x11));
    }

    #[test]
    fn window_end_finds_instruction_boundaries() {
        let t = trace(); // uops per inst: 3, 2, 1
        let o = OracleStream::new(&t);
        // Aligned windows resolve to the closing instruction.
        assert_eq!(o.window_end(3).unwrap().0.inst.ip, Addr::new(0x10));
        assert_eq!(o.window_end(5).unwrap().0.inst.ip, Addr::new(0x11));
        assert_eq!(o.window_end(6).unwrap().0.inst.ip, Addr::new(0x12));
        // Misaligned windows are rejected.
        assert!(o.window_end(2).is_none());
        assert!(o.window_end(4).is_none());
        // Past the end of the trace.
        assert!(o.window_end(7).is_none());
    }

    #[test]
    fn window_end_respects_partial_first_instruction() {
        let t = trace();
        let mut o = OracleStream::new(&t);
        o.take_uops(2); // 1 uop of inst 0 remains
        assert_eq!(o.window_end(1).unwrap().0.inst.ip, Addr::new(0x10));
        assert_eq!(o.window_end(3).unwrap().0.inst.ip, Addr::new(0x11));
        assert!(o.window_end(2).is_none());
    }

    /// A long trace for windowed-streaming tests: varied uop counts so
    /// instruction/uop boundaries exercise the partial-delivery paths.
    fn long_trace(n: usize) -> Trace {
        use xbc_workload::{ProgramGenerator, WorkloadProfile};
        let p = ProgramGenerator::new(WorkloadProfile::default(), 7).generate();
        Trace::capture("long", &p, 7, n)
    }

    #[test]
    fn streaming_matches_resident_with_a_tiny_window() {
        let t = long_trace(5_000);
        let mut src = IterSource::new(t.insts().iter().copied());
        // Window far smaller than the trace forces hundreds of refills.
        let mut s = OracleStream::streaming_with_window(&mut src, 64, 16);
        let mut r = OracleStream::new(&t);
        let mut k = 0usize;
        while !r.done() {
            assert!(!s.done(), "streaming ended early at inst {}", r.inst_index());
            assert_eq!(s.current(), r.current());
            assert_eq!(s.peek(3), r.peek(3));
            assert_eq!(
                s.window_end(7).map(|(d, j)| (*d, j)),
                r.window_end(7).map(|(d, j)| (*d, j))
            );
            // Varied budgets hit partial and whole-instruction advances.
            let budget = 1 + (k % 7);
            assert_eq!(s.take_uops(budget), r.take_uops(budget));
            assert_eq!(s.inst_index(), r.inst_index());
            assert_eq!(s.uop_offset(), r.uop_offset());
            k += 1;
        }
        assert!(s.done());
        assert_eq!(s.delivered_uops(), r.delivered_uops());
        assert_eq!(s.take_uops(4), 0);
    }

    #[test]
    fn streaming_window_stays_bounded() {
        let t = long_trace(3_000);
        let mut src = IterSource::new(t.insts().iter().copied());
        let mut s = OracleStream::streaming_with_window(&mut src, 128, 32);
        let cap0 = s.window.capacity();
        while !s.done() {
            assert!(s.window.len() <= 128, "window overflowed: {}", s.window.len());
            assert_eq!(s.window.capacity(), cap0, "window reallocated");
            s.take_inst();
        }
    }

    #[test]
    fn streaming_peek_at_true_end_is_none() {
        let t = trace();
        let mut src = IterSource::new(t.insts().iter().copied());
        let s = OracleStream::streaming_with_window(&mut src, 8, 4);
        // The 3-inst trace is fully buffered; past-the-end reads are a
        // clean None, exactly like the resident backing.
        assert!(s.peek(2).is_some());
        assert!(s.peek(3).is_none());
        assert!(s.window_end(7).is_none());
    }

    #[test]
    #[should_panic(expected = "lookahead exceeded")]
    fn streaming_overreach_panics_loudly() {
        let t = long_trace(1_000);
        let mut src = IterSource::new(t.insts().iter().copied());
        let s = OracleStream::streaming_with_window(&mut src, 16, 4);
        // The window holds 16; reaching past it while the source still
        // has data must panic, not silently end the trace.
        let _ = s.peek(40);
    }

    #[test]
    #[should_panic(expected = "twice the lookahead")]
    fn streaming_rejects_cramped_windows() {
        let t = trace();
        let mut src = IterSource::new(t.insts().iter().copied());
        let _ = OracleStream::streaming_with_window(&mut src, 4, 4);
    }

    #[test]
    #[should_panic(expected = "behind the window")]
    fn streaming_behind_the_window_read_panics() {
        let t = long_trace(1_000);
        let mut src = IterSource::new(t.insts().iter().copied());
        let mut s = OracleStream::streaming_with_window(&mut src, 16, 4);
        // Drain far enough that the consumed prefix is dropped and the
        // window base advances past instruction 0.
        for _ in 0..100 {
            s.take_inst();
        }
        assert!(s.base > 0, "the window base must have advanced");
        // An absolute index below the base is a drained instruction.
        // Before the explicit check, `abs - base` wrapped to a huge
        // offset — indistinguishable from running off the window's end.
        let _ = s.at(0);
    }

    #[test]
    fn streaming_in_window_reads_still_resolve() {
        let t = long_trace(1_000);
        let mut src = IterSource::new(t.insts().iter().copied());
        let mut s = OracleStream::streaming_with_window(&mut src, 16, 4);
        for _ in 0..100 {
            s.take_inst();
        }
        assert!(s.base > 0);
        // The cursor itself and everything within the lookahead contract
        // stay readable after the base has advanced.
        assert_eq!(s.at(s.pos).unwrap(), &t.insts()[100]);
        assert_eq!(s.peek(3).unwrap(), &t.insts()[103]);
    }
}
