#!/usr/bin/env bash
# CI gate for the sweep service daemon (DESIGN.md §13):
#
#   1. runs a one-shot cached `xbcsim sweep` to populate a fresh store
#      and fix the expected row bytes;
#   2. boots `xbcsim serve` on that store, waits for a ping;
#   3. submits the same grid from TWO concurrent clients and fails
#      unless both row files are byte-identical to the one-shot output
#      (including elapsed_ms — a warm store replays stored rows
#      verbatim) and both requests report zero simulations and zero
#      captures;
#   4. shuts the daemon down gracefully and checks the socket is gone.
#
# Usage: scripts/ci_serve_gate.sh [INSTS] (default 20000)
set -euo pipefail
cd "$(dirname "$0")/.."
INSTS="${1:-20000}"
TRACES="spec.gcc,games.quake"
GRID=(--traces "$TRACES" --frontends tc,xbc --sizes 8192 --inst "$INSTS")

cargo build --release -p xbc-serve
mkdir -p results
B=target/release
CACHE=target/ci-serve-cache
SOCK=target/ci-serve.sock
rm -rf "$CACHE" "$SOCK"

"$B/xbcsim" sweep "${GRID[@]}" --cache "$CACHE" \
  --json results/ci_serve_oneshot.json > /dev/null

"$B/xbcsim" serve --socket "$SOCK" --cache "$CACHE" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  "$B/xbcsim" submit --socket "$SOCK" --ping on > /dev/null 2>&1 && break
  sleep 0.1
done
"$B/xbcsim" submit --socket "$SOCK" --ping on > /dev/null

"$B/xbcsim" submit --socket "$SOCK" "${GRID[@]}" \
  --json results/ci_serve_rows_a.json --bench-json results/ci_serve_bench_a.json \
  > /dev/null 2> /dev/null &
CLIENT_A=$!
"$B/xbcsim" submit --socket "$SOCK" "${GRID[@]}" \
  --json results/ci_serve_rows_b.json --bench-json results/ci_serve_bench_b.json \
  > /dev/null 2> /dev/null &
CLIENT_B=$!
wait "$CLIENT_A"
wait "$CLIENT_B"

for side in a b; do
  if ! cmp results/ci_serve_oneshot.json "results/ci_serve_rows_$side.json"; then
    echo "FAIL: daemon rows (client $side) differ from one-shot sweep" >&2
    exit 1
  fi
  for want in '"simulated_cells": 0' '"captures": 0'; do
    if ! grep -q "$want" "results/ci_serve_bench_$side.json"; then
      echo "FAIL: warm submission (client $side) missing $want:" >&2
      cat "results/ci_serve_bench_$side.json" >&2
      exit 1
    fi
  done
done

"$B/xbcsim" submit --socket "$SOCK" --shutdown on > /dev/null
wait "$DAEMON"
trap - EXIT
if [ -e "$SOCK" ]; then
  echo "FAIL: daemon left its socket behind: $SOCK" >&2
  exit 1
fi
echo "OK: 2 concurrent clients, rows byte-identical to one-shot sweep, 0 re-simulations ($TRACES, $INSTS insts)"
