//! Branch-bias measurement for branch promotion (paper §3.8).
//!
//! Each XBTB entry carries a 7-bit counter: +1 on taken, −1 on not-taken,
//! saturating at `[0, 127]`. A counter value ≥ 126 means the branch was
//! not-taken at most once in the last 128 executions (≥ 99.2% taken-biased);
//! a value ≤ 1 means ≥ 99.2% not-taken-biased. Such *monotonic* branches
//! are candidates for promotion: treated as unconditional so consecutive
//! XBs can merge.

use std::fmt;

/// Direction a monotonic branch is biased towards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bias {
    /// ≥ 99.2% taken.
    Taken,
    /// ≥ 99.2% not-taken.
    NotTaken,
}

impl Bias {
    /// The direction as a bool (`true` = taken).
    pub const fn as_taken(self) -> bool {
        matches!(self, Bias::Taken)
    }
}

impl fmt::Display for Bias {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bias::Taken => f.write_str("taken"),
            Bias::NotTaken => f.write_str("not-taken"),
        }
    }
}

/// The paper's 7-bit saturating bias counter.
///
/// Starts at the midpoint (64) and requires a warm-up of at least
/// [`BiasCounter::WARMUP`] updates before reporting a bias, so that a
/// branch seen twice does not get promoted.
///
/// # Examples
///
/// ```
/// use xbc_predict::{Bias, BiasCounter};
///
/// let mut c = BiasCounter::new();
/// for _ in 0..80 { c.update(true); }
/// assert_eq!(c.bias(), Some(Bias::Taken));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BiasCounter {
    value: u8,
    updates: u32,
}

impl BiasCounter {
    /// Counter ceiling (7 bits).
    pub const MAX: u8 = 127;
    /// Threshold at/above which a branch counts as taken-monotonic.
    pub const TAKEN_THRESHOLD: u8 = 126;
    /// Threshold at/below which a branch counts as not-taken-monotonic.
    pub const NOT_TAKEN_THRESHOLD: u8 = 1;
    /// Minimum updates before a bias may be reported.
    pub const WARMUP: u32 = 64;

    /// Creates a counter at the midpoint.
    pub const fn new() -> Self {
        BiasCounter { value: 64, updates: 0 }
    }

    /// Raw counter value (0..=127).
    pub const fn value(&self) -> u8 {
        self.value
    }

    /// Number of updates applied.
    pub const fn updates(&self) -> u32 {
        self.updates
    }

    /// Applies one resolved direction.
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.value < Self::MAX {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
        self.updates = self.updates.saturating_add(1);
    }

    /// Reports the monotonic bias, if the branch qualifies (§3.8 thresholds
    /// after warm-up).
    pub fn bias(&self) -> Option<Bias> {
        if self.updates < Self::WARMUP {
            return None;
        }
        if self.value >= Self::TAKEN_THRESHOLD {
            Some(Bias::Taken)
        } else if self.value <= Self::NOT_TAKEN_THRESHOLD {
            Some(Bias::NotTaken)
        } else {
            None
        }
    }
}

impl Default for BiasCounter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_neutral() {
        let c = BiasCounter::new();
        assert_eq!(c.value(), 64);
        assert_eq!(c.bias(), None);
    }

    #[test]
    fn saturates_at_bounds() {
        let mut c = BiasCounter::new();
        for _ in 0..500 {
            c.update(true);
        }
        assert_eq!(c.value(), 127);
        for _ in 0..500 {
            c.update(false);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn taken_bias_requires_warmup() {
        let mut c = BiasCounter::new();
        for _ in 0..63 {
            c.update(true);
        }
        assert_eq!(c.bias(), None, "not enough samples yet");
        c.update(true);
        assert_eq!(c.bias(), Some(Bias::Taken));
    }

    #[test]
    fn not_taken_bias() {
        let mut c = BiasCounter::new();
        for _ in 0..100 {
            c.update(false);
        }
        assert_eq!(c.bias(), Some(Bias::NotTaken));
        assert!(!c.bias().unwrap().as_taken());
    }

    #[test]
    fn one_flip_in_128_still_biased() {
        // Paper: counter >= 126 means at most one not-taken in the last 128.
        let mut c = BiasCounter::new();
        for _ in 0..128 {
            c.update(true);
        }
        c.update(false);
        assert_eq!(c.value(), 126);
        assert_eq!(c.bias(), Some(Bias::Taken));
        c.update(false); // second flip drops below threshold
        assert_eq!(c.bias(), None);
    }

    #[test]
    fn mixed_branch_never_biased() {
        let mut c = BiasCounter::new();
        for i in 0..1000 {
            c.update(i % 2 == 0);
        }
        assert_eq!(c.bias(), None);
    }
}
