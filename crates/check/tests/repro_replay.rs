//! Replays every committed fuzz reproducer.
//!
//! When `xbc-check` finds a divergence it writes a shrunk JSON reproducer
//! into `repros/` at the workspace root. Committing such a file turns the
//! bug into a permanent regression test: this test scans the directory and
//! re-runs every case, failing while the bug is alive. Once the bug is
//! fixed the case passes and the file documents history (or is deleted).
//!
//! With no `repros/` directory (the healthy state) the test passes
//! trivially.

use std::path::PathBuf;
use xbc_check::{run_case, FuzzCase};

fn repros_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../repros")
}

#[test]
fn committed_reproducers_replay_clean() {
    let dir = repros_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no repros directory: nothing outstanding
    };
    let mut checked = 0;
    for entry in entries {
        let path = entry.expect("readable repros entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let case = FuzzCase::from_json(text.trim())
            .unwrap_or_else(|e| panic!("malformed reproducer {}: {e}", path.display()));
        if let Err(failure) = run_case(&case) {
            panic!(
                "reproducer {} still fails:\n{failure}\ncase: {}",
                path.display(),
                case.to_json()
            );
        }
        checked += 1;
    }
    println!("replayed {checked} reproducer(s) from {}", dir.display());
}
