//! # xbc-frontend — frontend framework and baselines
//!
//! The trace-driven frontend machinery shared by every instruction-supply
//! model in the workspace, plus the paper's baselines:
//!
//! * [`OracleStream`] — uop-granular replay cursor over a captured trace,
//! * [`FrontendMetrics`] — cycle/uop accounting (miss rate, bandwidth),
//! * [`Frontend`] — the common `run(trace) -> metrics` interface,
//! * [`BuildEngine`] / [`Predictors`] / [`FillSink`] — the shared IC + BTB +
//!   decoder build-mode pipeline of paper Figure 6 (upper path),
//! * [`IcFrontend`] — instruction-cache-only baseline (§2.1),
//! * [`UopCacheFrontend`] — decoded-cache baseline (§2.2),
//! * [`TraceCacheFrontend`] — the trace-cache baseline the XBC is compared
//!   against (§2.3, §4),
//! * [`BbtcFrontend`] — the block-based trace cache (§2.4, Black et al.).
//!
//! The XBC frontend itself lives in the `xbc` crate and plugs into the same
//! interfaces.
//!
//! # Example
//!
//! ```
//! use xbc_frontend::{Frontend, TcConfig, TraceCacheFrontend};
//! use xbc_workload::standard_traces;
//!
//! let trace = standard_traces()[0].capture(10_000);
//! let mut tc = TraceCacheFrontend::new(TcConfig::default());
//! let metrics = tc.run(&trace);
//! println!("TC miss rate {:.1}%", 100.0 * metrics.uop_miss_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbtc;
mod build;
mod frontend;
mod icfe;
mod metrics;
mod oracle;
mod probe;
mod tc;
mod uopcache;

pub use bbtc::{BbtcConfig, BbtcFrontend};
pub use build::{BuildEngine, FillSink, NoFill, Predictors, TimingConfig};
pub use frontend::Frontend;
pub use icfe::{IcFrontend, IcFrontendConfig};
pub use metrics::FrontendMetrics;
pub use oracle::{OracleStream, DEFAULT_STREAM_LOOKAHEAD, DEFAULT_STREAM_WINDOW};
pub use probe::{Probe, Reconciler};
pub use tc::{TcConfig, TraceCacheFrontend};
pub use uopcache::{UopCacheConfig, UopCacheFrontend};
