//! Virtual instruction addresses.
//!
//! The simulated ISA uses flat 64-bit virtual addresses. [`Addr`] is a
//! newtype so that instruction pointers cannot be confused with other
//! integer quantities (uop counts, set indices, ...) at compile time.

use std::fmt;

/// A virtual address of one simulated instruction byte.
///
/// `Addr` is ordered, hashable and cheap to copy. Formatting with `{}`
/// prints the canonical hex form used throughout the simulator logs.
///
/// # Examples
///
/// ```
/// use xbc_isa::Addr;
///
/// let a = Addr::new(0x4000);
/// assert_eq!(a.offset(4), Addr::new(0x4004));
/// assert_eq!(format!("{a}"), "0x0000000000004000");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The all-zero address, used as a sentinel "before program start".
    pub const NULL: Addr = Addr(0);

    /// Creates an address from its raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address `bytes` past `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on address-space wrap-around.
    #[inline]
    pub fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// Returns true if this is the [`Addr::NULL`] sentinel.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr(0x{:x})", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_advances() {
        assert_eq!(Addr::new(16).offset(3), Addr::new(19));
    }

    #[test]
    fn null_sentinel() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(1).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Addr::new(1) < Addr::new(2));
    }

    #[test]
    fn conversions_roundtrip() {
        let a: Addr = 77u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 77);
    }

    #[test]
    fn hex_formatting() {
        let a = Addr::new(0xBEEF);
        assert_eq!(format!("{a:x}"), "beef");
        assert_eq!(format!("{a:X}"), "BEEF");
        assert_eq!(format!("{a:?}"), "Addr(0xbeef)");
    }
}
