//! Performance benches of the simulator itself: how fast each frontend
//! model replays a trace, and the hot component operations.
//!
//! These measure *simulator* throughput (host-seconds per simulated uop),
//! not the simulated machine — the paper's metrics come from the `fig*`
//! binaries.
//!
//! The harness is in-tree (`harness = false`): each case runs a warmup
//! pass, then a fixed iteration budget, and reports median-of-runs
//! wall-clock plus derived throughput. Run with
//! `cargo bench -p xbc-bench`.

use std::time::{Duration, Instant};
use xbc::{BankMask, PromotionMode, XbPtr, XbcArray, XbcConfig, XbcFrontend};
use xbc_bench::bench_trace;
use xbc_frontend::{Frontend, IcFrontend, IcFrontendConfig, TcConfig, TraceCacheFrontend};
use xbc_isa::{decode, Addr, Inst};
use xbc_predict::{Gshare, GshareConfig};

const TRACE_INSTS: usize = 50_000;
const RUNS: usize = 5;

/// Times `iters` invocations of `f`, `RUNS` times, and returns the
/// median per-iteration duration.
fn measure<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    f(); // warmup
    let mut samples: Vec<Duration> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed() / iters as u32
        })
        .collect();
    samples.sort();
    samples[RUNS / 2]
}

fn report(name: &str, per_iter: Duration, elements: Option<u64>) {
    match elements {
        Some(n) => {
            let rate = n as f64 / per_iter.as_secs_f64() / 1e6;
            println!("{name:<24} {per_iter:>12.2?}/iter {rate:>10.1} Melem/s");
        }
        None => println!("{name:<24} {per_iter:>12.2?}/iter"),
    }
}

fn frontends() {
    println!("frontend_replay ({TRACE_INSTS} insts per run)");
    let trace = bench_trace(TRACE_INSTS);
    let uops = trace.uop_count();

    let d = measure(3, || {
        let mut fe = IcFrontend::new(IcFrontendConfig::default());
        fe.run(&trace);
    });
    report("ic", d, Some(uops));

    let d = measure(3, || {
        let mut fe = TraceCacheFrontend::new(TcConfig::default());
        fe.run(&trace);
    });
    report("tc_32k", d, Some(uops));

    let d = measure(3, || {
        let mut fe = XbcFrontend::new(XbcConfig::default());
        fe.run(&trace);
    });
    report("xbc_32k", d, Some(uops));

    let d = measure(3, || {
        let mut fe =
            XbcFrontend::new(XbcConfig { promotion: PromotionMode::Off, ..XbcConfig::default() });
        fe.run(&trace);
    });
    report("xbc_32k_nopromo", d, Some(uops));
    println!();
}

fn components() {
    println!("components");

    // Array insert + fetch round trip.
    let cfg = XbcConfig { total_uops: 8192, ..XbcConfig::default() };
    let uops: Vec<_> = decode(&Inst::plain(Addr::new(0x100), 4, 4))
        .into_iter()
        .chain(decode(&Inst::plain(Addr::new(0x104), 4, 4)))
        .chain(decode(&Inst::plain(Addr::new(0x108), 4, 4)))
        .collect();
    let d = measure(200, || {
        let mut a = XbcArray::new(&cfg);
        for i in 0..64u64 {
            let ip = Addr::new(0x100 + i * 37);
            let mask = a.insert(ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
            let ptr = XbPtr::new(ip, Addr::new(0x100), mask, uops.len() as u8);
            let mut used = BankMask::EMPTY;
            let _ = a.fetch_one(&ptr, &mut used);
        }
    });
    report("array_insert_fetch", d, Some(64));

    // Predictor update throughput.
    let mut gs = Gshare::new(GshareConfig::default());
    let mut i = 0u64;
    let d = measure(500_000, || {
        i = i.wrapping_add(1);
        gs.update(Addr::new(0x4000 + (i % 256)), i.is_multiple_of(3));
    });
    report("gshare_update", d, None);

    // Workload generation (program synthesis + execution).
    let d = measure(3, || {
        bench_trace(10_000).uop_count();
    });
    report("trace_capture_10k", d, Some(10_000));
    println!();
}

/// The observability guard: tracing must be zero-cost when disabled.
///
/// The untraced entry point (`run`) monomorphizes the probe over
/// `NullSink`, so its emit calls compile away; `run_traced` with a
/// `&mut dyn EventSink` NullSink is the *worst case* for a disabled
/// sink (virtual dispatch survives). Both are measured against the
/// same workload in the same process, so the ratio is host-independent.
/// The guard trips when even the dyn-dispatch ceiling exceeds the
/// budget — the monomorphized disabled path is strictly cheaper.
fn obs_overhead() {
    println!("obs_overhead ({TRACE_INSTS} insts per run)");
    let trace = bench_trace(TRACE_INSTS);
    let uops = trace.uop_count();

    let untraced = measure(5, || {
        let mut fe = XbcFrontend::new(XbcConfig::default());
        fe.run(&trace);
    });
    report("xbc_untraced", untraced, Some(uops));

    let null_traced = measure(5, || {
        let mut fe = XbcFrontend::new(XbcConfig::default());
        let mut sink = xbc_obs::NullSink;
        fe.run_traced(&trace, &mut sink);
    });
    report("xbc_null_dyn_sink", null_traced, Some(uops));

    let ratio = null_traced.as_secs_f64() / untraced.as_secs_f64();
    println!("null-sink overhead ceiling: {:+.2}%", 100.0 * (ratio - 1.0));
    // 1% budget plus 2% measurement-noise allowance for shared CI hosts;
    // a real regression on the emit path (an allocation, a format!,
    // an un-inlined probe) lands far above this.
    assert!(
        ratio < 1.03,
        "disabled tracing must stay under the 1% overhead budget \
         (measured {:.2}% even through dyn dispatch)",
        100.0 * (ratio - 1.0)
    );
    println!();
}

fn main() {
    frontends();
    components();
    obs_overhead();
}
