#!/usr/bin/env bash
# CI gate for host-side simulator throughput (the perf job):
#
#   1. runs the in-tree throughput bench, writing the frontend-replay
#      measurements to results/ci_throughput.json
#      (schema xbc-throughput-bench-v1);
#   2. diffs each frontend's muops_per_sec against the committed
#      reference results/BENCH_throughput.json, failing if any frontend
#      replays more than TOL slower than the reference. Speed-ups never
#      fail; the tolerance absorbs shared-runner noise, so only a real
#      hot-path regression (an allocation back on the delivery path, a
#      lost memo hit) lands outside it.
#
# CI uploads results/ci_throughput.json as an artifact so a failing
# run's numbers can be inspected without rerunning.
#
# Usage: scripts/ci_perf_gate.sh [TOL]  (fractional slowdown tolerance,
#                                        default 0.25)
set -euo pipefail
cd "$(dirname "$0")/.."
TOL="${1:-0.25}"
REF=results/BENCH_throughput.json
OUT=results/ci_throughput.json

[ -f "$REF" ] || { echo "missing reference $REF" >&2; exit 1; }
mkdir -p results

cargo bench -p xbc-bench --bench throughput -- --json "$PWD/$OUT"

awk -v tol="$TOL" '
  /"name":/ {
    match($0, /"name": "[^"]+"/)
    n = substr($0, RSTART + 9, RLENGTH - 10)
    match($0, /"muops_per_sec": [0-9.]+/)
    m = substr($0, RSTART + 17, RLENGTH - 17) + 0
    if (NR == FNR) ref[n] = m; else cur[n] = m
  }
  END {
    status = 0
    for (n in ref) {
      if (!(n in cur)) {
        printf "%-18s missing from new bench output: FAIL\n", n
        status = 1
        continue
      }
      floor = ref[n] * (1 - tol)
      verdict = cur[n] >= floor ? "ok" : "REGRESSED"
      if (verdict == "REGRESSED") status = 1
      printf "%-18s ref %7.1f Muops/s  now %7.1f Muops/s  floor %7.1f  %s\n", \
             n, ref[n], cur[n], floor, verdict
    }
    exit status
  }
' "$REF" "$OUT"

echo "OK: host throughput within ${TOL} of the committed reference"
