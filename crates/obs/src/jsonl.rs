//! JSON Lines serialization for event streams (schema `xbc-events-v1`).
//!
//! An event file is a sequence of *sections*. Each section opens with a
//! header line naming the schema, frontend, and trace:
//!
//! ```text
//! {"schema":"xbc-events-v1","frontend":"xbc-32k","trace":"spec.gcc"}
//! {"ev":"cycle","kind":"build"}
//! {"ev":"uops","src":"ic","n":3}
//! ...
//! ```
//!
//! and every following line (until the next header) is one [`Event`].
//! Encoding is hand-rolled against the in-tree [`crate::json`] parser:
//! every emitted line parses back to the identical event
//! ([`decode_event`]`(`[`encode_event`]`(e)) == e` — the property
//! tests in `crates/obs/tests/property.rs` fuzz this roundtrip).

use crate::event::{CycleKind, D2bCause, Event, FillKind, LookupKind, MispredictKind, UopSource};
use crate::json::{escape, Json};
use std::fmt::Write as _;

/// The schema tag written in every section header.
pub const SCHEMA: &str = "xbc-events-v1";

/// One header's worth of events: a (frontend × trace) run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Frontend label from the header line.
    pub frontend: String,
    /// Trace name from the header line.
    pub trace: String,
    /// The decoded events, in file order.
    pub events: Vec<Event>,
}

fn cycle_kind_str(k: CycleKind) -> &'static str {
    match k {
        CycleKind::Build => "build",
        CycleKind::Delivery => "delivery",
        CycleKind::Stall => "stall",
    }
}

fn uop_source_str(s: UopSource) -> &'static str {
    match s {
        UopSource::Structure => "structure",
        UopSource::Ic => "ic",
    }
}

fn mispredict_kind_str(k: MispredictKind) -> &'static str {
    match k {
        MispredictKind::Cond => "cond",
        MispredictKind::Target => "target",
    }
}

fn d2b_cause_str(c: D2bCause) -> &'static str {
    match c {
        D2bCause::XbtbMiss => "xbtb_miss",
        D2bCause::NoPointer => "no_pointer",
        D2bCause::StalePointer => "stale_pointer",
        D2bCause::ArrayMiss => "array_miss",
        D2bCause::Return => "return",
        D2bCause::Indirect => "indirect",
        D2bCause::Misfetch => "misfetch",
        D2bCause::StructureMiss => "structure_miss",
    }
}

fn lookup_kind_str(k: LookupKind) -> &'static str {
    match k {
        LookupKind::Xbtb => "xbtb",
        LookupKind::Xibtb => "xibtb",
        LookupKind::Xrsb => "xrsb",
    }
}

fn fill_kind_str(k: FillKind) -> &'static str {
    match k {
        FillKind::Fresh => "fresh",
        FillKind::Contained => "contained",
        FillKind::Extended => "extended",
        FillKind::Complex => "complex",
    }
}

/// Encodes one event as a single JSON object (no trailing newline).
pub fn encode_event(e: &Event) -> String {
    match e {
        Event::Cycle(k) => format!(r#"{{"ev":"cycle","kind":"{}"}}"#, cycle_kind_str(*k)),
        Event::Uops { src, n } => {
            format!(r#"{{"ev":"uops","src":"{}","n":{n}}}"#, uop_source_str(*src))
        }
        Event::Mispredict(k) => {
            format!(r#"{{"ev":"mispredict","kind":"{}"}}"#, mispredict_kind_str(*k))
        }
        Event::SwitchToBuild(c) => format!(r#"{{"ev":"d2b","cause":"{}"}}"#, d2b_cause_str(*c)),
        Event::SwitchToDelivery => r#"{"ev":"b2d"}"#.to_owned(),
        Event::StructureMiss => r#"{"ev":"miss"}"#.to_owned(),
        Event::BankConflict { deferred } => {
            format!(r#"{{"ev":"bank_conflict","deferred":{deferred}}}"#)
        }
        Event::SetSearch { hit } => format!(r#"{{"ev":"set_search","hit":{hit}}}"#),
        Event::Promotion => r#"{"ev":"promote"}"#.to_owned(),
        Event::Depromotion => r#"{"ev":"depromote"}"#.to_owned(),
        Event::Lookup { what, hit } => {
            format!(r#"{{"ev":"lookup","what":"{}","hit":{hit}}}"#, lookup_kind_str(*what))
        }
        Event::Fill { kind, uops, banks } => {
            format!(
                r#"{{"ev":"fill","kind":"{}","uops":{uops},"banks":{banks}}}"#,
                fill_kind_str(*kind)
            )
        }
        Event::Eviction { lines } => format!(r#"{{"ev":"evict","lines":{lines}}}"#),
        Event::Occupancy { lines, uops } => {
            format!(r#"{{"ev":"occupancy","lines":{lines},"uops":{uops}}}"#)
        }
    }
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing/non-string field {key:?}"))
}

fn bool_field(j: &Json, key: &str) -> Result<bool, String> {
    j.get(key).and_then(Json::as_bool).ok_or_else(|| format!("missing/non-bool field {key:?}"))
}

fn num_field<T: std::str::FromStr>(j: &Json, key: &str) -> Result<T, String> {
    j.get(key)
        .and_then(|v| match v {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        })
        .ok_or_else(|| format!("missing/out-of-range field {key:?}"))
}

/// Decodes one event line.
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn decode_event(line: &str) -> Result<Event, String> {
    let j = Json::parse(line)?;
    let ev = str_field(&j, "ev")?;
    match ev {
        "cycle" => {
            let kind = match str_field(&j, "kind")? {
                "build" => CycleKind::Build,
                "delivery" => CycleKind::Delivery,
                "stall" => CycleKind::Stall,
                other => return Err(format!("bad cycle kind {other:?}")),
            };
            Ok(Event::Cycle(kind))
        }
        "uops" => {
            let src = match str_field(&j, "src")? {
                "structure" => UopSource::Structure,
                "ic" => UopSource::Ic,
                other => return Err(format!("bad uop source {other:?}")),
            };
            Ok(Event::Uops { src, n: num_field(&j, "n")? })
        }
        "mispredict" => {
            let kind = match str_field(&j, "kind")? {
                "cond" => MispredictKind::Cond,
                "target" => MispredictKind::Target,
                other => return Err(format!("bad mispredict kind {other:?}")),
            };
            Ok(Event::Mispredict(kind))
        }
        "d2b" => {
            let cause = match str_field(&j, "cause")? {
                "xbtb_miss" => D2bCause::XbtbMiss,
                "no_pointer" => D2bCause::NoPointer,
                "stale_pointer" => D2bCause::StalePointer,
                "array_miss" => D2bCause::ArrayMiss,
                "return" => D2bCause::Return,
                "indirect" => D2bCause::Indirect,
                "misfetch" => D2bCause::Misfetch,
                "structure_miss" => D2bCause::StructureMiss,
                other => return Err(format!("bad d2b cause {other:?}")),
            };
            Ok(Event::SwitchToBuild(cause))
        }
        "b2d" => Ok(Event::SwitchToDelivery),
        "miss" => Ok(Event::StructureMiss),
        "bank_conflict" => Ok(Event::BankConflict { deferred: num_field(&j, "deferred")? }),
        "set_search" => Ok(Event::SetSearch { hit: bool_field(&j, "hit")? }),
        "promote" => Ok(Event::Promotion),
        "depromote" => Ok(Event::Depromotion),
        "lookup" => {
            let what = match str_field(&j, "what")? {
                "xbtb" => LookupKind::Xbtb,
                "xibtb" => LookupKind::Xibtb,
                "xrsb" => LookupKind::Xrsb,
                other => return Err(format!("bad lookup kind {other:?}")),
            };
            Ok(Event::Lookup { what, hit: bool_field(&j, "hit")? })
        }
        "fill" => {
            let kind = match str_field(&j, "kind")? {
                "fresh" => FillKind::Fresh,
                "contained" => FillKind::Contained,
                "extended" => FillKind::Extended,
                "complex" => FillKind::Complex,
                other => return Err(format!("bad fill kind {other:?}")),
            };
            Ok(Event::Fill { kind, uops: num_field(&j, "uops")?, banks: num_field(&j, "banks")? })
        }
        "evict" => Ok(Event::Eviction { lines: num_field(&j, "lines")? }),
        "occupancy" => {
            Ok(Event::Occupancy { lines: num_field(&j, "lines")?, uops: num_field(&j, "uops")? })
        }
        other => Err(format!("unknown event tag {other:?}")),
    }
}

/// Formats a section header line (no trailing newline).
pub fn header(frontend: &str, trace: &str) -> String {
    format!(
        r#"{{"schema":"{SCHEMA}","frontend":"{}","trace":"{}"}}"#,
        escape(frontend),
        escape(trace)
    )
}

/// Appends a full section (header + events, one per line) to `out`.
pub fn write_section(out: &mut String, frontend: &str, trace: &str, events: &[Event]) {
    let _ = writeln!(out, "{}", header(frontend, trace));
    for e in events {
        let _ = writeln!(out, "{}", encode_event(e));
    }
}

/// Parses a complete event file back into its sections, validating the
/// schema tag of every header.
///
/// # Errors
///
/// Returns a line-annotated message on malformed lines, an unexpected
/// schema, or event lines before the first header.
pub fn parse_jsonl(text: &str) -> Result<Vec<Section>, String> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if let Some(schema) = j.get("schema") {
            let schema =
                schema.as_str().ok_or_else(|| format!("line {lineno}: non-string schema"))?;
            if schema != SCHEMA {
                return Err(format!(
                    "line {lineno}: unsupported schema {schema:?} (want {SCHEMA:?})"
                ));
            }
            sections.push(Section {
                frontend: str_field(&j, "frontend")
                    .map_err(|e| format!("line {lineno}: {e}"))?
                    .to_owned(),
                trace: str_field(&j, "trace")
                    .map_err(|e| format!("line {lineno}: {e}"))?
                    .to_owned(),
                events: Vec::new(),
            });
        } else {
            let section = sections
                .last_mut()
                .ok_or_else(|| format!("line {lineno}: event before any section header"))?;
            section.events.push(decode_event(line).map_err(|e| format!("line {lineno}: {e}"))?);
        }
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_variant() {
        let events = [
            Event::Cycle(CycleKind::Build),
            Event::Cycle(CycleKind::Delivery),
            Event::Cycle(CycleKind::Stall),
            Event::Uops { src: UopSource::Structure, n: 8 },
            Event::Uops { src: UopSource::Ic, n: 0 },
            Event::Mispredict(MispredictKind::Cond),
            Event::Mispredict(MispredictKind::Target),
            Event::SwitchToBuild(D2bCause::XbtbMiss),
            Event::SwitchToBuild(D2bCause::Misfetch),
            Event::SwitchToBuild(D2bCause::StructureMiss),
            Event::SwitchToDelivery,
            Event::StructureMiss,
            Event::BankConflict { deferred: 13 },
            Event::SetSearch { hit: true },
            Event::SetSearch { hit: false },
            Event::Promotion,
            Event::Depromotion,
            Event::Lookup { what: LookupKind::Xibtb, hit: true },
            Event::Fill { kind: FillKind::Extended, uops: 24, banks: 0b0110 },
            Event::Eviction { lines: 3 },
            Event::Occupancy { lines: 512, uops: 3100 },
        ];
        for e in events {
            let line = encode_event(&e);
            assert_eq!(decode_event(&line).unwrap(), e, "line {line}");
        }
    }

    #[test]
    fn sections_roundtrip() {
        let mut out = String::new();
        write_section(&mut out, "tc-32k", "spec.gcc", &[Event::Cycle(CycleKind::Build)]);
        write_section(
            &mut out,
            "xbc-32k",
            "games.quake",
            &[Event::SwitchToDelivery, Event::Cycle(CycleKind::Delivery)],
        );
        let secs = parse_jsonl(&out).unwrap();
        assert_eq!(secs.len(), 2);
        assert_eq!(secs[0].frontend, "tc-32k");
        assert_eq!(secs[0].events, vec![Event::Cycle(CycleKind::Build)]);
        assert_eq!(secs[1].trace, "games.quake");
        assert_eq!(secs[1].events.len(), 2);
    }

    #[test]
    fn rejects_headerless_and_bad_schema() {
        assert!(parse_jsonl("{\"ev\":\"b2d\"}\n").unwrap_err().contains("before any section"));
        let bad = "{\"schema\":\"xbc-events-v0\",\"frontend\":\"a\",\"trace\":\"b\"}\n";
        assert!(parse_jsonl(bad).unwrap_err().contains("unsupported schema"));
        assert!(parse_jsonl("not json\n").is_err());
    }
}
