//! Pure instruction-cache frontend (paper §2.1).
//!
//! The traditional baseline: every uop comes through the IC + decoder path,
//! there is no decoded-uop structure, and hence no delivery mode. Its
//! bandwidth ceiling is the decoder; its latency is charged implicitly via
//! decode-width limits and taken-branch fetch breaks.

use crate::build::{BuildEngine, NoFill, Predictors, TimingConfig};
use crate::frontend::Frontend;
use crate::metrics::FrontendMetrics;
use crate::oracle::OracleStream;
use crate::probe::Probe;
use xbc_obs::{Event, EventSink};
use xbc_predict::{BtbConfig, GshareConfig};
use xbc_uarch::{DecoderConfig, ICacheConfig};

/// Configuration of an [`IcFrontend`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IcFrontendConfig {
    /// Instruction cache geometry.
    pub icache: ICacheConfig,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// Decoder widths.
    pub decoder: DecoderConfig,
    /// Timing constants.
    pub timing: TimingConfig,
    /// Conditional predictor.
    pub gshare: GshareConfig,
}

/// The instruction-cache-only frontend.
///
/// # Examples
///
/// ```
/// use xbc_frontend::{Frontend, IcFrontend, IcFrontendConfig};
/// use xbc_workload::standard_traces;
///
/// let trace = standard_traces()[0].capture(5_000);
/// let mut fe = IcFrontend::new(IcFrontendConfig::default());
/// let m = fe.run(&trace);
/// assert_eq!(m.uop_miss_rate(), 1.0); // every uop comes from the IC
/// assert_eq!(m.total_uops(), trace.uop_count());
/// ```
#[derive(Clone, Debug)]
pub struct IcFrontend {
    engine: BuildEngine,
    preds: Predictors,
}

impl IcFrontend {
    /// Creates the frontend.
    pub fn new(cfg: IcFrontendConfig) -> Self {
        IcFrontend {
            engine: BuildEngine::new(cfg.icache, cfg.btb, cfg.decoder, cfg.timing),
            preds: Predictors::new(cfg.gshare),
        }
    }

    fn step_probe<S: EventSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        probe: &mut Probe<'_, S>,
    ) {
        let kind = self.engine.cycle(oracle, &mut self.preds, probe, &mut NoFill);
        probe.emit(Event::Cycle(kind));
    }
}

impl Frontend for IcFrontend {
    fn name(&self) -> &str {
        "ic"
    }

    fn step(&mut self, oracle: &mut OracleStream<'_>, metrics: &mut FrontendMetrics) {
        self.step_probe(oracle, &mut Probe::untraced(metrics));
    }

    fn step_traced(
        &mut self,
        oracle: &mut OracleStream<'_>,
        metrics: &mut FrontendMetrics,
        sink: &mut dyn EventSink,
    ) {
        self.step_probe(oracle, &mut Probe::traced(metrics, sink));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_workload::standard_traces;

    #[test]
    fn delivers_whole_trace() {
        let trace = standard_traces()[0].capture(20_000);
        let mut fe = IcFrontend::new(IcFrontendConfig::default());
        let m = fe.run(&trace);
        assert_eq!(m.total_uops(), trace.uop_count());
        assert_eq!(m.structure_uops, 0);
        assert_eq!(m.delivery_cycles, 0);
        assert_eq!(m.cycles, m.build_cycles + m.stall_cycles);
    }

    #[test]
    fn bandwidth_is_decoder_limited() {
        let trace = standard_traces()[0].capture(20_000);
        let mut fe = IcFrontend::new(IcFrontendConfig::default());
        let m = fe.run(&trace);
        let upc = m.overall_uops_per_cycle();
        // A single-ported IC frontend cannot sustain anything near the
        // 8-uop renamer width on branchy integer code.
        assert!(upc > 0.5 && upc < 6.0, "uops/cycle {upc}");
    }

    #[test]
    fn name_is_stable() {
        let fe = IcFrontend::new(IcFrontendConfig::default());
        assert_eq!(fe.name(), "ic");
    }
}
