//! XBC configuration.

use std::fmt;
use xbc_frontend::TimingConfig;
use xbc_predict::{BtbConfig, GshareConfig};
use xbc_uarch::{DecoderConfig, ICacheConfig};

/// How branch promotion (§3.8) is realized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PromotionMode {
    /// No promotion: every conditional consumes prediction bandwidth.
    Off,
    /// Prediction-free chaining: a promoted branch follows its monotonic
    /// successor without consuming one of the per-cycle XBTB pointer
    /// slots. Same fetch-bandwidth effect as the paper's merged XB, no
    /// storage copy (see DESIGN.md §6.2).
    #[default]
    Chain,
    /// Physical merging: XB0 is copied to extend XB1 in XB1's set, forming
    /// the combined (possibly complex) XB of §3.8, XB0's original lines
    /// are LRU-demoted, and pointers heal to the combined block.
    Merge,
}

impl PromotionMode {
    /// True unless promotion is off.
    pub const fn enabled(self) -> bool {
        !matches!(self, PromotionMode::Off)
    }
}

impl fmt::Display for PromotionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromotionMode::Off => f.write_str("off"),
            PromotionMode::Chain => f.write_str("chain"),
            PromotionMode::Merge => f.write_str("merge"),
        }
    }
}

/// Full configuration of an XBC frontend (paper §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XbcConfig {
    /// Total uop capacity (sets × banks × ways × line_uops). Paper headline
    /// size: 32K uops.
    pub total_uops: usize,
    /// Number of banks (paper: 4; each bank has one decoder, so one line
    /// per bank can be read per cycle).
    pub banks: usize,
    /// Ways per bank (paper: 2-way set-associative banks).
    pub ways: usize,
    /// Uops per bank line (paper: 4, for a 16-uop maximum fetch width).
    pub line_uops: usize,
    /// Maximum uops per extended block (the 16-uop quota of §3.1).
    pub max_xb_uops: usize,
    /// XBTB entries (paper: fixed 8K).
    pub xbtb_entries: usize,
    /// Number of XB pointers the XBTB supplies per cycle (the paper's
    /// prediction bandwidth *n* = 2).
    pub xbs_per_cycle: usize,
    /// XBQ depth in uops (§3.6: "we need to decouple the XBTB from the
    /// XBC, as in Rein99; this is done by the XBQ"). `0` disables
    /// fetch-ahead: a new fetch group starts only once the queue drains —
    /// the pacing that keeps XBC and TC bandwidth directly comparable.
    /// Depths ≥ the fetch width let fetch run ahead of the renamer.
    pub xbq_depth: usize,
    /// Branch promotion mode (§3.8).
    pub promotion: PromotionMode,
    /// Enable set search on XBTB-hit/XBC-miss (§3.9).
    pub set_search: bool,
    /// Enable the smart build-mode placement that avoids bank conflicts
    /// with the previous XB (§3.10).
    pub smart_placement: bool,
    /// Enable dynamic (delivery-mode) conflict-driven re-placement (§3.10).
    pub dynamic_placement: bool,
    /// Deferred-fetch events before dynamic placement moves a line (§3.10).
    pub conflict_threshold: u8,
    /// Build-path instruction cache.
    pub icache: ICacheConfig,
    /// Build-path BTB.
    pub btb: BtbConfig,
    /// Build-path decoder widths.
    pub decoder: DecoderConfig,
    /// Timing constants (renamer width 8, misprediction penalty).
    pub timing: TimingConfig,
    /// Conditional predictor (the XBP; paper: 16-bit gshare).
    pub gshare: GshareConfig,
}

impl Default for XbcConfig {
    /// The paper's headline configuration: 32K uops, 4 banks × 2 ways ×
    /// 4 uops, 8K-entry XBTB, 2 XBs per cycle, all §3 features on.
    fn default() -> Self {
        XbcConfig {
            total_uops: 32 * 1024,
            banks: 4,
            ways: 2,
            line_uops: 4,
            max_xb_uops: 16,
            xbtb_entries: 8192,
            xbs_per_cycle: 2,
            xbq_depth: 0,
            promotion: PromotionMode::Chain,
            set_search: true,
            smart_placement: true,
            dynamic_placement: true,
            conflict_threshold: 8,
            icache: ICacheConfig::default(),
            btb: BtbConfig::default(),
            decoder: DecoderConfig::default(),
            timing: TimingConfig::default(),
            gshare: GshareConfig::default(),
        }
    }
}

impl XbcConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn sets(&self) -> usize {
        self.validate();
        self.total_uops / (self.banks * self.ways * self.line_uops)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any inconsistency.
    pub fn validate(&self) {
        assert!(self.banks >= 1 && self.banks <= 8, "banks must be in 1..=8");
        assert!(self.ways >= 1, "need at least one way per bank");
        assert!(self.line_uops >= 1, "lines must hold at least one uop");
        assert!(
            self.max_xb_uops <= self.banks * self.line_uops,
            "an XB (max {} uops) must fit across the banks ({} × {})",
            self.max_xb_uops,
            self.banks,
            self.line_uops
        );
        let set_uops = self.banks * self.ways * self.line_uops;
        assert!(
            self.total_uops >= set_uops && self.total_uops.is_multiple_of(set_uops),
            "total_uops ({}) must be a positive multiple of uops per set ({set_uops})",
            self.total_uops
        );
        assert!(self.xbtb_entries.is_power_of_two(), "XBTB entries must be a power of two");
        assert!(self.xbs_per_cycle >= 1, "must fetch at least one XB per cycle");
    }

    /// Maximum lines an XB can span.
    pub fn max_lines_per_xb(&self) -> usize {
        self.max_xb_uops.div_ceil(self.line_uops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let c = XbcConfig::default();
        // 32K uops / (4 banks × 2 ways × 4 uops) = 1024 sets.
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.max_lines_per_xb(), 4);
    }

    #[test]
    fn direct_mapped_variant() {
        let c = XbcConfig { ways: 1, ..XbcConfig::default() };
        assert_eq!(c.sets(), 2048);
    }

    #[test]
    #[should_panic(expected = "must fit across the banks")]
    fn xb_must_fit_fetch_width() {
        let c = XbcConfig { banks: 2, ..XbcConfig::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "multiple of uops per set")]
    fn capacity_must_divide() {
        let c = XbcConfig { total_uops: 100, ..XbcConfig::default() };
        c.validate();
    }
}
