//! # xbc-uarch — shared microarchitecture substrates
//!
//! Building blocks used by every frontend model in the workspace:
//!
//! * [`SetAssoc`] — a generic set-associative cache with true-LRU
//!   replacement (backs the instruction cache and the trace-cache
//!   baseline; the XBC builds its banked array on the same discipline),
//! * [`ICache`] — the instruction cache that feeds build mode
//!   (paper Figure 6),
//! * [`Decoder`] — the decode-width budget of the build-mode pipeline
//!   (paper §2.1),
//! * [`Histogram`] — fixed-range histograms for block-length and
//!   bandwidth distributions (paper Figure 1).
//!
//! # Example
//!
//! ```
//! use xbc_uarch::{ICache, ICacheConfig};
//! use xbc_isa::Addr;
//!
//! let mut ic = ICache::new(ICacheConfig::default());
//! let miss = ic.fetch(Addr::new(0x1000));
//! assert!(!miss.hit);
//! assert!(ic.fetch(Addr::new(0x1004)).hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod decoder;
mod histogram;
mod icache;

pub use cache::{CacheStats, SetAssoc};
pub use decoder::{Decoder, DecoderConfig};
pub use histogram::Histogram;
pub use icache::{ICache, ICacheConfig, IcAccess};
