//! Sweep-scheduler performance accounting (`--bench-json`).
//!
//! [`Sweep::run_with_bench`](crate::Sweep::run_with_bench) returns a
//! [`SweepBench`] alongside the rows: end-to-end wall time, the
//! capture/simulation split, cache effectiveness, and per-worker
//! utilization of the cell scheduler. The figure harnesses serialize it
//! (via [`SweepBench::to_json`]) to a `BENCH_sweep.json` artifact, so
//! simulator throughput is tracked as machine-readable data rather than
//! a terminal anecdote.

use std::fmt;

/// What one sweep worker did, for the utilization report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Cells this worker completed.
    pub cells: usize,
    /// Wall-clock milliseconds this worker spent inside cells. Time
    /// blocked waiting on another worker's shared capture counts as
    /// busy — the worker is serialized, not idle.
    pub busy_ms: u64,
}

/// Performance accounting of one sweep run.
#[derive(Clone, Debug, Default)]
pub struct SweepBench {
    /// Resolved worker-thread cap (after `0` = one per core).
    pub threads: usize,
    /// Traces in the grid.
    pub traces: usize,
    /// Frontend configurations in the grid.
    pub frontends: usize,
    /// Grid size: `traces × frontends`.
    pub total_cells: usize,
    /// Cells replayed from the result cache (no capture, no simulation).
    pub cached_cells: usize,
    /// Cells simulated this run.
    pub simulated_cells: usize,
    /// Cells resolved without simulating *or* probing-as-cached: the
    /// row was shared from a concurrent request's in-flight simulation
    /// of the identical cell, or picked up from a result the cache
    /// probe missed but a concurrent request stored moments later.
    /// Always 0 for a one-shot `Sweep`; the `xbc-serve` daemon's
    /// cross-request single-flight dedup reports here.
    pub deduped_cells: usize,
    /// Traces captured (or loaded from the trace store) this run.
    pub captures: u64,
    /// Capture wall time, summed over captured traces.
    pub capture_ms: u64,
    /// Simulation wall time, summed over simulated cells.
    pub sim_ms: u64,
    /// Cold cells whose capture ran overlapped with their own
    /// simulation (streamed capture feeding the replay live). Always 0
    /// with `stream_capture` off or no store.
    pub overlapped_cells: usize,
    /// Capture milliseconds hidden behind simulation on overlapped
    /// cells: for each such cell, the part of its capture that ran
    /// while the cell was also simulating. Bounded by `capture_ms`;
    /// capture and sim attributions still sum to each cell's wall time
    /// (no double-counting).
    pub overlap_ms: u64,
    /// End-to-end wall time of the run.
    pub wall_ms: u64,
    /// Per-worker busy time and cell counts (one entry per spawned
    /// worker; empty when every cell was cached).
    pub workers: Vec<WorkerStat>,
}

impl SweepBench {
    /// Simulated cells per second of wall time.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_ms == 0 {
            0.0
        } else {
            self.simulated_cells as f64 * 1000.0 / self.wall_ms as f64
        }
    }

    /// Fraction of total capture time that was hidden behind
    /// simulation on overlapped cells (`overlap_ms / capture_ms`; 0
    /// when nothing was captured). 1.0 means every captured millisecond
    /// ran concurrently with a simulation.
    pub fn overlap_fraction(&self) -> f64 {
        if self.capture_ms == 0 {
            0.0
        } else {
            self.overlap_ms as f64 / self.capture_ms as f64
        }
    }

    /// Mean fraction of the run's wall time the workers spent busy
    /// (1.0 = perfectly utilized).
    pub fn worker_utilization(&self) -> f64 {
        if self.workers.is_empty() || self.wall_ms == 0 {
            return 0.0;
        }
        let busy: u64 = self.workers.iter().map(|w| w.busy_ms).sum();
        busy as f64 / (self.workers.len() as u64 * self.wall_ms) as f64
    }

    /// Serializes to the `BENCH_sweep.json` schema. Field order is
    /// fixed, so diffs between runs are line-oriented.
    pub fn to_json(&self) -> String {
        let workers = if self.workers.is_empty() {
            "[]".to_owned()
        } else {
            let rows: Vec<String> = self
                .workers
                .iter()
                .map(|w| format!("    {{ \"cells\": {}, \"busy_ms\": {} }}", w.cells, w.busy_ms))
                .collect();
            format!("[\n{}\n  ]", rows.join(",\n"))
        };
        format!(
            "{{\n  \"schema\": \"xbc-sweep-bench-v1\",\n  \"threads\": {},\n  \
             \"traces\": {},\n  \"frontends\": {},\n  \"total_cells\": {},\n  \
             \"cached_cells\": {},\n  \"simulated_cells\": {},\n  \"deduped_cells\": {},\n  \
             \"captures\": {},\n  \
             \"capture_ms\": {},\n  \"sim_ms\": {},\n  \
             \"overlapped_cells\": {},\n  \"overlap_ms\": {},\n  \"overlap_fraction\": {},\n  \
             \"wall_ms\": {},\n  \
             \"cells_per_sec\": {},\n  \"worker_utilization\": {},\n  \"workers\": {}\n}}\n",
            self.threads,
            self.traces,
            self.frontends,
            self.total_cells,
            self.cached_cells,
            self.simulated_cells,
            self.deduped_cells,
            self.captures,
            self.capture_ms,
            self.sim_ms,
            self.overlapped_cells,
            self.overlap_ms,
            self.overlap_fraction(),
            self.wall_ms,
            self.cells_per_sec(),
            self.worker_utilization(),
            workers,
        )
    }
}

impl fmt::Display for SweepBench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells ({} cached, {} simulated{}) in {} ms on {} threads: \
             {:.1} cells/s, capture {} ms, sim {} ms{}, utilization {:.0}%",
            self.total_cells,
            self.cached_cells,
            self.simulated_cells,
            if self.deduped_cells > 0 {
                format!(", {} deduped", self.deduped_cells)
            } else {
                String::new()
            },
            self.wall_ms,
            self.threads,
            self.cells_per_sec(),
            self.capture_ms,
            self.sim_ms,
            if self.overlapped_cells > 0 {
                format!(
                    " ({} overlapped, {:.0}% of capture hidden)",
                    self.overlapped_cells,
                    100.0 * self.overlap_fraction()
                )
            } else {
                String::new()
            },
            100.0 * self.worker_utilization(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepBench {
        SweepBench {
            threads: 4,
            traces: 2,
            frontends: 8,
            total_cells: 16,
            cached_cells: 4,
            simulated_cells: 12,
            deduped_cells: 0,
            captures: 2,
            capture_ms: 30,
            sim_ms: 970,
            overlapped_cells: 1,
            overlap_ms: 15,
            wall_ms: 500,
            workers: vec![
                WorkerStat { cells: 6, busy_ms: 490 },
                WorkerStat { cells: 6, busy_ms: 510 },
            ],
        }
    }

    #[test]
    fn derived_rates() {
        let b = sample();
        assert!((b.cells_per_sec() - 24.0).abs() < 1e-9);
        assert!((b.worker_utilization() - 1.0).abs() < 1e-9);
        assert!((b.overlap_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(SweepBench::default().overlap_fraction(), 0.0);
        assert_eq!(SweepBench::default().cells_per_sec(), 0.0);
        assert_eq!(SweepBench::default().worker_utilization(), 0.0);
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        for field in [
            "\"schema\": \"xbc-sweep-bench-v1\"",
            "\"threads\": 4",
            "\"total_cells\": 16",
            "\"cached_cells\": 4",
            "\"simulated_cells\": 12",
            "\"capture_ms\": 30",
            "\"sim_ms\": 970",
            "\"overlapped_cells\": 1",
            "\"overlap_ms\": 15",
            "\"overlap_fraction\": 0.5",
            "\"wall_ms\": 500",
            "\"cells\": 6",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
        // Parses as JSON with our own parser.
        let doc = crate::json::Json::parse(&j).unwrap();
        assert_eq!(doc.get("total_cells").and_then(crate::json::Json::as_u64), Some(16));
        assert_eq!(doc.get("workers").and_then(crate::json::Json::as_arr).map(<[_]>::len), Some(2));
    }

    #[test]
    fn display_summary() {
        let s = sample().to_string();
        assert!(s.contains("16 cells"));
        assert!(s.contains("4 threads"));
    }
}
