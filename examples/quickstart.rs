//! Quickstart: synthesize a workload, run the eXtended Block Cache
//! frontend over it, and print the paper's two headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xbc::{XbcConfig, XbcFrontend};
use xbc_frontend::Frontend;
use xbc_workload::standard_traces;

fn main() {
    // One of the 21 standard traces (a SPECint95-like synthetic stand-in).
    let spec = &standard_traces()[0];
    println!("capturing {} (100k instructions)...", spec.name);
    let trace = spec.capture(100_000);
    println!("  {} dynamic instructions, {} uops", trace.inst_count(), trace.uop_count());

    // The paper's headline configuration: 32K uops, 4 banks x 2 ways,
    // 8K-entry XBTB, branch promotion, set search, smart placement.
    let mut frontend = XbcFrontend::new(XbcConfig::default());
    let metrics = frontend.run(&trace);

    println!();
    println!("XBC @ 32K uops:");
    println!(
        "  uop miss rate      {:.2}% (uops fetched through the IC)",
        100.0 * metrics.uop_miss_rate()
    );
    println!("  delivery bandwidth {:.2} uops/cycle (on XBC hits)", metrics.delivery_bandwidth());
    println!("  overall throughput {:.2} uops/cycle", metrics.overall_uops_per_cycle());
    println!(
        "  mode switches      {} to build, {} back",
        metrics.delivery_to_build, metrics.build_to_delivery
    );
    println!("  promotions         {}", metrics.promotions);

    // The XBC's central structural claim: (nearly) no uop is stored twice.
    let (stored, distinct) = frontend.array().redundancy();
    println!(
        "  redundancy         {} stored / {} distinct uops ({:.2}% duplicated)",
        stored,
        distinct,
        100.0 * (stored - distinct) as f64 / stored.max(1) as f64
    );
}
