//! Fair scheduling under contention: a huge sweep must not starve a
//! tiny one (round-robin within a priority class), and a
//! higher-priority request's queued cells dispatch ahead of a
//! lower-priority rival's.

use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use xbc_serve::protocol::SweepRequest;
use xbc_serve::{ping, shutdown, submit, Endpoint, ServeConfig};
use xbc_sim::FrontendSpec;
use xbc_workload::standard_traces;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbc-serve-fair-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_until_live(endpoint: &Endpoint) {
    for _ in 0..500 {
        if ping(endpoint).is_ok() {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {endpoint}");
}

/// `n` distinct XBC frontends (distinct capacities → distinct cells).
fn grid(n: usize, base: usize) -> Vec<FrontendSpec> {
    (0..n)
        .map(|i| FrontendSpec::Xbc { total_uops: base + i * 64, ways: 2, promotion: true })
        .collect()
}

fn req(name: &str, frontends: Vec<FrontendSpec>, priority: u32) -> SweepRequest {
    // Enough work per cell that the first request is still queued when
    // the second arrives 100ms later — otherwise there is no contention
    // for round-robin or priority to arbitrate.
    SweepRequest { traces: vec![name.to_owned()], frontends, insts: 3_000, priority }
}

/// Boots an uncached 2-worker daemon (uncached: every cell simulates,
/// so queue pressure is real and repeatable).
fn boot(tag: &str) -> (Endpoint, thread::JoinHandle<std::io::Result<()>>, PathBuf) {
    let dir = scratch_dir(tag);
    let endpoint = Endpoint::unix(dir.join("d.sock"));
    let mut config = ServeConfig::new(endpoint.clone());
    config.threads = 2;
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    wait_until_live(&endpoint);
    (endpoint, daemon, dir)
}

#[test]
fn small_request_is_not_starved_by_a_huge_one() {
    let (endpoint, daemon, dir) = boot("rr");
    let name = standard_traces()[0].name;

    // Client A floods the queue with ~1000 cells; client B asks for 2.
    // At equal priority, round-robin dispatches one cell per client per
    // turn, so B finishes its 2 cells while A has ~998 to go.
    let big = req(name, grid(1000, 4096), 0);
    let small = req(name, grid(2, 256 * 1024), 0);
    let t0 = Instant::now();
    let (big_elapsed, small_elapsed) = thread::scope(|s| {
        let a = s.spawn(|| {
            let out = submit(&endpoint, &big).unwrap();
            (t0.elapsed(), out)
        });
        // Let A's thousand cells hit the queue first.
        thread::sleep(Duration::from_millis(100));
        let b = s.spawn(|| {
            let out = submit(&endpoint, &small).unwrap();
            (t0.elapsed(), out)
        });
        let (big_elapsed, big_out) = a.join().unwrap();
        let (small_elapsed, small_out) = b.join().unwrap();
        assert_eq!(big_out.rows.len(), 1000);
        assert_eq!(small_out.rows.len(), 2);
        (big_elapsed, small_elapsed)
    });
    assert!(
        small_elapsed < big_elapsed,
        "round-robin must complete the 2-cell request before the 1000-cell one \
         (small {small_elapsed:?} vs big {big_elapsed:?})"
    );

    shutdown(&endpoint).unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn higher_priority_request_preempts_queued_cells() {
    let (endpoint, daemon, dir) = boot("prio");
    let name = standard_traces()[0].name;

    // Two equally-large requests; B arrives second but at priority 1.
    // Under plain round-robin B would finish *after* A (A has a head
    // start); priority must flip that: every queued dispatch goes to B
    // until B is done. Disjoint capacity ranges keep the grids from
    // sharing (and thus dedup'ing) any cell.
    let a_req = req(name, grid(400, 4096), 0);
    let b_req = req(name, grid(400, 512 * 1024), 1);
    let t0 = Instant::now();
    let (a_elapsed, b_elapsed) = thread::scope(|s| {
        let a = s.spawn(|| {
            let out = submit(&endpoint, &a_req).unwrap();
            (t0.elapsed(), out)
        });
        thread::sleep(Duration::from_millis(100));
        let b = s.spawn(|| {
            let out = submit(&endpoint, &b_req).unwrap();
            (t0.elapsed(), out)
        });
        let (a_elapsed, a_out) = a.join().unwrap();
        let (b_elapsed, b_out) = b.join().unwrap();
        assert_eq!(a_out.rows.len(), 400);
        assert_eq!(b_out.rows.len(), 400);
        (a_elapsed, b_elapsed)
    });
    assert!(
        b_elapsed < a_elapsed,
        "priority 1 must complete before the priority-0 request that queued first \
         (high {b_elapsed:?} vs low {a_elapsed:?})"
    );

    shutdown(&endpoint).unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
