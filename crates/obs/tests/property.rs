//! Property tests for the event layer, seeded and hermetic (in-tree
//! splitmix64, no external fuzzing deps):
//!
//! * every randomly generated event survives the JSONL
//!   `encode_event` → `decode_event` roundtrip bit-for-bit,
//! * random multi-section files survive `write_section` → `parse_jsonl`,
//! * a [`RingSink`] of random capacity fed a random stream retains the
//!   newest `cap` events, drops oldest-first, and reports the exact
//!   `dropped` count.

use xbc_obs::jsonl::{decode_event, encode_event, parse_jsonl, write_section};
use xbc_obs::{
    CycleKind, D2bCause, Event, EventSink, FillKind, LookupKind, MispredictKind, RingSink,
    UopSource,
};

/// splitmix64: tiny, seedable, good enough to shake out encode bugs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn event(&mut self) -> Event {
        match self.below(14) {
            0 => Event::Cycle(match self.below(3) {
                0 => CycleKind::Build,
                1 => CycleKind::Delivery,
                _ => CycleKind::Stall,
            }),
            1 => Event::Uops {
                src: if self.below(2) == 0 { UopSource::Structure } else { UopSource::Ic },
                n: self.next() as u16,
            },
            2 => Event::Mispredict(if self.below(2) == 0 {
                MispredictKind::Cond
            } else {
                MispredictKind::Target
            }),
            3 => Event::SwitchToBuild(match self.below(8) {
                0 => D2bCause::XbtbMiss,
                1 => D2bCause::NoPointer,
                2 => D2bCause::StalePointer,
                3 => D2bCause::ArrayMiss,
                4 => D2bCause::Return,
                5 => D2bCause::Indirect,
                6 => D2bCause::Misfetch,
                _ => D2bCause::StructureMiss,
            }),
            4 => Event::SwitchToDelivery,
            5 => Event::StructureMiss,
            6 => Event::BankConflict { deferred: self.next() as u16 },
            7 => Event::SetSearch { hit: self.below(2) == 0 },
            8 => Event::Promotion,
            9 => Event::Depromotion,
            10 => Event::Lookup {
                what: match self.below(3) {
                    0 => LookupKind::Xbtb,
                    1 => LookupKind::Xibtb,
                    _ => LookupKind::Xrsb,
                },
                hit: self.below(2) == 0,
            },
            11 => Event::Fill {
                kind: match self.below(4) {
                    0 => FillKind::Fresh,
                    1 => FillKind::Contained,
                    2 => FillKind::Extended,
                    _ => FillKind::Complex,
                },
                uops: self.next() as u16,
                banks: self.next() as u8,
            },
            12 => Event::Eviction { lines: self.next() as u16 },
            _ => Event::Occupancy { lines: self.next() as u32, uops: self.next() as u32 },
        }
    }
}

#[test]
fn random_events_roundtrip_encode_decode() {
    let mut rng = Rng(0xce11_feed_0bad_cafe);
    for i in 0..20_000 {
        let e = rng.event();
        let line = encode_event(&e);
        let back = decode_event(&line)
            .unwrap_or_else(|err| panic!("iteration {i}: {err} decoding {line}"));
        assert_eq!(back, e, "iteration {i}: roundtrip mismatch for line {line}");
    }
}

#[test]
fn random_sections_roundtrip_through_files() {
    let mut rng = Rng(0x5eed_0fda_7a5e_c7e5);
    for round in 0..50 {
        let n_sections = 1 + rng.below(4) as usize;
        let mut file = String::new();
        let mut expected = Vec::new();
        for s in 0..n_sections {
            let frontend = format!("fe-{round}-{s}");
            let trace = format!("trace.{}", rng.below(100));
            let events: Vec<Event> = (0..rng.below(200)).map(|_| rng.event()).collect();
            write_section(&mut file, &frontend, &trace, &events);
            expected.push((frontend, trace, events));
        }
        let sections = parse_jsonl(&file).expect("generated file must parse");
        assert_eq!(sections.len(), expected.len());
        for (sec, (frontend, trace, events)) in sections.iter().zip(&expected) {
            assert_eq!(&sec.frontend, frontend);
            assert_eq!(&sec.trace, trace);
            assert_eq!(&sec.events, events);
        }
    }
}

#[test]
fn ring_sink_retains_newest_and_counts_drops_exactly() {
    let mut rng = Rng(0xb0a7_10ad);
    for round in 0..200 {
        let cap = rng.below(65) as usize; // 0..=64, including the degenerate cap
        let len = rng.below(300) as usize;
        let stream: Vec<Event> = (0..len).map(|_| rng.event()).collect();
        let mut sink = RingSink::new(cap);
        for e in &stream {
            sink.emit(*e);
        }
        let expected_dropped = len.saturating_sub(cap) as u64;
        assert_eq!(sink.dropped(), expected_dropped, "round {round}: cap {cap}, len {len}");
        assert_eq!(sink.len(), len.min(cap), "round {round}");
        // Oldest-first drops mean the retained window is the stream's tail.
        let tail = &stream[len - len.min(cap)..];
        let kept: Vec<Event> = sink.into_events();
        assert_eq!(kept, tail, "round {round}: retained window is not the newest events");
    }
}
