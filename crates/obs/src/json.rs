//! Minimal in-tree JSON support.
//!
//! The workspace needs JSON for exactly three things: dumping sweep
//! rows for EXPERIMENTS.md, round-tripping rows through the xbc-store
//! result cache, and the [`crate::jsonl`] event codec. That subset —
//! objects, arrays, strings, numbers, booleans — does not justify a
//! registry dependency, so this module implements it directly and
//! keeps the build hermetic. (`xbc-sim` re-exports this module as
//! `xbc_sim::json`, its home before `xbc-obs` existed.)
//!
//! Numbers are kept as their source text ([`Json::Num`] holds the
//! literal): `u64` counters round-trip without passing through `f64`,
//! and `f64` fields are written with Rust's shortest-roundtrip `{}`
//! formatting, so parse(write(x)) == x exactly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize`, if this is an integral number in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    // Validate by parsing as f64 — accepts everything we emit.
    text.parse::<f64>().map_err(|_| format!("bad number {text:?} at byte {start}"))?;
    Ok(Json::Num(text.to_owned()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are not paired here; the writer never
                        // emits them (it escapes only control characters).
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this
                // is always well-formed).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad UTF-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("\"hi\"").unwrap().as_str(), Some("hi"));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
    }

    #[test]
    fn u64_counters_do_not_lose_precision() {
        let big = u64::MAX - 1;
        let j = Json::parse(&big.to_string()).unwrap();
        assert_eq!(j.as_u64(), Some(big));
    }

    #[test]
    fn f64_shortest_repr_roundtrips_exactly() {
        for x in [0.1, 1.0 / 3.0, 0.12345678901234568, f64::MIN_POSITIVE, 1e300] {
            let j = Json::parse(&format!("{x}")).unwrap();
            assert_eq!(j.as_f64(), Some(x));
        }
    }

    #[test]
    fn objects_and_arrays() {
        let j = Json::parse(r#"{"a": [1, 2], "b": {"c": "d"}, "e": null}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
        assert_eq!(j.get("e"), Some(&Json::Null));
        assert_eq!(j.get("zzz"), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"x", "{\"a\"}", "tru", "01x", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
