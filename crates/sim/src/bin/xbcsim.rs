//! `xbcsim` — command-line driver for the XBC reproduction.
//!
//! ```text
//! xbcsim list
//! xbcsim run   --frontend xbc --size 32768 --trace spec.gcc --inst 500000 [--trace-events ev.jsonl]
//! xbcsim run   --frontend tc  --from trace.xbt
//! xbcsim sweep --frontends tc,xbc --sizes 8192,32768 --inst 200000 [--traces a,b] [--json out.json] [--bench-json BENCH_sweep.json] [--threads N] [--cache DIR|off] [--trace-events ev.jsonl]
//! xbcsim inspect --events ev.jsonl
//! xbcsim capture --trace sys.access --inst 100000 --out trace.xbt
//! xbcsim dot --trace spec.gcc --function 3 > f3.dot
//! ```

use std::fs::File;
use std::process::exit;
use xbc_sim::{pivot_table, FrontendSpec, Row, Sweep};
use xbc_workload::{function_dot, standard_traces, Trace};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  xbcsim list");
    eprintln!("  xbcsim run --frontend ic|uopcache|bbtc|tc|xbc [--size N] [--check on] [--trace-events FILE] (--trace NAME --inst N | --from FILE)");
    eprintln!("  xbcsim sweep [--frontends tc,xbc] [--sizes 8192,32768] [--traces a,b] [--inst N] [--json FILE] [--bench-json FILE] [--threads N] [--cache DIR|off] [--check on] [--trace-events FILE]");
    eprintln!("  xbcsim inspect --events FILE   (render an xbc-events-v1 stream)");
    eprintln!("  xbcsim capture --trace NAME --inst N --out FILE");
    eprintln!("  xbcsim dot --trace NAME [--function K]   (DOT CFG to stdout)");
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

/// Tiny flag parser: `--key value` pairs after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            if !k.starts_with("--") {
                fail(&format!("unexpected argument: {k}"));
            }
            let v = it.next().unwrap_or_else(|| fail(&format!("{k} needs a value")));
            out.push((k[2..].to_owned(), v.clone()));
        }
        Flags(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> usize {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| fail(&format!("bad --{key}: {v}"))),
        }
    }

    fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.get(key) {
            None => default,
            Some("true" | "on" | "1") => true,
            Some("false" | "off" | "0") => false,
            Some(v) => fail(&format!("bad --{key}: {v} (want on|off)")),
        }
    }
}

fn frontend_spec(kind: &str, size: usize) -> FrontendSpec {
    match kind {
        "ic" => FrontendSpec::Ic,
        "uopcache" => FrontendSpec::UopCache { total_uops: size },
        "bbtc" => FrontendSpec::Bbtc { total_uops: size },
        "tc" => FrontendSpec::Tc { total_uops: size, ways: 4 },
        "xbc" => FrontendSpec::Xbc { total_uops: size, ways: 2, promotion: true },
        other => fail(&format!("unknown frontend: {other}")),
    }
}

fn load_trace_by_name(name: &str, insts: usize) -> Trace {
    let spec = standard_traces()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| fail(&format!("unknown trace: {name} (see `xbcsim list`)")));
    spec.capture(insts)
}

fn cmd_list() {
    println!("{:<18} {:>10} {:>10} {:>6}", "trace", "suite", "functions", "seed");
    for t in standard_traces() {
        println!("{:<18} {:>10} {:>10} {:>6}", t.name, t.suite.to_string(), t.functions, t.seed);
    }
}

fn cmd_run(flags: &Flags) {
    let kind = flags.get("frontend").unwrap_or("xbc");
    let size = flags.get_usize("size", 32 * 1024);
    let trace = if let Some(path) = flags.get("from") {
        let f = File::open(path).unwrap_or_else(|e| fail(&format!("open {path}: {e}")));
        Trace::load(f).unwrap_or_else(|e| fail(&format!("load {path}: {e}")))
    } else {
        let name = flags.get("trace").unwrap_or_else(|| fail("run needs --trace or --from"));
        load_trace_by_name(name, flags.get_usize("inst", 500_000))
    };
    let spec = frontend_spec(kind, size);
    let mut fe = spec.instantiate();
    let check = flags.get_bool("check", false);
    let m = if let Some(path) = flags.get("trace-events") {
        let mut sink = xbc_obs::VecSink::new();
        let m = if check {
            xbc_sim::run_checked_traced(&mut *fe, &trace, trace.name(), &mut sink)
        } else {
            fe.run_traced(&trace, &mut sink)
        };
        let mut out = String::new();
        xbc_obs::jsonl::write_section(&mut out, &spec.label(), trace.name(), &sink.events);
        std::fs::write(path, out).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path} ({} events)", sink.events.len());
        m
    } else if check {
        // Verified replay: per-cycle accounting identities + structural
        // audit, same metrics as the plain run.
        xbc_sim::run_checked(&mut *fe, &trace, trace.name())
    } else {
        fe.run(&trace)
    };
    println!("{} on {} ({} uops):", spec.label(), trace.name(), trace.uop_count());
    println!("{m}");
}

fn cmd_inspect(flags: &Flags) {
    let path = flags.get("events").unwrap_or_else(|| fail("inspect needs --events FILE"));
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    match xbc_sim::render_inspect(&text) {
        Ok(report) => print!("{report}"),
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn cmd_sweep(flags: &Flags) {
    let traces: Vec<_> = match flags.get("traces") {
        None => standard_traces(),
        Some(list) => {
            let all = standard_traces();
            list.split(',')
                .map(|name| {
                    all.iter()
                        .find(|t| t.name == name)
                        .cloned()
                        .unwrap_or_else(|| fail(&format!("unknown trace: {name}")))
                })
                .collect()
        }
    };
    let kinds: Vec<&str> = flags.get("frontends").unwrap_or("tc,xbc").split(',').collect();
    let sizes: Vec<usize> = flags
        .get("sizes")
        .unwrap_or("8192,32768")
        .split(',')
        .map(|s| s.parse().unwrap_or_else(|_| fail(&format!("bad size: {s}"))))
        .collect();
    let insts = flags.get_usize("inst", 200_000);
    let mut frontends = Vec::new();
    for &size in &sizes {
        for kind in &kinds {
            frontends.push(frontend_spec(kind, size));
        }
    }
    // Cache dir: --cache DIR, or $XBC_CACHE_DIR, or target/xbc-cache;
    // `--cache off` disables the store.
    let cache = flags
        .get("cache")
        .map(str::to_owned)
        .or_else(|| std::env::var("XBC_CACHE_DIR").ok())
        .unwrap_or_else(|| "target/xbc-cache".to_owned());
    let mut sweep = Sweep::new(traces, frontends, insts);
    sweep.threads = flags.get_usize("threads", 0);
    sweep.check = flags.get_bool("check", false);
    sweep.trace_events = flags.get("trace-events").map(str::to_owned);
    if cache != "off" {
        match xbc_store::Store::open(&cache) {
            Ok(store) => sweep = sweep.with_store(std::sync::Arc::new(store)),
            Err(e) => eprintln!("[xbc-store] cannot open {cache}: {e}; running uncached"),
        }
    }
    let (rows, bench): (Vec<Row>, _) = sweep.run_with_bench();
    println!("{}", pivot_table(&rows, "uop miss rate (%)", |r| 100.0 * r.miss_rate));
    println!("{}", pivot_table(&rows, "delivery bandwidth (uops/cycle)", |r| r.bandwidth));
    if let Some(path) = flags.get("json") {
        std::fs::write(path, xbc_sim::to_json(&rows))
            .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("bench-json") {
        std::fs::write(path, bench.to_json())
            .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

fn cmd_capture(flags: &Flags) {
    let name = flags.get("trace").unwrap_or_else(|| fail("capture needs --trace"));
    let out = flags.get("out").unwrap_or_else(|| fail("capture needs --out"));
    let insts = flags.get_usize("inst", 100_000);
    let trace = load_trace_by_name(name, insts);
    let f = File::create(out).unwrap_or_else(|e| fail(&format!("create {out}: {e}")));
    trace.save(f).unwrap_or_else(|e| fail(&format!("save {out}: {e}")));
    println!("wrote {out}: {} insts, {} uops", trace.inst_count(), trace.uop_count());
}

fn cmd_dot(flags: &Flags) {
    let name = flags.get("trace").unwrap_or_else(|| fail("dot needs --trace"));
    let k = flags.get_usize("function", 1);
    let spec = standard_traces()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| fail(&format!("unknown trace: {name}")));
    let program = spec.program();
    let entries = program.function_entries();
    if k >= entries.len() {
        fail(&format!("--function {k} out of range (program has {} functions)", entries.len()));
    }
    print!("{}", function_dot(&program, entries[k]));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = Flags::parse(&args[1..]);
    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&flags),
        "sweep" => cmd_sweep(&flags),
        "inspect" => cmd_inspect(&flags),
        "capture" => cmd_capture(&flags),
        "dot" => cmd_dot(&flags),
        _ => usage(),
    }
}
