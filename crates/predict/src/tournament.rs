//! McFarling's combining (tournament) predictor.
//!
//! The paper's gshare citation — McFarling, "Combining Branch Predictors"
//! (DEC WRL TN-36, 1993) — actually introduces *two* things: gshare and
//! the combining predictor that arbitrates between two component
//! predictors with a table of 2-bit chooser counters. We implement the
//! classic gshare + bimodal combination so the predictor ablation can
//! include it.

use crate::{Bimodal, Gshare, GshareConfig, PredictorStats};
use xbc_isa::Addr;

/// Configuration of a [`Tournament`] predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TournamentConfig {
    /// Global (gshare) component configuration.
    pub gshare: GshareConfig,
    /// log2 of the bimodal component's counter table.
    pub bimodal_bits: u32,
    /// log2 of the chooser table.
    pub chooser_bits: u32,
}

impl Default for TournamentConfig {
    /// 16-bit gshare + 14-bit bimodal with a 14-bit chooser.
    fn default() -> Self {
        TournamentConfig { gshare: GshareConfig::default(), bimodal_bits: 14, chooser_bits: 14 }
    }
}

/// A combining predictor: per-address 2-bit chooser counters select
/// between a gshare and a bimodal component; both components always
/// train, the chooser trains toward whichever was right.
///
/// # Examples
///
/// ```
/// use xbc_predict::{Tournament, TournamentConfig};
/// use xbc_isa::Addr;
///
/// let mut t = Tournament::new(TournamentConfig::default());
/// let ip = Addr::new(0x40);
/// for _ in 0..200 { t.update(ip, true); }
/// assert!(t.predict(ip));
/// ```
#[derive(Clone, Debug)]
pub struct Tournament {
    gshare: Gshare,
    bimodal: Bimodal,
    /// 2-bit counters: ≥2 favours gshare, <2 favours bimodal.
    chooser: Vec<u8>,
    chooser_mask: u64,
    stats: PredictorStats,
}

impl Tournament {
    /// Creates the predictor with the chooser neutral-leaning-bimodal.
    ///
    /// # Panics
    ///
    /// Panics if any component size is out of range (see the component
    /// constructors).
    pub fn new(cfg: TournamentConfig) -> Self {
        assert!((1..=24).contains(&cfg.chooser_bits), "chooser_bits in 1..=24");
        let size = 1usize << cfg.chooser_bits;
        Tournament {
            gshare: Gshare::new(cfg.gshare),
            bimodal: Bimodal::new(cfg.bimodal_bits),
            chooser: vec![1; size],
            chooser_mask: (size - 1) as u64,
            stats: PredictorStats::default(),
        }
    }

    #[inline]
    fn chooser_index(&self, ip: Addr) -> usize {
        ((ip.raw() >> 1) & self.chooser_mask) as usize
    }

    /// Predicts the direction of the conditional branch at `ip`.
    pub fn predict(&self, ip: Addr) -> bool {
        if self.chooser[self.chooser_index(ip)] >= 2 {
            self.gshare.predict(ip)
        } else {
            self.bimodal.predict(ip)
        }
    }

    /// Updates all three tables; returns whether the pre-update combined
    /// prediction was correct.
    pub fn update(&mut self, ip: Addr, taken: bool) -> bool {
        let g_pred = self.gshare.predict(ip);
        let b_pred = self.bimodal.predict(ip);
        let combined = if self.chooser[self.chooser_index(ip)] >= 2 { g_pred } else { b_pred };
        let correct = combined == taken;
        if correct {
            self.stats.correct += 1;
        } else {
            self.stats.incorrect += 1;
        }
        // Chooser trains only when the components disagree.
        if g_pred != b_pred {
            let idx = self.chooser_index(ip);
            let c = &mut self.chooser[idx];
            if g_pred == taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        self.gshare.update(ip, taken);
        self.bimodal.update(ip, taken);
        correct
    }

    /// Global history register (from the gshare component).
    pub fn history(&self) -> u64 {
        self.gshare.history()
    }

    /// Accuracy statistics of the combined prediction.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chooser_converges_to_better_component() {
        // An iid biased branch (p=1.0) where bimodal is immediately right
        // while cold gshare thrashes across history-indexed entries: the
        // chooser should swing toward bimodal and track its accuracy.
        let mut t = Tournament::new(TournamentConfig::default());
        let ip = Addr::new(0x88);
        for _ in 0..64 {
            t.update(ip, true);
        }
        let mut correct = 0;
        for _ in 0..64 {
            if t.predict(ip) {
                correct += 1;
            }
            t.update(ip, true);
        }
        assert_eq!(correct, 64, "monotonic branch must be perfect after warm-up");
    }

    #[test]
    fn beats_or_matches_components_on_mixed_work() {
        // Two branches: one monotonic (bimodal-friendly), one period-2
        // (gshare-friendly). The tournament should approach the better
        // component on each.
        let mut t = Tournament::new(TournamentConfig {
            gshare: GshareConfig { history_bits: 10 },
            ..Default::default()
        });
        let mono = Addr::new(0x10);
        let alt = Addr::new(0x20);
        let mut flip = false;
        for _ in 0..2000 {
            t.update(mono, true);
            t.update(alt, flip);
            flip = !flip;
        }
        let s = t.stats();
        assert!(s.accuracy() > 0.85, "combined accuracy {}", s.accuracy());
    }

    #[test]
    fn history_comes_from_gshare() {
        let mut t = Tournament::new(TournamentConfig::default());
        t.update(Addr::new(2), true);
        assert_eq!(t.history() & 1, 1);
    }

    #[test]
    #[should_panic(expected = "chooser_bits")]
    fn zero_chooser_rejected() {
        let _ = Tournament::new(TournamentConfig { chooser_bits: 0, ..Default::default() });
    }
}
