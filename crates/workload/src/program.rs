//! Static program images with behavioral annotations.
//!
//! A [`Program`] is what the frontend simulators fetch from: a map from
//! address to [`Inst`], plus the *behavioral* model the architectural
//! executor uses to resolve control flow (per-branch direction behaviour,
//! indirect target sets). Programs are produced by the generator
//! ([`crate::ProgramGenerator`]) or hand-built through [`ProgramBuilder`]
//! in tests and examples.

use crate::rng::Rng64;
use std::collections::HashMap;
use std::fmt;
use xbc_isa::{Addr, BranchKind, Inst};

/// Run-time direction behaviour of one static conditional branch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CondBehavior {
    /// Independently taken with probability `p_taken` each execution.
    Bernoulli {
        /// Probability the branch is taken.
        p_taken: f64,
    },
    /// A loop back-edge: taken `trip - 1` consecutive times, then not
    /// taken once, then the pattern repeats (trip counts are deterministic).
    Loop {
        /// Iterations per loop entry (≥ 1).
        trip: u32,
    },
}

/// Weighted target set of one indirect jump/call.
#[derive(Clone, Debug, PartialEq)]
pub struct IndirectTargets {
    targets: Vec<Addr>,
    /// Cumulative weights, last == 1.0.
    cumulative: Vec<f64>,
}

impl IndirectTargets {
    /// Creates a target set from `(target, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty or if any weight is non-positive.
    pub fn new(weighted: &[(Addr, f64)]) -> Self {
        assert!(!weighted.is_empty(), "indirect branch needs at least one target");
        assert!(weighted.iter().all(|(_, w)| *w > 0.0), "weights must be positive");
        let total: f64 = weighted.iter().map(|(_, w)| w).sum();
        let mut acc = 0.0;
        let mut targets = Vec::with_capacity(weighted.len());
        let mut cumulative = Vec::with_capacity(weighted.len());
        for (t, w) in weighted {
            acc += w / total;
            targets.push(*t);
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        IndirectTargets { targets, cumulative }
    }

    /// All possible targets.
    pub fn targets(&self) -> &[Addr] {
        &self.targets
    }

    /// Samples a target according to the weights.
    pub fn choose(&self, rng: &mut Rng64) -> Addr {
        let x: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|&c| c < x);
        self.targets[idx.min(self.targets.len() - 1)]
    }
}

/// Aggregate shape of a program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Number of functions.
    pub functions: usize,
    /// Static instruction count.
    pub static_insts: usize,
    /// Static uop count (sum of per-instruction expansions).
    pub static_uops: usize,
    /// Static conditional branch count.
    pub cond_branches: usize,
}

/// An immutable program image plus behaviour annotations.
///
/// # Examples
///
/// ```
/// use xbc_workload::{ProgramBuilder, CondBehavior};
/// use xbc_isa::{Addr, BranchKind, Inst};
///
/// let mut b = ProgramBuilder::new();
/// b.push(Inst::plain(Addr::new(0x1000), 2, 1));
/// b.push_cond(
///     Inst::new(Addr::new(0x1002), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x1000))),
///     CondBehavior::Bernoulli { p_taken: 0.5 },
/// );
/// let p = b.build(Addr::new(0x1000), 1);
/// assert_eq!(p.stats().static_insts, 2);
/// assert!(p.inst_at(Addr::new(0x1002)).unwrap().branch.is_branch());
/// ```
#[derive(Clone)]
pub struct Program {
    entry: Addr,
    insts: HashMap<u64, Inst>,
    cond: HashMap<u64, CondBehavior>,
    indirect: HashMap<u64, IndirectTargets>,
    function_entries: Vec<Addr>,
    interrupt_handlers: Vec<Addr>,
    stats: ProgramStats,
}

impl Program {
    /// Program entry point.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// The instruction at `ip`, if any.
    #[inline]
    pub fn inst_at(&self, ip: Addr) -> Option<&Inst> {
        self.insts.get(&ip.raw())
    }

    /// Direction behaviour of the conditional branch at `ip`.
    pub fn cond_behavior(&self, ip: Addr) -> Option<CondBehavior> {
        self.cond.get(&ip.raw()).copied()
    }

    /// Target set of the indirect jump/call at `ip`.
    pub fn indirect_targets(&self, ip: Addr) -> Option<&IndirectTargets> {
        self.indirect.get(&ip.raw())
    }

    /// Entry addresses of all functions (index 0 is `main`).
    pub fn function_entries(&self) -> &[Addr] {
        &self.function_entries
    }

    /// Entry addresses of the kernel interrupt handlers (empty when the
    /// workload models no asynchronous activity).
    pub fn interrupt_handlers(&self) -> &[Addr] {
        &self.interrupt_handlers
    }

    /// Aggregate shape statistics.
    pub fn stats(&self) -> ProgramStats {
        self.stats
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("entry", &self.entry)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Incremental [`Program`] constructor.
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    insts: HashMap<u64, Inst>,
    cond: HashMap<u64, CondBehavior>,
    indirect: HashMap<u64, IndirectTargets>,
    function_entries: Vec<Addr>,
    interrupt_handlers: Vec<Addr>,
    static_uops: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a non-conditional, non-indirect instruction.
    ///
    /// # Panics
    ///
    /// Panics on duplicate addresses or if the instruction needs behaviour
    /// annotations (conditional/indirect) — use the dedicated methods.
    pub fn push(&mut self, inst: Inst) {
        assert!(
            inst.branch != BranchKind::CondDirect && !inst.branch.is_indirect()
                || inst.branch == BranchKind::Return,
            "conditional/indirect instructions need behaviour annotations"
        );
        self.insert(inst);
    }

    /// Adds a conditional branch with its direction behaviour.
    ///
    /// # Panics
    ///
    /// Panics on duplicates or if `inst` is not a conditional branch.
    pub fn push_cond(&mut self, inst: Inst, behavior: CondBehavior) {
        assert_eq!(inst.branch, BranchKind::CondDirect, "push_cond expects a conditional branch");
        if let CondBehavior::Bernoulli { p_taken } = behavior {
            assert!((0.0..=1.0).contains(&p_taken), "p_taken must be a probability");
        }
        if let CondBehavior::Loop { trip } = behavior {
            assert!(trip >= 1, "loop trips at least once");
        }
        let ip = inst.ip;
        self.insert(inst);
        self.cond.insert(ip.raw(), behavior);
    }

    /// Adds an indirect jump/call with its weighted target set.
    ///
    /// # Panics
    ///
    /// Panics on duplicates or if `inst` is not an indirect jump/call.
    pub fn push_indirect(&mut self, inst: Inst, targets: IndirectTargets) {
        assert!(
            matches!(inst.branch, BranchKind::IndirectJump | BranchKind::IndirectCall),
            "push_indirect expects an indirect jump or call"
        );
        let ip = inst.ip;
        self.insert(inst);
        self.indirect.insert(ip.raw(), targets);
    }

    /// Registers a function entry point (call targets).
    pub fn add_function_entry(&mut self, entry: Addr) {
        self.function_entries.push(entry);
    }

    /// Marks function entries as asynchronous interrupt handlers.
    pub fn set_interrupt_handlers(&mut self, handlers: Vec<Addr>) {
        self.interrupt_handlers = handlers;
    }

    fn insert(&mut self, inst: Inst) {
        self.static_uops += inst.uops as usize;
        let prev = self.insts.insert(inst.ip.raw(), inst);
        assert!(prev.is_none(), "duplicate instruction at {}", inst.ip);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if `entry` does not point at an instruction.
    pub fn build(self, entry: Addr, functions: usize) -> Program {
        assert!(self.insts.contains_key(&entry.raw()), "entry {entry} has no instruction");
        let stats = ProgramStats {
            functions,
            static_insts: self.insts.len(),
            static_uops: self.static_uops,
            cond_branches: self.cond.len(),
        };
        Program {
            entry,
            insts: self.insts,
            cond: self.cond,
            indirect: self.indirect,
            function_entries: self.function_entries,
            interrupt_handlers: self.interrupt_handlers,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.add_function_entry(Addr::new(0x10));
        b.push(Inst::plain(Addr::new(0x10), 4, 2));
        b.push(Inst::new(Addr::new(0x14), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        assert_eq!(p.entry(), Addr::new(0x10));
        assert_eq!(p.stats().static_uops, 3);
        assert_eq!(p.function_entries(), &[Addr::new(0x10)]);
        assert!(p.inst_at(Addr::new(0x99)).is_none());
    }

    #[test]
    fn cond_behavior_recorded() {
        let mut b = ProgramBuilder::new();
        b.push_cond(
            Inst::new(Addr::new(0x20), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x10))),
            CondBehavior::Loop { trip: 3 },
        );
        let p = b.build(Addr::new(0x20), 1);
        assert_eq!(p.cond_behavior(Addr::new(0x20)), Some(CondBehavior::Loop { trip: 3 }));
        assert_eq!(p.cond_behavior(Addr::new(0x24)), None);
        assert_eq!(p.stats().cond_branches, 1);
    }

    #[test]
    fn indirect_targets_weighted_choice() {
        let t = IndirectTargets::new(&[(Addr::new(1), 1.0), (Addr::new(2), 99.0)]);
        let mut rng = Rng64::seed_from_u64(7);
        let picks = (0..1000).filter(|_| t.choose(&mut rng) == Addr::new(2)).count();
        assert!(picks > 950, "dominant target should win ~99%: {picks}");
        assert_eq!(t.targets().len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate instruction")]
    fn duplicate_address_rejected() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x10), 1, 1));
        b.push(Inst::plain(Addr::new(0x10), 2, 1));
    }

    #[test]
    #[should_panic(expected = "behaviour annotations")]
    fn cond_requires_annotation() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::new(Addr::new(0x10), 2, 1, BranchKind::CondDirect, Some(Addr::new(0))));
    }

    #[test]
    #[should_panic(expected = "entry")]
    fn build_checks_entry() {
        ProgramBuilder::new().build(Addr::new(0x10), 0);
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_indirect_targets_rejected() {
        let _ = IndirectTargets::new(&[]);
    }
}
