//! Graphviz (DOT) export of program control flow.
//!
//! Debugging aid: renders one function's basic blocks and edges so
//! generated CFGs (and the XB boundaries within them) can be inspected
//! visually with `dot -Tsvg`.

use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use xbc_isa::{Addr, BranchKind};

/// Renders the intra-procedural CFG reachable from `entry` as a DOT
/// digraph. Nodes are basic blocks labelled with their address range and
/// uop count; edges are labelled taken/fall/jmp; calls and returns are
/// shown as exits (the callee's CFG is not expanded).
///
/// # Examples
///
/// ```
/// use xbc_workload::{function_dot, ProgramGenerator, WorkloadProfile};
///
/// let p = ProgramGenerator::new(WorkloadProfile { functions: 6, ..Default::default() }, 1)
///     .generate();
/// let dot = function_dot(&p, p.function_entries()[1]);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("->"));
/// ```
///
/// # Panics
///
/// Panics if `entry` does not point at an instruction.
pub fn function_dot(program: &Program, entry: Addr) -> String {
    assert!(program.inst_at(entry).is_some(), "entry {entry} has no instruction");

    // Discover block leaders: the entry, branch targets, and fall-throughs
    // after branches, bounded to straight-line reachability.
    let mut leaders = BTreeSet::new();
    let mut work = VecDeque::new();
    leaders.insert(entry);
    work.push_back(entry);
    let mut visited = BTreeSet::new();
    while let Some(start) = work.pop_front() {
        if !visited.insert(start) {
            continue;
        }
        let mut ip = start;
        while let Some(inst) = program.inst_at(ip) {
            if inst.branch.is_branch() {
                if let Some(t) = inst.target {
                    // Stay within the function (same 64 KiB image stride).
                    if t.raw() & !0xFFFF == entry.raw() & !0xFFFF
                        && inst.branch != BranchKind::CallDirect
                        && leaders.insert(t)
                    {
                        work.push_back(t);
                    }
                }
                if inst.branch.may_fall_through() || inst.branch.is_call() {
                    let f = inst.next_seq();
                    if program.inst_at(f).is_some() && leaders.insert(f) {
                        work.push_back(f);
                    }
                }
                if let Some(ts) = program.indirect_targets(ip) {
                    for &t in ts.targets() {
                        if t.raw() & !0xFFFF == entry.raw() & !0xFFFF && leaders.insert(t) {
                            work.push_back(t);
                        }
                    }
                }
                break;
            }
            ip = inst.next_seq();
        }
    }

    // Walk each block from its leader to its terminator.
    struct Block {
        start: Addr,
        end: Addr,
        uops: usize,
        kind: BranchKind,
    }
    let mut blocks: BTreeMap<u64, Block> = BTreeMap::new();
    for &start in &leaders {
        let mut ip = start;
        let mut uops = 0usize;
        while let Some(inst) = program.inst_at(ip) {
            uops += inst.uops as usize;
            let next = inst.next_seq();
            if inst.branch.is_branch() || leaders.contains(&next) {
                blocks.insert(start.raw(), Block { start, end: ip, uops, kind: inst.branch });
                break;
            }
            ip = next;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "digraph fn_{:x} {{", entry.raw());
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for b in blocks.values() {
        let style = match b.kind {
            BranchKind::Return => ", style=filled, fillcolor=lightgrey",
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                ", style=filled, fillcolor=lightyellow"
            }
            _ => "",
        };
        let _ = writeln!(
            out,
            "  n{:x} [label=\"{:#x}..{:#x}\\n{} uops, ends {}\"{}];",
            b.start.raw(),
            b.start.raw(),
            b.end.raw(),
            b.uops,
            b.kind,
            style
        );
    }
    for b in blocks.values() {
        let inst = program.inst_at(b.end).expect("terminator exists");
        match inst.branch {
            BranchKind::None => {
                // Split by a leader: plain fall-through edge.
                let f = inst.next_seq();
                if blocks.contains_key(&f.raw()) {
                    let _ = writeln!(out, "  n{:x} -> n{:x};", b.start.raw(), f.raw());
                }
            }
            BranchKind::CondDirect => {
                if let Some(t) = inst.target {
                    if blocks.contains_key(&t.raw()) {
                        let _ = writeln!(
                            out,
                            "  n{:x} -> n{:x} [label=\"T\", color=green];",
                            b.start.raw(),
                            t.raw()
                        );
                    }
                }
                let f = inst.next_seq();
                if blocks.contains_key(&f.raw()) {
                    let _ = writeln!(
                        out,
                        "  n{:x} -> n{:x} [label=\"NT\", color=red];",
                        b.start.raw(),
                        f.raw()
                    );
                }
            }
            BranchKind::UncondDirect => {
                if let Some(t) = inst.target {
                    if blocks.contains_key(&t.raw()) {
                        let _ = writeln!(
                            out,
                            "  n{:x} -> n{:x} [label=\"jmp\"];",
                            b.start.raw(),
                            t.raw()
                        );
                    }
                }
            }
            BranchKind::CallDirect | BranchKind::IndirectCall => {
                let f = inst.next_seq();
                if blocks.contains_key(&f.raw()) {
                    let _ = writeln!(
                        out,
                        "  n{:x} -> n{:x} [label=\"call/ret\", style=dashed];",
                        b.start.raw(),
                        f.raw()
                    );
                }
            }
            BranchKind::IndirectJump => {
                if let Some(ts) = program.indirect_targets(b.end) {
                    for &t in ts.targets() {
                        if blocks.contains_key(&t.raw()) {
                            let _ = writeln!(
                                out,
                                "  n{:x} -> n{:x} [label=\"ind\", style=dotted];",
                                b.start.raw(),
                                t.raw()
                            );
                        }
                    }
                }
            }
            BranchKind::Return => {}
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramGenerator, WorkloadProfile};

    #[test]
    fn renders_every_generated_function() {
        let p = ProgramGenerator::new(
            WorkloadProfile { functions: 8, ..WorkloadProfile::default() },
            5,
        )
        .generate();
        for &entry in p.function_entries() {
            let dot = function_dot(&p, entry);
            assert!(dot.starts_with("digraph"));
            assert!(dot.ends_with("}\n"));
            assert!(dot.contains("uops"));
        }
    }

    #[test]
    fn conditional_blocks_have_two_edges() {
        use crate::program::{CondBehavior, ProgramBuilder};
        use xbc_isa::Inst;
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x1000), 1, 1));
        b.push_cond(
            Inst::new(Addr::new(0x1001), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x1010))),
            CondBehavior::Bernoulli { p_taken: 0.5 },
        );
        b.push(Inst::plain(Addr::new(0x1003), 1, 1));
        b.push(Inst::new(Addr::new(0x1004), 1, 1, BranchKind::Return, None));
        b.push(Inst::plain(Addr::new(0x1010), 1, 1));
        b.push(Inst::new(Addr::new(0x1011), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x1000), 1);
        let dot = function_dot(&p, Addr::new(0x1000));
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("label=\"NT\""));
        assert!(dot.matches("style=filled, fillcolor=lightgrey").count() == 2, "{dot}");
    }

    #[test]
    #[should_panic(expected = "has no instruction")]
    fn bad_entry_rejected() {
        let p = ProgramGenerator::new(
            WorkloadProfile { functions: 4, ..WorkloadProfile::default() },
            1,
        )
        .generate();
        let _ = function_dot(&p, Addr::new(0x1));
    }
}
