//! # xbc-obs — cycle-level event tracing & observability
//!
//! The observability layer of the XBC reproduction. Every frontend in
//! the workspace can emit a stream of compact structured [`Event`]s —
//! one per counter bump, plus a handful of observability-only events
//! (lookups, fills, occupancy snapshots) — into an [`EventSink`].
//!
//! The load-bearing design rule: **aggregates are derivable from
//! events, bit-for-bit**. The frontends do not bump their
//! `FrontendMetrics` counters next to the event emission; they bump
//! them *through* it (`FrontendMetrics::apply_event` in
//! `xbc-frontend`), so a `Reconciler` folding the event stream is
//! guaranteed to reproduce the aggregate counters exactly, by
//! construction rather than by parallel bookkeeping.
//!
//! Sinks:
//!
//! * [`NullSink`] — the disabled path. `Frontend::step` is generic over
//!   the sink, so the null sink monomorphizes to nothing; the untraced
//!   entry points compile to the same code as before this crate
//!   existed (a `cargo bench` guard in `crates/bench` enforces <1%
//!   overhead).
//! * [`VecSink`] — unbounded capture, used by tests and the sweep's
//!   `--trace-events` path.
//! * [`RingSink`] — bounded capture for long runs: keeps the most
//!   recent `cap` events, drops oldest-first, and reports an exact
//!   [`RingSink::dropped`] count.
//!
//! The [`jsonl`] module serializes event streams as JSON Lines
//! (schema [`jsonl::SCHEMA`] = `xbc-events-v1`) using the in-tree
//! [`json`] parser — no external dependencies, the build stays
//! hermetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod json;
pub mod jsonl;
mod sink;

pub use event::{
    saturate_u16, CycleKind, D2bCause, Event, FillKind, LookupKind, MispredictKind, UopSource,
};
pub use sink::{EventSink, NullSink, RingSink, VecSink};
