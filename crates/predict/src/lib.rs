//! # xbc-predict — branch prediction substrates
//!
//! All the predictors the paper's frontends rely on (§3.5, §4):
//!
//! * [`Gshare`] — the 16-bit-history gshare conditional predictor used for
//!   both the trace cache and the XBC (serves as the paper's **XBP**),
//! * [`Bimodal`] — classical per-address 2-bit baseline for ablations,
//! * [`Btb`] — branch target buffer for the instruction-cache frontend,
//! * [`ReturnStack`] — fixed-depth return stack (IC RSB and the XBC's
//!   **XRSB**, which pushes XBTB pointers instead of addresses),
//! * [`IndirectPredictor`] — history-hashed indirect-target table (the
//!   XBC's **XiBTB** and the IC frontend's indirect path),
//! * [`BiasCounter`] — the 7-bit monotonicity counter driving branch
//!   promotion (§3.8).
//!
//! # Example
//!
//! ```
//! use xbc_predict::{Gshare, GshareConfig};
//! use xbc_isa::Addr;
//!
//! let mut g = Gshare::new(GshareConfig::default());
//! let loop_branch = Addr::new(0x4010);
//! for _ in 0..100 { g.update(loop_branch, true); }
//! assert!(g.predict(loop_branch));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bias;
mod bimodal;
mod btb;
mod dir;
mod gshare;
mod indirect;
mod local;
mod rsb;
mod tournament;

pub use bias::{Bias, BiasCounter};
pub use bimodal::Bimodal;
pub use btb::{Btb, BtbConfig, BtbEntry};
pub use dir::DirPredictor;
pub use gshare::{Gshare, GshareConfig, PredictorStats};
pub use indirect::{IndirectPredictor, IndirectStats};
pub use local::{LocalConfig, LocalPredictor};
pub use rsb::ReturnStack;
pub use tournament::{Tournament, TournamentConfig};
