//! Event sinks: where emitted events go.
//!
//! The trait is object-safe (`&mut dyn EventSink` is the type the
//! provided `Frontend::step_traced` takes), but the frontends'
//! internal step paths are *generic* over the sink, so the untraced
//! entry points instantiate with [`NullSink`] and the emit calls
//! vanish entirely — tracing is zero-cost when disabled.

use crate::event::{CycleKind, Event};
use std::collections::VecDeque;

/// A consumer of trace events.
pub trait EventSink {
    /// Accepts one event. Called on the simulation hot path: implement
    /// without allocation where possible.
    fn emit(&mut self, e: Event);

    /// Accepts `n` consecutive `Event::Cycle(kind)` events. The default
    /// loops over [`EventSink::emit`], so every recording sink captures
    /// the exact per-cycle stream; [`NullSink`] overrides it to nothing
    /// so bulk stall retirement stays O(1) even behind `&mut dyn
    /// EventSink` (a null sink is disabled tracing, and would drop each
    /// of the `n` events anyway).
    fn emit_cycles(&mut self, kind: CycleKind, n: u64) {
        for _ in 0..n {
            self.emit(Event::Cycle(kind));
        }
    }

    /// Whether this sink cares about observability-only detail events
    /// (`Lookup` / `Fill` / `Eviction` / `Occupancy`). Some of those
    /// are costly to *construct* (occupancy snapshots walk the array),
    /// so the probe consults this before building them. Defaults to
    /// `true`; [`NullSink`] answers `false`, which makes a null sink —
    /// even behind `&mut dyn EventSink` — behave as disabled tracing.
    fn wants_detail(&self) -> bool {
        true
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    #[inline(always)]
    fn emit(&mut self, e: Event) {
        (**self).emit(e);
    }

    #[inline(always)]
    fn emit_cycles(&mut self, kind: CycleKind, n: u64) {
        (**self).emit_cycles(kind, n);
    }

    #[inline(always)]
    fn wants_detail(&self) -> bool {
        (**self).wants_detail()
    }
}

/// The disabled sink: drops everything, compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline(always)]
    fn emit(&mut self, _e: Event) {}

    #[inline(always)]
    fn emit_cycles(&mut self, _kind: CycleKind, _n: u64) {}

    #[inline(always)]
    fn wants_detail(&self) -> bool {
        false
    }
}

/// Unbounded capture into a `Vec`, for tests and file dumps.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The captured events, in emission order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for VecSink {
    #[inline]
    fn emit(&mut self, e: Event) {
        self.events.push(e);
    }
}

/// Bounded capture: keeps the most recent `cap` events.
///
/// When full, the *oldest* event is dropped to make room, and
/// [`RingSink::dropped`] counts exactly how many were lost — so a
/// consumer always knows whether the retained window is complete.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `cap` events (`cap == 0` drops everything).
    pub fn new(cap: usize) -> Self {
        Self { buf: VecDeque::with_capacity(cap), cap, dropped: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Exact count of events dropped oldest-first since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning the retained events oldest first.
    pub fn into_events(self) -> Vec<Event> {
        self.buf.into_iter().collect()
    }
}

impl EventSink for RingSink {
    #[inline]
    fn emit(&mut self, e: Event) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CycleKind;

    fn cyc(n: u16) -> Event {
        Event::Uops { src: crate::UopSource::Ic, n }
    }

    #[test]
    fn vec_sink_captures_in_order() {
        let mut s = VecSink::new();
        s.emit(cyc(1));
        s.emit(Event::Cycle(CycleKind::Build));
        assert_eq!(s.events, vec![cyc(1), Event::Cycle(CycleKind::Build)]);
    }

    #[test]
    fn ring_drops_oldest_with_exact_count() {
        let mut s = RingSink::new(3);
        for n in 0..10 {
            s.emit(cyc(n));
        }
        assert_eq!(s.dropped(), 7);
        assert_eq!(s.into_events(), vec![cyc(7), cyc(8), cyc(9)]);
    }

    #[test]
    fn zero_cap_ring_drops_everything() {
        let mut s = RingSink::new(0);
        s.emit(cyc(1));
        s.emit(cyc(2));
        assert_eq!(s.dropped(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn dyn_and_reborrow_dispatch() {
        let mut v = VecSink::new();
        {
            let d: &mut dyn EventSink = &mut v;
            let r = &mut *d; // a reborrow of &mut dyn EventSink is itself a sink
            r.emit(cyc(5));
        }
        assert_eq!(v.events.len(), 1);
    }

    #[test]
    fn detail_interest_survives_dyn_dispatch() {
        let mut null = NullSink;
        let mut vec = VecSink::new();
        let d: &mut dyn EventSink = &mut null;
        assert!(!d.wants_detail(), "a null sink is disabled tracing, even boxed as dyn");
        let d: &mut dyn EventSink = &mut vec;
        assert!(d.wants_detail());
    }
}
