//! # xbc-isa — instruction & uop model for the XBC reproduction
//!
//! This crate defines the simulated instruction set shared by every other
//! crate in the workspace: flat virtual [`Addr`]esses, variable-length
//! architectural [`Inst`]ructions classified by [`BranchKind`], and the
//! decoded micro-operations ([`Uop`], [`UopId`]) that the frontend
//! structures of the paper — trace cache and eXtended Block Cache — store
//! and deliver.
//!
//! The ISA is synthetic but keeps the two IA32 properties the paper's
//! motivation rests on (paper §2.1–§2.2):
//!
//! 1. instructions are variable length (1–15 bytes), so raw instruction
//!    bytes are expensive to decode in parallel, and
//! 2. each instruction expands into a variable number of uops (1–4), so
//!    decoded storage has an addressing/fragmentation problem.
//!
//! # Example
//!
//! ```
//! use xbc_isa::{decode, Addr, BranchKind, Inst};
//!
//! // A conditional branch at 0x4000, 2 bytes, decoding to 1 uop.
//! let br = Inst::new(Addr::new(0x4000), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x4100)));
//! let uops = decode(&br);
//! assert!(uops[0].ends_xb()); // conditional branches end extended blocks
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod decode;
mod inst;
mod uop;

pub use addr::Addr;
pub use decode::{decode, decoded_len};
pub use inst::{BranchKind, Inst};
pub use uop::{Uop, UopId, UopKind};
