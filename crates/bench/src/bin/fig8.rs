//! Regenerates paper **Figure 8**: XBC versus TC delivered uop bandwidth,
//! per trace, at the same 32K-uop cache budget.
//!
//! The paper's finding: "the difference between the XBC and TC bandwidth
//! is negligible".
//!
//! ```text
//! cargo run --release -p xbc-bench --bin fig8 [-- --inst N --traces a,b]
//! ```

use xbc_sim::{average_bandwidth, pivot_table, FrontendSpec, HarnessArgs};

fn main() {
    let args = HarnessArgs::from_env();
    let rows = args.run_sweep(vec![FrontendSpec::tc_default(), FrontendSpec::xbc_default()]);

    println!(
        "{}",
        pivot_table(&rows, "Figure 8: uop bandwidth at 32K uops (uops per delivery cycle)", |r| {
            r.bandwidth
        })
    );
    let tc: Vec<_> =
        rows.iter().filter(|r| r.frontend == FrontendSpec::tc_default()).cloned().collect();
    let xbc: Vec<_> =
        rows.iter().filter(|r| r.frontend == FrontendSpec::xbc_default()).cloned().collect();
    let (bt, bx) = (average_bandwidth(&tc), average_bandwidth(&xbc));
    println!("average bandwidth: tc={bt:.2} xbc={bx:.2} (delta {:+.1}%)", 100.0 * (bx - bt) / bt);
    println!("paper: the difference is negligible (same prediction bandwidth, banked fetch)");
    args.maybe_dump_json(&rows);
}
