//! Protocol fuzzing: seeded splitmix64 byte mutations of valid request
//! lines must never panic the parser or the daemon — every mutant gets
//! either a parse-error reply or a clean close, and the daemon still
//! answers pings when the campaign is over. Hermetic and deterministic:
//! no fuzzing framework, just the workspace RNG idiom.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::thread;
use std::time::Duration;

use xbc_serve::protocol::{parse_request, render_sweep_request, Request, SweepRequest};
use xbc_serve::{ping, shutdown, Endpoint, ServeConfig};
use xbc_sim::FrontendSpec;

/// splitmix64 — the same generator the assembler differential tests
/// use; good enough mixing for byte fuzz, zero dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A corpus of valid wire lines to mutate from.
fn corpus() -> Vec<String> {
    let sweep = SweepRequest {
        traces: vec!["sort".into(), "hash-join".into()],
        frontends: vec![
            FrontendSpec::tc_default(),
            FrontendSpec::Xbc { total_uops: 32 * 1024, ways: 2, promotion: true },
        ],
        insts: 10_000,
        priority: 3,
    };
    vec![
        render_sweep_request(&sweep),
        "{\"type\":\"ping\"}".to_owned(),
        "{\"type\":\"shutdown\"}".to_owned(),
    ]
}

/// One seeded mutation: flip, insert, delete, or truncate.
fn mutate(rng: &mut Rng, line: &str) -> Vec<u8> {
    let mut bytes = line.as_bytes().to_vec();
    match rng.below(4) {
        0 => {
            // Flip a byte to an arbitrary non-newline value.
            let i = rng.below(bytes.len());
            bytes[i] = {
                let b = (rng.next() & 0xff) as u8;
                if b == b'\n' {
                    b'}'
                } else {
                    b
                }
            };
        }
        1 => {
            let i = rng.below(bytes.len() + 1);
            let b = (rng.next() & 0xff) as u8;
            bytes.insert(i, if b == b'\n' { b'{' } else { b });
        }
        2 => {
            let i = rng.below(bytes.len());
            bytes.remove(i);
        }
        _ => bytes.truncate(rng.below(bytes.len() + 1)),
    }
    bytes
}

#[test]
fn parser_survives_ten_thousand_mutants() {
    let corpus = corpus();
    let mut rng = Rng(0x5eed_f00d_0000_0001);
    for _ in 0..10_000 {
        let base = &corpus[rng.below(corpus.len())];
        let mutant = mutate(&mut rng, base);
        // Must not panic; Ok or Err are both acceptable outcomes.
        let _ = parse_request(&String::from_utf8_lossy(&mutant));
    }
}

#[test]
fn daemon_survives_mutant_request_lines() {
    let dir = std::env::temp_dir().join(format!("xbc-serve-fuzz-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("d.sock");
    let endpoint = Endpoint::unix(&socket);

    let mut config = ServeConfig::new(endpoint.clone());
    config.threads = 1;
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    for _ in 0..500 {
        if ping(&endpoint).is_ok() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }

    let corpus = corpus();
    let mut rng = Rng(0x5eed_f00d_0000_0002);
    let mut sent = 0;
    while sent < 100 {
        let base = &corpus[rng.below(corpus.len())];
        let mutant = mutate(&mut rng, base);
        let text = String::from_utf8_lossy(&mutant).into_owned();
        // Mutants that stay (or become) well-formed sweeps would kick
        // off real simulations, and a well-formed shutdown would end
        // the campaign early — fuzz the reject path, skip those. Blank
        // lines are skipped too: the daemon ignores them by design, so
        // no reply is the correct (but unwaitable) outcome.
        if text.trim().is_empty()
            || matches!(parse_request(&text), Ok(Request::Sweep(_) | Request::Shutdown))
        {
            continue;
        }
        sent += 1;

        let mut raw = UnixStream::connect(&socket).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // hello
        raw.write_all(&mutant).unwrap();
        raw.write_all(b"\n").unwrap();
        line.clear();
        let n = reader.read_line(&mut line).expect("daemon reply must not time out");
        // Every mutant gets a structured reply (error or pong) or, for
        // inputs the read loop rejects outright, a clean close.
        if n > 0 {
            assert!(
                line.contains("\"error\"") || line.contains("\"pong\""),
                "mutant {sent} got a non-protocol reply: {line:?} for input {text:?}"
            );
        }
    }

    ping(&endpoint).expect("daemon must still answer after the fuzz campaign");
    shutdown(&endpoint).unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
