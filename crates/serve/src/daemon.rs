//! The sweep service daemon.
//!
//! One process holds the content-addressed [`Store`] and a fixed worker
//! pool; clients connect over a Unix-domain socket, submit sweep grids,
//! and stream rows back as cells complete. The scheduling model is the
//! same cell model as `xbc_sim::Sweep`: the unit of work is one
//! (trace × frontend) cell, cells from *all* concurrent requests drain
//! through one shared queue, each request's rows are reassembled in
//! deterministic trace-major order, and `elapsed_ms` is apportioned
//! with the same [`capture_share`] arithmetic — so a daemon-simulated
//! row is indistinguishable from a `Sweep`-simulated one.
//!
//! Replay is streaming-first: a cell whose trace is already stored
//! replays through [`Store::open_trace_stream`] and
//! `Frontend::run_streamed`, keeping worker memory O(window). The first
//! cell of a not-yet-captured trace captures it resident (once, shared
//! behind the trace's `OnceLock`, through the store when present) —
//! which lands the trace on disk, so later cells of the same trace
//! stream it.

use crate::protocol::{self, Request, SweepRequest};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;
use xbc_sim::{
    capture_share, resolve_threads, result_key, rows_from_json, FrontendSpec, Row, SweepBench,
};
use xbc_store::Store;
use xbc_workload::{standard_traces, Trace, TraceSpec};

/// Daemon configuration for [`serve`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on. A stale socket file (left
    /// by a dead daemon) is removed and rebound; a *live* one — another
    /// daemon answers a connect probe — is an error.
    pub socket: PathBuf,
    /// Worker threads for the shared cell pool (0 = one per core,
    /// resolved via `xbc_sim::resolve_threads`).
    pub threads: usize,
    /// Shared trace/result store; `None` disables caching (every
    /// request re-simulates, nothing streams).
    pub store: Option<Arc<Store>>,
    /// Emit per-request progress lines to stderr.
    pub progress: bool,
}

/// One (trace, frontend) cell of a request, with its rank among the
/// trace's missing cells (for the deterministic capture-cost share).
struct Cell {
    trace: usize,
    fe: usize,
    rank: usize,
    missing: usize,
}

/// One submitted sweep: the grid, its pending cells, and the slots its
/// connection thread drains in index order.
struct Job {
    traces: Vec<TraceSpec>,
    frontends: Vec<FrontendSpec>,
    insts: usize,
    cells: Vec<Cell>,
    /// Per-trace resident capture, shared by the trace's fallback cells.
    shared_traces: Vec<OnceLock<(Arc<Trace>, u64)>>,
    /// The full grid; workers fill cells, the connection thread takes
    /// them in trace-major order as the filled prefix grows.
    rows: Mutex<Vec<Option<Row>>>,
    row_cv: Condvar,
    captures: AtomicU64,
    capture_ms: AtomicU64,
    sim_ms: AtomicU64,
    /// Cells replayed via the streaming path (O(window) memory).
    streamed_cells: AtomicU64,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    socket: PathBuf,
    store: Option<Arc<Store>>,
    threads: usize,
    progress: bool,
    queue: Mutex<VecDeque<(Arc<Job>, usize)>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
}

/// Runs one cell: streaming replay when the trace is already stored,
/// otherwise the shared resident capture — mirroring `Sweep`'s phase 3
/// exactly (same `result_key`, same `capture_share` arithmetic, same
/// result-cache write), so served rows match swept rows.
fn run_cell(shared: &Shared, job: &Job, ci: usize) {
    let cell = &job.cells[ci];
    let spec = &job.traces[cell.trace];
    let fespec = &job.frontends[cell.fe];
    let mut frontend = fespec.instantiate();
    let streamed = shared.store.as_ref().and_then(|store| {
        let open0 = Instant::now();
        let stream = store.open_trace_stream(spec, job.insts)?;
        Some((stream, open0.elapsed().as_millis() as u64))
    });
    let row = match streamed {
        Some((mut stream, open_ms)) => {
            let sim0 = Instant::now();
            let m = frontend.run_streamed(&mut stream);
            let sim_ms = sim0.elapsed().as_millis() as u64;
            job.capture_ms.fetch_add(open_ms, Ordering::Relaxed);
            job.sim_ms.fetch_add(sim_ms, Ordering::Relaxed);
            job.streamed_cells.fetch_add(1, Ordering::Relaxed);
            let mut row = Row::new(spec.name, &spec.suite.to_string(), *fespec, job.insts, &m);
            // The stream open+validation is this cell's own trace cost
            // (streamed cells share nothing), analogous to a capture
            // share of 1.
            row.elapsed_ms = open_ms + sim_ms;
            row
        }
        None => {
            let (trace, cap_ms) = {
                let entry = job.shared_traces[cell.trace].get_or_init(|| {
                    let c0 = Instant::now();
                    let t = match &shared.store {
                        Some(store) => store.get_or_capture(spec, job.insts),
                        None => spec.capture(job.insts),
                    };
                    let ms = c0.elapsed().as_millis() as u64;
                    job.captures.fetch_add(1, Ordering::Relaxed);
                    job.capture_ms.fetch_add(ms, Ordering::Relaxed);
                    (Arc::new(t), ms)
                });
                (Arc::clone(&entry.0), entry.1)
            };
            let sim0 = Instant::now();
            let m = frontend.run(&trace);
            let sim_ms = sim0.elapsed().as_millis() as u64;
            job.sim_ms.fetch_add(sim_ms, Ordering::Relaxed);
            let mut row = Row::new(spec.name, &spec.suite.to_string(), *fespec, job.insts, &m);
            row.elapsed_ms = capture_share(cap_ms, cell.missing, cell.rank) + sim_ms;
            row
        }
    };
    if let Some(store) = &shared.store {
        store.store_result(
            &result_key(spec, fespec, job.insts),
            &xbc_sim::to_json(std::slice::from_ref(&row)),
        );
    }
    let mut rows = job.rows.lock().expect("job rows lock");
    rows[cell.trace * job.frontends.len() + cell.fe] = Some(row);
    job.row_cv.notify_all();
}

/// Worker loop: drain the shared cell queue; exit once shutdown is
/// flagged *and* the queue is empty (graceful shutdown finishes every
/// accepted request).
fn worker(shared: &Shared) {
    loop {
        let (job, ci) = {
            let mut q = shared.queue.lock().expect("cell queue lock");
            loop {
                if let Some(item) = q.pop_front() {
                    break item;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.queue_cv.wait(q).expect("cell queue cv");
            }
        };
        run_cell(shared, &job, ci);
    }
}

/// Serves one sweep request on an open connection: probe the result
/// cache, queue the missing cells, stream rows back in trace-major
/// index order as the completed prefix grows, close with the `done`
/// trailer (per-request bench + store-stats delta).
fn handle_sweep(shared: &Shared, out: &mut UnixStream, req: SweepRequest) -> std::io::Result<()> {
    let wall0 = Instant::now();
    let all = standard_traces();
    let mut specs: Vec<TraceSpec> = Vec::with_capacity(req.traces.len());
    for name in &req.traces {
        match all.iter().find(|t| t.name == *name) {
            Some(s) => specs.push(s.clone()),
            None => {
                writeln!(out, "{}", protocol::error_line(&format!("unknown trace: {name}")))?;
                return Ok(());
            }
        }
    }
    if specs.is_empty() || req.frontends.is_empty() || req.insts == 0 {
        writeln!(
            out,
            "{}",
            protocol::error_line("sweep needs at least one trace, one frontend, and insts > 0")
        )?;
        return Ok(());
    }
    let stats0 = shared.store.as_ref().map(|s| s.stats());
    let n_fe = req.frontends.len();
    let n_cells = specs.len() * n_fe;
    let mut rows: Vec<Option<Row>> = vec![None; n_cells];

    // Probe the result cache — same sequential pass, same eviction of
    // undecodable entries, as `Sweep::run_with_bench` phase 1.
    if let Some(store) = &shared.store {
        for (ti, spec) in specs.iter().enumerate() {
            for (fi, fe) in req.frontends.iter().enumerate() {
                let key = result_key(spec, fe, req.insts);
                let Some(body) = store.load_result(&key) else { continue };
                match rows_from_json(&body) {
                    Ok(parsed) if parsed.len() == 1 => {
                        rows[ti * n_fe + fi] = parsed.into_iter().next();
                    }
                    Ok(parsed) => {
                        store.evict_result(
                            &key,
                            &format!("expected 1 cached row, found {}", parsed.len()),
                        );
                    }
                    Err(e) => {
                        store.evict_result(&key, &format!("undecodable cached row: {e}"));
                    }
                }
            }
        }
    }

    // Plan the missing cells trace-major (phase 2: deterministic ranks).
    let mut cells: Vec<Cell> = Vec::new();
    for ti in 0..specs.len() {
        let start = cells.len();
        for fi in 0..n_fe {
            if rows[ti * n_fe + fi].is_none() {
                cells.push(Cell { trace: ti, fe: fi, rank: cells.len() - start, missing: 0 });
            }
        }
        let missing = cells.len() - start;
        for c in &mut cells[start..] {
            c.missing = missing;
        }
    }
    let cached_cells = n_cells - cells.len();
    let simulated_cells = cells.len();

    let job = Arc::new(Job {
        shared_traces: (0..specs.len()).map(|_| OnceLock::new()).collect(),
        traces: specs,
        frontends: req.frontends,
        insts: req.insts,
        cells,
        rows: Mutex::new(rows),
        row_cv: Condvar::new(),
        captures: AtomicU64::new(0),
        capture_ms: AtomicU64::new(0),
        sim_ms: AtomicU64::new(0),
        streamed_cells: AtomicU64::new(0),
    });
    {
        let mut q = shared.queue.lock().expect("cell queue lock");
        for i in 0..job.cells.len() {
            q.push_back((Arc::clone(&job), i));
        }
        shared.queue_cv.notify_all();
    }

    // Stream rows in index order as soon as each is available; cached
    // rows flow out immediately.
    for idx in 0..n_cells {
        let row = {
            let mut slots = job.rows.lock().expect("job rows lock");
            loop {
                if let Some(r) = slots[idx].take() {
                    break r;
                }
                slots = job.row_cv.wait(slots).expect("job row cv");
            }
        };
        writeln!(out, "{}", protocol::row_line(idx, &row))?;
        out.flush()?;
    }

    let bench = SweepBench {
        threads: shared.threads,
        traces: job.traces.len(),
        frontends: n_fe,
        total_cells: n_cells,
        cached_cells,
        simulated_cells,
        captures: job.captures.load(Ordering::Relaxed),
        capture_ms: job.capture_ms.load(Ordering::Relaxed),
        sim_ms: job.sim_ms.load(Ordering::Relaxed),
        wall_ms: wall0.elapsed().as_millis() as u64,
        // The pool is daemon-global, not per-request: per-worker stats
        // are not attributable to one request, so the trailer's worker
        // list is empty by design.
        workers: Vec::new(),
    };
    let delta = stats0.map(|before| {
        protocol::stats_delta(
            &before,
            &shared.store.as_ref().expect("stats0 implies store").stats(),
        )
    });
    writeln!(out, "{}", protocol::done_line(n_cells, &bench, delta.as_ref()))?;
    out.flush()?;
    if shared.progress {
        eprintln!(
            "[xbc-serve] {} cells ({} cached, {} simulated, {} streamed) in {} ms",
            n_cells,
            cached_cells,
            simulated_cells,
            job.streamed_cells.load(Ordering::Relaxed),
            bench.wall_ms,
        );
    }
    Ok(())
}

/// One client connection: hello, then serve requests line by line until
/// the client disconnects (or asks for shutdown).
fn handle_connection(shared: &Shared, mut stream: UnixStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    writeln!(stream, "{}", protocol::hello_line(shared.threads))?;
    stream.flush()?;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err(e) => {
                writeln!(stream, "{}", protocol::error_line(&e))?;
                stream.flush()?;
            }
            Ok(Request::Ping) => {
                writeln!(stream, "{}", protocol::pong_line())?;
                stream.flush()?;
            }
            Ok(Request::Shutdown) => {
                writeln!(stream, "{}", protocol::bye_line())?;
                stream.flush()?;
                shared.shutdown.store(true, Ordering::Release);
                shared.queue_cv.notify_all();
                // Unblock the accept loop so it observes the flag.
                let _ = UnixStream::connect(&shared.socket);
                return Ok(());
            }
            Ok(Request::Sweep(req)) => handle_sweep(shared, &mut stream, req)?,
        }
    }
    Ok(())
}

/// Runs the daemon: binds `config.socket`, spawns the worker pool, and
/// accepts clients until one of them sends `shutdown`. Queued work is
/// drained before returning; the socket file is removed on exit.
///
/// # Errors
///
/// Returns the bind/IO error if the socket cannot be set up, or if
/// another live daemon already answers on it.
pub fn serve(config: &ServeConfig) -> std::io::Result<()> {
    let socket = &config.socket;
    if socket.exists() {
        // A socket file can outlive its daemon (SIGKILL). Probe it: a
        // live daemon answers the connect; a dead one leaves ECONNREFUSED.
        match UnixStream::connect(socket) {
            Ok(_) => {
                return Err(std::io::Error::other(format!(
                    "{} is already served by a live daemon",
                    socket.display()
                )));
            }
            Err(_) => {
                std::fs::remove_file(socket)?;
            }
        }
    }
    let listener = UnixListener::bind(socket)?;
    let threads = resolve_threads(config.threads);
    let shared = Shared {
        socket: socket.clone(),
        store: config.store.clone(),
        threads,
        progress: config.progress,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
    };
    if config.progress {
        eprintln!(
            "[xbc-serve] listening on {} ({} workers, store {})",
            socket.display(),
            threads,
            match &shared.store {
                Some(s) => s.root().display().to_string(),
                None => "off".to_owned(),
            }
        );
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(&shared));
        }
        for conn in listener.incoming() {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let shared = &shared;
                    scope.spawn(move || {
                        if let Err(e) = handle_connection(shared, stream) {
                            // A client hanging up mid-response is its
                            // prerogative, not a daemon failure.
                            if shared.progress {
                                eprintln!("[xbc-serve] connection ended: {e}");
                            }
                        }
                    });
                }
                Err(e) => {
                    if shared.progress {
                        eprintln!("[xbc-serve] accept failed: {e}");
                    }
                }
            }
        }
        // Shutdown: wake any workers parked on an empty queue.
        shared.queue_cv.notify_all();
    });
    std::fs::remove_file(socket).ok();
    if config.progress {
        eprintln!("[xbc-serve] shut down");
    }
    Ok(())
}
