//! # xbc-workload — synthetic workloads and dynamic traces
//!
//! The paper evaluates on 21 proprietary 30M-instruction x86 traces
//! (SPECint95, SYSmark32, Games). This crate synthesizes deterministic
//! stand-ins with the workload properties the results depend on (see
//! DESIGN.md §3):
//!
//! * [`WorkloadProfile`] — the statistical knobs (block lengths, branch
//!   mix & bias structure, control-flow fan-in, footprint, call locality),
//! * [`ProgramGenerator`] — builds a random [`Program`] (CFG per function,
//!   annotated branch behaviour) from a profile and a seed,
//! * [`Executor`] / [`Trace`] — architectural execution producing the
//!   committed [`DynInst`] stream the frontend simulators replay,
//! * [`standard_traces`] — the 21-trace suite used by every figure,
//! * [`block_length_stats`] — Figure 1's block-length distributions,
//! * [`analyze`] — workload characterization reports backing the
//!   substitution argument (DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use xbc_workload::{standard_traces, block_length_stats};
//!
//! let spec = &standard_traces()[0];
//! let trace = spec.capture(20_000);
//! let stats = block_length_stats(&trace);
//! assert!(stats.xb.mean() >= stats.basic_block.mean() - 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod dot;
mod exec;
mod generate;
mod profile;
mod program;
mod report;
mod rng;
mod stats;
mod stream;
mod suite;
mod trace;

pub use codec::{crc32_combine, StreamEncoder};
pub use codec::{TraceError, TraceReader};
pub use dot::function_dot;
pub use exec::{DynInst, ExecStats, Executor};
pub use generate::ProgramGenerator;
pub use profile::{TerminatorMix, WorkloadProfile};
pub use program::{CondBehavior, IndirectTargets, Program, ProgramBuilder, ProgramStats};
pub use report::{analyze, BranchMix, WorkloadReport};
pub use rng::{Rng64, Sample, SampleRange};
pub use stats::{block_length_stats, BlockLengthStats, BLOCK_QUOTA};
pub use stream::{ChannelSource, InstSource, IterSource, TraceStream, CHANNEL_DEPTH};
pub use suite::{standard_traces, Suite, TraceSpec};
pub use trace::{Trace, CAPTURE_CHUNK};
