//! The sweep engine: runs (trace × frontend-configuration) grids in
//! parallel and collects result rows.
//!
//! When a [`Store`] is attached ([`Sweep::with_store`]), the engine is
//! fully cached: each (trace, frontend, insts) cell first consults the
//! result cache, and only cells that miss cost a capture + simulation.
//! A re-run with unchanged parameters performs zero captures and zero
//! simulations — it is a pure replay of cached rows.

use crate::report::{rows_from_json, Row};
use crate::spec::FrontendSpec;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;
use xbc_frontend::{Frontend, FrontendMetrics, OracleStream};
use xbc_store::Store;
use xbc_workload::{Trace, TraceSpec};

/// Bumped whenever simulator semantics change, so stale cached results
/// are invalidated rather than silently replayed.
pub const CODE_VERSION: u32 = 1;

/// The result-cache key of one (trace, frontend, insts) cell: every
/// input that determines the row, plus [`CODE_VERSION`].
fn result_key(spec: &TraceSpec, fe: &FrontendSpec, insts: usize) -> String {
    format!(
        "row|name={}|suite={}|seed={}|functions={}|insts={insts}|fe={}|code={CODE_VERSION}",
        spec.name,
        spec.suite,
        spec.seed,
        spec.functions,
        fe.key()
    )
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Traces to replay.
    pub traces: Vec<TraceSpec>,
    /// Frontend configurations to run each trace through.
    pub frontends: Vec<FrontendSpec>,
    /// Dynamic instructions per trace.
    pub insts: usize,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Optional trace/result store; `None` disables caching.
    pub store: Option<Arc<Store>>,
    /// Emit per-trace progress lines to stderr (default on).
    pub progress: bool,
    /// Verify accounting identities and structural invariants while
    /// simulating (default off). Checked runs produce *identical* rows —
    /// the checks observe, they never perturb — so [`CODE_VERSION`] is
    /// unaffected; cells replayed from the result cache are not re-run.
    pub check: bool,
}

impl Sweep {
    /// Creates an uncached sweep over the given traces and frontends
    /// with `insts` instructions per trace.
    ///
    /// # Panics
    ///
    /// Panics if any list is empty or `insts` is zero.
    pub fn new(traces: Vec<TraceSpec>, frontends: Vec<FrontendSpec>, insts: usize) -> Self {
        assert!(!traces.is_empty(), "sweep needs at least one trace");
        assert!(!frontends.is_empty(), "sweep needs at least one frontend");
        assert!(insts > 0, "sweep needs a positive instruction budget");
        Sweep { traces, frontends, insts, threads: 0, store: None, progress: true, check: false }
    }

    /// Attaches a trace/result store; subsequent [`run`](Sweep::run)
    /// calls consult it before capturing or simulating anything.
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Runs the sweep. Traces are distributed over worker threads; each
    /// worker captures its trace once and replays it through every
    /// frontend configuration, so all configurations see the identical
    /// committed path (the paper's trace-driven methodology). With a
    /// store attached, cells whose results are cached skip both the
    /// capture and the simulation.
    ///
    /// Rows are returned grouped by trace (in input order), then by
    /// frontend (in input order) — deterministic regardless of threading.
    pub fn run(&self) -> Vec<Row> {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.threads
        };
        let next = Mutex::new(0usize);
        let results: Mutex<Vec<(usize, Vec<Row>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..threads.min(self.traces.len()) {
                scope.spawn(|| loop {
                    let idx = {
                        let mut n = next.lock().expect("sweep index lock");
                        let idx = *n;
                        *n += 1;
                        idx
                    };
                    if idx >= self.traces.len() {
                        break;
                    }
                    let rows = self.run_trace(&self.traces[idx]);
                    results.lock().expect("sweep result lock").push((idx, rows));
                });
            }
        });
        if let Some(store) = &self.store {
            if self.progress {
                eprintln!("[xbc-store] {}", store.stats());
            }
        }
        let mut grouped = results.into_inner().expect("threads joined");
        grouped.sort_by_key(|(idx, _)| *idx);
        grouped.into_iter().flat_map(|(_, rows)| rows).collect()
    }

    /// Produces the rows of one trace: cached cells come straight from
    /// the store, the rest are simulated (capturing the trace at most
    /// once) and written back.
    fn run_trace(&self, spec: &TraceSpec) -> Vec<Row> {
        let t0 = Instant::now();
        let mut rows: Vec<Option<Row>> = vec![None; self.frontends.len()];
        if let Some(store) = &self.store {
            for (i, fe) in self.frontends.iter().enumerate() {
                if let Some(body) = store.load_result(&result_key(spec, fe, self.insts)) {
                    match rows_from_json(&body) {
                        Ok(parsed) if parsed.len() == 1 => {
                            rows[i] = parsed.into_iter().next();
                        }
                        Ok(_) | Err(_) => {
                            // CRC-valid but not a single row (e.g. written
                            // by an older schema): recompute this cell.
                            eprintln!(
                                "[sweep] undecodable cached row for {} / {}; recomputing",
                                spec.name,
                                fe.label()
                            );
                        }
                    }
                }
            }
        }
        let cached = rows.iter().filter(|r| r.is_some()).count();
        let missing = rows.len() - cached;
        if missing > 0 {
            let cap0 = Instant::now();
            let trace: Trace = match &self.store {
                Some(store) => store.get_or_capture(spec, self.insts),
                None => spec.capture(self.insts),
            };
            // Charge the capture evenly to the cells that needed it.
            let capture_share_ms = cap0.elapsed().as_millis() as u64 / missing as u64;
            for (i, fe) in self.frontends.iter().enumerate() {
                if rows[i].is_some() {
                    continue;
                }
                let sim0 = Instant::now();
                let mut frontend = fe.instantiate();
                let m = if self.check {
                    run_checked(&mut *frontend, &trace, spec.name)
                } else {
                    frontend.run(&trace)
                };
                let mut row = Row::new(spec.name, &spec.suite.to_string(), *fe, self.insts, &m);
                row.elapsed_ms = capture_share_ms + sim0.elapsed().as_millis() as u64;
                if let Some(store) = &self.store {
                    store.store_result(
                        &result_key(spec, fe, self.insts),
                        &crate::report::to_json(std::slice::from_ref(&row)),
                    );
                }
                rows[i] = Some(row);
            }
        }
        if self.progress {
            eprintln!(
                "[sweep] {:<18} {} cached, {} simulated, {} ms",
                spec.name,
                cached,
                missing,
                t0.elapsed().as_millis()
            );
        }
        rows.into_iter().map(|r| r.expect("every cell filled")).collect()
    }
}

/// Steps a frontend to completion while asserting, every cycle, the
/// accounting identities any correct model maintains (uop conservation
/// and the build/delivery/stall partition), then runs the frontend's
/// structural self-audit. Behaviorally identical to [`Frontend::run`] —
/// only observation is added — so checked and unchecked rows match.
///
/// # Panics
///
/// Panics with a diagnostic naming the frontend, trace, and cycle on the
/// first violation.
pub fn run_checked(fe: &mut dyn Frontend, trace: &Trace, trace_name: &str) -> FrontendMetrics {
    let mut oracle = OracleStream::new(trace);
    let mut metrics = FrontendMetrics::default();
    let mut stuck = 0u32;
    let mut last_delivered = 0u64;
    while !oracle.done() {
        let before = metrics.cycles;
        fe.step(&mut oracle, &mut metrics);
        assert!(
            metrics.cycles > before,
            "[--check] {} on {trace_name}: step added no cycle at uop {}",
            fe.name(),
            oracle.delivered_uops()
        );
        assert_eq!(
            metrics.cycles,
            metrics.build_cycles + metrics.delivery_cycles + metrics.stall_cycles,
            "[--check] {} on {trace_name}: cycle partition broken at cycle {}",
            fe.name(),
            metrics.cycles
        );
        assert_eq!(
            metrics.total_uops(),
            oracle.delivered_uops(),
            "[--check] {} on {trace_name}: uop conservation broken at cycle {}",
            fe.name(),
            metrics.cycles
        );
        if oracle.delivered_uops() == last_delivered {
            stuck += 1;
            assert!(
                stuck < 10_000,
                "[--check] {} on {trace_name}: livelock at inst {}",
                fe.name(),
                oracle.inst_index()
            );
        } else {
            last_delivered = oracle.delivered_uops();
            stuck = 0;
        }
    }
    if let Err(e) = fe.check_invariants() {
        panic!("[--check] {} on {trace_name}: invariant violation: {e}", fe.name());
    }
    metrics
}

/// One `(trace, label, metrics)` result of [`sweep_custom`].
pub type CustomRow = (String, String, FrontendMetrics);

/// A fully custom sweep for ablations: `make(config_index)` builds a cold
/// frontend for each labelled configuration; every trace is captured once
/// per worker and replayed through all of them. Returns
/// `(trace, label, metrics)` tuples in deterministic trace-major order.
///
/// With a `store`, captures go through the trace cache; results are not
/// cached (the configurations are opaque closures, so they have no
/// stable identity to key on).
pub fn sweep_custom<F>(
    traces: &[TraceSpec],
    insts: usize,
    labels: &[&str],
    threads: usize,
    store: Option<&Store>,
    make: F,
) -> Vec<CustomRow>
where
    F: Fn(usize) -> Box<dyn Frontend + Send> + Sync,
{
    assert!(!traces.is_empty() && !labels.is_empty() && insts > 0, "empty custom sweep");
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    };
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<(usize, Vec<CustomRow>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(traces.len()) {
            scope.spawn(|| loop {
                let idx = {
                    let mut n = next.lock().expect("sweep index lock");
                    let idx = *n;
                    *n += 1;
                    idx
                };
                if idx >= traces.len() {
                    break;
                }
                let spec = &traces[idx];
                let trace = match store {
                    Some(s) => s.get_or_capture(spec, insts),
                    None => spec.capture(insts),
                };
                let rows: Vec<CustomRow> = labels
                    .iter()
                    .enumerate()
                    .map(|(i, label)| {
                        let mut fe = make(i);
                        let m = fe.run(&trace);
                        (spec.name.to_owned(), (*label).to_owned(), m)
                    })
                    .collect();
                results.lock().expect("sweep result lock").push((idx, rows));
            });
        }
    });
    let mut grouped = results.into_inner().expect("threads joined");
    grouped.sort_by_key(|(idx, _)| *idx);
    grouped.into_iter().flat_map(|(_, rows)| rows).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_workload::standard_traces;

    #[test]
    fn small_sweep_is_deterministic_and_ordered() {
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(3).collect();
        let frontends = vec![
            FrontendSpec::Tc { total_uops: 4096, ways: 4 },
            FrontendSpec::Xbc { total_uops: 4096, ways: 2, promotion: true },
        ];
        let sweep = Sweep::new(traces.clone(), frontends.clone(), 5_000);
        let a = sweep.run();
        let b = sweep.run();
        assert_eq!(a.len(), 6);
        // Ordering: trace-major, frontend-minor.
        assert_eq!(a[0].trace, traces[0].name);
        assert_eq!(a[1].trace, traces[0].name);
        assert_eq!(a[2].trace, traces[1].name);
        assert_eq!(a[0].frontend.label(), "tc-4k");
        assert_eq!(a[1].frontend.label(), "xbc-4k");
        // Determinism.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.miss_rate, y.miss_rate);
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let frontends = vec![FrontendSpec::Ic];
        let mut sweep = Sweep::new(traces, frontends, 3_000);
        let par = sweep.run();
        sweep.threads = 1;
        let seq = sweep.run();
        assert_eq!(par.len(), seq.len());
        for (x, y) in par.iter().zip(&seq) {
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_traces_rejected() {
        let _ = Sweep::new(vec![], vec![FrontendSpec::Ic], 10);
    }

    #[test]
    fn cached_rerun_simulates_nothing_and_matches() {
        let dir = std::env::temp_dir().join(format!("xbc-sweep-cache-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let frontends = vec![FrontendSpec::Ic, FrontendSpec::xbc_default()];
        let store = Arc::new(Store::open(&dir).unwrap());
        let mut sweep = Sweep::new(traces, frontends, 3_000).with_store(Arc::clone(&store));
        sweep.progress = false;
        let fresh = sweep.run();
        let after_fresh = store.stats();
        assert_eq!(after_fresh.result_misses, 4);
        assert_eq!(after_fresh.result_hits, 0);
        let cached = sweep.run();
        let after_cached = store.stats();
        // The re-run hit every result cell and never touched a trace.
        assert_eq!(after_cached.result_hits, 4);
        assert_eq!(after_cached.trace_hits, 0);
        assert_eq!(after_cached.trace_misses, after_fresh.trace_misses);
        for (f, c) in fresh.iter().zip(&cached) {
            assert_eq!(f.trace, c.trace);
            assert_eq!(f.frontend, c.frontend);
            assert_eq!(f.cycles, c.cycles);
            assert_eq!(f.miss_rate, c.miss_rate);
            assert_eq!(f.elapsed_ms, c.elapsed_ms, "cached rows keep the original cost");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checked_sweep_rows_match_unchecked() {
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let frontends = vec![FrontendSpec::Ic, FrontendSpec::xbc_default()];
        let mut plain = Sweep::new(traces.clone(), frontends.clone(), 4_000);
        plain.progress = false;
        let mut checked = Sweep::new(traces, frontends, 4_000);
        checked.progress = false;
        checked.check = true;
        for (p, c) in plain.run().iter().zip(&checked.run()) {
            assert_eq!(p.cycles, c.cycles, "--check must observe, never perturb");
            assert_eq!(p.miss_rate, c.miss_rate);
        }
    }

    #[test]
    fn custom_sweep_runs_all_configs() {
        use xbc::{XbcConfig, XbcFrontend};
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let rows = sweep_custom(&traces, 3_000, &["promo", "nopromo"], 0, None, |i| {
            use xbc::PromotionMode;
            Box::new(XbcFrontend::new(XbcConfig {
                total_uops: 4096,
                promotion: if i == 0 { PromotionMode::Chain } else { PromotionMode::Off },
                ..XbcConfig::default()
            }))
        });
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].1, "promo");
        assert_eq!(rows[1].1, "nopromo");
        assert_eq!(rows[0].0, traces[0].name);
    }
}
