//! The sweep engine: runs (trace × frontend-configuration) grids in
//! parallel and collects result rows.

use crate::report::Row;
use crate::spec::FrontendSpec;
use std::sync::Mutex;
use xbc_frontend::{Frontend, FrontendMetrics};
use xbc_workload::TraceSpec;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Traces to replay.
    pub traces: Vec<TraceSpec>,
    /// Frontend configurations to run each trace through.
    pub frontends: Vec<FrontendSpec>,
    /// Dynamic instructions per trace.
    pub insts: usize,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl Sweep {
    /// Creates a sweep over the given traces and frontends with `insts`
    /// instructions per trace.
    ///
    /// # Panics
    ///
    /// Panics if any list is empty or `insts` is zero.
    pub fn new(traces: Vec<TraceSpec>, frontends: Vec<FrontendSpec>, insts: usize) -> Self {
        assert!(!traces.is_empty(), "sweep needs at least one trace");
        assert!(!frontends.is_empty(), "sweep needs at least one frontend");
        assert!(insts > 0, "sweep needs a positive instruction budget");
        Sweep { traces, frontends, insts, threads: 0 }
    }

    /// Runs the sweep. Traces are distributed over worker threads; each
    /// worker captures its trace once and replays it through every
    /// frontend configuration, so all configurations see the identical
    /// committed path (the paper's trace-driven methodology).
    ///
    /// Rows are returned grouped by trace (in input order), then by
    /// frontend (in input order) — deterministic regardless of threading.
    pub fn run(&self) -> Vec<Row> {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.threads
        };
        let next = Mutex::new(0usize);
        let results: Mutex<Vec<(usize, Vec<Row>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..threads.min(self.traces.len()) {
                scope.spawn(|| loop {
                    let idx = {
                        let mut n = next.lock().expect("sweep index lock");
                        let idx = *n;
                        *n += 1;
                        idx
                    };
                    if idx >= self.traces.len() {
                        break;
                    }
                    let spec = &self.traces[idx];
                    let trace = spec.capture(self.insts);
                    let rows: Vec<Row> = self
                        .frontends
                        .iter()
                        .map(|f| {
                            let mut fe = f.instantiate();
                            let m = fe.run(&trace);
                            Row::new(spec.name, &spec.suite.to_string(), *f, self.insts, &m)
                        })
                        .collect();
                    results.lock().expect("sweep result lock").push((idx, rows));
                });
            }
        });
        let mut grouped = results.into_inner().expect("threads joined");
        grouped.sort_by_key(|(idx, _)| *idx);
        grouped.into_iter().flat_map(|(_, rows)| rows).collect()
    }
}

/// One `(trace, label, metrics)` result of [`sweep_custom`].
pub type CustomRow = (String, String, FrontendMetrics);

/// A fully custom sweep for ablations: `make(config_index)` builds a cold
/// frontend for each labelled configuration; every trace is captured once
/// per worker and replayed through all of them. Returns
/// `(trace, label, metrics)` tuples in deterministic trace-major order.
pub fn sweep_custom<F>(
    traces: &[TraceSpec],
    insts: usize,
    labels: &[&str],
    threads: usize,
    make: F,
) -> Vec<CustomRow>
where
    F: Fn(usize) -> Box<dyn Frontend + Send> + Sync,
{
    assert!(!traces.is_empty() && !labels.is_empty() && insts > 0, "empty custom sweep");
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    };
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<(usize, Vec<CustomRow>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(traces.len()) {
            scope.spawn(|| loop {
                let idx = {
                    let mut n = next.lock().expect("sweep index lock");
                    let idx = *n;
                    *n += 1;
                    idx
                };
                if idx >= traces.len() {
                    break;
                }
                let spec = &traces[idx];
                let trace = spec.capture(insts);
                let rows: Vec<CustomRow> = labels
                    .iter()
                    .enumerate()
                    .map(|(i, label)| {
                        let mut fe = make(i);
                        let m = fe.run(&trace);
                        (spec.name.to_owned(), (*label).to_owned(), m)
                    })
                    .collect();
                results.lock().expect("sweep result lock").push((idx, rows));
            });
        }
    });
    let mut grouped = results.into_inner().expect("threads joined");
    grouped.sort_by_key(|(idx, _)| *idx);
    grouped.into_iter().flat_map(|(_, rows)| rows).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_workload::standard_traces;

    #[test]
    fn small_sweep_is_deterministic_and_ordered() {
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(3).collect();
        let frontends = vec![
            FrontendSpec::Tc { total_uops: 4096, ways: 4 },
            FrontendSpec::Xbc { total_uops: 4096, ways: 2, promotion: true },
        ];
        let sweep = Sweep::new(traces.clone(), frontends.clone(), 5_000);
        let a = sweep.run();
        let b = sweep.run();
        assert_eq!(a.len(), 6);
        // Ordering: trace-major, frontend-minor.
        assert_eq!(a[0].trace, traces[0].name);
        assert_eq!(a[1].trace, traces[0].name);
        assert_eq!(a[2].trace, traces[1].name);
        assert_eq!(a[0].frontend.label(), "tc-4k");
        assert_eq!(a[1].frontend.label(), "xbc-4k");
        // Determinism.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.miss_rate, y.miss_rate);
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let frontends = vec![FrontendSpec::Ic];
        let mut sweep = Sweep::new(traces, frontends, 3_000);
        let par = sweep.run();
        sweep.threads = 1;
        let seq = sweep.run();
        assert_eq!(par.len(), seq.len());
        for (x, y) in par.iter().zip(&seq) {
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_traces_rejected() {
        let _ = Sweep::new(vec![], vec![FrontendSpec::Ic], 10);
    }

    #[test]
    fn custom_sweep_runs_all_configs() {
        use xbc::{XbcConfig, XbcFrontend};
        let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
        let rows = sweep_custom(&traces, 3_000, &["promo", "nopromo"], 0, |i| {
            use xbc::PromotionMode;
            Box::new(XbcFrontend::new(XbcConfig {
                total_uops: 4096,
                promotion: if i == 0 { PromotionMode::Chain } else { PromotionMode::Off },
                ..XbcConfig::default()
            }))
        });
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].1, "promo");
        assert_eq!(rows[1].1, "nopromo");
        assert_eq!(rows[0].0, traces[0].name);
    }
}
