//! Result rows and table rendering.

use crate::json::{escape, Json};
use crate::spec::FrontendSpec;
use xbc_frontend::FrontendMetrics;

/// One (trace × frontend) simulation result.
#[derive(Clone, Debug)]
pub struct Row {
    /// Trace name (e.g. `"spec.gcc"`).
    pub trace: String,
    /// Suite name.
    pub suite: String,
    /// Frontend configuration.
    pub frontend: FrontendSpec,
    /// Dynamic instructions replayed.
    pub insts: usize,
    /// Total uops delivered.
    pub uops: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// The paper's uop miss rate (fraction of uops from the IC).
    pub miss_rate: f64,
    /// The paper's delivery bandwidth (structure uops per delivery cycle).
    pub bandwidth: f64,
    /// Overall uops per cycle.
    pub uops_per_cycle: f64,
    /// Conditional mispredictions.
    pub cond_mispredicts: u64,
    /// Target (indirect/return/mis-fetch) mispredictions.
    pub target_mispredicts: u64,
    /// Delivery→build transitions.
    pub delivery_to_build: u64,
    /// Uop-slots lost to bank conflicts (XBC only).
    pub bank_conflict_uops: u64,
    /// Branch promotions (XBC only).
    pub promotions: u64,
    /// Wall-clock milliseconds spent producing this row (capture share +
    /// simulation). For cache hits this is the *original* cost, not the
    /// (near-zero) lookup cost.
    pub elapsed_ms: u64,
}

impl Row {
    /// Builds a row from raw metrics.
    pub fn new(
        trace: &str,
        suite: &str,
        frontend: FrontendSpec,
        insts: usize,
        m: &FrontendMetrics,
    ) -> Self {
        Row {
            trace: trace.to_owned(),
            suite: suite.to_owned(),
            frontend,
            insts,
            uops: m.total_uops(),
            cycles: m.cycles,
            miss_rate: m.uop_miss_rate(),
            bandwidth: m.delivery_bandwidth(),
            uops_per_cycle: m.overall_uops_per_cycle(),
            cond_mispredicts: m.cond_mispredicts,
            target_mispredicts: m.target_mispredicts,
            delivery_to_build: m.delivery_to_build,
            bank_conflict_uops: m.bank_conflict_uops,
            promotions: m.promotions,
            elapsed_ms: 0,
        }
    }

    /// Serializes this row as a JSON object, indented by `indent` spaces.
    ///
    /// Field order is fixed, `f64` fields use Rust's shortest-roundtrip
    /// formatting, and `u64` counters stay integral — so the encoding is
    /// deterministic and `from_json` recovers the exact row.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent + 2);
        let fields = [
            ("trace", format!("\"{}\"", escape(&self.trace))),
            ("suite", format!("\"{}\"", escape(&self.suite))),
            ("frontend", self.frontend.to_json()),
            ("insts", self.insts.to_string()),
            ("uops", self.uops.to_string()),
            ("cycles", self.cycles.to_string()),
            ("miss_rate", format!("{}", self.miss_rate)),
            ("bandwidth", format!("{}", self.bandwidth)),
            ("uops_per_cycle", format!("{}", self.uops_per_cycle)),
            ("cond_mispredicts", self.cond_mispredicts.to_string()),
            ("target_mispredicts", self.target_mispredicts.to_string()),
            ("delivery_to_build", self.delivery_to_build.to_string()),
            ("bank_conflict_uops", self.bank_conflict_uops.to_string()),
            ("promotions", self.promotions.to_string()),
            ("elapsed_ms", self.elapsed_ms.to_string()),
        ];
        let body: Vec<String> = fields.iter().map(|(k, v)| format!("{pad}\"{k}\": {v}")).collect();
        format!("{{\n{}\n{}}}", body.join(",\n"), " ".repeat(indent))
    }

    /// Reconstructs a row from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(j: &Json) -> Result<Row, String> {
        fn str_field(j: &Json, k: &str) -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("row missing {k}"))
        }
        fn u64_field(j: &Json, k: &str) -> Result<u64, String> {
            j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("row missing {k}"))
        }
        fn f64_field(j: &Json, k: &str) -> Result<f64, String> {
            j.get(k).and_then(Json::as_f64).ok_or_else(|| format!("row missing {k}"))
        }
        Ok(Row {
            trace: str_field(j, "trace")?,
            suite: str_field(j, "suite")?,
            frontend: FrontendSpec::from_json(j.get("frontend").ok_or("row missing frontend")?)?,
            insts: j.get("insts").and_then(Json::as_usize).ok_or("row missing insts")?,
            uops: u64_field(j, "uops")?,
            cycles: u64_field(j, "cycles")?,
            miss_rate: f64_field(j, "miss_rate")?,
            bandwidth: f64_field(j, "bandwidth")?,
            uops_per_cycle: f64_field(j, "uops_per_cycle")?,
            cond_mispredicts: u64_field(j, "cond_mispredicts")?,
            target_mispredicts: u64_field(j, "target_mispredicts")?,
            delivery_to_build: u64_field(j, "delivery_to_build")?,
            bank_conflict_uops: u64_field(j, "bank_conflict_uops")?,
            promotions: u64_field(j, "promotions")?,
            elapsed_ms: u64_field(j, "elapsed_ms")?,
        })
    }
}

/// Uop-weighted average miss rate over a set of rows.
pub fn average_miss_rate(rows: &[Row]) -> f64 {
    let total: u64 = rows.iter().map(|r| r.uops).sum();
    if total == 0 {
        return 0.0;
    }
    rows.iter().map(|r| r.miss_rate * r.uops as f64).sum::<f64>() / total as f64
}

/// Delivery-cycle-weighted average bandwidth over a set of rows.
pub fn average_bandwidth(rows: &[Row]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.bandwidth).sum::<f64>() / rows.len() as f64
}

/// Renders a fixed-width table: one row per trace, one column per frontend
/// label, cell = `select(row)`. Frontends appear in first-seen order.
pub fn pivot_table<F>(rows: &[Row], title: &str, select: F) -> String
where
    F: Fn(&Row) -> f64,
{
    let mut frontends: Vec<String> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    for r in rows {
        let label = r.frontend.label();
        if !frontends.contains(&label) {
            frontends.push(label);
        }
        if !traces.contains(&r.trace) {
            traces.push(r.trace.clone());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<18}", "trace"));
    for f in &frontends {
        out.push_str(&format!("{f:>14}"));
    }
    out.push('\n');
    for t in &traces {
        out.push_str(&format!("{t:<18}"));
        for f in &frontends {
            let cell = rows
                .iter()
                .find(|r| &r.trace == t && r.frontend.label() == *f)
                .map(|r| format!("{:>14.3}", select(r)))
                .unwrap_or_else(|| format!("{:>14}", "-"));
            out.push_str(&cell);
        }
        out.push('\n');
    }
    // Column averages.
    out.push_str(&format!("{:<18}", "AVG"));
    for f in &frontends {
        let sel: Vec<&Row> = rows.iter().filter(|r| r.frontend.label() == *f).collect();
        let avg = if sel.is_empty() {
            0.0
        } else {
            sel.iter().map(|r| select(r)).sum::<f64>() / sel.len() as f64
        };
        out.push_str(&format!("{avg:>14.3}"));
    }
    out.push('\n');
    out
}

/// Serializes rows as pretty JSON (for EXPERIMENTS.md regeneration and
/// the xbc-store result cache).
pub fn to_json(rows: &[Row]) -> String {
    if rows.is_empty() {
        return "[]".to_owned();
    }
    let body: Vec<String> = rows.iter().map(|r| format!("  {}", r.to_json(2))).collect();
    format!("[\n{}\n]", body.join(",\n"))
}

/// Parses rows previously written by [`to_json`].
///
/// # Errors
///
/// Returns a message describing the first malformed row or field.
pub fn rows_from_json(s: &str) -> Result<Vec<Row>, String> {
    let doc = Json::parse(s)?;
    let items = doc.as_arr().ok_or("expected a JSON array of rows")?;
    items.iter().map(Row::from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(trace: &str, spec: FrontendSpec, miss: f64, uops: u64) -> Row {
        Row {
            trace: trace.into(),
            suite: "s".into(),
            frontend: spec,
            insts: 100,
            uops,
            cycles: 10,
            miss_rate: miss,
            bandwidth: 6.0,
            uops_per_cycle: 2.0,
            cond_mispredicts: 0,
            target_mispredicts: 0,
            delivery_to_build: 0,
            bank_conflict_uops: 0,
            promotions: 0,
            elapsed_ms: 0,
        }
    }

    #[test]
    fn weighted_average() {
        let rows = vec![row("a", FrontendSpec::Ic, 0.1, 100), row("b", FrontendSpec::Ic, 0.3, 300)];
        assert!((average_miss_rate(&rows) - 0.25).abs() < 1e-12);
        assert_eq!(average_miss_rate(&[]), 0.0);
    }

    #[test]
    fn table_layout() {
        let rows = vec![
            row("a", FrontendSpec::tc_default(), 0.5, 1),
            row("a", FrontendSpec::xbc_default(), 0.25, 1),
            row("b", FrontendSpec::tc_default(), 0.1, 1),
        ];
        let t = pivot_table(&rows, "demo", |r| r.miss_rate);
        assert!(t.contains("tc-32k"));
        assert!(t.contains("xbc-32k"));
        assert!(t.contains("0.500"));
        assert!(t.contains("0.250"));
        assert!(t.lines().last().unwrap().starts_with("AVG"));
        // Missing cell renders a dash.
        assert!(t.contains('-'));
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut r = row("spec.gcc", FrontendSpec::xbc_default(), 1.0 / 3.0, 12_345);
        r.elapsed_ms = 42;
        let rows = vec![r, row("a", FrontendSpec::Ic, 0.5, 10)];
        let json = to_json(&rows);
        let back = rows_from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].trace, "spec.gcc");
        assert_eq!(back[0].frontend, FrontendSpec::xbc_default());
        assert_eq!(back[0].miss_rate, rows[0].miss_rate);
        assert_eq!(back[0].elapsed_ms, 42);
        // Re-encoding the parsed rows is byte-identical: the format is a
        // fixed point, which is what lets cached and fresh sweeps agree.
        assert_eq!(to_json(&back), json);
        assert_eq!(to_json(&[]), "[]");
        assert!(rows_from_json("{\"not\":\"rows\"}").is_err());
    }
}
