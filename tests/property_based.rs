//! Property-based tests (proptest) of the core data-structure invariants.

use proptest::prelude::*;
use xbc::{BankMask, XbPtr, XbcArray, XbcConfig};
use xbc_isa::{decode, Addr, BranchKind, Inst, Uop};
use xbc_uarch::Histogram;
use xbc_workload::{ProgramGenerator, Trace, WorkloadProfile};

/// Strategy: a plausible uop sequence for one XB (1..=16 uops), ending on
/// a conditional branch.
fn arb_xb_uops() -> impl Strategy<Value = Vec<Uop>> {
    // Build from instruction shapes so uop identities look real.
    proptest::collection::vec((1u8..=4, 1u8..=11), 1..=4).prop_map(|shapes| {
        let mut uops = Vec::new();
        let mut ip = 0x4000u64;
        let total: usize = shapes.iter().map(|(u, _)| *u as usize).sum();
        for (i, (u, len)) in shapes.iter().enumerate() {
            let last = i + 1 == shapes.len();
            let inst = if last {
                Inst::new(Addr::new(ip), *len, *u, BranchKind::CondDirect, Some(Addr::new(0x100)))
            } else {
                Inst::plain(Addr::new(ip), *len, *u)
            };
            uops.extend(decode(&inst));
            ip += *len as u64;
        }
        assert!(total <= 16);
        uops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever is inserted into the array reads back identically
    /// (reverse-order storage is an implementation detail, not an
    /// observable one).
    #[test]
    fn array_insert_read_roundtrip(uops in arb_xb_uops(), ip_raw in 0u64..1_000_000) {
        let cfg = XbcConfig { total_uops: 1024, ..XbcConfig::default() };
        let mut a = XbcArray::new(&cfg);
        let end_ip = Addr::new(ip_raw + uops.len() as u64);
        let mask = a.insert(end_ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
        prop_assert_eq!(mask.count(), uops.len().div_ceil(4));
        let (set, tag) = a.set_and_tag(end_ip);
        let asm = a.assemble(set, tag, None).expect("just inserted");
        prop_assert_eq!(asm.total_uops, uops.len());
        prop_assert_eq!(a.read_uops(set, &asm), uops);
    }

    /// Any mid-block entry offset is fetchable after insertion.
    #[test]
    fn array_every_entry_offset_fetchable(uops in arb_xb_uops(), ip_raw in 0u64..1_000_000) {
        let cfg = XbcConfig { total_uops: 1024, ..XbcConfig::default() };
        let mut a = XbcArray::new(&cfg);
        let end_ip = Addr::new(ip_raw + uops.len() as u64);
        let mask = a.insert(end_ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
        for offset in 1..=uops.len() as u8 {
            let ptr = XbPtr::new(end_ip, Addr::new(0), mask, offset);
            prop_assert!(a.lookup(&ptr).is_some(), "offset {} must hit", offset);
            let mut used = BankMask::EMPTY;
            let r = a.fetch_one(&ptr, &mut used);
            prop_assert_eq!(r, xbc::XbFetch::Full);
            prop_assert_eq!(used.count(), (offset as usize).div_ceil(4));
        }
    }

    /// Histogram mean/count stay consistent under arbitrary inputs.
    #[test]
    fn histogram_invariants(values in proptest::collection::vec(1usize..200, 1..100)) {
        let mut h = Histogram::new(16);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let clamped: f64 = values.iter().map(|&v| v.min(16) as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - clamped).abs() < 1e-9);
        let total: u64 = (1..=16).map(|v| h.bin(v)).sum();
        prop_assert_eq!(total, h.count());
        // Quantiles are monotone.
        prop_assert!(h.quantile(0.25) <= h.quantile(0.75));
    }

    /// BankMask set algebra.
    #[test]
    fn bank_mask_algebra(a in 0u8..16, b in 0u8..16) {
        let (ma, mb) = (BankMask::from_bits(a), BankMask::from_bits(b));
        prop_assert_eq!(ma.union(mb).bits(), a | b);
        prop_assert_eq!(ma.intersects(mb), a & b != 0);
        prop_assert_eq!(ma.count(), a.count_ones() as usize);
        let collected: Vec<usize> = ma.iter().collect();
        prop_assert_eq!(collected.len(), ma.count());
        for bank in collected {
            prop_assert!(ma.contains(bank));
        }
    }

    /// Generated programs always execute safely for any seed, and the
    /// committed stream stays connected.
    #[test]
    fn generated_program_always_executes(seed in 0u64..500) {
        let profile = WorkloadProfile { functions: 12, ..WorkloadProfile::default() };
        let program = ProgramGenerator::new(profile, seed).generate();
        let trace = Trace::capture("prop", &program, seed, 3_000);
        prop_assert_eq!(trace.inst_count(), 3_000);
        for w in trace.insts().windows(2) {
            prop_assert_eq!(w[0].next_ip, w[1].inst.ip);
        }
        // uop accounting holds.
        let total: u64 = trace.iter().map(|d| d.uops() as u64).sum();
        prop_assert_eq!(total, trace.uop_count());
    }
}

/// The no-redundancy invariant under randomized overlapping installs:
/// suffix/extension/complex cases never duplicate more than the split
/// line allows.
#[test]
fn overlapping_installs_bounded_duplication() {
    use xbc::{install, BuiltXb};
    // Reuse the fill unit to construct BuiltXbs from synthetic streams.
    use xbc_frontend::FillSink;
    use xbc_workload::DynInst;

    let cfg = XbcConfig { total_uops: 4096, ..XbcConfig::default() };
    let mut a = XbcArray::new(&cfg);
    let mut xfu = xbc::Xfu::new(16);
    // A shared tail at 0x900 reached from 8 different prefixes: the worst
    // case for trace caches, the design case for the XBC.
    for p in 0..8u64 {
        let prefix_ip = 0x1000 + p * 0x40;
        for i in 0..3 {
            let inst = Inst::plain(Addr::new(prefix_ip + i), 1, 1);
            xfu.observe(&DynInst { inst, taken: false, next_ip: Addr::new(prefix_ip + i + 1) });
        }
        let jmp = Inst::new(Addr::new(prefix_ip + 3), 1, 1, BranchKind::UncondDirect, Some(Addr::new(0x900)));
        xfu.observe(&DynInst { inst: jmp, taken: true, next_ip: Addr::new(0x900) });
        for i in 0..4 {
            let inst = Inst::plain(Addr::new(0x900 + i), 1, 1);
            xfu.observe(&DynInst { inst, taken: false, next_ip: Addr::new(0x900 + i + 1) });
        }
        let end = Inst::new(Addr::new(0x904), 1, 1, BranchKind::Return, None);
        xfu.observe(&DynInst { inst: end, taken: true, next_ip: Addr::new(prefix_ip) });
    }
    let built: Vec<BuiltXb> = std::mem::take(&mut xfu.done);
    assert_eq!(built.len(), 8, "8 prefix+tail XBs");
    for b in &built {
        install(b, &mut a, BankMask::EMPTY);
    }
    let (stored, distinct) = a.redundancy();
    // All 8 alternate prefixes share one set (same end IP), which holds
    // only 4 banks x 2 ways = 8 lines; each path needs 2 prefix lines plus
    // the shared suffix line, so eviction necessarily drops the oldest
    // prefixes. What must hold: the shared 5-uop tail is stored once, at
    // least the most recent paths survive, and duplication stays bounded
    // by one split-line uop per resident alternate path.
    assert!(distinct >= 2 * 4 + 5, "tail plus recent prefixes resident: {distinct}");
    assert!(distinct <= 8 * 4 + 5);
    assert!(
        stored - distinct <= 8,
        "at most one duplicated split-line uop per alternate path: {} extra",
        stored - distinct
    );
    // The most recently installed path is still fetchable end-to-end.
    let last = built.last().unwrap();
    let (last_ptr, _) = install(last, &mut a, BankMask::EMPTY);
    assert!(a.lookup(&last_ptr).is_some());
}
