//! In-process round-trip of the `xbc-serve-v1` daemon: boot `serve` on
//! a background thread, drive it with the library client, and hold it
//! to the same answers as a one-shot `Sweep` — byte-identical rows when
//! the shared store is warm, zero simulations on repeat submissions,
//! well-behaved errors, a clean graceful shutdown, and a shutdown that
//! *drains* an active sweep instead of severing it mid-stream.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use xbc_serve::protocol::SweepRequest;
use xbc_serve::{ping, shutdown, submit, Endpoint, ServeConfig};
use xbc_sim::{to_json, FrontendSpec, Sweep};
use xbc_store::Store;
use xbc_workload::standard_traces;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbc-serve-rt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_until_live(endpoint: &Endpoint) {
    for _ in 0..500 {
        if ping(endpoint).is_ok() {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {endpoint}");
}

fn sweep_req(names: &[String], frontends: &[FrontendSpec], insts: usize) -> SweepRequest {
    SweepRequest { traces: names.to_vec(), frontends: frontends.to_vec(), insts, priority: 0 }
}

#[test]
fn daemon_matches_sweep_and_never_resimulates() {
    let dir = scratch_dir("main");
    let socket = dir.join("d.sock");
    let endpoint = Endpoint::unix(&socket);
    let store = Arc::new(Store::open(dir.join("cache")).unwrap());

    let traces: Vec<_> = standard_traces().into_iter().take(2).collect();
    let names: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();
    let frontends = vec![FrontendSpec::tc_default(), FrontendSpec::xbc_default()];

    // One-shot sweep populates the store and fixes the expected bytes.
    let mut oneshot =
        Sweep::new(traces.clone(), frontends.clone(), 4_000).with_store(Arc::clone(&store));
    oneshot.progress = false;
    let expected = oneshot.run();

    let mut config = ServeConfig::new(endpoint.clone());
    config.threads = 2;
    config.store = Some(Arc::clone(&store));
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    wait_until_live(&endpoint);

    // Two concurrent clients submit the same warm grid: both must get
    // rows byte-identical to the one-shot sweep, from cache alone.
    let req = sweep_req(&names, &frontends, 4_000);
    let (a, b) = thread::scope(|s| {
        let ha = s.spawn(|| submit(&endpoint, &req));
        let hb = s.spawn(|| submit(&endpoint, &req));
        (ha.join().unwrap().unwrap(), hb.join().unwrap().unwrap())
    });
    for out in [&a, &b] {
        assert_eq!(to_json(&out.rows), to_json(&expected), "warm daemon rows differ from sweep");
        assert_eq!(out.bench.simulated_cells, 0, "warm submission must simulate nothing");
        assert_eq!(out.bench.deduped_cells, 0, "warm submission has nothing in flight to share");
        assert_eq!(out.bench.captures, 0, "warm submission must capture nothing");
        assert_eq!(out.bench.cached_cells, expected.len());
        let stats = out.store.as_ref().expect("cached daemon reports a store delta");
        assert_eq!(stats.result_misses, 0, "warm probe must not miss");
        let sched = out.sched.as_ref().expect("daemon reports a scheduler snapshot");
        assert_eq!(sched.retried_cells, 0);
        assert_eq!(sched.cancelled_cells, 0);
    }

    // A cold grid (different budget) goes through the daemon's own
    // simulation path; a one-shot sweep over the same grid then replays
    // the daemon's cached rows byte-for-byte — the two entry points
    // share one result space.
    let cold_req = sweep_req(&names, &frontends, 3_000);
    let cold = submit(&endpoint, &cold_req).unwrap();
    assert_eq!(cold.rows.len(), names.len() * frontends.len());
    assert_eq!(
        cold.bench.simulated_cells + cold.bench.deduped_cells,
        cold.rows.len(),
        "one client alone shares nothing, but the identity must hold"
    );
    let mut replay = Sweep::new(traces, frontends.clone(), 3_000).with_store(Arc::clone(&store));
    replay.progress = false;
    assert_eq!(
        to_json(&replay.run()),
        to_json(&cold.rows),
        "sweep must replay daemon-cached rows byte-identically"
    );

    // Errors keep the daemon usable: an unknown trace is refused with a
    // message, then the same socket still answers pings and sweeps.
    let bad = SweepRequest {
        traces: vec!["no-such-trace".into()],
        frontends: vec![FrontendSpec::tc_default()],
        insts: 1_000,
        priority: 0,
    };
    let err = submit(&endpoint, &bad).unwrap_err();
    assert!(err.contains("no-such-trace"), "error should name the offender: {err}");
    ping(&endpoint).unwrap();
    let again = submit(&endpoint, &req).unwrap();
    assert_eq!(again.bench.simulated_cells, 0);

    shutdown(&endpoint).unwrap();
    daemon.join().unwrap().unwrap();
    assert!(!socket.exists(), "daemon must remove its socket on exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tcp_daemon_serves_the_same_protocol() {
    // The identical conversation over TCP loopback: ephemeral-port
    // bind, warm byte-identity, graceful shutdown.
    let dir = scratch_dir("tcp");
    let store = Arc::new(Store::open(dir.join("cache")).unwrap());
    let traces: Vec<_> = standard_traces().into_iter().take(1).collect();
    let names: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();
    let frontends = vec![FrontendSpec::xbc_default()];

    let mut oneshot = Sweep::new(traces, frontends.clone(), 3_000).with_store(Arc::clone(&store));
    oneshot.progress = false;
    let expected = oneshot.run();

    let mut config = ServeConfig::new(Endpoint::tcp("127.0.0.1:0"));
    config.threads = 1;
    config.store = Some(Arc::clone(&store));
    let server = xbc_serve::Server::bind(config).unwrap();
    let endpoint = server.endpoint().clone();
    let daemon = thread::spawn(move || server.run());
    wait_until_live(&endpoint);

    let out = submit(&endpoint, &sweep_req(&names, &frontends, 3_000)).unwrap();
    assert_eq!(to_json(&out.rows), to_json(&expected), "TCP rows differ from sweep");
    assert_eq!(out.bench.simulated_cells, 0);

    shutdown(&endpoint).unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_racing_an_active_sweep_drains_it() {
    // Regression: a `shutdown` arriving while a sweep is mid-simulation
    // must drain — the sweeping client still gets every row and its
    // `done` trailer — and the `bye` line reports how many cells were
    // still outstanding. (The old daemon's workers exited as soon as
    // the queue emptied momentarily, which could strand a sweep whose
    // cells were not all enqueued yet.)
    let dir = scratch_dir("drain");
    let endpoint = Endpoint::unix(dir.join("d.sock"));
    let store = Arc::new(Store::open(dir.join("cache")).unwrap());

    let traces: Vec<_> = standard_traces().into_iter().take(2).collect();
    let names: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();
    // 2 traces × 5 frontends = 10 cold cells on one worker: enough work
    // that the shutdown lands while most cells are still queued. The
    // inst count must keep the sweep busy well past the 150ms sleep
    // below even on a fast host, or `draining` legitimately reads 0.
    let frontends: Vec<FrontendSpec> = [8, 16, 32, 64, 128]
        .into_iter()
        .map(|kb| FrontendSpec::Xbc { total_uops: kb * 1024, ways: 2, promotion: true })
        .collect();
    let insts = 500_000;

    let mut config = ServeConfig::new(endpoint.clone());
    config.threads = 1;
    config.store = Some(Arc::clone(&store));
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    wait_until_live(&endpoint);

    let req = sweep_req(&names, &frontends, insts);
    let (outcome, draining) = thread::scope(|s| {
        let sweeping = s.spawn(|| submit(&endpoint, &req));
        // Let the sweep get registered and into simulation first.
        thread::sleep(Duration::from_millis(150));
        let draining = shutdown(&endpoint).expect("shutdown during active sweep");
        (sweeping.join().unwrap(), draining)
    });
    let outcome = outcome.expect("active sweep must drain to completion, not sever");
    assert_eq!(outcome.rows.len(), names.len() * frontends.len());
    assert!(
        draining >= 1,
        "bye must report the outstanding cells of the racing sweep, got {draining}"
    );

    daemon.join().unwrap().unwrap();

    // The drained rows are real: a one-shot sweep replays them.
    let all = standard_traces();
    let specs: Vec<_> =
        names.iter().map(|n| all.iter().find(|t| t.name == *n).cloned().unwrap()).collect();
    let mut replay = Sweep::new(specs, frontends, insts).with_store(store);
    replay.progress = false;
    assert_eq!(to_json(&replay.run()), to_json(&outcome.rows));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn refused_sweeps_after_drain_and_connection_cap() {
    // After shutdown begins, new sweeps are refused with an error, and
    // the connection cap turns excess clients away with a message
    // instead of a hang.
    let dir = scratch_dir("refuse");
    let endpoint = Endpoint::unix(dir.join("d.sock"));

    let mut config = ServeConfig::new(endpoint.clone());
    config.threads = 1;
    config.max_connections = 1;
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    wait_until_live(&endpoint);

    // Hold one connection open at the cap: the next connect is refused.
    // The liveness ping's slot frees asynchronously, so retry until the
    // held connection is actually greeted (hello) rather than refused.
    let path = match &endpoint {
        Endpoint::Unix(path) => path.clone(),
        Endpoint::Tcp(_) => unreachable!(),
    };
    let held = (0..50)
        .find_map(|_| {
            use std::io::BufRead;
            let conn = std::os::unix::net::UnixStream::connect(&path).unwrap();
            let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.contains("\"hello\"") {
                return Some(conn);
            }
            thread::sleep(Duration::from_millis(100));
            None
        })
        .expect("a held connection is eventually admitted");
    let err = ping(&endpoint).unwrap_err();
    assert!(err.contains("capacity"), "cap refusal should say so: {err}");
    drop(held);
    thread::sleep(Duration::from_millis(300)); // connection thread notices EOF
    ping(&endpoint).expect("capacity frees once the held connection closes");

    // The ping's own slot frees only once the daemon notices its EOF
    // (one read-poll interval); at cap 1 the shutdown may briefly race
    // that accounting, so retry until the slot opens up.
    let mut bye = shutdown(&endpoint);
    for _ in 0..50 {
        if bye.is_ok() {
            break;
        }
        thread::sleep(Duration::from_millis(100));
        bye = shutdown(&endpoint);
    }
    bye.unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn uncached_daemon_still_serves_correct_rows() {
    // Without a store the daemon captures traces in-process and reports
    // no store delta; rows still match a storeless sweep modulo timing.
    let dir = scratch_dir("uncached");
    let endpoint = Endpoint::unix(dir.join("d.sock"));
    let traces: Vec<_> = standard_traces().into_iter().take(1).collect();
    let names: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();
    let frontends = vec![FrontendSpec::xbc_default()];

    let mut sweep = Sweep::new(traces, frontends.clone(), 2_000);
    sweep.progress = false;
    let expected = sweep.run();

    let mut config = ServeConfig::new(endpoint.clone());
    config.threads = 1;
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    wait_until_live(&endpoint);

    let out = submit(&endpoint, &sweep_req(&names, &frontends, 2_000)).unwrap();
    assert!(out.store.is_none(), "uncached daemon must not report store stats");
    let strip = |rows: &[xbc_sim::Row]| {
        let mut rows = rows.to_vec();
        for r in &mut rows {
            r.elapsed_ms = 0;
        }
        to_json(&rows)
    };
    assert_eq!(strip(&out.rows), strip(&expected));

    shutdown(&endpoint).unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
