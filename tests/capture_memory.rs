//! Proof that *streamed capture* holds peak host memory at O(chunk),
//! not O(trace) (DESIGN.md §16) — the capture-side counterpart of
//! `stream_memory.rs`.
//!
//! A byte-tracking `#[global_allocator]` wraps the system allocator and
//! maintains a live-bytes counter plus a high-water mark. The test
//! captures the same hot loop at two lengths (8× apart) straight to a
//! temp file through `Trace::capture_streamed`. The peak live-byte
//! delta must (a) not grow with capture length and (b) stay far below
//! the resident `Vec<DynInst>` footprint a `Trace::capture` of the same
//! length would hold.
//!
//! Lives in `tests/` (its own crate) because the lib crates forbid
//! `unsafe` and a `GlobalAlloc` impl requires it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering};

use xbc_isa::{Addr, BranchKind, Inst};
use xbc_workload::{CondBehavior, DynInst, Program, ProgramBuilder, Trace, CAPTURE_CHUNK};

/// Tracks live heap bytes and the high-water mark (same device as
/// `stream_memory.rs`; measurements are deltas against a baseline taken
/// immediately before the measured region).
struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn bump(n: u64) {
    let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                bump((new_size - layout.size()) as u64);
            } else {
                LIVE.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
            }
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// The same tight always-taken loop `stream_memory.rs` uses: executes
/// fast at any length, so the measurement is dominated by the capture
/// pipeline itself rather than workload synthesis.
fn hot_loop_program() -> Program {
    let mut b = ProgramBuilder::new();
    for i in 0..6u64 {
        b.push(Inst::plain(Addr::new(0x100 + i), 1, 2));
    }
    b.push_cond(
        Inst::new(Addr::new(0x106), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
        CondBehavior::Bernoulli { p_taken: 1.0 },
    );
    b.push(Inst::new(Addr::new(0x108), 1, 1, BranchKind::Return, None));
    b.build(Addr::new(0x100), 1)
}

/// Streams a capture of `n_insts` to a real temp file and returns the
/// peak live-byte delta observed while capturing (encoder, chunk
/// buffer, and `BufWriter` included — they are the cost being bounded).
fn streamed_capture_peak(n_insts: usize) -> u64 {
    let program = hot_loop_program();
    let path = std::env::temp_dir()
        .join(format!("xbc-capture-memory-{}-{n_insts}.xbt", std::process::id()));
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    {
        let file = std::fs::File::create(&path).unwrap();
        let mut w = std::io::BufWriter::new(file);
        let stats =
            Trace::capture_streamed("hot-loop", &program, 0, n_insts, 0.9, None, &mut w, |_, _| {})
                .unwrap();
        w.flush().unwrap();
        assert_eq!(stats.insts, n_insts as u64);
    }
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    std::fs::remove_file(&path).unwrap();
    peak
}

#[test]
fn streamed_capture_memory_is_o_chunk_not_o_trace() {
    let short_insts = 1_000_000;
    let long_insts = 8 * short_insts;

    let peak_short = streamed_capture_peak(short_insts);
    let peak_long = streamed_capture_peak(long_insts);

    // (a) Peak does not scale with capture length: an 8M-inst capture
    // must be as flat as a 1M-inst one. A resident capture of the long
    // trace would add ~7M × sizeof(DynInst) bytes over the short one;
    // the streamed capture must add none of that.
    let resident_growth = (long_insts - short_insts) * size_of::<DynInst>();
    let growth = peak_long.saturating_sub(peak_short);
    assert!(
        growth < resident_growth as u64 / 8,
        "peak grew by {growth} bytes between {short_insts} and {long_insts} insts \
         (resident capture would grow ~{resident_growth}) — the chunk bound is leaking"
    );

    // (b) Peak stays in the neighbourhood of the chunk buffer, far
    // below the resident footprint. The bound covers the reusable
    // chunk, the encoder's per-record scratch, the `BufWriter`, and the
    // (small) executor state.
    let chunk_bytes = CAPTURE_CHUNK * size_of::<DynInst>();
    let resident_bytes = long_insts * size_of::<DynInst>();
    let ceiling = (8 * chunk_bytes) as u64 + 4 * 1024 * 1024;
    assert!(
        peak_long < ceiling,
        "streamed capture peak {peak_long} bytes exceeds the O(chunk) ceiling {ceiling} \
         (chunk buffer is {chunk_bytes} bytes)"
    );
    assert!(
        (peak_long as usize) < resident_bytes / 8,
        "streamed capture peak {peak_long} is not meaningfully below the resident \
         footprint {resident_bytes}"
    );
}
