//! Performance benches of the simulator itself: how fast each frontend
//! model replays a trace, and the hot component operations.
//!
//! These measure *simulator* throughput (host-seconds per simulated uop),
//! not the simulated machine — the paper's metrics come from the `fig*`
//! binaries.
//!
//! The harness is in-tree (`harness = false`): each case runs a warmup
//! pass, then a fixed iteration budget, and reports median-of-runs
//! wall-clock plus derived throughput. Run with
//! `cargo bench -p xbc-bench`; pass `-- --json PATH` to also write the
//! frontend-replay numbers as a `xbc-throughput-bench-v1` document (the
//! artifact the `perf` CI gate diffs against `results/BENCH_throughput.json`).

use std::time::Instant;
use xbc::{BankMask, PromotionMode, XbPtr, XbcArray, XbcConfig, XbcFrontend};
use xbc_bench::bench_trace;
use xbc_frontend::{Frontend, IcFrontend, IcFrontendConfig, TcConfig, TraceCacheFrontend};
use xbc_isa::{decode, Addr, Inst};
use xbc_predict::{Gshare, GshareConfig};

const TRACE_INSTS: usize = 50_000;
const RUNS: usize = 5;

/// Times one batch of `iters` invocations of `f`, returning the
/// per-iteration time in seconds.
///
/// Timing is kept in `f64` seconds throughout: the old
/// `Duration / iters as u32` form truncated to whole nanoseconds *per
/// iteration*, which loses up to `iters` ns per sample — material for
/// the sub-10ns component cases.
fn sample<F: FnMut()>(iters: usize, f: &mut F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Times `iters` invocations of `f`, `RUNS` times, and returns the
/// *minimum* per-iteration time. Scheduler preemption and frequency
/// dips only ever add time, so on shared hosts the min is a far more
/// stable estimator of the code's cost than the median.
fn measure<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warmup
    (0..RUNS).map(|_| sample(iters, &mut f)).fold(f64::INFINITY, f64::min)
}

fn report(name: &str, secs_per_iter: f64, elements: Option<u64>) {
    match elements {
        Some(n) => {
            let rate = n as f64 / secs_per_iter / 1e6;
            println!("{name:<24} {:>12.2}us/iter {rate:>10.1} Muops/s", secs_per_iter * 1e6);
        }
        None => println!("{name:<24} {:>12.2}ns/iter", secs_per_iter * 1e9),
    }
}

/// One frontend-replay measurement destined for the JSON artifact.
struct Case {
    name: &'static str,
    secs_per_iter: f64,
    muops_per_sec: f64,
}

/// Serializes the replay measurements to the `BENCH_throughput.json`
/// schema. One line per frontend so shell gates can extract
/// `name`/`muops_per_sec` pairs with awk, mirroring the
/// `xbc-sweep-bench-v1` artifact's style.
fn to_json(trace_uops: u64, cases: &[Case]) -> String {
    let mut body = String::new();
    for (i, c) in cases.iter().enumerate() {
        let sep = if i + 1 < cases.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{ \"name\": \"{}\", \"secs_per_iter\": {:e}, \"muops_per_sec\": {:.1} }}{}\n",
            c.name, c.secs_per_iter, c.muops_per_sec, sep
        ));
    }
    format!(
        "{{\n  \"schema\": \"xbc-throughput-bench-v1\",\n  \
         \"trace_insts\": {TRACE_INSTS},\n  \"trace_uops\": {trace_uops},\n  \
         \"runs\": {RUNS},\n  \"frontends\": [\n{body}  ]\n}}\n"
    )
}

fn frontends() -> (u64, Vec<Case>) {
    println!("frontend_replay ({TRACE_INSTS} insts per run)");
    let trace = bench_trace(TRACE_INSTS);
    let uops = trace.uop_count();
    let mut cases = Vec::new();
    let mut case = |name: &'static str, secs_per_iter: f64| {
        report(name, secs_per_iter, Some(uops));
        let muops_per_sec = uops as f64 / secs_per_iter / 1e6;
        cases.push(Case { name, secs_per_iter, muops_per_sec });
    };

    case(
        "ic",
        measure(3, || {
            let mut fe = IcFrontend::new(IcFrontendConfig::default());
            fe.run(&trace);
        }),
    );
    case(
        "tc_32k",
        measure(3, || {
            let mut fe = TraceCacheFrontend::new(TcConfig::default());
            fe.run(&trace);
        }),
    );
    case(
        "xbc_32k",
        measure(3, || {
            let mut fe = XbcFrontend::new(XbcConfig::default());
            fe.run(&trace);
        }),
    );
    case(
        "xbc_32k_nopromo",
        measure(3, || {
            let mut fe = XbcFrontend::new(XbcConfig {
                promotion: PromotionMode::Off,
                ..XbcConfig::default()
            });
            fe.run(&trace);
        }),
    );
    println!();
    (uops, cases)
}

fn components() {
    println!("components");

    // Array insert + fetch round trip.
    let cfg = XbcConfig { total_uops: 8192, ..XbcConfig::default() };
    let uops: Vec<_> = decode(&Inst::plain(Addr::new(0x100), 4, 4))
        .into_iter()
        .chain(decode(&Inst::plain(Addr::new(0x104), 4, 4)))
        .chain(decode(&Inst::plain(Addr::new(0x108), 4, 4)))
        .collect();
    let d = measure(200, || {
        let mut a = XbcArray::new(&cfg);
        for i in 0..64u64 {
            let ip = Addr::new(0x100 + i * 37);
            let mask = a.insert(ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
            let ptr = XbPtr::new(ip, Addr::new(0x100), mask, uops.len() as u8);
            let mut used = BankMask::EMPTY;
            let _ = a.fetch_one(&ptr, &mut used);
        }
    });
    report("array_insert_fetch", d, Some(64));

    // Predictor update throughput.
    let mut gs = Gshare::new(GshareConfig::default());
    let mut i = 0u64;
    let d = measure(500_000, || {
        i = i.wrapping_add(1);
        gs.update(Addr::new(0x4000 + (i % 256)), i.is_multiple_of(3));
    });
    report("gshare_update", d, None);

    // Workload generation (program synthesis + execution).
    let d = measure(3, || {
        bench_trace(10_000).uop_count();
    });
    report("trace_capture_10k", d, Some(10_000));
    println!();
}

/// The observability guard: tracing must be zero-cost when disabled.
///
/// The untraced entry point (`run`) monomorphizes the probe over
/// `NullSink`, so its emit calls compile away; `run_traced` with a
/// `&mut dyn EventSink` NullSink is the *worst case* for a disabled
/// sink (virtual dispatch survives). Both are measured against the
/// same workload in the same process, so the ratio is host-independent.
/// The guard trips when even the dyn-dispatch ceiling exceeds the
/// budget — the monomorphized disabled path is strictly cheaper.
fn obs_overhead() {
    println!("obs_overhead ({TRACE_INSTS} insts per run)");
    let trace = bench_trace(TRACE_INSTS);
    let uops = trace.uop_count();

    // The two arms are sampled *interleaved* (A B A B ...) so a host
    // slowdown mid-bench hits both equally instead of skewing the ratio.
    let mut run_untraced = || {
        let mut fe = XbcFrontend::new(XbcConfig::default());
        fe.run(&trace);
    };
    let mut run_null = || {
        let mut fe = XbcFrontend::new(XbcConfig::default());
        let mut sink = xbc_obs::NullSink;
        fe.run_traced(&trace, &mut sink);
    };
    run_untraced();
    run_null();
    let (mut untraced, mut null_traced) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..RUNS {
        untraced = untraced.min(sample(5, &mut run_untraced));
        null_traced = null_traced.min(sample(5, &mut run_null));
    }
    report("xbc_untraced", untraced, Some(uops));
    report("xbc_null_dyn_sink", null_traced, Some(uops));

    let ratio = null_traced / untraced;
    println!("null-sink overhead ceiling: {:+.2}%", 100.0 * (ratio - 1.0));
    // 2% budget — the allocation-free delivery loop is ~1.4x faster than
    // when the original 1% budget was set, so the same dyn-dispatch emit
    // cost is a larger fraction — plus a 3% noise allowance for shared
    // single-vCPU CI hosts. A real regression on the emit path (an
    // allocation, a format!, an un-inlined probe) lands far above this.
    assert!(
        ratio < 1.05,
        "disabled tracing must stay under the 2% overhead budget \
         (measured {:.2}% even through dyn dispatch)",
        100.0 * (ratio - 1.0)
    );
    println!();
}

fn main() {
    // `cargo bench -p xbc-bench -- --json PATH` forwards everything after
    // `--` to us verbatim; cargo itself may also prepend `--bench`.
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a PATH").clone());

    let (uops, cases) = frontends();
    components();
    obs_overhead();

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(uops, &cases)).expect("write --json output");
        println!("wrote {path}");
    }
}
