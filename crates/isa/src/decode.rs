//! Instruction → uop expansion.
//!
//! Models the translate stage of an IA32-class decoder: each architectural
//! instruction expands into a deterministic sequence of uops. The expansion
//! is a pure function of the instruction so every structure in the simulator
//! (decoder, fill unit, trace cache, XBC) agrees on uop identities.

use crate::{BranchKind, Inst, Uop, UopId, UopKind};

/// Expands an instruction into its uop sequence.
///
/// The expansion is deterministic: uop `slot` carries the position, the last
/// uop carries the instruction's [`BranchKind`] and `ends_inst`. Functional
/// classes are synthesized from the instruction shape (branch instructions
/// end in a [`UopKind::Branch`] uop; multi-uop instructions front-load a
/// [`UopKind::Load`] as a typical load-op pattern).
///
/// # Examples
///
/// ```
/// use xbc_isa::{decode, Addr, BranchKind, Inst};
///
/// let i = Inst::new(Addr::new(0x10), 2, 3, BranchKind::CondDirect, Some(Addr::new(0x80)));
/// let uops = decode(&i);
/// assert_eq!(uops.len(), 3);
/// assert!(uops[2].ends_xb());
/// assert!(!uops[0].ends_inst);
/// ```
pub fn decode(inst: &Inst) -> Vec<Uop> {
    let n = inst.uops as usize;
    let mut out = Vec::with_capacity(n);
    for slot in 0..n {
        let last = slot + 1 == n;
        let kind = uop_kind_for_slot(inst, slot, last);
        let branch = if last { inst.branch } else { BranchKind::None };
        out.push(Uop::new(UopId::new(inst.ip, slot as u8), kind, last, branch));
    }
    out
}

/// Number of uops `decode` will produce without materializing them.
#[inline]
pub fn decoded_len(inst: &Inst) -> usize {
    inst.uops as usize
}

fn uop_kind_for_slot(inst: &Inst, slot: usize, last: bool) -> UopKind {
    if last && inst.branch.is_branch() {
        return UopKind::Branch;
    }
    // Deterministic, shape-based mix: first uop of a multi-uop instruction
    // is a load (load-op idiom); remaining uops alternate ALU/store-ish.
    if inst.uops > 1 && slot == 0 {
        UopKind::Load
    } else if inst.uops > 2 && slot == inst.uops as usize - 1 {
        UopKind::Store
    } else {
        UopKind::Alu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn single_uop_plain_inst() {
        let i = Inst::plain(Addr::new(0x1), 1, 1);
        let u = decode(&i);
        assert_eq!(u.len(), 1);
        assert!(u[0].ends_inst);
        assert_eq!(u[0].kind, UopKind::Alu);
        assert_eq!(u[0].branch, BranchKind::None);
    }

    #[test]
    fn branch_kind_only_on_last_uop() {
        let i = Inst::new(Addr::new(0x1), 4, 4, BranchKind::IndirectJump, None);
        let u = decode(&i);
        assert_eq!(u.len(), 4);
        for prefix in &u[..3] {
            assert_eq!(prefix.branch, BranchKind::None);
            assert!(!prefix.ends_inst);
        }
        assert_eq!(u[3].branch, BranchKind::IndirectJump);
        assert_eq!(u[3].kind, UopKind::Branch);
        assert!(u[3].ends_xb());
    }

    #[test]
    fn slots_are_sequential_and_unique() {
        let i = Inst::plain(Addr::new(0x44), 7, 4);
        let u = decode(&i);
        for (n, uop) in u.iter().enumerate() {
            assert_eq!(uop.id.slot as usize, n);
            assert_eq!(uop.id.inst_ip, Addr::new(0x44));
        }
    }

    #[test]
    fn decoded_len_matches_decode() {
        for uops in 1..=4 {
            let i = Inst::plain(Addr::new(8), 2, uops);
            assert_eq!(decoded_len(&i), decode(&i).len());
        }
    }

    #[test]
    fn load_op_idiom_for_multi_uop() {
        let i = Inst::plain(Addr::new(8), 2, 3);
        let u = decode(&i);
        assert_eq!(u[0].kind, UopKind::Load);
        assert_eq!(u[2].kind, UopKind::Store);
    }

    #[test]
    fn decode_is_deterministic() {
        let i = Inst::new(Addr::new(0x30), 5, 2, BranchKind::CallDirect, Some(Addr::new(0x90)));
        assert_eq!(decode(&i), decode(&i));
    }
}
