//! Two-level local-history predictor (PAg in the Yeh/Patt taxonomy).
//!
//! Not used by the paper's headline configuration (which fixes a 16-bit
//! gshare for both structures), but included so the predictor choice can
//! be ablated: per-branch history tables excel on self-correlated branches
//! (loops with stable trip counts) where global history dilutes.

use crate::PredictorStats;
use xbc_isa::Addr;

/// Configuration of a [`LocalPredictor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalConfig {
    /// log2 of the per-branch history table entries.
    pub history_table_bits: u32,
    /// Bits of local history per branch (and log2 of the counter table).
    pub history_bits: u32,
}

impl Default for LocalConfig {
    /// 1K-entry history table, 10 bits of local history.
    fn default() -> Self {
        LocalConfig { history_table_bits: 10, history_bits: 10 }
    }
}

/// A two-level local predictor: the branch address selects a per-branch
/// history register; that history indexes a shared table of 2-bit
/// counters.
///
/// # Examples
///
/// ```
/// use xbc_predict::{LocalConfig, LocalPredictor};
/// use xbc_isa::Addr;
///
/// let mut p = LocalPredictor::new(LocalConfig::default());
/// let loop_branch = Addr::new(0x40);
/// // A loop taken twice then exiting, repeatedly: locally periodic.
/// for _ in 0..300 {
///     p.update(loop_branch, true);
///     p.update(loop_branch, true);
///     p.update(loop_branch, false);
/// }
/// // After warm-up the pattern is fully predictable.
/// assert!(p.stats().accuracy() > 0.8);
/// ```
#[derive(Clone, Debug)]
pub struct LocalPredictor {
    histories: Vec<u32>,
    counters: Vec<u8>,
    history_mask: u32,
    table_mask: u64,
    stats: PredictorStats,
}

impl LocalPredictor {
    /// Creates the predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or above 24 bits.
    pub fn new(cfg: LocalConfig) -> Self {
        assert!((1..=24).contains(&cfg.history_table_bits), "history_table_bits in 1..=24");
        assert!((1..=24).contains(&cfg.history_bits), "history_bits in 1..=24");
        LocalPredictor {
            histories: vec![0; 1 << cfg.history_table_bits],
            counters: vec![1; 1 << cfg.history_bits],
            history_mask: (1u32 << cfg.history_bits) - 1,
            table_mask: (1u64 << cfg.history_table_bits) - 1,
            stats: PredictorStats::default(),
        }
    }

    #[inline]
    fn history_index(&self, ip: Addr) -> usize {
        ((ip.raw() >> 1) & self.table_mask) as usize
    }

    /// Predicts the direction of the conditional branch at `ip`.
    pub fn predict(&self, ip: Addr) -> bool {
        let h = self.histories[self.history_index(ip)] & self.history_mask;
        self.counters[h as usize] >= 2
    }

    /// Updates with the resolved direction; returns whether the pre-update
    /// state predicted correctly.
    pub fn update(&mut self, ip: Addr, taken: bool) -> bool {
        let hi = self.history_index(ip);
        let h = self.histories[hi] & self.history_mask;
        let c = &mut self.counters[h as usize];
        let correct = (*c >= 2) == taken;
        if correct {
            self.stats.correct += 1;
        } else {
            self.stats.incorrect += 1;
        }
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.histories[hi] = ((self.histories[hi] << 1) | taken as u32) & self.history_mask;
        correct
    }

    /// Accuracy statistics.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_fixed_trip_loop() {
        // Period-4 pattern: T T T N — global-history-free, locally trivial.
        let mut p = LocalPredictor::new(LocalConfig::default());
        let ip = Addr::new(0x10);
        let pattern = [true, true, true, false];
        for i in 0..400 {
            p.update(ip, pattern[i % 4]);
        }
        let mut correct = 0;
        for i in 400..500 {
            if p.predict(ip) == pattern[i % 4] {
                correct += 1;
            }
            p.update(ip, pattern[i % 4]);
        }
        assert!(correct >= 95, "period-4 should be near-perfect: {correct}/100");
    }

    #[test]
    fn separate_branches_have_separate_histories() {
        let mut p = LocalPredictor::new(LocalConfig::default());
        // Branch A always taken; branch B always not-taken.
        for _ in 0..100 {
            p.update(Addr::new(0x10), true);
            p.update(Addr::new(0x20), false);
        }
        assert!(p.predict(Addr::new(0x10)));
        assert!(!p.predict(Addr::new(0x20)));
    }

    #[test]
    fn counter_table_aliasing_is_tolerated() {
        // Tiny counter table: aliasing hurts but must not panic.
        let mut p = LocalPredictor::new(LocalConfig { history_table_bits: 2, history_bits: 2 });
        for i in 0..100u64 {
            p.update(Addr::new(i * 2), i % 3 == 0);
        }
        let s = p.stats();
        assert_eq!(s.correct + s.incorrect, 100);
    }

    #[test]
    #[should_panic(expected = "history_bits in 1..=24")]
    fn zero_history_rejected() {
        let _ = LocalPredictor::new(LocalConfig { history_table_bits: 4, history_bits: 0 });
    }
}
