//! # xbc-bench — benchmark and figure-regeneration harness
//!
//! One binary per paper figure plus aggregate/ablation harnesses:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig1` | Figure 1 — block length distributions |
//! | `fig8` | Figure 8 — XBC vs TC uop bandwidth at 32K uops |
//! | `fig9` | Figure 9 — miss rate vs cache size |
//! | `fig10` | Figure 10 — miss rate vs associativity |
//! | `summary` | §4/§5 aggregate claims |
//! | `ablation` | §3 design-choice ablations |
//!
//! All binaries accept `--inst N`, `--traces a,b`, `--threads N`,
//! `--cache-dir PATH` / `--no-cache`, and (where applicable)
//! `--json PATH`. Captured traces and sweep rows are cached through
//! `xbc-store`, so re-running a figure with unchanged parameters replays
//! cached results instead of re-simulating. Performance benches of the
//! simulator itself live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use xbc_workload::{standard_traces, Trace};

/// Captures a small, deterministic trace for benchmarking
/// (`spec.compress`-like, `n` instructions).
pub fn bench_trace(n: usize) -> Trace {
    standard_traces()[0].capture(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_trace_is_deterministic() {
        let a = bench_trace(2_000);
        let b = bench_trace(2_000);
        assert_eq!(a.uop_count(), b.uop_count());
        assert_eq!(a.inst_count(), 2_000);
    }
}
