//! Architectural execution: turning a static [`Program`] into the dynamic
//! instruction stream the frontend simulators replay.
//!
//! The executor is the *oracle*: it resolves every branch using the
//! program's behavioural annotations and yields [`DynInst`]s — the
//! committed path. Frontend models consume this stream, running their
//! predictors against it (trace-driven methodology, paper §4).

use crate::program::{CondBehavior, Program};
use crate::rng::Rng64;
use std::collections::HashMap;
use xbc_isa::Addr as ExecAddr;
use xbc_isa::{Addr, BranchKind, Inst};

/// One committed dynamic instruction: the static instruction plus how its
/// control flow resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// The static instruction.
    pub inst: Inst,
    /// Whether a branch was taken (`false` for non-branches and fall-through
    /// conditionals; `true` for all unconditional transfers).
    pub taken: bool,
    /// Address of the next committed instruction.
    pub next_ip: Addr,
}

impl DynInst {
    /// Number of uops this dynamic instruction contributes.
    #[inline]
    pub fn uops(&self) -> u32 {
        self.inst.uops as u32
    }
}

/// Maximum modeled call-stack depth. Calls past this depth are *elided*
/// (treated as fall-through) to keep the synthetic trace well-formed under
/// unbounded random recursion; this is rare (< 1e-4 of calls) and recorded
/// in [`ExecStats::elided_calls`].
const MAX_STACK: usize = 128;

/// Executor statistics (corner-case accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamic instructions executed.
    pub insts: u64,
    /// Dynamic uops.
    pub uops: u64,
    /// Calls elided due to stack-depth cap.
    pub elided_calls: u64,
    /// Returns executed with an empty stack (trace wraps to program entry,
    /// modeling an external driver loop).
    pub wrapped_returns: u64,
    /// Asynchronous interrupts delivered.
    pub interrupts: u64,
}

/// Streaming architectural executor. Implements `Iterator<Item = DynInst>`
/// and never terminates on its own (take as many instructions as needed).
///
/// # Examples
///
/// ```
/// use xbc_workload::{Executor, ProgramGenerator, WorkloadProfile};
///
/// let program = ProgramGenerator::new(WorkloadProfile::default(), 7).generate();
/// let trace: Vec<_> = Executor::new(&program, 7).take(1000).collect();
/// assert_eq!(trace.len(), 1000);
/// // The stream is a connected path: each next_ip is the next inst's ip.
/// for w in trace.windows(2) {
///     assert_eq!(w[0].next_ip, w[1].inst.ip);
/// }
/// ```
#[derive(Debug)]
pub struct Executor<'a> {
    program: &'a Program,
    rng: Rng64,
    ip: Addr,
    stack: Vec<Addr>,
    /// Per-branch execution counters for deterministic loop behaviour.
    loop_state: HashMap<u64, u32>,
    /// Last resolved target per indirect branch (bursty dispatch).
    sticky_targets: HashMap<u64, ExecAddr>,
    /// Probability of reusing the sticky target.
    stickiness: f64,
    /// Mean instructions between asynchronous interrupts (None = off).
    interrupt_interval: Option<usize>,
    /// Instructions until the next interrupt fires.
    interrupt_countdown: usize,
    stats: ExecStats,
}

impl<'a> Executor<'a> {
    /// Creates an executor starting at the program entry with the default
    /// indirect-target stickiness (0.85).
    pub fn new(program: &'a Program, seed: u64) -> Self {
        Self::with_stickiness(program, seed, 0.85)
    }

    /// Creates an executor with explicit indirect-target stickiness: the
    /// probability that an indirect branch repeats its previous target
    /// (bursty dispatch) instead of resampling from its target set.
    ///
    /// # Panics
    ///
    /// Panics if `stickiness` is not a probability.
    pub fn with_stickiness(program: &'a Program, seed: u64, stickiness: f64) -> Self {
        Self::with_options(program, seed, stickiness, None)
    }

    /// Full-option constructor: stickiness plus the mean instruction
    /// interval between asynchronous kernel interrupts (requires the
    /// program to declare [`Program::interrupt_handlers`]).
    ///
    /// # Panics
    ///
    /// Panics if `stickiness` is not a probability, or if an interval is
    /// given but the program has no handlers.
    pub fn with_options(
        program: &'a Program,
        seed: u64,
        stickiness: f64,
        interrupt_interval: Option<usize>,
    ) -> Self {
        assert!((0.0..=1.0).contains(&stickiness), "stickiness must be in [0,1]");
        if interrupt_interval.is_some() {
            assert!(
                !program.interrupt_handlers().is_empty(),
                "interrupts need declared handler functions"
            );
        }
        Executor {
            program,
            rng: Rng64::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            ip: program.entry(),
            stack: Vec::with_capacity(MAX_STACK),
            loop_state: HashMap::new(),
            sticky_targets: HashMap::new(),
            stickiness,
            interrupt_interval,
            interrupt_countdown: interrupt_interval.unwrap_or(usize::MAX),
            stats: ExecStats::default(),
        }
    }

    /// Corner-case statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Resolves the instruction at the current IP.
    fn step(&mut self) -> DynInst {
        let inst = *self
            .program
            .inst_at(self.ip)
            .unwrap_or_else(|| panic!("execution fell off the program image at {}", self.ip));
        let (taken, next_ip) = match inst.branch {
            BranchKind::None => (false, inst.next_seq()),
            BranchKind::CondDirect => {
                let taken = self.resolve_cond(&inst);
                (taken, if taken { inst.taken_target() } else { inst.next_seq() })
            }
            BranchKind::UncondDirect => (true, inst.taken_target()),
            BranchKind::CallDirect => {
                if self.stack.len() < MAX_STACK {
                    self.stack.push(inst.next_seq());
                    (true, inst.taken_target())
                } else {
                    self.stats.elided_calls += 1;
                    (false, inst.next_seq())
                }
            }
            BranchKind::IndirectJump => {
                let t = self.resolve_indirect(&inst);
                (true, t)
            }
            BranchKind::IndirectCall => {
                let t = self.resolve_indirect(&inst);
                if self.stack.len() < MAX_STACK {
                    self.stack.push(inst.next_seq());
                    (true, t)
                } else {
                    self.stats.elided_calls += 1;
                    (false, inst.next_seq())
                }
            }
            BranchKind::Return => match self.stack.pop() {
                Some(ra) => (true, ra),
                None => {
                    self.stats.wrapped_returns += 1;
                    (true, self.program.entry())
                }
            },
        };
        // Asynchronous interrupt delivery: after this instruction commits,
        // execution may be diverted into a kernel handler; the diverted-from
        // continuation is pushed like a call's return address, so the
        // handler's final return resumes seamlessly. Frontends see an
        // unpredictable control transfer at a non-branch boundary — exactly
        // what makes kernel activity disruptive to fetch structures.
        let mut next_ip = next_ip;
        if self.interrupt_countdown <= 1 {
            if self.stack.len() < MAX_STACK {
                let handlers = self.program.interrupt_handlers();
                let h = handlers[self.rng.gen_range(0..handlers.len())];
                self.stack.push(next_ip);
                next_ip = h;
                self.stats.interrupts += 1;
            }
            // Re-arm around the mean interval (uniform ±50%).
            let mean = self.interrupt_interval.expect("countdown armed implies interval");
            self.interrupt_countdown = self.rng.gen_range(mean / 2..=mean + mean / 2).max(2);
        } else if self.interrupt_countdown != usize::MAX {
            self.interrupt_countdown -= 1;
        }
        self.ip = next_ip;
        self.stats.insts += 1;
        self.stats.uops += inst.uops as u64;
        DynInst { inst, taken, next_ip }
    }

    fn resolve_cond(&mut self, inst: &Inst) -> bool {
        match self
            .program
            .cond_behavior(inst.ip)
            .unwrap_or_else(|| panic!("conditional branch at {} lacks behaviour", inst.ip))
        {
            CondBehavior::Bernoulli { p_taken } => self.rng.gen::<f64>() < p_taken,
            CondBehavior::Loop { trip } => {
                let count = self.loop_state.entry(inst.ip.raw()).or_insert(0);
                *count += 1;
                if (*count).is_multiple_of(trip) {
                    false // loop exit
                } else {
                    true // keep iterating
                }
            }
        }
    }

    fn resolve_indirect(&mut self, inst: &Inst) -> Addr {
        if let Some(&t) = self.sticky_targets.get(&inst.ip.raw()) {
            if self.rng.gen::<f64>() < self.stickiness {
                return t;
            }
        }
        let t = self
            .program
            .indirect_targets(inst.ip)
            .unwrap_or_else(|| panic!("indirect branch at {} lacks targets", inst.ip))
            .choose(&mut self.rng);
        self.sticky_targets.insert(inst.ip.raw(), t);
        t
    }
}

impl Iterator for Executor<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{IndirectTargets, ProgramBuilder};
    use crate::{ProgramGenerator, WorkloadProfile};

    /// ip -> (len) plain; convenience for hand-built programs.
    fn plain(b: &mut ProgramBuilder, ip: u64, len: u8) -> Addr {
        b.push(Inst::plain(Addr::new(ip), len, 1));
        Addr::new(ip)
    }

    #[test]
    fn loop_behavior_iterates_exactly_trip_times() {
        // 0x10: body; 0x12: loop branch back to 0x10 with trip=3;
        // 0x14: ret (wraps to entry).
        let mut b = ProgramBuilder::new();
        plain(&mut b, 0x10, 2);
        b.push_cond(
            Inst::new(Addr::new(0x12), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x10))),
            CondBehavior::Loop { trip: 3 },
        );
        b.push(Inst::new(Addr::new(0x14), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        let trace: Vec<_> = Executor::new(&p, 0).take(9).collect();
        // Expect: body,branch(T), body,branch(T), body,branch(NT), ret, body...
        let kinds: Vec<(u64, bool)> = trace.iter().map(|d| (d.inst.ip.raw(), d.taken)).collect();
        assert_eq!(kinds[0], (0x10, false));
        assert_eq!(kinds[1], (0x12, true));
        assert_eq!(kinds[3], (0x12, true));
        assert_eq!(kinds[5], (0x12, false));
        assert_eq!(kinds[6].0, 0x14);
    }

    #[test]
    fn calls_and_returns_match() {
        // main: 0x10 call 0x40; 0x15 ret. callee: 0x40 ret.
        let mut b = ProgramBuilder::new();
        b.push(Inst::new(Addr::new(0x10), 5, 1, BranchKind::CallDirect, Some(Addr::new(0x40))));
        b.push(Inst::new(Addr::new(0x15), 1, 1, BranchKind::Return, None));
        b.push(Inst::new(Addr::new(0x40), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 2);
        let trace: Vec<_> = Executor::new(&p, 0).take(4).collect();
        let path: Vec<u64> = trace.iter().map(|d| d.inst.ip.raw()).collect();
        // call -> callee ret -> main ret (wraps) -> call again
        assert_eq!(path, vec![0x10, 0x40, 0x15, 0x10]);
    }

    #[test]
    fn wrapped_return_counted() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::new(Addr::new(0x10), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        let mut e = Executor::new(&p, 0);
        let d = e.next().unwrap();
        assert_eq!(d.next_ip, Addr::new(0x10));
        assert_eq!(e.stats().wrapped_returns, 1);
    }

    #[test]
    fn bernoulli_extremes_are_deterministic_in_direction() {
        let mut b = ProgramBuilder::new();
        b.push_cond(
            Inst::new(Addr::new(0x10), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x10))),
            CondBehavior::Bernoulli { p_taken: 1.0 },
        );
        // Unreachable fall-through keeps the image closed anyway.
        b.push(Inst::new(Addr::new(0x12), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        for d in Executor::new(&p, 3).take(50) {
            assert!(d.taken);
        }
    }

    #[test]
    fn indirect_jump_follows_target_set() {
        let mut b = ProgramBuilder::new();
        let t1 = plain(&mut b, 0x20, 2);
        // 0x22 jumps back to the indirect at 0x10.
        b.push(Inst::new(Addr::new(0x22), 2, 1, BranchKind::UncondDirect, Some(Addr::new(0x10))));
        b.push_indirect(
            Inst::new(Addr::new(0x10), 2, 1, BranchKind::IndirectJump, None),
            IndirectTargets::new(&[(t1, 1.0)]),
        );
        let p = b.build(Addr::new(0x10), 1);
        let trace: Vec<_> = Executor::new(&p, 0).take(6).collect();
        let path: Vec<u64> = trace.iter().map(|d| d.inst.ip.raw()).collect();
        assert_eq!(path, vec![0x10, 0x20, 0x22, 0x10, 0x20, 0x22]);
    }

    #[test]
    fn stream_is_connected_on_generated_program() {
        let p = ProgramGenerator::new(
            WorkloadProfile { functions: 12, ..WorkloadProfile::default() },
            11,
        )
        .generate();
        let trace: Vec<_> = Executor::new(&p, 11).take(20_000).collect();
        for w in trace.windows(2) {
            assert_eq!(w[0].next_ip, w[1].inst.ip, "disconnected at {}", w[0].inst.ip);
        }
    }

    #[test]
    fn executor_is_deterministic() {
        let p = ProgramGenerator::new(WorkloadProfile::default(), 21).generate();
        let a: Vec<_> = Executor::new(&p, 5).take(5000).collect();
        let b: Vec<_> = Executor::new(&p, 5).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn interrupts_divert_and_resume() {
        use crate::{ProgramGenerator, WorkloadProfile};
        let profile = WorkloadProfile {
            functions: 12,
            interrupt_interval: Some(500),
            ..WorkloadProfile::default()
        };
        let p = ProgramGenerator::new(profile, 7).generate();
        assert_eq!(p.interrupt_handlers().len(), 3);
        let mut exec = Executor::with_options(&p, 7, 0.85, Some(500));
        let trace: Vec<_> = (&mut exec).take(20_000).collect();
        let ints = exec.stats().interrupts;
        assert!(ints >= 20, "expected ~40 interrupts, got {ints}");
        // The stream stays connected across every diversion.
        for w in trace.windows(2) {
            assert_eq!(w[0].next_ip, w[1].inst.ip);
        }
        // Handler code actually runs.
        let handler_set: std::collections::HashSet<u64> =
            p.interrupt_handlers().iter().map(|a| a.raw()).collect();
        assert!(
            trace.iter().any(|d| handler_set.contains(&d.inst.ip.raw())),
            "handler entries must appear in the stream"
        );
    }

    #[test]
    #[should_panic(expected = "handler functions")]
    fn interrupts_require_handlers() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::new(Addr::new(0x10), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        let _ = Executor::with_options(&p, 0, 0.5, Some(1000));
    }

    #[test]
    fn stats_count_uops() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x10), 1, 3));
        b.push(Inst::new(Addr::new(0x11), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        let mut e = Executor::new(&p, 0);
        e.next();
        e.next();
        assert_eq!(e.stats().insts, 2);
        assert_eq!(e.stats().uops, 4);
    }
}
