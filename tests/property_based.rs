//! Property-style tests of the core data-structure invariants.
//!
//! Instead of a registry property-testing framework, these tests drive
//! each invariant with many randomized cases from the in-tree,
//! deterministically seeded [`Rng64`] — same coverage philosophy, fully
//! hermetic build, and failures reproduce exactly (the case seed is in
//! the assertion message).

use xbc::{BankMask, XbPtr, XbcArray, XbcConfig};
use xbc_isa::{decode, Addr, BranchKind, Inst, Uop};
use xbc_uarch::Histogram;
use xbc_workload::{ProgramGenerator, Rng64, Trace, WorkloadProfile};

/// A plausible uop sequence for one XB (1..=16 uops), ending on a
/// conditional branch. Built from instruction shapes so uop identities
/// look real.
fn arb_xb_uops(rng: &mut Rng64) -> Vec<Uop> {
    let n_shapes = rng.gen_range(1usize..=4);
    let shapes: Vec<(u8, u8)> =
        (0..n_shapes).map(|_| (rng.gen_range(1u8..=4), rng.gen_range(1u8..=11))).collect();
    let mut uops = Vec::new();
    let mut ip = 0x4000u64;
    let total: usize = shapes.iter().map(|(u, _)| *u as usize).sum();
    for (i, (u, len)) in shapes.iter().enumerate() {
        let last = i + 1 == shapes.len();
        let inst = if last {
            Inst::new(Addr::new(ip), *len, *u, BranchKind::CondDirect, Some(Addr::new(0x100)))
        } else {
            Inst::plain(Addr::new(ip), *len, *u)
        };
        uops.extend(decode(&inst));
        ip += *len as u64;
    }
    assert!(total <= 16);
    uops
}

/// Whatever is inserted into the array reads back identically
/// (reverse-order storage is an implementation detail, not an
/// observable one).
#[test]
fn array_insert_read_roundtrip() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(0xA110 + case);
        let uops = arb_xb_uops(&mut rng);
        let ip_raw = rng.gen_range(0u64..1_000_000);
        let cfg = XbcConfig { total_uops: 1024, ..XbcConfig::default() };
        let mut a = XbcArray::new(&cfg);
        let end_ip = Addr::new(ip_raw + uops.len() as u64);
        let mask = a.insert(end_ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
        assert_eq!(mask.count(), uops.len().div_ceil(4), "case {case}");
        let (set, tag) = a.set_and_tag(end_ip);
        let asm = a.assemble(set, tag, None).expect("just inserted");
        assert_eq!(asm.total_uops, uops.len(), "case {case}");
        assert_eq!(a.read_uops(set, &asm), uops, "case {case}");
    }
}

/// Any mid-block entry offset is fetchable after insertion.
#[test]
fn array_every_entry_offset_fetchable() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(0xB220 + case);
        let uops = arb_xb_uops(&mut rng);
        let ip_raw = rng.gen_range(0u64..1_000_000);
        let cfg = XbcConfig { total_uops: 1024, ..XbcConfig::default() };
        let mut a = XbcArray::new(&cfg);
        let end_ip = Addr::new(ip_raw + uops.len() as u64);
        let mask = a.insert(end_ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
        for offset in 1..=uops.len() as u8 {
            let ptr = XbPtr::new(end_ip, Addr::new(0), mask, offset);
            assert!(a.lookup(&ptr).is_some(), "case {case}: offset {offset} must hit");
            let mut used = BankMask::EMPTY;
            let r = a.fetch_one(&ptr, &mut used);
            assert_eq!(r, xbc::XbFetch::Full, "case {case}");
            assert_eq!(used.count(), (offset as usize).div_ceil(4), "case {case}");
        }
    }
}

/// Histogram mean/count stay consistent under arbitrary inputs.
#[test]
fn histogram_invariants() {
    for case in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(0xC330 + case);
        let n = rng.gen_range(1usize..100);
        let values: Vec<usize> = (0..n).map(|_| rng.gen_range(1usize..200)).collect();
        let mut h = Histogram::new(16);
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64, "case {case}");
        let clamped: f64 =
            values.iter().map(|&v| v.min(16) as f64).sum::<f64>() / values.len() as f64;
        assert!((h.mean() - clamped).abs() < 1e-9, "case {case}");
        let total: u64 = (1..=16).map(|v| h.bin(v)).sum();
        assert_eq!(total, h.count(), "case {case}");
        // Quantiles are monotone.
        assert!(h.quantile(0.25) <= h.quantile(0.75), "case {case}");
    }
}

/// BankMask set algebra, exhaustively over all 16x16 mask pairs.
#[test]
fn bank_mask_algebra() {
    for a in 0u8..16 {
        for b in 0u8..16 {
            let (ma, mb) = (BankMask::from_bits(a), BankMask::from_bits(b));
            assert_eq!(ma.union(mb).bits(), a | b);
            assert_eq!(ma.intersects(mb), a & b != 0);
            assert_eq!(ma.count(), a.count_ones() as usize);
            let collected: Vec<usize> = ma.iter().collect();
            assert_eq!(collected.len(), ma.count());
            for bank in collected {
                assert!(ma.contains(bank));
            }
        }
    }
}

/// Generated programs always execute safely for any seed, and the
/// committed stream stays connected.
#[test]
fn generated_program_always_executes() {
    for seed in (0u64..500).step_by(11) {
        let profile = WorkloadProfile { functions: 12, ..WorkloadProfile::default() };
        let program = ProgramGenerator::new(profile, seed).generate();
        let trace = Trace::capture("prop", &program, seed, 3_000);
        assert_eq!(trace.inst_count(), 3_000, "seed {seed}");
        for w in trace.insts().windows(2) {
            assert_eq!(w[0].next_ip, w[1].inst.ip, "seed {seed}");
        }
        // uop accounting holds.
        let total: u64 = trace.iter().map(|d| d.uops() as u64).sum();
        assert_eq!(total, trace.uop_count(), "seed {seed}");
    }
}

/// The no-redundancy invariant under randomized overlapping installs:
/// suffix/extension/complex cases never duplicate more than the split
/// line allows.
#[test]
fn overlapping_installs_bounded_duplication() {
    use xbc::{install, BuiltXb};
    // Reuse the fill unit to construct BuiltXbs from synthetic streams.
    use xbc_frontend::FillSink;
    use xbc_workload::DynInst;

    let cfg = XbcConfig { total_uops: 4096, ..XbcConfig::default() };
    let mut a = XbcArray::new(&cfg);
    let mut xfu = xbc::Xfu::new(16);
    // A shared tail at 0x900 reached from 8 different prefixes: the worst
    // case for trace caches, the design case for the XBC.
    for p in 0..8u64 {
        let prefix_ip = 0x1000 + p * 0x40;
        for i in 0..3 {
            let inst = Inst::plain(Addr::new(prefix_ip + i), 1, 1);
            xfu.observe(&DynInst { inst, taken: false, next_ip: Addr::new(prefix_ip + i + 1) });
        }
        let jmp = Inst::new(
            Addr::new(prefix_ip + 3),
            1,
            1,
            BranchKind::UncondDirect,
            Some(Addr::new(0x900)),
        );
        xfu.observe(&DynInst { inst: jmp, taken: true, next_ip: Addr::new(0x900) });
        for i in 0..4 {
            let inst = Inst::plain(Addr::new(0x900 + i), 1, 1);
            xfu.observe(&DynInst { inst, taken: false, next_ip: Addr::new(0x900 + i + 1) });
        }
        let end = Inst::new(Addr::new(0x904), 1, 1, BranchKind::Return, None);
        xfu.observe(&DynInst { inst: end, taken: true, next_ip: Addr::new(prefix_ip) });
    }
    let built: Vec<BuiltXb> = std::mem::take(&mut xfu.done);
    assert_eq!(built.len(), 8, "8 prefix+tail XBs");
    for b in &built {
        install(b, &mut a, BankMask::EMPTY);
    }
    let (stored, distinct) = a.redundancy();
    // All 8 alternate prefixes share one set (same end IP), which holds
    // only 4 banks x 2 ways = 8 lines; each path needs 2 prefix lines plus
    // the shared suffix line, so eviction necessarily drops the oldest
    // prefixes. What must hold: the shared 5-uop tail is stored once, at
    // least the most recent paths survive, and duplication stays bounded
    // by one split-line uop per resident alternate path.
    assert!(distinct >= 2 * 4 + 5, "tail plus recent prefixes resident: {distinct}");
    assert!(distinct <= 8 * 4 + 5);
    assert!(
        stored - distinct <= 8,
        "at most one duplicated split-line uop per alternate path: {} extra",
        stored - distinct
    );
    // The most recently installed path is still fetchable end-to-end.
    let last = built.last().unwrap();
    let (last_ptr, _) = install(last, &mut a, BankMask::EMPTY);
    assert!(a.lookup(&last_ptr).is_some());
}
