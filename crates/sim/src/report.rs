//! Result rows and table rendering.

use crate::spec::FrontendSpec;
use serde::{Deserialize, Serialize};
use xbc_frontend::FrontendMetrics;

/// One (trace × frontend) simulation result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Trace name (e.g. `"spec.gcc"`).
    pub trace: String,
    /// Suite name.
    pub suite: String,
    /// Frontend configuration.
    pub frontend: FrontendSpec,
    /// Dynamic instructions replayed.
    pub insts: usize,
    /// Total uops delivered.
    pub uops: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// The paper's uop miss rate (fraction of uops from the IC).
    pub miss_rate: f64,
    /// The paper's delivery bandwidth (structure uops per delivery cycle).
    pub bandwidth: f64,
    /// Overall uops per cycle.
    pub uops_per_cycle: f64,
    /// Conditional mispredictions.
    pub cond_mispredicts: u64,
    /// Target (indirect/return/mis-fetch) mispredictions.
    pub target_mispredicts: u64,
    /// Delivery→build transitions.
    pub delivery_to_build: u64,
    /// Uop-slots lost to bank conflicts (XBC only).
    pub bank_conflict_uops: u64,
    /// Branch promotions (XBC only).
    pub promotions: u64,
}

impl Row {
    /// Builds a row from raw metrics.
    pub fn new(trace: &str, suite: &str, frontend: FrontendSpec, insts: usize, m: &FrontendMetrics) -> Self {
        Row {
            trace: trace.to_owned(),
            suite: suite.to_owned(),
            frontend,
            insts,
            uops: m.total_uops(),
            cycles: m.cycles,
            miss_rate: m.uop_miss_rate(),
            bandwidth: m.delivery_bandwidth(),
            uops_per_cycle: m.overall_uops_per_cycle(),
            cond_mispredicts: m.cond_mispredicts,
            target_mispredicts: m.target_mispredicts,
            delivery_to_build: m.delivery_to_build,
            bank_conflict_uops: m.bank_conflict_uops,
            promotions: m.promotions,
        }
    }
}

/// Uop-weighted average miss rate over a set of rows.
pub fn average_miss_rate(rows: &[Row]) -> f64 {
    let total: u64 = rows.iter().map(|r| r.uops).sum();
    if total == 0 {
        return 0.0;
    }
    rows.iter().map(|r| r.miss_rate * r.uops as f64).sum::<f64>() / total as f64
}

/// Delivery-cycle-weighted average bandwidth over a set of rows.
pub fn average_bandwidth(rows: &[Row]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.bandwidth).sum::<f64>() / rows.len() as f64
}

/// Renders a fixed-width table: one row per trace, one column per frontend
/// label, cell = `select(row)`. Frontends appear in first-seen order.
pub fn pivot_table<F>(rows: &[Row], title: &str, select: F) -> String
where
    F: Fn(&Row) -> f64,
{
    let mut frontends: Vec<String> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    for r in rows {
        let label = r.frontend.label();
        if !frontends.contains(&label) {
            frontends.push(label);
        }
        if !traces.contains(&r.trace) {
            traces.push(r.trace.clone());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<18}", "trace"));
    for f in &frontends {
        out.push_str(&format!("{f:>14}"));
    }
    out.push('\n');
    for t in &traces {
        out.push_str(&format!("{t:<18}"));
        for f in &frontends {
            let cell = rows
                .iter()
                .find(|r| &r.trace == t && r.frontend.label() == *f)
                .map(|r| format!("{:>14.3}", select(r)))
                .unwrap_or_else(|| format!("{:>14}", "-"));
            out.push_str(&cell);
        }
        out.push('\n');
    }
    // Column averages.
    out.push_str(&format!("{:<18}", "AVG"));
    for f in &frontends {
        let sel: Vec<&Row> = rows.iter().filter(|r| r.frontend.label() == *f).collect();
        let avg = if sel.is_empty() {
            0.0
        } else {
            sel.iter().map(|r| select(r)).sum::<f64>() / sel.len() as f64
        };
        out.push_str(&format!("{avg:>14.3}"));
    }
    out.push('\n');
    out
}

/// Serializes rows as pretty JSON (for EXPERIMENTS.md regeneration).
///
/// # Panics
///
/// Panics if serialization fails (plain data; cannot fail in practice).
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("rows are plain data")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(trace: &str, spec: FrontendSpec, miss: f64, uops: u64) -> Row {
        Row {
            trace: trace.into(),
            suite: "s".into(),
            frontend: spec,
            insts: 100,
            uops,
            cycles: 10,
            miss_rate: miss,
            bandwidth: 6.0,
            uops_per_cycle: 2.0,
            cond_mispredicts: 0,
            target_mispredicts: 0,
            delivery_to_build: 0,
            bank_conflict_uops: 0,
            promotions: 0,
        }
    }

    #[test]
    fn weighted_average() {
        let rows =
            vec![row("a", FrontendSpec::Ic, 0.1, 100), row("b", FrontendSpec::Ic, 0.3, 300)];
        assert!((average_miss_rate(&rows) - 0.25).abs() < 1e-12);
        assert_eq!(average_miss_rate(&[]), 0.0);
    }

    #[test]
    fn table_layout() {
        let rows = vec![
            row("a", FrontendSpec::tc_default(), 0.5, 1),
            row("a", FrontendSpec::xbc_default(), 0.25, 1),
            row("b", FrontendSpec::tc_default(), 0.1, 1),
        ];
        let t = pivot_table(&rows, "demo", |r| r.miss_rate);
        assert!(t.contains("tc-32k"));
        assert!(t.contains("xbc-32k"));
        assert!(t.contains("0.500"));
        assert!(t.contains("0.250"));
        assert!(t.lines().last().unwrap().starts_with("AVG"));
        // Missing cell renders a dash.
        assert!(t.contains('-'));
    }

    #[test]
    fn json_roundtrip() {
        let rows = vec![row("a", FrontendSpec::Ic, 0.5, 10)];
        let back: Vec<Row> = serde_json::from_str(&to_json(&rows)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].trace, "a");
    }
}
