//! Regenerates the aggregate claims of paper §4 / §5 in one run:
//!
//! * the XBC matches TC bandwidth (Figure 8's takeaway),
//! * the XBC reduces misses at every size (Figure 9's takeaway, paper ~29%),
//! * the TC needs substantially more capacity (>50% in the paper) to
//!   match the XBC hit rate,
//! * the XBC is (nearly) redundancy free.
//!
//! ```text
//! cargo run --release -p xbc-bench --bin summary [-- --inst N]
//! ```

use xbc::{XbcConfig, XbcFrontend};
use xbc_frontend::Frontend;
use xbc_sim::{average_bandwidth, average_miss_rate, FrontendSpec, HarnessArgs, Row};

const SIZES: [usize; 4] = [4096, 8192, 16384, 32768];

fn main() {
    let args = HarnessArgs::from_env();
    let mut frontends = vec![FrontendSpec::Ic];
    for &s in &SIZES {
        frontends.push(FrontendSpec::Tc { total_uops: s, ways: 4 });
        frontends.push(FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true });
    }
    let rows = args.run_sweep(frontends);
    let by = |spec: FrontendSpec| -> Vec<Row> {
        rows.iter().filter(|r| r.frontend == spec).cloned().collect()
    };

    println!(
        "== XBC reproduction summary ({} traces x {} insts) ==",
        args.traces.len(),
        args.insts
    );
    println!();
    println!("[1] miss-rate reduction vs TC at equal size (paper: ~29% at all sizes)");
    for &s in &SIZES {
        let tc = average_miss_rate(&by(FrontendSpec::Tc { total_uops: s, ways: 4 }));
        let xbc =
            average_miss_rate(&by(FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true }));
        println!(
            "    {:>3}K uops: tc {:>5.2}%  xbc {:>5.2}%  reduction {:>5.1}%",
            s / 1024,
            100.0 * tc,
            100.0 * xbc,
            100.0 * (1.0 - xbc / tc)
        );
    }
    println!();
    println!("[2] bandwidth at 32K uops (paper: negligible difference)");
    let bt = average_bandwidth(&by(FrontendSpec::tc_default()));
    let bx = average_bandwidth(&by(FrontendSpec::xbc_default()));
    println!("    tc {bt:.2} uops/cyc, xbc {bx:.2} uops/cyc ({:+.1}%)", 100.0 * (bx - bt) / bt);
    println!();
    println!("[3] capacity for TC to match XBC (paper: >50% more)");
    for (i, &s) in SIZES.iter().enumerate() {
        let xbc =
            average_miss_rate(&by(FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true }));
        let needed = SIZES[i..]
            .iter()
            .find(|&&ts| {
                average_miss_rate(&by(FrontendSpec::Tc { total_uops: ts, ways: 4 })) <= xbc
            })
            .copied();
        match needed {
            Some(ts) if ts == s => {
                println!("    xbc@{}K matched by tc@{}K (1x)", s / 1024, ts / 1024)
            }
            Some(ts) => println!("    xbc@{}K needs tc@{}K ({}x)", s / 1024, ts / 1024, ts / s),
            None => println!("    xbc@{}K not matched by any swept TC size", s / 1024),
        }
    }
    println!();
    println!("[4] redundancy audit (paper: the XBC is nearly redundancy free)");
    let spec = &args.traces[0];
    let trace = match args.open_store() {
        Some(store) => store.get_or_capture(spec, args.insts.min(200_000)),
        None => spec.capture(args.insts.min(200_000)),
    };
    let mut fe = XbcFrontend::new(XbcConfig::default());
    fe.run(&trace);
    let (total, distinct) = fe.array().redundancy();
    println!(
        "    {} stored uop slots, {} distinct uops: {:.2}% duplicated ({})",
        total,
        distinct,
        100.0 * (total - distinct) as f64 / total.max(1) as f64,
        spec.name
    );
    args.maybe_dump_json(&rows);
}
