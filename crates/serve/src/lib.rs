//! # xbc-serve — long-running sweep service
//!
//! A daemon that keeps one [`xbc_store::Store`] and one worker pool warm
//! across many sweep requests, plus the matching client:
//!
//! * [`protocol`] — the `xbc-serve-v1` JSONL wire protocol (requests,
//!   row/trailer lines, and the compact serializers they use),
//! * [`Endpoint`] — the transport address: a Unix-domain socket path or
//!   a TCP `host:port` (the protocol is identical over both),
//! * [`serve`] / [`Server`] / [`ServeConfig`] — the daemon: an accept
//!   loop feeding (trace × frontend) cells onto a shared fair scheduler
//!   (priority classes, round-robin across clients within a class, the
//!   same cell model as `xbc_sim::Sweep`), with daemon-wide
//!   single-flight dedup of concurrently requested cells and captures,
//! * [`submit`] / [`ping`] / [`shutdown`] — the client side, used by
//!   `xbcsim submit`,
//! * [`faults`] (under the `check` feature) — deterministic
//!   fault-injection triggers for the daemon's failure paths: worker
//!   deaths mid-cell, dropped/delayed/truncated response streams.
//!
//! Replay inside the daemon is *streaming-first*: a cell whose trace is
//! already in the store replays it through the bounded-window oracle
//! (`Frontend::run_streamed`), so daemon memory stays O(window) per
//! worker however long the traces are. Cells whose trace is not yet
//! captured fall back to one shared resident capture per trace — which
//! also lands the trace in the store, so every later cell streams.
//!
//! Rows served for a warm store are **byte-identical** to a one-shot
//! `xbcsim sweep` of the same grid: cached rows are replayed verbatim
//! (original `elapsed_ms` included), and the row JSON is a fixed point
//! of parse → re-encode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod daemon;
#[cfg(feature = "check")]
pub mod faults;
pub mod protocol;
mod scheduler;
mod transport;

pub use client::{ping, shutdown, submit, SubmitOutcome};
pub use daemon::{serve, ServeConfig, Server};
pub use scheduler::{ClientCells, SchedStats};
pub use transport::Endpoint;

#[cfg(feature = "check")]
pub use faults::FaultInjector;
