//! The 21-trace benchmark suite.
//!
//! The paper reports results over 21 traces in three suites: SPECint95
//! (8 traces), SYSmark32 for Windows 95 (8 traces), and popular Games
//! (5 traces), each 30M x86 instructions including kernel activity (§4).
//! We synthesize stand-ins with suite-specific workload profiles
//! (see DESIGN.md §3): SPECint-like programs are loop-heavy with compact
//! footprints, SYSmark-like programs have large code footprints and heavy
//! indirect-call (GUI dispatch) traffic, and Games sit in between with a
//! wider uop expansion (FP/SIMD-ish).

use crate::generate::ProgramGenerator;
use crate::profile::{TerminatorMix, WorkloadProfile};
use crate::program::Program;
use crate::trace::Trace;
use std::fmt;

/// Benchmark suite of a trace, mirroring the paper's grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// SPECint95-like: loopy integer code, compact footprint.
    SpecInt95,
    /// SYSmark32-like: large-footprint interactive applications.
    Sysmark32,
    /// Games-like: medium footprint, wider uop expansion.
    Games,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::SpecInt95 => f.write_str("SPECint95"),
            Suite::Sysmark32 => f.write_str("SYSmark32"),
            Suite::Games => f.write_str("Games"),
        }
    }
}

impl Suite {
    /// Base workload profile for this suite.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            Suite::SpecInt95 => WorkloadProfile {
                functions: 110,
                blocks_per_fn_mean: 24.0,
                loop_frac: 0.08,
                loop_trip_mean: 10.0,
                biased_taken_frac: 0.22,
                biased_not_taken_frac: 0.18,
                join_bias: 0.35,
                hot_fraction: 0.20,
                hot_call_prob: 0.62,
                indirect_stickiness: 0.92,
                interrupt_interval: Some(25_000),
                ..WorkloadProfile::default()
            },
            Suite::Sysmark32 => WorkloadProfile {
                functions: 380,
                blocks_per_fn_mean: 22.0,
                loop_frac: 0.03,
                loop_trip_mean: 5.0,
                biased_taken_frac: 0.20,
                biased_not_taken_frac: 0.20,
                join_bias: 0.40,
                hot_fraction: 0.30,
                hot_call_prob: 0.52,
                indirect_stickiness: 0.78,
                interrupt_interval: Some(6_000),
                terminators: TerminatorMix {
                    cond: 0.64,
                    jmp: 0.08,
                    call: 0.12,
                    ret: 0.10,
                    ijmp: 0.02,
                    icall: 0.04,
                },
                ..WorkloadProfile::default()
            },
            Suite::Games => WorkloadProfile {
                functions: 200,
                blocks_per_fn_mean: 26.0,
                loop_frac: 0.05,
                loop_trip_mean: 10.0,
                biased_taken_frac: 0.24,
                biased_not_taken_frac: 0.14,
                join_bias: 0.30,
                hot_fraction: 0.18,
                hot_call_prob: 0.60,
                indirect_stickiness: 0.88,
                interrupt_interval: Some(12_000),
                uops_per_inst_weights: [0.48, 0.30, 0.14, 0.08],
                ..WorkloadProfile::default()
            },
        }
    }
}

/// Specification of one named trace: suite, per-trace seed and profile
/// perturbation.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Name, e.g. `"spec.gcc"`.
    pub name: &'static str,
    /// Suite the trace belongs to.
    pub suite: Suite,
    /// Generation/execution seed.
    pub seed: u64,
    /// Per-trace function count override (footprint diversity within a
    /// suite; the paper's traces vary widely inside each suite too).
    pub functions: usize,
}

impl TraceSpec {
    /// The fully resolved workload profile for this trace.
    pub fn profile(&self) -> WorkloadProfile {
        WorkloadProfile { functions: self.functions, ..self.suite.profile() }
    }

    /// Generates this trace's program image.
    pub fn program(&self) -> Program {
        ProgramGenerator::new(self.profile(), self.seed).generate()
    }

    /// Generates the program and captures `n_insts` dynamic instructions.
    pub fn capture(&self, n_insts: usize) -> Trace {
        let program = self.program();
        let profile = self.profile();
        Trace::capture_with_options(
            self.name,
            &program,
            self.seed.wrapping_mul(0x2545_F491_4F6C_DD1D),
            n_insts,
            profile.indirect_stickiness,
            profile.interrupt_interval,
        )
    }

    /// Streaming counterpart of [`TraceSpec::capture`]: generates the
    /// program and encodes `n_insts` dynamic instructions straight to
    /// `writer` in chunks (same seed derivation and profile options, so
    /// the bytes match `capture` + `Trace::save` exactly). `on_chunk`
    /// sees each chunk plus the running instruction total — the tee
    /// point for progress reporting and capture/replay overlap.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn capture_streamed<W, F>(
        &self,
        n_insts: usize,
        writer: W,
        on_chunk: F,
    ) -> Result<crate::ExecStats, crate::TraceError>
    where
        W: std::io::Write + std::io::Seek,
        F: FnMut(&[crate::DynInst], u64),
    {
        let program = self.program();
        let profile = self.profile();
        Trace::capture_streamed(
            self.name,
            &program,
            self.seed.wrapping_mul(0x2545_F491_4F6C_DD1D),
            n_insts,
            profile.indirect_stickiness,
            profile.interrupt_interval,
            writer,
            on_chunk,
        )
    }
}

/// The standard 21 traces (8 SPECint95-like, 8 SYSmark32-like, 5
/// Games-like) used by every figure harness.
///
/// # Examples
///
/// ```
/// use xbc_workload::{standard_traces, Suite};
///
/// let traces = standard_traces();
/// assert_eq!(traces.len(), 21);
/// assert_eq!(traces.iter().filter(|t| t.suite == Suite::SpecInt95).count(), 8);
/// assert_eq!(traces.iter().filter(|t| t.suite == Suite::Sysmark32).count(), 8);
/// assert_eq!(traces.iter().filter(|t| t.suite == Suite::Games).count(), 5);
/// ```
pub fn standard_traces() -> Vec<TraceSpec> {
    use Suite::*;
    vec![
        TraceSpec { name: "spec.compress", suite: SpecInt95, seed: 101, functions: 150 },
        TraceSpec { name: "spec.gcc", suite: SpecInt95, seed: 102, functions: 400 },
        TraceSpec { name: "spec.go", suite: SpecInt95, seed: 103, functions: 330 },
        TraceSpec { name: "spec.ijpeg", suite: SpecInt95, seed: 104, functions: 180 },
        TraceSpec { name: "spec.li", suite: SpecInt95, seed: 105, functions: 200 },
        TraceSpec { name: "spec.m88ksim", suite: SpecInt95, seed: 106, functions: 220 },
        TraceSpec { name: "spec.perl", suite: SpecInt95, seed: 107, functions: 300 },
        TraceSpec { name: "spec.vortex", suite: SpecInt95, seed: 108, functions: 370 },
        TraceSpec { name: "sys.winword", suite: Sysmark32, seed: 201, functions: 1400 },
        TraceSpec { name: "sys.excel", suite: Sysmark32, seed: 202, functions: 1300 },
        TraceSpec { name: "sys.powerpnt", suite: Sysmark32, seed: 203, functions: 1150 },
        TraceSpec { name: "sys.access", suite: Sysmark32, seed: 204, functions: 1250 },
        TraceSpec { name: "sys.pagemaker", suite: Sysmark32, seed: 205, functions: 1050 },
        TraceSpec { name: "sys.coreldraw", suite: Sysmark32, seed: 206, functions: 1450 },
        TraceSpec { name: "sys.paradox", suite: Sysmark32, seed: 207, functions: 1000 },
        TraceSpec { name: "sys.freelance", suite: Sysmark32, seed: 208, functions: 900 },
        TraceSpec { name: "games.quake", suite: Games, seed: 301, functions: 550 },
        TraceSpec { name: "games.hexen", suite: Games, seed: 302, functions: 500 },
        TraceSpec { name: "games.monster", suite: Games, seed: 303, functions: 700 },
        TraceSpec { name: "games.jedi", suite: Games, seed: 304, functions: 620 },
        TraceSpec { name: "games.flightsim", suite: Games, seed: 305, functions: 760 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_profiles_are_valid() {
        for s in [Suite::SpecInt95, Suite::Sysmark32, Suite::Games] {
            s.profile().validate();
        }
    }

    #[test]
    fn names_are_unique() {
        let traces = standard_traces();
        let mut names: Vec<_> = traces.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn seeds_are_unique() {
        let traces = standard_traces();
        let mut seeds: Vec<_> = traces.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 21);
    }

    #[test]
    fn sysmark_has_largest_footprint() {
        let spec = Suite::SpecInt95.profile().approx_static_uops();
        let sys = Suite::Sysmark32.profile().approx_static_uops();
        let games = Suite::Games.profile().approx_static_uops();
        assert!(sys > games && games > spec, "spec={spec} games={games} sys={sys}");
    }

    #[test]
    fn capture_small_trace_from_each_suite() {
        for spec in standard_traces().iter().step_by(8) {
            let t = spec.capture(2_000);
            assert_eq!(t.inst_count(), 2_000);
            assert_eq!(t.name(), spec.name);
        }
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::SpecInt95.to_string(), "SPECint95");
        assert_eq!(Suite::Sysmark32.to_string(), "SYSmark32");
        assert_eq!(Suite::Games.to_string(), "Games");
    }
}
