//! Fast end-to-end checks of the paper's qualitative claims — miniature
//! versions of the figure harnesses, small enough for `cargo test`.
//! The full-scale numbers live in EXPERIMENTS.md and regenerate with the
//! `fig*` binaries.

use xbc_sim::{average_bandwidth, average_miss_rate, FrontendSpec, Sweep};
use xbc_workload::{block_length_stats, standard_traces, TraceSpec};

fn subset() -> Vec<TraceSpec> {
    // One big-footprint trace per suite keeps this fast but representative.
    standard_traces()
        .into_iter()
        .filter(|t| ["spec.gcc", "sys.access", "games.quake"].contains(&t.name))
        .collect()
}

#[test]
fn figure1_block_length_ordering_and_bands() {
    let mut agg: Option<xbc_workload::BlockLengthStats> = None;
    for spec in standard_traces().iter().step_by(4) {
        let s = block_length_stats(&spec.capture(60_000));
        match &mut agg {
            None => agg = Some(s),
            Some(a) => a.merge(&s),
        }
    }
    let s = agg.unwrap();
    let (bb, xb, promo, dual) =
        (s.basic_block.mean(), s.xb.mean(), s.xb_promoted.mean(), s.dual_xb.mean());
    // Paper: 7.7 / 8.0 / 10.0 / 12.7 — require the ordering and loose bands.
    assert!(bb < xb && xb < promo && promo < dual, "{bb} {xb} {promo} {dual}");
    assert!((6.5..9.5).contains(&bb), "basic block mean {bb}");
    assert!((6.8..10.0).contains(&xb), "xb mean {xb}");
    assert!((8.5..12.5).contains(&promo), "promoted mean {promo}");
    assert!((11.0..15.0).contains(&dual), "dual mean {dual}");
}

#[test]
fn figure8_bandwidth_is_comparable() {
    let rows =
        Sweep::new(subset(), vec![FrontendSpec::tc_default(), FrontendSpec::xbc_default()], 60_000)
            .run();
    let tc: Vec<_> =
        rows.iter().filter(|r| r.frontend == FrontendSpec::tc_default()).cloned().collect();
    let xbc: Vec<_> =
        rows.iter().filter(|r| r.frontend == FrontendSpec::xbc_default()).cloned().collect();
    let (bt, bx) = (average_bandwidth(&tc), average_bandwidth(&xbc));
    // Paper: "the difference ... is negligible". Allow 15% either way.
    assert!((bx - bt).abs() / bt < 0.15, "tc {bt:.2} vs xbc {bx:.2}");
    assert!(bt > 4.0 && bx > 4.0, "both must be high-bandwidth structures");
}

#[test]
fn figure9_xbc_misses_less_at_capacity_dominated_sizes() {
    for size in [4096usize, 8192] {
        let rows = Sweep::new(
            subset(),
            vec![
                FrontendSpec::Tc { total_uops: size, ways: 4 },
                FrontendSpec::Xbc { total_uops: size, ways: 2, promotion: true },
            ],
            60_000,
        )
        .run();
        let tc = average_miss_rate(
            &rows
                .iter()
                .filter(|r| r.frontend.label().starts_with("tc"))
                .cloned()
                .collect::<Vec<_>>(),
        );
        let xbc = average_miss_rate(
            &rows
                .iter()
                .filter(|r| r.frontend.label().starts_with("xbc"))
                .cloned()
                .collect::<Vec<_>>(),
        );
        assert!(xbc < tc, "at {size} uops the XBC ({xbc:.3}) must miss less than the TC ({tc:.3})");
    }
}

#[test]
fn figure9_miss_rate_decreases_with_size() {
    let sizes = [2048usize, 8192, 32768];
    let mut frontends = Vec::new();
    for &s in &sizes {
        frontends.push(FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true });
    }
    let rows = Sweep::new(subset(), frontends, 60_000).run();
    let miss = |s: usize| {
        average_miss_rate(
            &rows
                .iter()
                .filter(|r| {
                    r.frontend == FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true }
                })
                .cloned()
                .collect::<Vec<_>>(),
        )
    };
    assert!(miss(2048) > miss(8192), "capacity curve must fall");
    assert!(miss(8192) > miss(32768), "capacity curve must keep falling");
}

#[test]
fn figure10_associativity_helps_both_structures() {
    let size = 16384;
    let mut frontends = Vec::new();
    for ways in [1usize, 2, 4] {
        frontends.push(FrontendSpec::Tc { total_uops: size, ways });
        frontends.push(FrontendSpec::Xbc { total_uops: size, ways, promotion: true });
    }
    let rows = Sweep::new(subset(), frontends, 60_000).run();
    let miss = |spec: FrontendSpec| {
        average_miss_rate(&rows.iter().filter(|r| r.frontend == spec).cloned().collect::<Vec<_>>())
    };
    // 1-way -> 2-way is a large improvement for both (paper: ~60%).
    let tc1 = miss(FrontendSpec::Tc { total_uops: size, ways: 1 });
    let tc2 = miss(FrontendSpec::Tc { total_uops: size, ways: 2 });
    let tc4 = miss(FrontendSpec::Tc { total_uops: size, ways: 4 });
    assert!(tc2 < tc1 && tc4 < tc2, "tc assoc curve: {tc1:.3} {tc2:.3} {tc4:.3}");
    let x1 = miss(FrontendSpec::Xbc { total_uops: size, ways: 1, promotion: true });
    let x2 = miss(FrontendSpec::Xbc { total_uops: size, ways: 2, promotion: true });
    assert!(x2 < x1, "xbc assoc curve: {x1:.3} {x2:.3}");
    // The jump from direct-mapped to 2-way is the big one.
    assert!((tc1 - tc2) > (tc2 - tc4), "diminishing returns expected");
}
