//! Structural invariant checking for the XBC (the `xbc-check` tentpole).
//!
//! [`XbcInvariants`] bundles the storage-rule audits scattered across the
//! structures ([`XbcArray::audit`], [`Xbtb::audit`], [`Xfu::audit`]) with a
//! *differential census*: the array's [`XbcArray::population`] counters are
//! recomputed here from the raw line metadata by an independent
//! implementation, so a bookkeeping bug in either census shows up as a
//! disagreement instead of silently skewing every figure built on it.
//!
//! The checks are pure reads — they never mutate the structures — so the
//! frontend can run them after every install/extend (feature `check`, or
//! any `debug_assertions` build) without perturbing timing state.

use crate::array::XbcArray;
use crate::xbtb::Xbtb;
use crate::xfu::Xfu;
use std::collections::{HashMap, HashSet};

/// Facade over the XBC structural audits.
///
/// # Examples
///
/// ```
/// use xbc::{XbcConfig, XbcArray, XbcInvariants};
///
/// let array = XbcArray::new(&XbcConfig::default());
/// XbcInvariants::check(&array).expect("an empty array is trivially sound");
/// ```
pub struct XbcInvariants;

impl XbcInvariants {
    /// Audits `array` with no merged-block exemptions (promotion off, or a
    /// standalone array). See [`XbcInvariants::check_with`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check(array: &XbcArray) -> Result<(), String> {
        Self::check_with(array, &HashSet::new())
    }

    /// Audits `array`: per-line storage rules ([`XbcArray::audit`], with
    /// `merged_tags` exempting merge-mode combinations from the single-exit
    /// rule) plus the differential census recount.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_with(array: &XbcArray, merged_tags: &HashSet<(usize, u64)>) -> Result<(), String> {
        array.audit(merged_tags)?;
        Self::census(array)
    }

    /// Recomputes the line/uop/XB counts from raw line metadata and
    /// compares them with [`XbcArray::population`] and the direct
    /// [`XbcArray::valid_lines`] / [`XbcArray::stored_uops`] counters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first counter disagreement.
    pub fn census(array: &XbcArray) -> Result<(), String> {
        let mut lines = 0usize;
        let mut uops = 0usize;
        let mut per_tag: HashMap<(usize, u64), Vec<u8>> = HashMap::new();
        for set in 0..array.sets() {
            for bank in 0..array.banks() {
                for way in 0..array.ways() {
                    let Some((tag, order, count)) = array.line_meta(set, bank, way) else {
                        continue;
                    };
                    lines += 1;
                    uops += count;
                    per_tag.entry((set, tag)).or_default().push(order);
                }
            }
        }
        let mut complex = 0usize;
        for orders in per_tag.values_mut() {
            orders.sort_unstable();
            if orders.windows(2).any(|w| w[0] == w[1]) {
                complex += 1;
            }
        }
        let pop = array.population();
        let pairs = [
            ("valid lines", lines, array.valid_lines()),
            ("population lines", lines, pop.lines),
            ("stored uops", uops, array.stored_uops()),
            ("population uops", uops, pop.stored_uops),
            ("XB count", per_tag.len(), pop.xb_count),
            ("complex count", complex, pop.complex_count),
        ];
        for (what, recount, counter) in pairs {
            if recount != counter {
                return Err(format!(
                    "census mismatch: {what} recounts {recount}, reports {counter}"
                ));
            }
        }
        let (total, distinct) = array.redundancy();
        if distinct > total {
            return Err(format!("redundancy audit: {distinct} distinct of {total} slots"));
        }
        Ok(())
    }

    /// Audits the pointer table against the array geometry it navigates.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_xbtb(xbtb: &Xbtb, array: &XbcArray) -> Result<(), String> {
        xbtb.audit(array.line_uops(), array.banks() * array.line_uops())
    }

    /// Audits the fill unit's build state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_xfu(xfu: &Xfu) -> Result<(), String> {
        xfu.audit()
    }

    /// Audits accounting identities on a finished run's metrics: every
    /// delivery→build switch must carry exactly one cause, so the cause
    /// counters partition `delivery_to_build`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_metrics(m: &xbc_frontend::FrontendMetrics) -> Result<(), String> {
        if m.d2b_cause_sum() != m.delivery_to_build {
            return Err(format!(
                "d2b cause counters sum to {} but delivery_to_build is {}",
                m.d2b_cause_sum(),
                m.delivery_to_build
            ));
        }
        if m.cycles != m.build_cycles + m.delivery_cycles + m.stall_cycles {
            return Err(format!(
                "cycle kinds sum to {} but cycles is {}",
                m.build_cycles + m.delivery_cycles + m.stall_cycles,
                m.cycles
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XbcConfig;
    use crate::ptr::BankMask;
    use xbc_isa::{Addr, BranchKind, Uop, UopId, UopKind};

    fn mk_uops(base_ip: u64, n: usize) -> Vec<Uop> {
        (0..n)
            .map(|i| {
                let last = i + 1 == n;
                Uop::new(
                    UopId::new(Addr::new(base_ip + i as u64), 0),
                    if last { UopKind::Branch } else { UopKind::Alu },
                    true,
                    if last { BranchKind::CondDirect } else { BranchKind::None },
                )
            })
            .collect()
    }

    #[test]
    fn clean_array_passes() {
        let mut a = XbcArray::new(&XbcConfig { total_uops: 256, ..XbcConfig::default() });
        for i in 0..4u64 {
            let u = mk_uops(0x100 + i * 37, 10);
            a.insert(Addr::new(0x100 + i * 37 + 9), &u, 0, BankMask::EMPTY, BankMask::EMPTY);
        }
        XbcInvariants::check(&a).unwrap();
    }

    #[test]
    fn interior_boundary_branch_is_caught() {
        let mut a = XbcArray::new(&XbcConfig { total_uops: 256, ..XbcConfig::default() });
        // A "merged-looking" block with a conditional buried mid-way…
        let mut u = mk_uops(0x100, 5);
        u.extend(mk_uops(0x200, 5));
        let ip = Addr::new(0x204);
        a.insert(ip, &u, 0, BankMask::EMPTY, BankMask::EMPTY);
        let err = XbcInvariants::check(&a).unwrap_err();
        assert!(err.contains("interior position"), "{err}");
        // …is legal once the tag is registered as a merge combination.
        let mut merged = HashSet::new();
        merged.insert(a.set_and_tag(ip));
        XbcInvariants::check_with(&a, &merged).unwrap();
    }

    #[test]
    fn xbtb_thin_mask_is_caught() {
        use crate::ptr::XbPtr;
        use crate::xbtb::XbEndKind;
        let mut t = Xbtb::new(64);
        let e = t.allocate(Addr::new(0x100), XbEndKind::Cond);
        // 9 uops need ceil(9/4) = 3 banks; a 1-bank mask cannot fetch them.
        e.set_successor(
            true,
            XbPtr::new(Addr::new(0x200), Addr::new(0x1f8), BankMask::from_bits(0b0001), 9),
        );
        let a = XbcArray::new(&XbcConfig::default());
        let err = XbcInvariants::check_xbtb(&t, &a).unwrap_err();
        assert!(err.contains("needs 3"), "{err}");
    }

    #[test]
    fn xfu_miscount_is_caught() {
        use xbc_frontend::FillSink;
        use xbc_workload::DynInst;
        let mut x = Xfu::new(16);
        let inst = xbc_isa::Inst::plain(Addr::new(0x10), 1, 2);
        x.observe(&DynInst { inst, taken: false, next_ip: Addr::new(0x11) });
        XbcInvariants::check_xfu(&x).unwrap();
    }

    #[test]
    fn uncaused_d2b_switch_is_caught() {
        let mut m = xbc_frontend::FrontendMetrics::default();
        XbcInvariants::check_metrics(&m).unwrap();
        m.delivery_to_build = 3;
        m.d2b_xbtb_miss = 2;
        m.d2b_return = 1;
        XbcInvariants::check_metrics(&m).unwrap();
        m.delivery_to_build = 4; // one switch forgot its cause
        let err = XbcInvariants::check_metrics(&m).unwrap_err();
        assert!(err.contains("delivery_to_build"), "{err}");
    }
}
