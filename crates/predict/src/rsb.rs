//! Return stack buffer.
//!
//! Generic over the pushed payload: the IC frontend pushes return
//! *addresses*, while the XBC's XRSB pushes pointers to XBTB entries
//! (paper §3.5). Fixed depth with wrap-around overwrite, like hardware.

use std::fmt;

/// A fixed-depth return stack that overwrites its oldest entry on overflow,
/// mimicking a hardware RSB (deep recursion corrupts the oldest frames
/// rather than failing).
///
/// # Examples
///
/// ```
/// use xbc_predict::ReturnStack;
///
/// let mut rsb: ReturnStack<u32> = ReturnStack::new(2);
/// rsb.push(1);
/// rsb.push(2);
/// rsb.push(3); // overwrites 1
/// assert_eq!(rsb.pop(), Some(3));
/// assert_eq!(rsb.pop(), Some(2));
/// assert_eq!(rsb.pop(), None); // 1 was lost to wrap-around
/// ```
#[derive(Clone)]
pub struct ReturnStack<T> {
    slots: Vec<Option<T>>,
    /// Index of the next slot to push into.
    top: usize,
    /// Number of live entries (capped at depth).
    live: usize,
    /// Pushes lost to overflow.
    overflows: u64,
    /// Pops attempted on an empty stack.
    underflows: u64,
}

impl<T> ReturnStack<T> {
    /// Creates an empty stack of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "return stack needs depth >= 1");
        let mut slots = Vec::with_capacity(depth);
        slots.resize_with(depth, || None);
        ReturnStack { slots, top: 0, live: 0, overflows: 0, underflows: 0 }
    }

    /// Maximum depth.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Pushes a frame, overwriting the oldest on overflow.
    pub fn push(&mut self, value: T) {
        if self.live == self.slots.len() {
            self.overflows += 1;
        } else {
            self.live += 1;
        }
        self.slots[self.top] = Some(value);
        self.top = (self.top + 1) % self.slots.len();
    }

    /// Pops the most recent frame, or `None` on an empty stack.
    pub fn pop(&mut self) -> Option<T> {
        if self.live == 0 {
            self.underflows += 1;
            return None;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.live -= 1;
        self.slots[self.top].take()
    }

    /// Peeks at the most recent frame without popping.
    pub fn peek(&self) -> Option<&T> {
        if self.live == 0 {
            return None;
        }
        let idx = (self.top + self.slots.len() - 1) % self.slots.len();
        self.slots[idx].as_ref()
    }

    /// Clears all entries (e.g. on a pipeline flush in aggressive designs).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.top = 0;
        self.live = 0;
    }

    /// Pushes lost to wrap-around so far.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Pops from an empty stack so far.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }
}

impl<T: fmt::Debug> fmt::Debug for ReturnStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReturnStack")
            .field("depth", &self.slots.len())
            .field("live", &self.live)
            .field("overflows", &self.overflows)
            .field("underflows", &self.underflows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = ReturnStack::new(4);
        s.push("a");
        s.push("b");
        assert_eq!(s.peek(), Some(&"b"));
        assert_eq!(s.pop(), Some("b"));
        assert_eq!(s.pop(), Some("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut s = ReturnStack::new(2);
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.overflows(), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), None);
        assert_eq!(s.underflows(), 1);
    }

    #[test]
    fn deep_recursion_then_unwind() {
        let mut s = ReturnStack::new(8);
        for i in 0..20 {
            s.push(i);
        }
        // Only the 8 most recent survive, in order.
        for i in (12..20).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert!(s.pop().is_none());
    }

    #[test]
    fn clear_resets() {
        let mut s = ReturnStack::new(2);
        s.push(1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }

    #[test]
    #[should_panic(expected = "depth >= 1")]
    fn zero_depth_rejected() {
        let _: ReturnStack<u8> = ReturnStack::new(0);
    }
}
