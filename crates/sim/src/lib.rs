//! # xbc-sim — trace-driven simulation driver and sweep engine
//!
//! The experiment layer of the XBC reproduction:
//!
//! * [`FrontendSpec`] — serializable frontend configurations
//!   (IC / uop-cache / trace-cache / XBC at any size),
//! * [`Sweep`] — parallel (trace × frontend) grids where every
//!   configuration replays the identical committed path; scheduling is
//!   cell-level, so a grid of N configurations over M traces keeps
//!   `min(threads, N×M)` workers busy,
//! * [`SweepBench`] — per-run scheduler accounting (wall time,
//!   capture/sim split, worker utilization), emitted via `--bench-json`,
//! * [`Row`] / [`pivot_table`] / [`to_json`] — result collection and the
//!   table rendering used by the figure-regeneration binaries,
//! * [`HarnessArgs`] — the common CLI of those binaries.
//!
//! # Example
//!
//! ```
//! use xbc_sim::{FrontendSpec, Sweep, average_miss_rate};
//! use xbc_workload::standard_traces;
//!
//! let traces = standard_traces().into_iter().take(2).collect();
//! let sweep = Sweep::new(
//!     traces,
//!     vec![FrontendSpec::Tc { total_uops: 8192, ways: 4 },
//!          FrontendSpec::Xbc { total_uops: 8192, ways: 2, promotion: true }],
//!     10_000,
//! );
//! let rows = sweep.run();
//! assert_eq!(rows.len(), 4);
//! println!("avg miss {:.2}%", 100.0 * average_miss_rate(&rows));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod cli;
mod inspect;
mod report;
mod spec;
mod sweep;

pub use bench::{SweepBench, WorkerStat};
pub use cli::HarnessArgs;
pub use inspect::render_inspect;
pub use report::{average_bandwidth, average_miss_rate, pivot_table, rows_from_json, to_json, Row};
pub use spec::FrontendSpec;
pub use sweep::{
    capture_share, map_traces_parallel, resolve_threads, result_key, run_checked,
    run_checked_oracle, run_checked_streamed, run_checked_traced, sweep_custom, CustomRow, Sweep,
    CODE_VERSION,
};
/// The in-tree JSON parser (now hosted by `xbc-obs`; re-exported here
/// for the sim-layer consumers that grew up with `xbc_sim::json`).
pub use xbc_obs::json;
