//! Proof that the XBC's steady-state delivery path never touches the
//! heap (DESIGN.md §12).
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms an `XbcFrontend` on a hot loop until it settles into delivery
//! mode (builds done, XB promoted/merged, assembly memo populated), then
//! asserts the allocation counter does not move across thousands of
//! further delivery cycles. Any `Vec`/`Box`/clone creeping back into the
//! fetch → lookup → assemble → deliver loop fails this test
//! deterministically — unlike the throughput gate, which only catches it
//! once it costs enough to clear the noise tolerance.
//!
//! This lives in `tests/` (its own crate) because `xbc` itself forbids
//! `unsafe`, and a `GlobalAlloc` impl requires it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xbc::{XbcConfig, XbcFrontend};
use xbc_frontend::{Frontend, FrontendMetrics, OracleStream};
use xbc_isa::{Addr, BranchKind, Inst};
use xbc_workload::{CondBehavior, ProgramBuilder, Trace};

/// Counts every allocation and reallocation; frees are uncounted (a
/// delivery cycle that frees something must have allocated it earlier).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A tight always-taken loop: after one build pass the XBC serves it
/// from the array forever — the pure steady state.
fn hot_loop(n_insts: usize) -> Trace {
    let mut b = ProgramBuilder::new();
    for i in 0..6u64 {
        b.push(Inst::plain(Addr::new(0x100 + i), 1, 2));
    }
    b.push_cond(
        Inst::new(Addr::new(0x106), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
        CondBehavior::Bernoulli { p_taken: 1.0 },
    );
    b.push(Inst::new(Addr::new(0x108), 1, 1, BranchKind::Return, None));
    let p = b.build(Addr::new(0x100), 1);
    Trace::capture("hot-loop", &p, 0, n_insts)
}

#[test]
fn delivery_steady_state_is_allocation_free() {
    let trace = hot_loop(60_000);
    let mut fe = XbcFrontend::new(XbcConfig::default());
    let mut metrics = FrontendMetrics::default();
    let mut oracle = OracleStream::new(&trace);

    // Warm-up: build the XB, let promotion settle, populate the assembly
    // memo and the frontend's reusable buffers. Generously longer than
    // the handful of cycles the loop actually needs.
    let mut steps = 0usize;
    while fe.mode_label() != "delivery" || steps < 5_000 {
        assert!(!oracle.done(), "trace drained before reaching steady state");
        fe.step(&mut oracle, &mut metrics);
        steps += 1;
    }

    let before = allocations();
    for _ in 0..2_000 {
        assert!(!oracle.done(), "trace drained mid-measurement");
        fe.step(&mut oracle, &mut metrics);
        assert_eq!(fe.mode_label(), "delivery", "steady state must hold for the measurement");
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "steady-state delivery cycles performed {delta} heap allocations");
}
