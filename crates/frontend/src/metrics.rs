//! Frontend performance metrics.
//!
//! The two headline numbers of the paper's evaluation:
//!
//! * **uop miss rate** (Figures 9, 10): the percentage of uops brought from
//!   the instruction cache, i.e. delivered while in build mode, and
//! * **uop bandwidth** (Figure 8): uops supplied from the caching structure
//!   per delivery-mode cycle ("bandwidth is defined only for hits").

use std::fmt;
use std::ops::AddAssign;
use xbc_obs::{CycleKind, D2bCause, Event, MispredictKind, UopSource};

/// Counters accumulated while a frontend runs over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendMetrics {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Cycles spent in build mode (fetching from the IC and decoding).
    pub build_cycles: u64,
    /// Cycles spent in delivery mode (supplying uops from the structure).
    pub delivery_cycles: u64,
    /// Stall cycles (misprediction resteer, IC misses).
    pub stall_cycles: u64,
    /// Uops delivered from the caching structure (delivery mode).
    pub structure_uops: u64,
    /// Uops delivered from the IC/decode path (build mode).
    pub ic_uops: u64,
    /// Conditional-branch mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect-target / return mispredictions.
    pub target_mispredicts: u64,
    /// Transitions from delivery mode to build mode.
    pub delivery_to_build: u64,
    /// Transitions from build mode to delivery mode.
    pub build_to_delivery: u64,
    /// Structure lookups that missed (stale pointer, eviction, cold).
    pub structure_misses: u64,
    /// Uop-slots of fetch lost to XBC bank conflicts (0 for other frontends).
    pub bank_conflict_uops: u64,
    /// Set searches performed (XBC only).
    pub set_searches: u64,
    /// Set searches that recovered the XB (XBC only).
    pub set_search_hits: u64,
    /// Branch promotions performed (XBC only).
    pub promotions: u64,
    /// De-promotions performed (XBC only).
    pub depromotions: u64,
    /// Delivery→build switches caused by XBTB misses (XBC only).
    pub d2b_xbtb_miss: u64,
    /// Delivery→build switches caused by a missing successor pointer.
    pub d2b_no_pointer: u64,
    /// Delivery→build switches caused by a stale successor pointer.
    pub d2b_stale_pointer: u64,
    /// Delivery→build switches caused by array misses (evicted XBs).
    pub d2b_array_miss: u64,
    /// Delivery→build switches caused by return mispredictions.
    pub d2b_return: u64,
    /// Delivery→build switches caused by indirect-target mispredictions.
    pub d2b_indirect: u64,
    /// Delivery→build switches caused by a misfetch: the fetched
    /// (merged) XB diverged from the committed path (XBC only).
    pub d2b_misfetch: u64,
    /// Delivery→build switches caused by a plain structure miss
    /// (uop cache / TC / BBTC lookup failure).
    pub d2b_structure_miss: u64,
}

impl FrontendMetrics {
    /// Total uops delivered.
    pub fn total_uops(&self) -> u64 {
        self.structure_uops + self.ic_uops
    }

    /// Fraction of uops brought from the IC (the paper's *uop miss rate*,
    /// Figures 9 & 10). 0.0 when nothing was delivered.
    pub fn uop_miss_rate(&self) -> f64 {
        let total = self.total_uops();
        if total == 0 {
            0.0
        } else {
            self.ic_uops as f64 / total as f64
        }
    }

    /// Uops supplied by the structure per delivery cycle (the paper's
    /// *bandwidth*, Figure 8). 0.0 when the structure never delivered.
    pub fn delivery_bandwidth(&self) -> f64 {
        if self.delivery_cycles == 0 {
            0.0
        } else {
            self.structure_uops as f64 / self.delivery_cycles as f64
        }
    }

    /// Overall uops per cycle including build mode and stalls.
    pub fn overall_uops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_uops() as f64 / self.cycles as f64
        }
    }

    /// Mispredictions (direction + target) per 1000 uops.
    pub fn mispredicts_per_kuop(&self) -> f64 {
        let total = self.total_uops();
        if total == 0 {
            0.0
        } else {
            (self.cond_mispredicts + self.target_mispredicts) as f64 * 1000.0 / total as f64
        }
    }

    /// The §1 phase decomposition of execution time, following the
    /// Mich99 framing the paper opens with: *steady state* (the
    /// structure streams uops — delivery cycles), *transition* (ramping
    /// back up through the IC path — build cycles), and *stall*
    /// (misprediction resteers and IC misses). The paper's rule of thumb
    /// for a full CPU is roughly 50/30/20; a stand-alone frontend model
    /// shifts weight toward whatever its structure cannot cover.
    ///
    /// Returns `(steady, transition, stall)` as fractions of total cycles.
    pub fn phase_breakdown(&self) -> (f64, f64, f64) {
        if self.cycles == 0 {
            return (0.0, 0.0, 0.0);
        }
        let c = self.cycles as f64;
        (
            self.delivery_cycles as f64 / c,
            self.build_cycles as f64 / c,
            self.stall_cycles as f64 / c,
        )
    }

    /// Set-search success rate (XBC only; 0.0 when unused).
    pub fn set_search_hit_rate(&self) -> f64 {
        if self.set_searches == 0 {
            0.0
        } else {
            self.set_search_hits as f64 / self.set_searches as f64
        }
    }

    /// Sum of the per-cause delivery→build counters.
    ///
    /// Every switch records exactly one cause (enforced structurally by
    /// [`FrontendMetrics::apply_event`]), so this always equals
    /// [`FrontendMetrics::delivery_to_build`] — the d2b-sum invariant.
    pub fn d2b_cause_sum(&self) -> u64 {
        self.d2b_xbtb_miss
            + self.d2b_no_pointer
            + self.d2b_stale_pointer
            + self.d2b_array_miss
            + self.d2b_return
            + self.d2b_indirect
            + self.d2b_misfetch
            + self.d2b_structure_miss
    }

    /// Applies `n` cycle events of the same kind at once — arithmetically
    /// identical to `n` calls of `apply_event(&Event::Cycle(kind))`.
    /// `Probe::emit_cycles` uses this so bulk stall retirement does not
    /// loop over the counters.
    pub fn apply_cycles(&mut self, kind: CycleKind, n: u64) {
        self.cycles += n;
        match kind {
            CycleKind::Build => self.build_cycles += n,
            CycleKind::Delivery => self.delivery_cycles += n,
            CycleKind::Stall => self.stall_cycles += n,
        }
    }

    /// Applies one trace event to the counters.
    ///
    /// This is the *only* way frontends bump their metrics on the step
    /// path (via `Probe::emit`), and the only folding rule the
    /// `Reconciler` uses — so the event stream and the aggregate
    /// counters cannot disagree: they are the same arithmetic.
    /// Observability-only events (`Lookup`, `Fill`, `Eviction`,
    /// `Occupancy`) are no-ops here.
    pub fn apply_event(&mut self, e: &Event) {
        match e {
            Event::Cycle(kind) => {
                self.cycles += 1;
                match kind {
                    CycleKind::Build => self.build_cycles += 1,
                    CycleKind::Delivery => self.delivery_cycles += 1,
                    CycleKind::Stall => self.stall_cycles += 1,
                }
            }
            Event::Uops { src, n } => match src {
                UopSource::Structure => self.structure_uops += u64::from(*n),
                UopSource::Ic => self.ic_uops += u64::from(*n),
            },
            Event::Mispredict(kind) => match kind {
                MispredictKind::Cond => self.cond_mispredicts += 1,
                MispredictKind::Target => self.target_mispredicts += 1,
            },
            Event::SwitchToBuild(cause) => {
                self.delivery_to_build += 1;
                match cause {
                    D2bCause::XbtbMiss => self.d2b_xbtb_miss += 1,
                    D2bCause::NoPointer => self.d2b_no_pointer += 1,
                    D2bCause::StalePointer => self.d2b_stale_pointer += 1,
                    D2bCause::ArrayMiss => self.d2b_array_miss += 1,
                    D2bCause::Return => self.d2b_return += 1,
                    D2bCause::Indirect => self.d2b_indirect += 1,
                    D2bCause::Misfetch => self.d2b_misfetch += 1,
                    D2bCause::StructureMiss => self.d2b_structure_miss += 1,
                }
            }
            Event::SwitchToDelivery => self.build_to_delivery += 1,
            Event::StructureMiss => self.structure_misses += 1,
            Event::BankConflict { deferred } => self.bank_conflict_uops += u64::from(*deferred),
            Event::SetSearch { hit } => {
                self.set_searches += 1;
                if *hit {
                    self.set_search_hits += 1;
                }
            }
            Event::Promotion => self.promotions += 1,
            Event::Depromotion => self.depromotions += 1,
            Event::Lookup { .. }
            | Event::Fill { .. }
            | Event::Eviction { .. }
            | Event::Occupancy { .. } => {}
        }
    }
}

impl AddAssign for FrontendMetrics {
    fn add_assign(&mut self, o: Self) {
        self.cycles += o.cycles;
        self.build_cycles += o.build_cycles;
        self.delivery_cycles += o.delivery_cycles;
        self.stall_cycles += o.stall_cycles;
        self.structure_uops += o.structure_uops;
        self.ic_uops += o.ic_uops;
        self.cond_mispredicts += o.cond_mispredicts;
        self.target_mispredicts += o.target_mispredicts;
        self.delivery_to_build += o.delivery_to_build;
        self.build_to_delivery += o.build_to_delivery;
        self.structure_misses += o.structure_misses;
        self.bank_conflict_uops += o.bank_conflict_uops;
        self.set_searches += o.set_searches;
        self.set_search_hits += o.set_search_hits;
        self.promotions += o.promotions;
        self.depromotions += o.depromotions;
        self.d2b_xbtb_miss += o.d2b_xbtb_miss;
        self.d2b_no_pointer += o.d2b_no_pointer;
        self.d2b_stale_pointer += o.d2b_stale_pointer;
        self.d2b_array_miss += o.d2b_array_miss;
        self.d2b_return += o.d2b_return;
        self.d2b_indirect += o.d2b_indirect;
        self.d2b_misfetch += o.d2b_misfetch;
        self.d2b_structure_miss += o.d2b_structure_miss;
    }
}

impl fmt::Display for FrontendMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} (build={} delivery={} stall={})",
            self.cycles, self.build_cycles, self.delivery_cycles, self.stall_cycles
        )?;
        writeln!(
            f,
            "uops: structure={} ic={} miss_rate={:.2}% bandwidth={:.2} uops/cyc",
            self.structure_uops,
            self.ic_uops,
            100.0 * self.uop_miss_rate(),
            self.delivery_bandwidth()
        )?;
        write!(
            f,
            "mispredicts: cond={} target={} switches: d->b={} b->d={}",
            self.cond_mispredicts,
            self.target_mispredicts,
            self.delivery_to_build,
            self.build_to_delivery
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_and_bandwidth() {
        let m = FrontendMetrics {
            structure_uops: 900,
            ic_uops: 100,
            delivery_cycles: 150,
            cycles: 400,
            ..Default::default()
        };
        assert!((m.uop_miss_rate() - 0.1).abs() < 1e-12);
        assert!((m.delivery_bandwidth() - 6.0).abs() < 1e-12);
        assert!((m.overall_uops_per_cycle() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_safe() {
        let m = FrontendMetrics::default();
        assert_eq!(m.uop_miss_rate(), 0.0);
        assert_eq!(m.delivery_bandwidth(), 0.0);
        assert_eq!(m.overall_uops_per_cycle(), 0.0);
        assert_eq!(m.mispredicts_per_kuop(), 0.0);
        assert_eq!(m.set_search_hit_rate(), 0.0);
    }

    #[test]
    fn phase_breakdown_partitions() {
        let m = FrontendMetrics {
            cycles: 10,
            delivery_cycles: 5,
            build_cycles: 3,
            stall_cycles: 2,
            ..Default::default()
        };
        let (s, t, st) = m.phase_breakdown();
        assert!((s - 0.5).abs() < 1e-12);
        assert!((t - 0.3).abs() < 1e-12);
        assert!((st - 0.2).abs() < 1e-12);
        assert_eq!(FrontendMetrics::default().phase_breakdown(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = FrontendMetrics { cycles: 10, ic_uops: 5, ..Default::default() };
        a += FrontendMetrics { cycles: 7, structure_uops: 3, ..Default::default() };
        assert_eq!(a.cycles, 17);
        assert_eq!(a.total_uops(), 8);
    }

    #[test]
    fn apply_event_mirrors_counters() {
        let mut m = FrontendMetrics::default();
        m.apply_event(&Event::Cycle(CycleKind::Delivery));
        m.apply_event(&Event::Uops { src: UopSource::Structure, n: 6 });
        m.apply_event(&Event::Mispredict(MispredictKind::Target));
        m.apply_event(&Event::SwitchToBuild(D2bCause::StalePointer));
        m.apply_event(&Event::SetSearch { hit: true });
        m.apply_event(&Event::Lookup { what: xbc_obs::LookupKind::Xbtb, hit: false });
        assert_eq!(m.cycles, 1);
        assert_eq!(m.delivery_cycles, 1);
        assert_eq!(m.structure_uops, 6);
        assert_eq!(m.target_mispredicts, 1);
        assert_eq!(m.delivery_to_build, 1);
        assert_eq!(m.d2b_stale_pointer, 1);
        assert_eq!(m.set_searches, 1);
        assert_eq!(m.set_search_hits, 1);
        assert_eq!(m.d2b_cause_sum(), m.delivery_to_build);
    }

    #[test]
    fn every_d2b_cause_feeds_the_sum() {
        let mut m = FrontendMetrics::default();
        let causes = [
            D2bCause::XbtbMiss,
            D2bCause::NoPointer,
            D2bCause::StalePointer,
            D2bCause::ArrayMiss,
            D2bCause::Return,
            D2bCause::Indirect,
            D2bCause::Misfetch,
            D2bCause::StructureMiss,
        ];
        for c in causes {
            m.apply_event(&Event::SwitchToBuild(c));
        }
        assert_eq!(m.delivery_to_build, causes.len() as u64);
        assert_eq!(m.d2b_cause_sum(), m.delivery_to_build);
    }

    #[test]
    fn display_mentions_bandwidth() {
        let m = FrontendMetrics { structure_uops: 8, delivery_cycles: 2, ..Default::default() };
        assert!(format!("{m}").contains("bandwidth=4.00"));
    }
}
