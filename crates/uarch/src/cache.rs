//! Generic set-associative cache with true-LRU replacement.
//!
//! The instruction cache and the trace-cache baseline are thin wrappers
//! around [`SetAssoc`]. The XBC data array needs a more exotic
//! bank × way organization and implements its own storage on top of the
//! same LRU discipline.

use std::fmt;

/// Statistics kept by a [`SetAssoc`] cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that found the tag.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of valid lines evicted by insertions.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} hit_rate={:.4}",
            self.hits,
            self.misses,
            self.evictions,
            self.hit_rate()
        )
    }
}

/// One valid line: a tag plus client payload.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Line<T> {
    tag: u64,
    stamp: u64,
    data: T,
}

/// A set-associative cache mapping `(set, tag)` to a payload `T`, with
/// true-LRU replacement inside each set.
///
/// The caller owns the index/tag derivation (different structures hash IPs
/// differently), so the API works on raw `set`/`tag` integers.
///
/// # Examples
///
/// ```
/// use xbc_uarch::SetAssoc;
///
/// let mut c: SetAssoc<&str> = SetAssoc::new(4, 2);
/// assert!(c.insert(0, 10, "a").is_none());
/// assert!(c.insert(0, 11, "b").is_none());
/// // Third insert in a 2-way set evicts the LRU line (tag 10).
/// let victim = c.insert(0, 12, "c").unwrap();
/// assert_eq!(victim, (10, "a"));
/// assert!(c.get(0, 10).is_none());
/// assert_eq!(c.get(0, 12), Some(&"c"));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssoc<T> {
    sets: usize,
    ways: usize,
    lines: Vec<Option<Line<T>>>,
    stamp: u64,
    stats: CacheStats,
}

impl<T> SetAssoc<T> {
    /// Creates an empty cache of `sets × ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "cache needs at least one set");
        assert!(ways > 0, "cache needs at least one way");
        let mut lines = Vec::with_capacity(sets * ways);
        lines.resize_with(sets * ways, || None);
        SetAssoc { sets, ways, lines, stamp: 0, stats: CacheStats::default() }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents); used when discarding warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn base(&self, set: usize) -> usize {
        debug_assert!(set < self.sets, "set {set} out of range {}", self.sets);
        set * self.ways
    }

    fn bump(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Looks up `(set, tag)`, updating LRU and hit/miss statistics.
    pub fn get(&mut self, set: usize, tag: u64) -> Option<&T> {
        let base = self.base(set);
        let stamp = self.bump();
        for i in base..base + self.ways {
            if let Some(line) = &mut self.lines[i] {
                if line.tag == tag {
                    line.stamp = stamp;
                    self.stats.hits += 1;
                    return self.lines[i].as_ref().map(|l| &l.data);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Mutable lookup; updates LRU and statistics like [`SetAssoc::get`].
    pub fn get_mut(&mut self, set: usize, tag: u64) -> Option<&mut T> {
        let base = self.base(set);
        let stamp = self.bump();
        for i in base..base + self.ways {
            if let Some(line) = &mut self.lines[i] {
                if line.tag == tag {
                    line.stamp = stamp;
                    self.stats.hits += 1;
                    return self.lines[i].as_mut().map(|l| &mut l.data);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Looks up `(set, tag)` like [`SetAssoc::get`] — identical LRU and
    /// hit/miss bookkeeping — but returns the line's *index* instead of a
    /// borrow, so callers can hold the handle across later `&mut self`
    /// calls and read the payload with [`SetAssoc::data_at`] without
    /// cloning it.
    pub fn get_index(&mut self, set: usize, tag: u64) -> Option<usize> {
        let base = self.base(set);
        let stamp = self.bump();
        for i in base..base + self.ways {
            if let Some(line) = &mut self.lines[i] {
                if line.tag == tag {
                    line.stamp = stamp;
                    self.stats.hits += 1;
                    return Some(i);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Borrows the payload at a line index returned by
    /// [`SetAssoc::get_index`]. No LRU or statistics effects.
    ///
    /// # Panics
    ///
    /// Panics if the index does not refer to a valid line (stale handles
    /// are a caller bug: an index is only good until the next mutation).
    pub fn data_at(&self, index: usize) -> &T {
        self.lines[index].as_ref().map(|l| &l.data).expect("stale line index")
    }

    /// Checks presence without touching LRU or statistics.
    pub fn probe(&self, set: usize, tag: u64) -> Option<&T> {
        let base = self.base(set);
        self.lines[base..base + self.ways].iter().flatten().find(|l| l.tag == tag).map(|l| &l.data)
    }

    /// Inserts `(set, tag) -> data`, replacing an existing line with the same
    /// tag or evicting the LRU line of the set. Returns the evicted
    /// `(tag, data)` if a *different* valid line was displaced.
    pub fn insert(&mut self, set: usize, tag: u64, data: T) -> Option<(u64, T)> {
        let base = self.base(set);
        let stamp = self.bump();
        // Same-tag replacement first.
        for i in base..base + self.ways {
            if matches!(&self.lines[i], Some(l) if l.tag == tag) {
                self.lines[i] = Some(Line { tag, stamp, data });
                return None;
            }
        }
        // Free way next.
        for i in base..base + self.ways {
            if self.lines[i].is_none() {
                self.lines[i] = Some(Line { tag, stamp, data });
                return None;
            }
        }
        // Evict LRU.
        let victim = (base..base + self.ways)
            .min_by_key(|&i| self.lines[i].as_ref().map(|l| l.stamp).unwrap_or(0))
            .expect("ways > 0");
        self.stats.evictions += 1;
        let old = self.lines[victim].take().expect("all ways valid here");
        self.lines[victim] = Some(Line { tag, stamp, data });
        Some((old.tag, old.data))
    }

    /// Removes `(set, tag)` if present, returning its payload.
    pub fn invalidate(&mut self, set: usize, tag: u64) -> Option<T> {
        let base = self.base(set);
        for i in base..base + self.ways {
            if matches!(&self.lines[i], Some(l) if l.tag == tag) {
                return self.lines[i].take().map(|l| l.data);
            }
        }
        None
    }

    /// Iterates over the valid `(tag, data)` pairs of one set, in way order.
    pub fn set_entries(&self, set: usize) -> impl Iterator<Item = (u64, &T)> {
        let base = self.base(set);
        self.lines[base..base + self.ways].iter().flatten().map(|l| (l.tag, &l.data))
    }

    /// Number of valid lines across the whole cache.
    pub fn len(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    /// True if no line is valid.
    pub fn is_empty(&self) -> bool {
        self.lines.iter().all(|l| l.is_none())
    }

    /// Drops every line (statistics are kept).
    pub fn clear(&mut self) {
        for l in &mut self.lines {
            *l = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2);
        c.insert(0, 1, 100);
        c.insert(0, 2, 200);
        // Touch tag 1, making tag 2 the LRU.
        assert_eq!(c.get(0, 1), Some(&100));
        let evicted = c.insert(0, 3, 300).unwrap();
        assert_eq!(evicted, (2, 200));
        assert!(c.probe(0, 1).is_some());
        assert!(c.probe(0, 3).is_some());
    }

    #[test]
    fn same_tag_insert_replaces_in_place() {
        let mut c: SetAssoc<u32> = SetAssoc::new(2, 2);
        c.insert(1, 9, 1);
        assert!(c.insert(1, 9, 2).is_none());
        assert_eq!(c.probe(1, 9), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn probe_does_not_disturb_lru_or_stats() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2);
        c.insert(0, 1, 1);
        c.insert(0, 2, 2);
        let before = c.stats();
        let _ = c.probe(0, 1); // no LRU update: tag 1 remains LRU
        assert_eq!(c.stats(), before);
        let evicted = c.insert(0, 3, 3).unwrap();
        assert_eq!(evicted.0, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 1);
        assert!(c.get(0, 5).is_none());
        c.insert(0, 5, 50);
        assert!(c.get(0, 5).is_some());
        c.insert(0, 6, 60); // evicts 5
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2);
        c.insert(0, 1, 10);
        assert_eq!(c.invalidate(0, 1), Some(10));
        assert_eq!(c.invalidate(0, 1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn get_mut_allows_update() {
        let mut c: SetAssoc<Vec<u8>> = SetAssoc::new(1, 1);
        c.insert(0, 1, vec![1]);
        c.get_mut(0, 1).unwrap().push(2);
        assert_eq!(c.probe(0, 1), Some(&vec![1, 2]));
    }

    #[test]
    fn set_entries_lists_only_that_set() {
        let mut c: SetAssoc<u32> = SetAssoc::new(2, 2);
        c.insert(0, 1, 10);
        c.insert(1, 2, 20);
        let set0: Vec<_> = c.set_entries(0).collect();
        assert_eq!(set0, vec![(1, &10)]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut c: SetAssoc<u32> = SetAssoc::new(2, 2);
        c.insert(0, 1, 10);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.sets(), 2);
        assert_eq!(c.ways(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = SetAssoc::<u8>::new(4, 0);
    }

    /// Differential test against a trivially-correct reference model: a
    /// map plus explicit recency ordering.
    #[test]
    fn matches_reference_lru_model() {
        use std::collections::HashMap;

        struct RefModel {
            ways: usize,
            // per set: (tag -> value), recency list most-recent-last
            sets: Vec<(HashMap<u64, u32>, Vec<u64>)>,
        }
        impl RefModel {
            fn touch(recency: &mut Vec<u64>, tag: u64) {
                recency.retain(|&t| t != tag);
                recency.push(tag);
            }
            fn get(&mut self, set: usize, tag: u64) -> Option<u32> {
                let (map, recency) = &mut self.sets[set];
                let hit = map.get(&tag).copied();
                if hit.is_some() {
                    Self::touch(recency, tag);
                }
                hit
            }
            fn insert(&mut self, set: usize, tag: u64, v: u32) {
                let ways = self.ways;
                let (map, recency) = &mut self.sets[set];
                if let std::collections::hash_map::Entry::Occupied(mut e) = map.entry(tag) {
                    e.insert(v);
                    Self::touch(recency, tag);
                    return;
                }
                if map.len() == ways {
                    let victim = recency.remove(0);
                    map.remove(&victim);
                }
                map.insert(tag, v);
                recency.push(tag);
            }
        }

        // A fixed pseudo-random op sequence (deterministic; no external
        // RNG needed).
        let mut dut: SetAssoc<u32> = SetAssoc::new(4, 2);
        let mut reference =
            RefModel { ways: 2, sets: (0..4).map(|_| (HashMap::new(), Vec::new())).collect() };
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for i in 0..5_000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let set = (x >> 33) as usize % 4;
            let tag = (x >> 40) % 6;
            if x.is_multiple_of(3) {
                dut.insert(set, tag, i);
                reference.insert(set, tag, i);
            } else {
                assert_eq!(
                    dut.get(set, tag).copied(),
                    reference.get(set, tag),
                    "divergence at op {i} (set {set}, tag {tag})"
                );
            }
        }
    }
}
