//! # xbc — the eXtended Block Cache (HPCA 2000)
//!
//! A full implementation of the instruction-supply mechanism from
//! *"eXtended Block Cache"* (Jourdan, Rappoport, Almog, Erez, Yoaz,
//! Ronen — HPCA 2000):
//!
//! * [`XbcArray`] — the banked data/tag array: 4 banks × 2 ways × 4-uop
//!   lines per set, order fields, reverse-order uop storage (§3.2, §3.4),
//!   bank-conflict-aware fetch, LRU with head-line preference, smart and
//!   dynamic placement (§3.10), and set search (§3.9);
//! * [`Xbtb`] — the pointer table navigating the multiple-entry structure
//!   (§3.5): taken/not-taken successors, call/return bookkeeping, 7-bit
//!   bias counters driving branch promotion (§3.8);
//! * [`Xfu`] / [`install`] — the fill unit and the redundancy-free build
//!   algorithm (contained / extended / complex XBs, §3.3);
//! * [`align`]/[`reorder`] — the two-mux-layer reorder & align network
//!   (§3.7, Figure 7), verified against the analytical window reads;
//! * [`XbcFrontend`] — the full frontend (Figure 6): delivery mode fetching
//!   up to two XBs per cycle through the priority encoder with promoted
//!   branches chaining for free, falling back to the shared IC build
//!   pipeline on XBTB misses and mis-fetches.
//!
//! # Example
//!
//! ```
//! use xbc::{XbcConfig, XbcFrontend};
//! use xbc_frontend::Frontend;
//! use xbc_workload::standard_traces;
//!
//! let trace = standard_traces()[0].capture(10_000);
//! let mut fe = XbcFrontend::new(XbcConfig::default());
//! let metrics = fe.run(&trace);
//! println!("XBC miss rate {:.1}%", 100.0 * metrics.uop_miss_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod align;
mod array;
mod config;
mod frontend;
mod inline_vec;
mod invariants;
mod ptr;
mod xbtb;
mod xfu;

pub use align::{align, fetch_through_network, reorder, BankOutput};
pub use array::{ArrayStats, Assembly, Population, XbFetch, XbcArray, MAX_BANKS};
pub use config::{PromotionMode, XbcConfig};
pub use frontend::XbcFrontend;
pub use inline_vec::InlineVec;
pub use invariants::XbcInvariants;
pub use ptr::{BankMask, XbPtr};
pub use xbtb::{MergedXb, XbEndKind, Xbtb, XbtbEntry, XbtbStats};
pub use xfu::{install, install_with, BuiltXb, InstallKind, InstallScratch, Xfu};
