//! Proof that streamed replay holds peak host memory at O(window), not
//! O(trace) (DESIGN.md §13).
//!
//! A byte-tracking `#[global_allocator]` wraps the system allocator and
//! maintains a live-bytes counter plus a high-water mark. The test
//! captures the same hot loop at two lengths (4× apart), serializes
//! each to XBT1 bytes, drops the resident copy, and replays the
//! encoding through `run_streamed`. The peak live-byte delta must (a)
//! not grow with trace length and (b) stay far below the resident
//! footprint the streaming path exists to avoid.
//!
//! Lives in `tests/` (its own crate) because the lib crates forbid
//! `unsafe` and a `GlobalAlloc` impl requires it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering};

use xbc::{XbcConfig, XbcFrontend};
use xbc_frontend::{Frontend, DEFAULT_STREAM_WINDOW};
use xbc_isa::{Addr, BranchKind, Inst};
use xbc_workload::{CondBehavior, DynInst, ProgramBuilder, Trace, TraceStream};

/// Tracks live heap bytes and the high-water mark. `dealloc` of memory
/// allocated before a `reset_peak` can push LIVE below the later
/// baseline; all measurements here are deltas against a baseline taken
/// immediately before the measured region, which sidesteps that.
struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn bump(n: u64) {
    let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                bump((new_size - layout.size()) as u64);
            } else {
                LIVE.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
            }
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// The same tight always-taken loop the allocation-free delivery test
/// uses: captures fast at any length and keeps the XBC in delivery
/// mode, so replay cost is dominated by the oracle window itself.
fn hot_loop(n_insts: usize) -> Trace {
    let mut b = ProgramBuilder::new();
    for i in 0..6u64 {
        b.push(Inst::plain(Addr::new(0x100 + i), 1, 2));
    }
    b.push_cond(
        Inst::new(Addr::new(0x106), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
        CondBehavior::Bernoulli { p_taken: 1.0 },
    );
    b.push(Inst::new(Addr::new(0x108), 1, 1, BranchKind::Return, None));
    let p = b.build(Addr::new(0x100), 1);
    Trace::capture("hot-loop", &p, 0, n_insts)
}

/// Serializes a hot loop of `n_insts` and returns the XBT1 bytes. The
/// resident `Trace` is dropped before returning, so the replay below
/// starts from encoded bytes only — exactly the daemon's streaming
/// path, minus the file descriptor.
fn encoded_hot_loop(n_insts: usize) -> Vec<u8> {
    let trace = hot_loop(n_insts);
    let mut buf = Vec::new();
    trace.save(&mut buf).unwrap();
    buf
}

/// Replays `encoded` through a fresh small XBC and returns the peak
/// live-byte delta observed during the replay (stream construction
/// included — the decode buffers are part of the cost being bounded).
fn streamed_peak(encoded: &[u8]) -> u64 {
    let mut fe = XbcFrontend::new(XbcConfig { total_uops: 4096, ..Default::default() });
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let mut stream = TraceStream::new(encoded).unwrap();
    let m = fe.run_streamed(&mut stream);
    assert!(m.total_uops() > 0);
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

#[test]
fn streamed_replay_memory_is_o_window_not_o_trace() {
    let short_insts = 200_000;
    let long_insts = 4 * short_insts;
    let short = encoded_hot_loop(short_insts);
    let long = encoded_hot_loop(long_insts);

    let peak_short = streamed_peak(&short);
    let peak_long = streamed_peak(&long);

    // (a) Peak does not scale with trace length. A resident replay of
    // the 4× trace would add ~3 × short_insts × sizeof(DynInst) bytes
    // over the short one; the streamed replay must add none of that.
    // Allow generous slack for allocator rounding and warm-path noise.
    let resident_growth = (long_insts - short_insts) * size_of::<DynInst>();
    let growth = peak_long.saturating_sub(peak_short);
    assert!(
        growth < resident_growth as u64 / 8,
        "peak grew by {growth} bytes between {short_insts} and {long_insts} insts \
         (resident replay would grow ~{resident_growth}) — window is leaking"
    );

    // (b) Peak stays in the neighbourhood of the window, far below the
    // resident footprint. The bound covers the oracle's window buffer,
    // the XBT1 decode buffers, and the (small, warm) frontend state.
    let window_bytes = DEFAULT_STREAM_WINDOW * size_of::<DynInst>();
    let resident_bytes = long_insts * size_of::<DynInst>();
    let ceiling = (4 * window_bytes) as u64 + 4 * 1024 * 1024;
    assert!(
        peak_long < ceiling,
        "streamed peak {peak_long} bytes exceeds the O(window) ceiling {ceiling} \
         (window buffer is {window_bytes} bytes)"
    );
    assert!(
        (peak_long as usize) < resident_bytes / 4,
        "streamed peak {peak_long} is not meaningfully below the resident \
         footprint {resident_bytes}"
    );
}
