//! Fault injection for the sweep daemon — compiled only under the
//! `check` feature, so release builds carry no hooks.
//!
//! The daemon's failure surface is concurrency under partial failure:
//! a client vanishing mid-stream, a worker dying inside a cell, the
//! store's advisory lock never arriving. None of those occur naturally
//! in a test run, so [`FaultInjector`] gives the fault campaign
//! (`tests/serve_faults.rs`) deterministic triggers:
//!
//! * [`kill_next_cells`](FaultInjector::kill_next_cells) — the next N
//!   dispatched cells fail as if the worker died inside them; the
//!   scheduler retries each cell once, then fails the owning request.
//! * [`delay_rows`](FaultInjector::delay_rows) — sleep before each row
//!   write, widening race windows for disconnect tests.
//! * [`drop_connection_after`](FaultInjector::drop_connection_after) /
//!   [`truncate_after`](FaultInjector::truncate_after) — sever or
//!   half-write the stream after N rows, modeling a daemon-side crash
//!   from the client's point of view.
//!
//! Each daemon owns its injector (`ServeConfig.faults`), so parallel
//! tests cannot trip each other; store lock-timeout injection lives
//! process-wide in `xbc_store::test_faults` because the lock path has
//! no per-daemon handle.

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};

/// What to do to the connection before writing the next row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RowFault {
    /// Write the row normally.
    None,
    /// Sleep this many milliseconds, then write the row.
    Delay(u64),
    /// Sever the connection without writing the row.
    Drop,
    /// Write half the row's bytes, then sever.
    Truncate,
}

/// Deterministic fault triggers for one daemon instance. All knobs are
/// plain atomics so tests flip them while the daemon runs.
#[derive(Debug)]
pub struct FaultInjector {
    /// Pending worker-kill count; each dispatched cell decrements one.
    kill_cells: AtomicU32,
    /// Milliseconds to sleep before each row write (0 = off).
    delay_row_ms: AtomicU64,
    /// Sever the stream after this many rows (-1 = off).
    drop_after_rows: AtomicI64,
    /// Half-write then sever after this many rows (-1 = off).
    truncate_after_rows: AtomicI64,
    /// Rows written across the daemon since the last [`reset`].
    ///
    /// [`reset`]: FaultInjector::reset
    rows_written: AtomicU64,
}

impl Default for FaultInjector {
    fn default() -> FaultInjector {
        FaultInjector::new()
    }
}

impl FaultInjector {
    /// A quiescent injector: every fault off.
    pub fn new() -> FaultInjector {
        FaultInjector {
            kill_cells: AtomicU32::new(0),
            delay_row_ms: AtomicU64::new(0),
            drop_after_rows: AtomicI64::new(-1),
            truncate_after_rows: AtomicI64::new(-1),
            rows_written: AtomicU64::new(0),
        }
    }

    /// Arms the next `n` dispatched cells to fail as if their worker
    /// died mid-simulation.
    pub fn kill_next_cells(&self, n: u32) {
        self.kill_cells.store(n, Ordering::SeqCst);
    }

    /// Sleeps `ms` before every row write (0 disables).
    pub fn delay_rows(&self, ms: u64) {
        self.delay_row_ms.store(ms, Ordering::SeqCst);
    }

    /// Severs the client connection after `rows` rows have streamed.
    pub fn drop_connection_after(&self, rows: u64) {
        self.drop_after_rows.store(rows as i64, Ordering::SeqCst);
    }

    /// Writes half of row `rows + 1`'s bytes, then severs.
    pub fn truncate_after(&self, rows: u64) {
        self.truncate_after_rows.store(rows as i64, Ordering::SeqCst);
    }

    /// Disarms every fault and zeroes the row counter.
    pub fn reset(&self) {
        self.kill_cells.store(0, Ordering::SeqCst);
        self.delay_row_ms.store(0, Ordering::SeqCst);
        self.drop_after_rows.store(-1, Ordering::SeqCst);
        self.truncate_after_rows.store(-1, Ordering::SeqCst);
        self.rows_written.store(0, Ordering::SeqCst);
    }

    /// Consumes one armed worker-kill, if any. Called by the worker at
    /// cell dispatch.
    pub(crate) fn take_worker_kill(&self) -> bool {
        self.kill_cells
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Decides the fate of the next row write and advances the row
    /// counter.
    pub(crate) fn next_row_fault(&self) -> RowFault {
        let written = self.rows_written.fetch_add(1, Ordering::SeqCst);
        let drop_after = self.drop_after_rows.load(Ordering::SeqCst);
        if drop_after >= 0 && written as i64 >= drop_after {
            return RowFault::Drop;
        }
        let truncate_after = self.truncate_after_rows.load(Ordering::SeqCst);
        if truncate_after >= 0 && written as i64 >= truncate_after {
            return RowFault::Truncate;
        }
        let delay = self.delay_row_ms.load(Ordering::SeqCst);
        if delay > 0 {
            return RowFault::Delay(delay);
        }
        RowFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kills_are_consumed_one_per_cell() {
        let faults = FaultInjector::new();
        assert!(!faults.take_worker_kill());
        faults.kill_next_cells(2);
        assert!(faults.take_worker_kill());
        assert!(faults.take_worker_kill());
        assert!(!faults.take_worker_kill(), "third dispatch survives");
    }

    #[test]
    fn row_faults_trigger_at_the_armed_count() {
        let faults = FaultInjector::new();
        assert_eq!(faults.next_row_fault(), RowFault::None);
        faults.reset();
        faults.drop_connection_after(1);
        assert_eq!(faults.next_row_fault(), RowFault::None, "row 1 streams");
        assert_eq!(faults.next_row_fault(), RowFault::Drop, "row 2 severs");
        faults.reset();
        faults.truncate_after(0);
        assert_eq!(faults.next_row_fault(), RowFault::Truncate);
        faults.reset();
        faults.delay_rows(3);
        assert_eq!(faults.next_row_fault(), RowFault::Delay(3));
        faults.reset();
        assert_eq!(faults.next_row_fault(), RowFault::None);
    }
}
