//! Two OS processes hammer one content-addressed store: concurrent
//! writes, reads, and evictions of the same entries must never corrupt
//! an entry, never wedge, and never leave a `.lock` file behind.
//!
//! The worker half re-executes this very test binary (gated by an
//! environment variable) so the contention is real cross-process
//! contention on the `EntryLock` files, not thread interleaving the
//! in-crate unit tests already cover.

use std::path::{Path, PathBuf};
use std::process::Command;

use xbc_store::Store;
use xbc_workload::standard_traces;

const WORKER_ENV: &str = "XBC_STORE_LOCK_WORKER_DIR";
const KEY: &str = "contended-result-key";
const ROUNDS: usize = 150;

/// The hammer each process runs: interleaved writes, reads, and
/// periodic evictions of one shared result key, plus one contended
/// trace capture. Readers must only ever observe complete bodies —
/// `load_result` CRC-checks, so a torn write would surface as a miss
/// plus an eviction, never as garbage.
fn worker(dir: &Path) {
    let store = Store::open(dir).unwrap();
    let spec = &standard_traces()[0];
    let trace = store.get_or_capture(spec, 1_000);
    assert_eq!(trace.insts().len(), 1_000);
    for i in 0..ROUNDS {
        store.store_result(KEY, &format!("body-{}-{i}", std::process::id()));
        if let Some(body) = store.load_result(KEY) {
            assert!(body.starts_with("body-"), "reader saw a torn body: {body:?}");
        }
        if i % 13 == 0 {
            store.evict_result(KEY, "locking-test churn");
        }
    }
}

fn leftover_locks(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    for sub in ["traces", "results"] {
        let Ok(entries) = std::fs::read_dir(dir.join(sub)) else { continue };
        for e in entries.flatten() {
            if e.path().extension().is_some_and(|x| x == "lock") {
                found.push(e.path());
            }
        }
    }
    found
}

#[test]
fn two_processes_share_one_store_safely() {
    // Child mode: run the hammer against the directory the parent chose,
    // then return (passing this test run) without spawning grandchildren.
    if let Ok(dir) = std::env::var(WORKER_ENV) {
        worker(Path::new(&dir));
        return;
    }

    let dir = std::env::temp_dir().join(format!("xbc-store-lock-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().unwrap();
    let spawn = || {
        Command::new(&exe)
            .args(["--exact", "two_processes_share_one_store_safely", "--test-threads", "1"])
            .env(WORKER_ENV, &dir)
            .spawn()
            .unwrap()
    };
    let mut kids = [spawn(), spawn()];
    for kid in &mut kids {
        let status = kid.wait().unwrap();
        assert!(status.success(), "worker process failed: {status}");
    }

    assert_eq!(leftover_locks(&dir), Vec::<PathBuf>::new(), "lock files must not outlive holders");

    // The store is still fully functional after the storm: a fresh
    // write/read round-trips, and the shared trace entry is intact.
    let store = Store::open(&dir).unwrap();
    store.store_result(KEY, "post-storm");
    assert_eq!(store.load_result(KEY).as_deref(), Some("post-storm"));
    let trace = store.get_or_capture(&standard_traces()[0], 1_000);
    assert_eq!(trace.insts().len(), 1_000);
    assert_eq!(store.stats().corrupt_entries, 0, "post-storm store must decode cleanly");

    std::fs::remove_dir_all(&dir).ok();
}
