#!/usr/bin/env bash
# CI gate for the sweep service daemon (DESIGN.md §13, §15), run over
# BOTH transports — a Unix socket and TCP loopback:
#
#   1. warm gate: a one-shot cached `xbcsim sweep` fixes the expected
#      row bytes, then two concurrent clients submit the same grid and
#      must get byte-identical rows with zero simulations and captures;
#   2. cold-dedup gate: on a FRESH cache two concurrent clients submit
#      the same cold grid; `simulated_cells` summed across their bench
#      reports must equal the number of distinct cells — single-flight
#      dedup means nothing is ever simulated twice, however the two
#      requests interleave;
#   3. graceful shutdown, and (Unix) the socket file is gone;
#   4. the dedup and fault-injection test suites run under the `check`
#      feature.
#
# Usage: scripts/ci_serve_gate.sh [INSTS] (default 20000)
set -euo pipefail
cd "$(dirname "$0")/.."
INSTS="${1:-20000}"
TRACES="spec.gcc,games.quake"
GRID=(--traces "$TRACES" --frontends tc,xbc --sizes 8192 --inst "$INSTS")
# 2 traces x 2 frontend columns (tc, xbc@8192)
DISTINCT_CELLS=4
DISTINCT_TRACES=2

cargo build --release -p xbc-serve
mkdir -p results
B=target/release
SOCK=target/ci-serve.sock
PORT=$((21000 + RANDOM % 30000))

# serve_endpoint_args / submit_endpoint_args TRANSPORT
serve_args() {
  if [ "$1" = unix ]; then echo "--socket $SOCK"; else echo "--listen 127.0.0.1:$PORT"; fi
}
submit_args() {
  if [ "$1" = unix ]; then echo "--socket $SOCK"; else echo "--connect 127.0.0.1:$PORT"; fi
}

wait_live() { # TRANSPORT
  local i
  for i in $(seq 1 100); do
    # shellcheck disable=SC2046
    "$B/xbcsim" submit $(submit_args "$1") --ping on > /dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "FAIL: daemon never answered a ping over $1" >&2
  exit 1
}

run_gate() { # TRANSPORT
  local T="$1"
  local CACHE="target/ci-serve-cache-$T"
  rm -rf "$CACHE" "$SOCK"

  # ── Warm gate: byte-identity against a one-shot sweep ──────────────
  "$B/xbcsim" sweep "${GRID[@]}" --cache "$CACHE" \
    --json "results/ci_serve_oneshot_$T.json" > /dev/null

  # shellcheck disable=SC2046
  "$B/xbcsim" serve $(serve_args "$T") --cache "$CACHE" &
  DAEMON=$!
  trap 'kill "$DAEMON" 2>/dev/null || true' EXIT
  wait_live "$T"

  for side in a b; do
    # shellcheck disable=SC2046
    "$B/xbcsim" submit $(submit_args "$T") "${GRID[@]}" \
      --json "results/ci_serve_rows_${T}_$side.json" \
      --bench-json "results/ci_serve_bench_${T}_$side.json" \
      > /dev/null 2> /dev/null &
    eval "CLIENT_${side^^}=$!"
  done
  wait "$CLIENT_A"
  wait "$CLIENT_B"

  for side in a b; do
    if ! cmp "results/ci_serve_oneshot_$T.json" "results/ci_serve_rows_${T}_$side.json"; then
      echo "FAIL($T): daemon rows (client $side) differ from one-shot sweep" >&2
      exit 1
    fi
    for want in '"simulated_cells": 0' '"captures": 0'; do
      if ! grep -q "$want" "results/ci_serve_bench_${T}_$side.json"; then
        echo "FAIL($T): warm submission (client $side) missing $want:" >&2
        cat "results/ci_serve_bench_${T}_$side.json" >&2
        exit 1
      fi
    done
  done

  # ── Cold-dedup gate: fresh cache, two racing clients ───────────────
  # shellcheck disable=SC2046
  "$B/xbcsim" submit $(submit_args "$T") --shutdown on > /dev/null
  wait "$DAEMON"
  trap - EXIT
  rm -rf "$CACHE"

  # shellcheck disable=SC2046
  "$B/xbcsim" serve $(serve_args "$T") --cache "$CACHE" &
  DAEMON=$!
  trap 'kill "$DAEMON" 2>/dev/null || true' EXIT
  wait_live "$T"

  for side in a b; do
    # shellcheck disable=SC2046
    "$B/xbcsim" submit $(submit_args "$T") "${GRID[@]}" \
      --json "results/ci_serve_cold_rows_${T}_$side.json" \
      --bench-json "results/ci_serve_cold_bench_${T}_$side.json" \
      > /dev/null 2> /dev/null &
    eval "CLIENT_${side^^}=$!"
  done
  wait "$CLIENT_A"
  wait "$CLIENT_B"

  SIMULATED=$(grep -ho '"simulated_cells": [0-9]*' \
      "results/ci_serve_cold_bench_${T}_a.json" \
      "results/ci_serve_cold_bench_${T}_b.json" \
    | awk '{s += $2} END {print s}')
  if [ "$SIMULATED" -ne "$DISTINCT_CELLS" ]; then
    echo "FAIL($T): two racing cold clients simulated $SIMULATED cells; single-flight dedup requires exactly $DISTINCT_CELLS" >&2
    cat "results/ci_serve_cold_bench_${T}_a.json" "results/ci_serve_cold_bench_${T}_b.json" >&2
    exit 1
  fi
  # Capture identity: each cold trace is captured exactly once across
  # both racing clients — the streamed-capture flight's leader counts
  # it, cache hits and joiners don't.
  CAPTURES=$(grep -ho '"captures": [0-9]*' \
      "results/ci_serve_cold_bench_${T}_a.json" \
      "results/ci_serve_cold_bench_${T}_b.json" \
    | awk '{s += $2} END {print s}')
  if [ "$CAPTURES" -ne "$DISTINCT_TRACES" ]; then
    echo "FAIL($T): two racing cold clients captured $CAPTURES traces; streamed-capture dedup requires exactly $DISTINCT_TRACES" >&2
    cat "results/ci_serve_cold_bench_${T}_a.json" "results/ci_serve_cold_bench_${T}_b.json" >&2
    exit 1
  fi
  for side in a b; do
    if ! cmp -s "results/ci_serve_oneshot_$T.json" \
                "results/ci_serve_cold_rows_${T}_$side.json"; then
      echo "note($T): cold rows (client $side) differ from the warm run in elapsed_ms only (expected on a fresh cache)"
    fi
  done

  # shellcheck disable=SC2046
  "$B/xbcsim" submit $(submit_args "$T") --shutdown on > /dev/null
  wait "$DAEMON"
  trap - EXIT
  if [ "$T" = unix ] && [ -e "$SOCK" ]; then
    echo "FAIL: daemon left its socket behind: $SOCK" >&2
    exit 1
  fi
  echo "OK($T): warm byte-identity + cold dedup ($SIMULATED/$DISTINCT_CELLS simulated once) over $T"
}

run_gate unix
run_gate tcp

# ── Dedup + fault suites (both transports inside; faults need `check`)
cargo test -q --test serve_dedup --test serve_faults

echo "OK: serve gate passed over unix + tcp ($TRACES, $INSTS insts)"
