//! The XBC fill unit — XFU (paper §3.3).
//!
//! In build mode the XFU watches the committed uop stream, groups it into
//! extended blocks (ending on conditional/indirect branches, returns,
//! calls, or the 16-uop quota), and installs each block into the array
//! with the paper's redundancy-free build algorithm:
//!
//! 1. **contained** — the new XB is a suffix of a stored one: nothing to
//!    write, just hand back a pointer into the existing lines;
//! 2. **extension** — the new XB extends a stored one at its head: the
//!    extra uops are prepended in place (reverse-order storage, §3.4);
//! 3. **complex** — same suffix, different prefix: the shared whole lines
//!    are reused, only the divergent prefix is written (§3.3 case 3).

use crate::array::XbcArray;
use crate::ptr::{BankMask, XbPtr};
use xbc_frontend::FillSink;
use xbc_isa::{decode, Uop};
use xbc_workload::DynInst;

/// A finalized extended block, straight from the committed path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuiltXb {
    insts: Vec<DynInst>,
    uop_count: usize,
}

impl BuiltXb {
    /// The committed instructions, in order.
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// The last (ending) instruction.
    pub fn end(&self) -> &DynInst {
        self.insts.last().expect("built XBs are non-empty")
    }

    /// XB identity: the ending instruction's IP.
    pub fn end_ip(&self) -> xbc_isa::Addr {
        self.end().inst.ip
    }

    /// The entry instruction's IP.
    pub fn entry_ip(&self) -> xbc_isa::Addr {
        self.insts[0].inst.ip
    }

    /// Total uops.
    pub fn uop_count(&self) -> usize {
        self.uop_count
    }

    /// Decodes the block into its uop sequence, in program order.
    pub fn uops(&self) -> Vec<Uop> {
        let mut out = Vec::with_capacity(self.uop_count);
        self.uops_into(&mut out);
        out
    }

    /// Appends the decoded uop sequence to `out` — the buffer-reusing form
    /// of [`BuiltXb::uops`].
    pub fn uops_into(&self, out: &mut Vec<Uop>) {
        for d in &self.insts {
            out.extend(decode(&d.inst));
        }
    }
}

/// Reusable buffers for [`install_with`], owned by the caller so repeated
/// installs do not re-allocate (DESIGN.md §12).
#[derive(Clone, Debug, Default)]
pub struct InstallScratch {
    uops: Vec<Uop>,
    stored: Vec<Uop>,
}

/// How [`install`] stored a built XB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstallKind {
    /// Case 1: already present (suffix of a stored XB) — an XBC hit.
    Contained,
    /// Case 2: extended a stored XB at its head.
    Extended,
    /// Case 3: complex XB — new prefix sharing a stored suffix.
    Complex,
    /// No tag match: written as a fresh XB.
    Fresh,
}

/// Installs a built XB into the array without duplicating stored uops.
/// Returns a pointer to the block's entry point plus how it was stored.
///
/// `avoid` biases fresh-line placement away from the previous XB's banks
/// (smart placement, §3.10).
pub fn install(built: &BuiltXb, array: &mut XbcArray, avoid: BankMask) -> (XbPtr, InstallKind) {
    install_with(built, array, avoid, &mut InstallScratch::default())
}

/// [`install`] with caller-owned scratch buffers: the decoded block and the
/// stored-XB readback land in `scratch` instead of fresh allocations.
pub fn install_with(
    built: &BuiltXb,
    array: &mut XbcArray,
    avoid: BankMask,
    scratch: &mut InstallScratch,
) -> (XbPtr, InstallKind) {
    scratch.uops.clear();
    built.uops_into(&mut scratch.uops);
    let uops = &scratch.uops[..];
    let len = uops.len();
    debug_assert!(len >= 1);
    let end_ip = built.end_ip();
    let (set, tag) = array.set_and_tag(end_ip);
    let line_uops = array.line_uops();

    let Some(asm) = array.assemble(set, tag, None) else {
        let mask = array.insert(end_ip, uops, 0, BankMask::EMPTY, avoid);
        return (XbPtr::new(end_ip, built.entry_ip(), mask, len as u8), InstallKind::Fresh);
    };

    scratch.stored.clear();
    array.read_uops_into(set, &asm, &mut scratch.stored);
    let stored = &scratch.stored[..];
    // Length of the common suffix between the stored XB and the new one.
    let common = stored.iter().rev().zip(uops.iter().rev()).take_while(|(a, b)| a == b).count();

    if common >= len {
        // Contained: the new XB is a suffix of the stored one.
        let needed = len.div_ceil(line_uops);
        let mut mask = BankMask::EMPTY;
        for &(bank, _) in &asm.lines[..needed] {
            mask.insert(bank as usize);
        }
        (XbPtr::new(end_ip, built.entry_ip(), mask, len as u8), InstallKind::Contained)
    } else if common == stored.len() {
        // Extension: stored XB is a suffix of the new one.
        let extra = &uops[..len - stored.len()];
        let mask = array.extend(end_ip, &asm, extra, avoid);
        (XbPtr::new(end_ip, built.entry_ip(), mask, len as u8), InstallKind::Extended)
    } else {
        // Complex: same suffix, different prefix. Share whole suffix lines;
        // rewrite from the first divergent line up (a partially-shared line
        // is duplicated — the "nearly redundancy free" caveat).
        let shared_lines = common / line_uops;
        let mut suffix_mask = BankMask::EMPTY;
        for &(bank, _) in &asm.lines[..shared_lines] {
            suffix_mask.insert(bank as usize);
        }
        let added = array.insert(end_ip, uops, shared_lines, suffix_mask, avoid);
        (
            XbPtr::new(end_ip, built.entry_ip(), suffix_mask.union(added), len as u8),
            InstallKind::Complex,
        )
    }
}

/// The fill unit: groups committed instructions into extended blocks.
#[derive(Clone, Debug)]
pub struct Xfu {
    max_uops: usize,
    cur: Vec<DynInst>,
    cur_uops: usize,
    /// Finalized blocks awaiting installation.
    pub done: Vec<BuiltXb>,
}

impl Xfu {
    /// Creates a fill unit with the given XB quota (paper: 16 uops).
    ///
    /// # Panics
    ///
    /// Panics if `max_uops` is smaller than one instruction's worst-case
    /// expansion.
    pub fn new(max_uops: usize) -> Self {
        assert!(
            max_uops >= xbc_isa::Inst::MAX_UOPS as usize,
            "quota must fit at least one instruction"
        );
        Xfu { max_uops, cur: Vec::new(), cur_uops: 0, done: Vec::new() }
    }

    fn finalize(&mut self) {
        if !self.cur.is_empty() {
            self.done
                .push(BuiltXb { insts: std::mem::take(&mut self.cur), uop_count: self.cur_uops });
            self.cur_uops = 0;
        }
    }

    /// Discards all buffered state (on mode switches / resteers into
    /// discontinuous fetch points).
    pub fn clear(&mut self) {
        self.cur.clear();
        self.cur_uops = 0;
        self.done.clear();
    }

    /// Structural audit of the build state (paper §3.3):
    ///
    /// * the running uop total matches a recount of the open block and
    ///   stays within the XB quota;
    /// * no instruction *inside* an open or finalized block ends an XB —
    ///   boundaries finalize immediately, so only a block's last
    ///   instruction may carry a boundary-ending branch;
    /// * finalized blocks are non-empty, within quota, and their recorded
    ///   uop counts match a recount.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn audit(&self) -> Result<(), String> {
        let recount: usize = self.cur.iter().map(|d| d.inst.uops as usize).sum();
        if recount != self.cur_uops {
            return Err(format!("XFU open block counts {} uops, recount {recount}", self.cur_uops));
        }
        if self.cur_uops > self.max_uops {
            return Err(format!(
                "XFU open block of {} uops exceeds quota {}",
                self.cur_uops, self.max_uops
            ));
        }
        for d in &self.cur {
            if d.inst.branch.ends_xb_boundary() {
                return Err(format!("XFU open block holds boundary-ending inst at {}", d.inst.ip));
            }
        }
        for b in &self.done {
            if b.insts.is_empty() {
                return Err("XFU finalized an empty block".to_string());
            }
            let n: usize = b.insts.iter().map(|d| d.inst.uops as usize).sum();
            if n != b.uop_count {
                return Err(format!(
                    "built XB at {} counts {} uops, recount {n}",
                    b.end_ip(),
                    b.uop_count
                ));
            }
            if b.uop_count > self.max_uops {
                return Err(format!("built XB at {} exceeds quota {}", b.end_ip(), self.max_uops));
            }
            for d in &b.insts[..b.insts.len() - 1] {
                if d.inst.branch.ends_xb_boundary() {
                    return Err(format!(
                        "built XB at {} holds interior boundary-ending inst at {}",
                        b.end_ip(),
                        d.inst.ip
                    ));
                }
            }
        }
        Ok(())
    }
}

impl FillSink for Xfu {
    fn observe(&mut self, d: &DynInst) {
        if self.cur_uops + d.inst.uops as usize > self.max_uops {
            self.finalize(); // quota split (never splits an instruction)
        }
        self.cur.push(*d);
        self.cur_uops += d.inst.uops as usize;
        if d.inst.branch.ends_xb_boundary() {
            self.finalize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XbcConfig;
    use xbc_isa::{Addr, BranchKind, Inst};

    fn dyn_inst(ip: u64, uops: u8, branch: BranchKind) -> DynInst {
        let inst = match branch {
            BranchKind::None => Inst::plain(Addr::new(ip), 1, uops),
            BranchKind::CondDirect | BranchKind::UncondDirect | BranchKind::CallDirect => {
                Inst::new(Addr::new(ip), 1, uops, branch, Some(Addr::new(0x9000)))
            }
            _ => Inst::new(Addr::new(ip), 1, uops, branch, None),
        };
        DynInst { inst, taken: false, next_ip: Addr::new(ip + 1) }
    }

    fn built(insts: Vec<DynInst>) -> BuiltXb {
        let uop_count = insts.iter().map(|d| d.inst.uops as usize).sum();
        BuiltXb { insts, uop_count }
    }

    fn array() -> XbcArray {
        XbcArray::new(&XbcConfig { total_uops: 256, ..XbcConfig::default() })
    }

    #[test]
    fn xfu_ends_on_xb_boundaries() {
        let mut x = Xfu::new(16);
        x.observe(&dyn_inst(0x10, 2, BranchKind::None));
        x.observe(&dyn_inst(0x11, 1, BranchKind::UncondDirect)); // transparent
        x.observe(&dyn_inst(0x12, 1, BranchKind::CondDirect));
        assert_eq!(x.done.len(), 1);
        assert_eq!(x.done[0].uop_count(), 4);
        assert_eq!(x.done[0].end_ip(), Addr::new(0x12));
        // Calls and returns also end XBs (the §3.5 convention).
        x.observe(&dyn_inst(0x13, 1, BranchKind::CallDirect));
        assert_eq!(x.done.len(), 2);
        x.observe(&dyn_inst(0x14, 1, BranchKind::Return));
        assert_eq!(x.done.len(), 3);
    }

    #[test]
    fn xfu_quota_split_preserves_instructions() {
        let mut x = Xfu::new(16);
        for i in 0..5 {
            x.observe(&dyn_inst(0x20 + i, 4, BranchKind::None));
        }
        assert_eq!(x.done.len(), 1);
        assert_eq!(x.done[0].uop_count(), 16);
        assert_eq!(x.cur_uops, 4, "fifth instruction starts the next XB whole");
    }

    #[test]
    fn install_fresh_then_contained() {
        let mut a = array();
        let xb = built(vec![
            dyn_inst(0x100, 4, BranchKind::None),
            dyn_inst(0x101, 4, BranchKind::None),
            dyn_inst(0x102, 1, BranchKind::CondDirect),
        ]);
        let (p1, k1) = install(&xb, &mut a, BankMask::EMPTY);
        assert_eq!(k1, InstallKind::Fresh);
        assert_eq!(p1.offset, 9);
        // A shorter suffix of the same block (entered at 0x101) is contained.
        let suffix = built(vec![
            dyn_inst(0x101, 4, BranchKind::None),
            dyn_inst(0x102, 1, BranchKind::CondDirect),
        ]);
        let (p2, k2) = install(&suffix, &mut a, BankMask::EMPTY);
        assert_eq!(k2, InstallKind::Contained);
        assert_eq!(p2.offset, 5);
        assert_eq!(p2.xb_ip, p1.xb_ip);
        // Nothing extra was stored.
        let (total, distinct) = a.redundancy();
        assert_eq!(total, distinct);
        assert_eq!(total, 9);
    }

    #[test]
    fn install_extension_grows_in_place() {
        let mut a = array();
        let short = built(vec![
            dyn_inst(0x201, 3, BranchKind::None),
            dyn_inst(0x202, 1, BranchKind::CondDirect),
        ]);
        let (p1, k1) = install(&short, &mut a, BankMask::EMPTY);
        assert_eq!(k1, InstallKind::Fresh);
        // Later the same block is entered earlier: prefix discovered.
        let long = built(vec![
            dyn_inst(0x200, 4, BranchKind::None),
            dyn_inst(0x201, 3, BranchKind::None),
            dyn_inst(0x202, 1, BranchKind::CondDirect),
        ]);
        let (p2, k2) = install(&long, &mut a, BankMask::EMPTY);
        assert_eq!(k2, InstallKind::Extended);
        assert_eq!(p2.offset, 8);
        assert_eq!(p2.xb_ip, p1.xb_ip);
        let (total, distinct) = a.redundancy();
        assert_eq!(total, distinct, "extension must not duplicate the suffix");
        assert_eq!(total, 8);
    }

    #[test]
    fn install_complex_shares_suffix() {
        let mut a = array();
        // Path A: 0x300(4) 0x301(4) 0x302(4) end 0x303(1) = 13 uops.
        let path_a = built(vec![
            dyn_inst(0x300, 4, BranchKind::None),
            dyn_inst(0x301, 4, BranchKind::None),
            dyn_inst(0x302, 4, BranchKind::None),
            dyn_inst(0x303, 1, BranchKind::CondDirect),
        ]);
        let (_, k1) = install(&path_a, &mut a, BankMask::EMPTY);
        assert_eq!(k1, InstallKind::Fresh);
        // Path B arrives via a different prefix (0x400) but shares
        // 0x301..=0x303 (9 uops => 2 whole shared lines).
        let path_b = built(vec![
            dyn_inst(0x400, 4, BranchKind::None),
            dyn_inst(0x301, 4, BranchKind::None),
            dyn_inst(0x302, 4, BranchKind::None),
            dyn_inst(0x303, 1, BranchKind::CondDirect),
        ]);
        let (p2, k2) = install(&path_b, &mut a, BankMask::EMPTY);
        assert_eq!(k2, InstallKind::Complex);
        assert_eq!(p2.offset, 13);
        // Shared: floor(9/4) = 2 lines (8 uops); duplicated: 1 uop of the
        // partially-shared line + the 4-uop prefix.
        let (total, distinct) = a.redundancy();
        assert_eq!(distinct, 13 + 4);
        assert_eq!(total - distinct, 1, "only the split-line uop duplicates");
        // Both paths remain fetchable through their masks.
        assert!(a.lookup(&p2).is_some());
    }

    #[test]
    fn install_identical_is_contained() {
        let mut a = array();
        let xb = built(vec![
            dyn_inst(0x500, 2, BranchKind::None),
            dyn_inst(0x501, 1, BranchKind::Return),
        ]);
        let (_, k1) = install(&xb, &mut a, BankMask::EMPTY);
        let (_, k2) = install(&xb, &mut a, BankMask::EMPTY);
        assert_eq!(k1, InstallKind::Fresh);
        assert_eq!(k2, InstallKind::Contained);
    }

    #[test]
    fn clear_discards_partial() {
        let mut x = Xfu::new(16);
        x.observe(&dyn_inst(0x10, 2, BranchKind::None));
        x.clear();
        x.observe(&dyn_inst(0x30, 1, BranchKind::CondDirect));
        assert_eq!(x.done.len(), 1);
        assert_eq!(x.done[0].entry_ip(), Addr::new(0x30));
    }
}
