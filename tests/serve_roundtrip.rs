//! In-process round-trip of the `xbc-serve-v1` daemon: boot `serve` on
//! a background thread, drive it with the library client, and hold it
//! to the same answers as a one-shot `Sweep` — byte-identical rows when
//! the shared store is warm, zero simulations on repeat submissions,
//! well-behaved errors, and a clean graceful shutdown.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use xbc_serve::protocol::SweepRequest;
use xbc_serve::{ping, shutdown, submit, ServeConfig};
use xbc_sim::{to_json, FrontendSpec, Sweep};
use xbc_store::Store;
use xbc_workload::standard_traces;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbc-serve-rt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_until_live(socket: &std::path::Path) {
    for _ in 0..500 {
        if ping(socket).is_ok() {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {}", socket.display());
}

#[test]
fn daemon_matches_sweep_and_never_resimulates() {
    let dir = scratch_dir("main");
    let socket = dir.join("d.sock");
    let store = Arc::new(Store::open(dir.join("cache")).unwrap());

    let traces: Vec<_> = standard_traces().into_iter().take(2).collect();
    let names: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();
    let frontends = vec![FrontendSpec::tc_default(), FrontendSpec::xbc_default()];

    // One-shot sweep populates the store and fixes the expected bytes.
    let mut oneshot =
        Sweep::new(traces.clone(), frontends.clone(), 4_000).with_store(Arc::clone(&store));
    oneshot.progress = false;
    let expected = oneshot.run();

    let config = ServeConfig {
        socket: socket.clone(),
        threads: 2,
        store: Some(Arc::clone(&store)),
        progress: false,
    };
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    wait_until_live(&socket);

    // Two concurrent clients submit the same warm grid: both must get
    // rows byte-identical to the one-shot sweep, from cache alone.
    let req = SweepRequest { traces: names.clone(), frontends: frontends.clone(), insts: 4_000 };
    let (a, b) = thread::scope(|s| {
        let ha = s.spawn(|| submit(&socket, &req));
        let hb = s.spawn(|| submit(&socket, &req));
        (ha.join().unwrap().unwrap(), hb.join().unwrap().unwrap())
    });
    for out in [&a, &b] {
        assert_eq!(to_json(&out.rows), to_json(&expected), "warm daemon rows differ from sweep");
        assert_eq!(out.bench.simulated_cells, 0, "warm submission must simulate nothing");
        assert_eq!(out.bench.captures, 0, "warm submission must capture nothing");
        assert_eq!(out.bench.cached_cells, expected.len());
        let stats = out.store.as_ref().expect("cached daemon reports a store delta");
        assert_eq!(stats.result_misses, 0, "warm probe must not miss");
    }

    // A cold grid (different budget) goes through the daemon's own
    // simulation path; a one-shot sweep over the same grid then replays
    // the daemon's cached rows byte-for-byte — the two entry points
    // share one result space.
    let cold_req =
        SweepRequest { traces: names.clone(), frontends: frontends.clone(), insts: 3_000 };
    let cold = submit(&socket, &cold_req).unwrap();
    assert_eq!(cold.rows.len(), names.len() * frontends.len());
    assert_eq!(cold.bench.simulated_cells as usize, cold.rows.len());
    let mut replay = Sweep::new(traces, frontends, 3_000).with_store(Arc::clone(&store));
    replay.progress = false;
    assert_eq!(
        to_json(&replay.run()),
        to_json(&cold.rows),
        "sweep must replay daemon-cached rows byte-identically"
    );

    // Errors keep the daemon usable: an unknown trace is refused with a
    // message, then the same socket still answers pings and sweeps.
    let bad = SweepRequest {
        traces: vec!["no-such-trace".into()],
        frontends: vec![FrontendSpec::tc_default()],
        insts: 1_000,
    };
    let err = submit(&socket, &bad).unwrap_err();
    assert!(err.contains("no-such-trace"), "error should name the offender: {err}");
    ping(&socket).unwrap();
    let again = submit(&socket, &req).unwrap();
    assert_eq!(again.bench.simulated_cells, 0);

    shutdown(&socket).unwrap();
    daemon.join().unwrap().unwrap();
    assert!(!socket.exists(), "daemon must remove its socket on exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn uncached_daemon_still_serves_correct_rows() {
    // Without a store the daemon captures traces in-process and reports
    // no store delta; rows still match a storeless sweep modulo timing.
    let dir = scratch_dir("uncached");
    let socket = dir.join("d.sock");
    let traces: Vec<_> = standard_traces().into_iter().take(1).collect();
    let names: Vec<String> = traces.iter().map(|t| t.name.to_owned()).collect();
    let frontends = vec![FrontendSpec::xbc_default()];

    let mut sweep = Sweep::new(traces, frontends.clone(), 2_000);
    sweep.progress = false;
    let expected = sweep.run();

    let config = ServeConfig { socket: socket.clone(), threads: 1, store: None, progress: false };
    let daemon = thread::spawn(move || xbc_serve::serve(&config));
    wait_until_live(&socket);

    let req = SweepRequest { traces: names, frontends, insts: 2_000 };
    let out = submit(&socket, &req).unwrap();
    assert!(out.store.is_none(), "uncached daemon must not report store stats");
    let strip = |rows: &[xbc_sim::Row]| {
        let mut rows = rows.to_vec();
        for r in &mut rows {
            r.elapsed_ms = 0;
        }
        to_json(&rows)
    };
    assert_eq!(strip(&out.rows), strip(&expected));

    shutdown(&socket).unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
