//! The lockstep differential oracle.
//!
//! [`DiffHarness`] drives any [`Frontend`] one [`Frontend::step`] at a time
//! against a *reference* committed stream and fails on the **first**
//! divergence, with a window of context (IP, instruction/uop index, cycle,
//! frontend mode, recent history) instead of an end-of-run aggregate
//! mismatch. Between cycles it checks the accounting identities every
//! frontend must maintain:
//!
//! * **uop conservation** — `metrics.total_uops()` equals the uops the
//!   oracle cursor has handed out, every cycle;
//! * **cycle partition** — `cycles == build + delivery + stall`, and every
//!   step costs at least one cycle;
//! * **stream equality** — each instruction the frontend completes matches
//!   the reference stream at the same index (this is where an injected
//!   corruption, or a frontend skipping/duplicating work, surfaces);
//! * **forward progress** — a watchdog converts livelock into a reported
//!   divergence rather than a hang;
//! * **structural invariants** — [`Frontend::check_invariants`] runs
//!   periodically and at the end of the run.

use std::collections::VecDeque;
use std::fmt;
use xbc_frontend::{Frontend, FrontendMetrics, OracleStream};
use xbc_workload::{DynInst, Trace};

/// How many recently completed instructions a [`Divergence`] carries.
const WINDOW: usize = 8;

/// Steps a frontend may run without delivering a uop before the harness
/// declares livelock (mirrors the `Frontend::run` watchdog).
const STUCK_LIMIT: u32 = 10_000;

/// What went wrong, where, with a window of context.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which check tripped.
    pub kind: DivergenceKind,
    /// Human-readable detail of the mismatch.
    pub detail: String,
    /// Frontend name (`"xbc"`, `"tc"`, …).
    pub frontend: String,
    /// Frontend mode label at the failing cycle.
    pub mode: &'static str,
    /// Frontend state summary at the failing cycle.
    pub state: String,
    /// Index of the instruction being delivered when the check tripped.
    pub inst_index: usize,
    /// Fetch IP at the failing cycle (`None` at end of stream).
    pub ip: Option<xbc_isa::Addr>,
    /// Uops delivered before the check tripped.
    pub uop_index: u64,
    /// Cycle count at the failing step.
    pub cycle: u64,
    /// The last few completed instructions, oldest first, then the next
    /// expected reference instruction — the context window.
    pub window: Vec<String>,
}

/// Classification of a [`Divergence`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A completed instruction differs from the reference stream.
    Stream,
    /// `total_uops()` disagrees with the oracle cursor.
    Conservation,
    /// `cycles != build + delivery + stall`, or a step cost no cycle.
    CycleAccounting,
    /// No uop delivered for [`STUCK_LIMIT`] consecutive cycles.
    Livelock,
    /// [`Frontend::check_invariants`] reported a violation.
    Invariant,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?} divergence in `{}` at inst {} (ip {}), uop {}, cycle {} [mode {}]",
            self.kind,
            self.frontend,
            self.inst_index,
            self.ip.map(|a| a.to_string()).unwrap_or_else(|| "<end>".into()),
            self.uop_index,
            self.cycle,
            self.mode,
        )?;
        writeln!(f, "  {}", self.detail)?;
        if !self.state.is_empty() {
            writeln!(f, "  state: {}", self.state)?;
        }
        for line in &self.window {
            writeln!(f, "  | {line}")?;
        }
        Ok(())
    }
}

/// Options for a differential run.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Run [`Frontend::check_invariants`] every this many steps (0 = only
    /// at the end of the run).
    pub invariant_period: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { invariant_period: 4096 }
    }
}

/// The lockstep differential harness. Stateless between runs; create once
/// and reuse across frontends and traces.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiffHarness {
    opts: DiffOptions,
}

impl DiffHarness {
    /// Creates a harness with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a harness with explicit options.
    pub fn with_options(opts: DiffOptions) -> Self {
        DiffHarness { opts }
    }

    /// Replays `subject_trace` through `frontend`, checking every cycle
    /// against `reference` (usually the pristine capture of the same
    /// stream; the fuzzer passes a deliberately corrupted subject).
    ///
    /// # Errors
    ///
    /// Returns the first [`Divergence`] found.
    pub fn run<F: Frontend + ?Sized>(
        &self,
        frontend: &mut F,
        subject_trace: &Trace,
        reference: &Trace,
    ) -> Result<FrontendMetrics, Divergence> {
        let mut oracle = OracleStream::new(subject_trace);
        let mut metrics = FrontendMetrics::default();
        let mut window: VecDeque<String> = VecDeque::with_capacity(WINDOW);
        let mut compared = 0usize; // instructions checked against the reference
        let mut last_delivered = 0u64;
        let mut stuck = 0u32;
        let mut steps = 0u64;

        let diverge = |kind: DivergenceKind,
                       detail: String,
                       frontend: &F,
                       oracle: &OracleStream<'_>,
                       metrics: &FrontendMetrics,
                       window: &VecDeque<String>,
                       compared: usize| {
            let mut w: Vec<String> = window.iter().cloned().collect();
            if let Some(next) = reference.insts().get(compared) {
                w.push(format!("next expected ref[{}]: {}", compared, brief(next)));
            }
            Divergence {
                kind,
                detail,
                frontend: frontend.name().to_owned(),
                mode: frontend.mode_label(),
                state: frontend.state_brief(),
                inst_index: oracle.inst_index(),
                ip: oracle.current().map(|d| d.inst.ip),
                uop_index: oracle.delivered_uops(),
                cycle: metrics.cycles,
                window: w,
            }
        };

        while !oracle.done() {
            let cycles_before = metrics.cycles;
            frontend.step(&mut oracle, &mut metrics);
            steps += 1;

            if metrics.cycles <= cycles_before {
                return Err(diverge(
                    DivergenceKind::CycleAccounting,
                    format!("step added no cycle (still {})", metrics.cycles),
                    frontend,
                    &oracle,
                    &metrics,
                    &window,
                    compared,
                ));
            }
            if metrics.cycles
                != metrics.build_cycles + metrics.delivery_cycles + metrics.stall_cycles
            {
                return Err(diverge(
                    DivergenceKind::CycleAccounting,
                    format!(
                        "cycle partition broken: {} != {} build + {} delivery + {} stall",
                        metrics.cycles,
                        metrics.build_cycles,
                        metrics.delivery_cycles,
                        metrics.stall_cycles
                    ),
                    frontend,
                    &oracle,
                    &metrics,
                    &window,
                    compared,
                ));
            }
            if metrics.total_uops() != oracle.delivered_uops() {
                return Err(diverge(
                    DivergenceKind::Conservation,
                    format!(
                        "uop conservation broken: metrics count {} but the oracle handed out {}",
                        metrics.total_uops(),
                        oracle.delivered_uops()
                    ),
                    frontend,
                    &oracle,
                    &metrics,
                    &window,
                    compared,
                ));
            }

            // Compare every instruction completed since the last step with
            // the reference stream at the same index.
            while compared < oracle.inst_index() {
                let got = &subject_trace.insts()[compared];
                match reference.insts().get(compared) {
                    Some(want) if want == got => {
                        if window.len() == WINDOW {
                            window.pop_front();
                        }
                        window.push_back(format!("ok   [{}]: {}", compared, brief(got)));
                        compared += 1;
                    }
                    Some(want) => {
                        return Err(diverge(
                            DivergenceKind::Stream,
                            format!(
                                "inst {} differs from the reference: delivered {} but expected {}",
                                compared,
                                brief(got),
                                brief(want)
                            ),
                            frontend,
                            &oracle,
                            &metrics,
                            &window,
                            compared,
                        ));
                    }
                    None => {
                        return Err(diverge(
                            DivergenceKind::Stream,
                            format!(
                                "delivered {} insts but the reference has only {}",
                                compared + 1,
                                reference.inst_count()
                            ),
                            frontend,
                            &oracle,
                            &metrics,
                            &window,
                            compared,
                        ));
                    }
                }
            }

            if oracle.delivered_uops() == last_delivered {
                stuck += 1;
                if stuck >= STUCK_LIMIT {
                    return Err(diverge(
                        DivergenceKind::Livelock,
                        format!("no uop delivered for {STUCK_LIMIT} cycles"),
                        frontend,
                        &oracle,
                        &metrics,
                        &window,
                        compared,
                    ));
                }
            } else {
                last_delivered = oracle.delivered_uops();
                stuck = 0;
            }

            if self.opts.invariant_period > 0 && steps.is_multiple_of(self.opts.invariant_period) {
                if let Err(e) = frontend.check_invariants() {
                    return Err(diverge(
                        DivergenceKind::Invariant,
                        e,
                        frontend,
                        &oracle,
                        &metrics,
                        &window,
                        compared,
                    ));
                }
            }
        }

        if let Err(e) = frontend.check_invariants() {
            return Err(diverge(
                DivergenceKind::Invariant,
                e,
                frontend,
                &oracle,
                &metrics,
                &window,
                compared,
            ));
        }
        if compared != reference.inst_count() {
            return Err(diverge(
                DivergenceKind::Stream,
                format!(
                    "run ended after {} insts; the reference has {}",
                    compared,
                    reference.inst_count()
                ),
                frontend,
                &oracle,
                &metrics,
                &window,
                compared,
            ));
        }
        Ok(metrics)
    }
}

/// One-line rendering of a dynamic instruction for context windows.
fn brief(d: &DynInst) -> String {
    format!(
        "{} ({} uops, {:?}{}) -> {}",
        d.inst.ip,
        d.inst.uops,
        d.inst.branch,
        if d.taken { ", taken" } else { "" },
        d.next_ip
    )
}
