//! # xbc-store — content-addressed trace & result store
//!
//! The paper's methodology is trace-driven: capture a committed
//! instruction stream *once*, replay it through every frontend (§4).
//! This crate makes "once" literal across process boundaries. It is a
//! two-layer on-disk artifact cache:
//!
//! * **Trace store** — captured [`Trace`]s in the compact `XBT1` binary
//!   encoding (varint deltas, CRC32 trailer; see `xbc_workload::codec`),
//!   keyed by a content hash of `(TraceSpec, insts, format_version)`.
//!   Files are written atomically (tmp + rename) so concurrent sweeps
//!   never observe a half-written trace.
//! * **Result cache** — opaque result blobs (the sim layer stores sweep
//!   `Row`s as JSON) keyed by a caller-composed string that includes the
//!   trace identity, the frontend configuration, the instruction budget
//!   and a code-version stamp. Re-running any figure binary with
//!   unchanged parameters is a pure cache hit: zero captures, zero
//!   simulations.
//!
//! Corruption — a flipped bit, a truncated file, a stale format version —
//! degrades gracefully: the store logs the problem to stderr, deletes the
//! entry, and reports a miss so the caller regenerates. It never panics
//! on bad cache contents.
//!
//! # Examples
//!
//! ```
//! use xbc_store::Store;
//! use xbc_workload::standard_traces;
//!
//! let dir = std::env::temp_dir().join(format!("xbc-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir).unwrap();
//! let spec = &standard_traces()[0];
//! let first = store.get_or_capture(spec, 2_000);   // capture + store
//! let second = store.get_or_capture(spec, 2_000);  // pure disk hit
//! assert_eq!(first.insts(), second.insts());
//! assert_eq!(store.stats().trace_hits, 1);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use xbc_workload::codec::{crc32, FORMAT_VERSION};
use xbc_workload::{ChannelSource, DynInst, Trace, TraceReader, TraceSpec, TraceStream};

/// Magic of result-cache entries.
const RESULT_MAGIC: [u8; 4] = *b"XBR1";

/// Test-only fault injection for the store's concurrency seams.
///
/// Compiled under the `check` feature only; the hooks let fault-campaign
/// tests force the degraded paths (lock-acquire timeouts) that real
/// contention only produces probabilistically. The flags are
/// process-global: a store under fault injection behaves exactly like a
/// store whose every lock acquire lost its race — the advisory-lock
/// fallback semantics, never a new failure mode.
#[cfg(feature = "check")]
pub mod test_faults {
    use std::sync::atomic::{AtomicBool, Ordering};

    static LOCK_TIMEOUT: AtomicBool = AtomicBool::new(false);

    /// Forces every subsequent [`EntryLock::acquire`](super::EntryLock::acquire)
    /// to report an immediate timeout (`held == false`), as if the lock
    /// were contended past its deadline. Mutations then proceed
    /// unlocked — the documented advisory fallback.
    pub fn force_lock_timeout(on: bool) {
        LOCK_TIMEOUT.store(on, Ordering::SeqCst);
    }

    pub(crate) fn lock_timeout_forced() -> bool {
        LOCK_TIMEOUT.load(Ordering::SeqCst)
    }
}

/// How long a mutation waits for a contended entry lock before
/// proceeding anyway (the locks are advisory: a lost race degrades to
/// the pre-locking behaviour, it never wedges the store).
const LOCK_ACQUIRE_MS: u64 = 2_000;

/// Age past which a lock file is presumed abandoned (its holder died
/// between create and remove) and is stolen. Writes and evictions are
/// millisecond-scale, so seconds of age means a dead holder.
const LOCK_STALE_MS: u64 = 10_000;

/// An acquired (or timed-out) advisory entry lock. Dropping it releases
/// the lock by removing the lock file.
///
/// Implementation: `O_CREAT|O_EXCL` lock files next to the entry, the
/// one mutual-exclusion primitive plain `std::fs` offers on every
/// platform (the workspace is hermetic — no libc, so no `flock`).
/// Creation is atomic; whoever creates the file owns the entry until
/// drop. Contenders spin with a short sleep, steal locks older than
/// [`LOCK_STALE_MS`], and give up after [`LOCK_ACQUIRE_MS`] — the locks
/// are advisory, so a timeout proceeds unlocked rather than failing.
#[doc(hidden)] // Public for the crate's own concurrency tests only.
pub struct EntryLock {
    path: PathBuf,
    /// Whether the lock was actually acquired (`false` after a timeout
    /// or when there was nothing to lock).
    pub held: bool,
}

impl EntryLock {
    /// Locks the entry at `path` (by convention: `<entry>.lock` in the
    /// same directory).
    pub fn acquire(entry: &Path) -> EntryLock {
        let mut name = entry.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        name.push(".lock");
        let path = entry.with_file_name(name);
        #[cfg(feature = "check")]
        if test_faults::lock_timeout_forced() {
            eprintln!(
                "[xbc-store] injected lock timeout for {}; proceeding unlocked",
                path.display()
            );
            return EntryLock { path, held: false };
        }
        let deadline = Instant::now() + Duration::from_millis(LOCK_ACQUIRE_MS);
        loop {
            match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // Holder pid, for post-mortem debugging of stale locks.
                    let _ = write!(f, "{}", std::process::id());
                    return EntryLock { path, held: true };
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .is_some_and(|age| age.as_millis() as u64 > LOCK_STALE_MS);
                    if stale {
                        Self::steal_stale(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        eprintln!(
                            "[xbc-store] timed out waiting for {}; proceeding unlocked",
                            path.display()
                        );
                        return EntryLock { path, held: false };
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                // E.g. the parent directory vanished: nothing to lock.
                Err(_) => return EntryLock { path, held: false },
            }
        }
    }

    /// Steals a lock file already judged stale, safely under contention.
    ///
    /// Deleting the stale file in place would race: two contenders can
    /// both see it stale, the first deletes it and creates a *fresh*
    /// lock, and the second's delete then removes the fresh lock — two
    /// winners. Instead the stale file is first *renamed* to a unique
    /// tombstone. Rename is atomic, so exactly one stealer succeeds;
    /// the losers' renames fail (`NotFound`) and they simply re-enter
    /// the `create_new` race. The winner re-checks the tombstone's age
    /// before discarding it: if the rename unexpectedly grabbed a
    /// fresh lock (the holder released and a new one appeared inside
    /// the staleness-check window), it is restored instead of deleted.
    fn steal_stale(path: &Path) {
        static STEAL_SEQ: AtomicU64 = AtomicU64::new(0);
        let mut name = path.as_os_str().to_os_string();
        name.push(format!(
            ".stale-{}-{}",
            std::process::id(),
            STEAL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tombstone = PathBuf::from(name);
        if fs::rename(path, &tombstone).is_err() {
            // Lost the steal race (or the holder released): the path is
            // free or freshly re-locked; the caller retries either way.
            return;
        }
        let still_stale = fs::metadata(&tombstone)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|m| m.elapsed().ok())
            .is_some_and(|age| age.as_millis() as u64 > LOCK_STALE_MS);
        if still_stale {
            eprintln!("[xbc-store] stealing stale lock {} (holder presumed dead)", path.display());
            fs::remove_file(&tombstone).ok();
        } else {
            // Pathological interleaving: we renamed a live lock. Put it
            // back (best effort) and go back to waiting on it.
            fs::rename(&tombstone, path).ok();
        }
    }
}

impl Drop for EntryLock {
    fn drop(&mut self) {
        if self.held {
            fs::remove_file(&self.path).ok();
        }
    }
}

/// State of one in-flight computation: running until the leader
/// publishes a value or a failure.
enum FlightState<V> {
    Running,
    Done(V),
    Failed(String),
}

struct FlightSlot<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

/// What [`SingleFlight::join`] hands the caller: lead the computation,
/// share the leader's result, or learn the leader failed.
pub enum Flight<'a, V: Clone> {
    /// This caller won the race: it must compute the value and publish
    /// it through [`FlightLead::complete`] (or [`FlightLead::fail`]).
    Leader(FlightLead<'a, V>),
    /// Another caller was already computing this key; this is its
    /// published value.
    Shared(V),
    /// The in-flight leader failed (or was dropped without publishing).
    /// The key is free again — re-joining races to become the new
    /// leader.
    Failed(String),
}

/// The leader's obligation token: exactly one of [`complete`] or
/// [`fail`] must resolve it. Dropping it unresolved (a panic on the
/// leader's thread) publishes a failure so followers never wedge.
///
/// [`complete`]: FlightLead::complete
/// [`fail`]: FlightLead::fail
pub struct FlightLead<'a, V: Clone> {
    flights: &'a SingleFlight<V>,
    slot: Arc<FlightSlot<V>>,
    key: String,
    published: bool,
}

impl<V: Clone> FlightLead<'_, V> {
    fn publish(&mut self, state: FlightState<V>) {
        if self.published {
            return;
        }
        self.published = true;
        // Retire the slot first so late joiners start a fresh flight
        // instead of reading a result that may describe stale state,
        // then wake the followers already parked on this slot.
        let mut slots = self.flights.slots.lock().expect("flight table lock");
        if slots.get(&self.key).is_some_and(|s| Arc::ptr_eq(s, &self.slot)) {
            slots.remove(&self.key);
        }
        drop(slots);
        *self.slot.state.lock().expect("flight slot lock") = state;
        self.slot.cv.notify_all();
    }

    /// Publishes the computed value to every follower and retires the
    /// flight.
    pub fn complete(mut self, value: V) {
        self.publish(FlightState::Done(value));
    }

    /// Publishes a failure to every follower and retires the flight;
    /// followers see [`Flight::Failed`] and may re-join to retry.
    pub fn fail(mut self, why: &str) {
        self.publish(FlightState::Failed(why.to_owned()));
    }
}

impl<V: Clone> Drop for FlightLead<'_, V> {
    fn drop(&mut self) {
        self.publish(FlightState::Failed("flight leader dropped without publishing".into()));
    }
}

/// In-process single-flight table: at most one computation per key is
/// in flight at a time; concurrent requesters block and share the
/// leader's result instead of redoing the work.
///
/// This is the dedup primitive behind [`Store::get_or_capture_shared`]
/// and the `xbc-serve` daemon's cross-request cell dedup. Keys are
/// caller-composed content hashes (the same discipline as the store's
/// on-disk keys), values are cheap clones (`Arc`s in practice).
///
/// A flight exists only while its leader is computing, so a follower
/// never waits on work that is not actively running — which is also why
/// blocking in `join` cannot deadlock a fixed worker pool: every wait
/// chain ends at a leader making progress.
pub struct SingleFlight<V: Clone> {
    slots: Mutex<HashMap<String, Arc<FlightSlot<V>>>>,
}

impl<V: Clone> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl<V: Clone> SingleFlight<V> {
    /// An empty flight table.
    pub fn new() -> SingleFlight<V> {
        SingleFlight { slots: Mutex::new(HashMap::new()) }
    }

    /// Joins the flight for `key`: the first caller becomes the leader
    /// (and must resolve the returned [`FlightLead`]); concurrent
    /// callers block until the leader publishes and then share its
    /// value.
    pub fn join(&self, key: &str) -> Flight<'_, V> {
        let slot = {
            let mut slots = self.slots.lock().expect("flight table lock");
            match slots.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(FlightSlot {
                        state: Mutex::new(FlightState::Running),
                        cv: Condvar::new(),
                    });
                    slots.insert(key.to_owned(), Arc::clone(&slot));
                    return Flight::Leader(FlightLead {
                        flights: self,
                        slot,
                        key: key.to_owned(),
                        published: false,
                    });
                }
            }
        };
        let mut state = slot.state.lock().expect("flight slot lock");
        loop {
            match &*state {
                FlightState::Running => state = slot.cv.wait(state).expect("flight slot cv"),
                FlightState::Done(v) => return Flight::Shared(v.clone()),
                FlightState::Failed(e) => return Flight::Failed(e.clone()),
            }
        }
    }

    /// Number of computations currently in flight (for tests and
    /// observability).
    pub fn in_flight(&self) -> usize {
        self.slots.lock().expect("flight table lock").len()
    }
}

/// How [`Store::get_or_capture_shared`] obtained its trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureOutcome {
    /// Loaded from the on-disk trace store.
    CacheHit,
    /// Captured fresh by this caller (and stored for next time).
    Captured,
    /// Shared from a concurrent caller's in-flight capture of the same
    /// entry — this caller did no capture work and touched no counters.
    Joined,
}

/// What [`Store::stream_capture_shared`] resolved to.
pub enum StreamCapture<'a> {
    /// The entry already exists on disk — stream it with
    /// [`Store::open_trace_stream`].
    CacheHit,
    /// This caller won the race: a capture thread is now writing the
    /// entry, and the returned handle carries the live replay channel.
    Leader(OverlappedCapture<'a>),
    /// A concurrent caller's capture of the same entry just finished —
    /// the entry is on disk now; this caller did no capture work and
    /// bumped no counters.
    Joined,
}

/// A streamed capture in flight: a background thread is executing the
/// workload and encoding it to the store, tee'ing every chunk into a
/// bounded channel. The holder runs its simulation off
/// [`OverlappedCapture::take_source`] — *while the capture runs* — then
/// calls [`OverlappedCapture::finish`] to join the thread and publish
/// the entry to concurrent waiters.
///
/// Dropping this without `finish` publishes a single-flight failure so
/// waiters retry leading; the detached capture thread still persists the
/// entry, so a retrying leader finds it on disk.
pub struct OverlappedCapture<'a> {
    source: Option<ChannelSource>,
    lead: Option<FlightLead<'a, ()>>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl OverlappedCapture<'_> {
    /// Takes the replay channel (the consumer half of the tee). Call
    /// once; the source yields exactly the captured instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_source(&mut self) -> ChannelSource {
        self.source.take().expect("overlapped capture source already taken")
    }

    /// Waits for the capture thread to finish persisting the entry and
    /// publishes it to single-flight waiters. Returns the capture's
    /// wall-clock milliseconds (execution + encoding + finalize).
    ///
    /// # Panics
    ///
    /// Panics if the capture thread panicked (I/O failure writing the
    /// entry — the simulation fed from the tee channel would have
    /// panicked on the broken channel already).
    pub fn finish(mut self) -> u64 {
        let handle = self.handle.take().expect("overlapped capture already finished");
        let cap_ms = match handle.join() {
            Ok(ms) => ms,
            Err(_) => panic!("streamed capture thread panicked"),
        };
        self.lead.take().expect("flight lead present until finish").complete(());
        cap_ms
    }
}

/// FNV-1a 64-bit hash — the store's content-addressing primitive.
/// Stable by construction (unlike `DefaultHasher`, whose algorithm is
/// explicitly unspecified across releases), so cache keys survive
/// toolchain upgrades.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Counter snapshot of one [`Store`]'s activity (see [`Store::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Trace loads served from disk.
    pub trace_hits: u64,
    /// Trace loads that missed (no entry, or a corrupt entry deleted).
    pub trace_misses: u64,
    /// Result loads served from disk.
    pub result_hits: u64,
    /// Result loads that missed.
    pub result_misses: u64,
    /// Bytes read from cache files.
    pub bytes_read: u64,
    /// Bytes written to cache files.
    pub bytes_written: u64,
    /// Corrupt entries detected and deleted.
    pub corrupt_entries: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "traces {}/{} hit, results {}/{} hit, {} KiB read, {} KiB written{}",
            self.trace_hits,
            self.trace_hits + self.trace_misses,
            self.result_hits,
            self.result_hits + self.result_misses,
            self.bytes_read / 1024,
            self.bytes_written / 1024,
            if self.corrupt_entries > 0 {
                format!(", {} corrupt entries regenerated", self.corrupt_entries)
            } else {
                String::new()
            }
        )
    }
}

#[derive(Default)]
struct Counters {
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    corrupt_entries: AtomicU64,
}

/// A content-addressed artifact store rooted at one directory
/// (`<root>/traces/*.xbt`, `<root>/results/*.xbr`).
///
/// All methods take `&self`; the store is safe to share across sweep
/// worker threads (stats are atomic, writes are tmp + rename).
pub struct Store {
    root: PathBuf,
    c: Counters,
    /// In-process single-flight dedup of trace entry creation: two
    /// threads asking for the same absent `(spec, insts)` entry capture
    /// it once and share the result (see [`Store::get_or_capture_shared`]).
    capture_flights: SingleFlight<Arc<Trace>>,
    /// Single-flight dedup of *streamed* capture-to-disk (see
    /// [`Store::stream_capture_shared`]): the value is unit because the
    /// artifact is the on-disk entry, not an in-memory trace.
    stream_flights: SingleFlight<()>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store").field("root", &self.root).finish()
    }
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory tree cannot be created.
    pub fn open<P: AsRef<Path>>(dir: P) -> std::io::Result<Store> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join("traces"))?;
        fs::create_dir_all(root.join("results"))?;
        Ok(Store {
            root,
            c: Counters::default(),
            capture_flights: SingleFlight::new(),
            stream_flights: SingleFlight::new(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of hit/miss/byte counters since `open`.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            trace_hits: self.c.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.c.trace_misses.load(Ordering::Relaxed),
            result_hits: self.c.result_hits.load(Ordering::Relaxed),
            result_misses: self.c.result_misses.load(Ordering::Relaxed),
            bytes_read: self.c.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.c.bytes_written.load(Ordering::Relaxed),
            corrupt_entries: self.c.corrupt_entries.load(Ordering::Relaxed),
        }
    }

    /// The identity of a `(spec, insts)` capture: every field that
    /// determines the committed stream, plus the on-disk format version
    /// so format bumps invalidate rather than misdecode.
    fn trace_key(spec: &TraceSpec, insts: usize) -> u64 {
        let canon = format!(
            "trace|name={}|suite={}|seed={}|functions={}|insts={insts}|fmt={FORMAT_VERSION}",
            spec.name, spec.suite, spec.seed, spec.functions
        );
        fnv1a64(canon.as_bytes())
    }

    fn trace_path(&self, spec: &TraceSpec, insts: usize) -> PathBuf {
        let key = Self::trace_key(spec, insts);
        self.root.join("traces").join(format!("{}-{key:016x}.xbt", spec.name))
    }

    /// Loads a cached trace, or returns `None` on a miss. A corrupt or
    /// mismatched entry is logged, deleted and reported as a miss.
    pub fn load_trace(&self, spec: &TraceSpec, insts: usize) -> Option<Trace> {
        let path = self.trace_path(spec, insts);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(_) => {
                self.c.trace_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let size = file.metadata().map(|m| m.len()).unwrap_or(0);
        match Trace::load(BufReader::new(file)) {
            Ok(trace) if trace.name() == spec.name && trace.inst_count() == insts => {
                self.c.trace_hits.fetch_add(1, Ordering::Relaxed);
                self.c.bytes_read.fetch_add(size, Ordering::Relaxed);
                Some(trace)
            }
            Ok(trace) => {
                self.evict(
                    &path,
                    &format!(
                        "entry is {} x {} insts, wanted {} x {insts} insts",
                        trace.name(),
                        trace.inst_count(),
                        spec.name
                    ),
                );
                None
            }
            Err(e) => {
                self.evict(&path, &e.to_string());
                None
            }
        }
    }

    /// Writes a captured trace atomically (tmp + rename). A failure to
    /// persist is logged and swallowed: the cache is an accelerator, not
    /// a correctness dependency.
    pub fn store_trace(&self, spec: &TraceSpec, insts: usize, trace: &Trace) {
        let path = self.trace_path(spec, insts);
        match self.write_atomic(&path, |w| trace.save(w).map_err(std::io::Error::other)) {
            Ok(bytes) => {
                self.c.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            }
            Err(e) => eprintln!("[xbc-store] failed to store trace {}: {e}", path.display()),
        }
    }

    /// Loads the trace from the store or captures it fresh (storing the
    /// capture for next time). The returned trace is identical either
    /// way — that is the store's whole contract.
    ///
    /// Entry creation is single-flight (see
    /// [`Store::get_or_capture_shared`]): concurrent callers racing on
    /// the same absent entry capture it once and share the result.
    pub fn get_or_capture(&self, spec: &TraceSpec, insts: usize) -> Trace {
        let (trace, _) = self.get_or_capture_shared(spec, insts);
        match Arc::try_unwrap(trace) {
            Ok(t) => t,
            Err(shared) => (*shared).clone(),
        }
    }

    /// [`Store::get_or_capture`] with in-process single-flight dedup
    /// made visible: the first caller to miss on an entry becomes the
    /// leader (loads or captures, storing the capture), and every
    /// caller racing on the same key blocks briefly and shares the
    /// leader's `Arc` instead of capturing again. The returned
    /// [`CaptureOutcome`] says which side this caller was on — a
    /// `Joined` caller did no work and bumped no store counters, so
    /// summing `Captured` outcomes across concurrent consumers counts
    /// each entry's creation exactly once.
    pub fn get_or_capture_shared(
        &self,
        spec: &TraceSpec,
        insts: usize,
    ) -> (Arc<Trace>, CaptureOutcome) {
        let key = format!("{}|{:016x}", spec.name, Self::trace_key(spec, insts));
        loop {
            match self.capture_flights.join(&key) {
                Flight::Leader(lead) => {
                    if let Some(t) = self.load_trace(spec, insts) {
                        let t = Arc::new(t);
                        lead.complete(Arc::clone(&t));
                        return (t, CaptureOutcome::CacheHit);
                    }
                    let t = Arc::new(spec.capture(insts));
                    self.store_trace(spec, insts, &t);
                    lead.complete(Arc::clone(&t));
                    return (t, CaptureOutcome::Captured);
                }
                Flight::Shared(t) => return (t, CaptureOutcome::Joined),
                // The leader died mid-capture (panic on its thread);
                // race to become the new leader and redo the work.
                Flight::Failed(_) => continue,
            }
        }
    }

    /// Opens a cached trace as a validated *streaming* source, or
    /// returns `None` on a miss.
    ///
    /// This is the replay path for consumers that must keep host memory
    /// O(window) — the `xbc-serve` daemon — instead of materialising the
    /// whole `Trace`. Because a mid-replay decode error would surface as
    /// a panic deep inside a simulation (`TraceStream` fails loudly by
    /// contract), the entry is fully validated *first*: one streaming
    /// scan over every record, checking the header identity and the
    /// CRC32 trailer in O(1) memory. A corrupt or mismatched entry is
    /// evicted and reported as `None`, exactly like [`Store::load_trace`];
    /// the returned stream then replays a file known good moments ago,
    /// so a panic mid-replay means truly concurrent corruption, which is
    /// worth being loud about.
    ///
    /// An absent entry returns `None` *without* counting a miss, so a
    /// caller falling back to [`Store::get_or_capture`] doesn't count
    /// the same miss twice. A validated hit counts `trace_hits` and
    /// `bytes_read` once (the validation scan; the replay reads the same
    /// bytes again but the entry is one logical read).
    pub fn open_trace_stream(
        &self,
        spec: &TraceSpec,
        insts: usize,
    ) -> Option<TraceStream<BufReader<fs::File>>> {
        let path = self.trace_path(spec, insts);
        let file = fs::File::open(&path).ok()?;
        let size = file.metadata().map(|m| m.len()).unwrap_or(0);
        let reader = match TraceReader::new(BufReader::new(file)) {
            Ok(r) => r,
            Err(e) => {
                self.evict(&path, &e.to_string());
                return None;
            }
        };
        if reader.name() != spec.name || reader.inst_count() != insts as u64 {
            self.evict(
                &path,
                &format!(
                    "entry is {} x {} insts, wanted {} x {insts} insts",
                    reader.name(),
                    reader.inst_count(),
                    spec.name
                ),
            );
            return None;
        }
        for record in reader {
            if let Err(e) = record {
                self.evict(&path, &e.to_string());
                return None;
            }
        }
        // Validated end to end; reopen for the real replay.
        let file = fs::File::open(&path).ok()?;
        match TraceStream::new(BufReader::new(file)) {
            Ok(stream) => {
                self.c.trace_hits.fetch_add(1, Ordering::Relaxed);
                self.c.bytes_read.fetch_add(size, Ordering::Relaxed);
                Some(stream)
            }
            Err(e) => {
                self.evict(&path, &e.to_string());
                None
            }
        }
    }

    /// Captures `(spec, insts)` *streamed* straight into the store:
    /// records are encoded to a private temp file in chunks as the
    /// executor produces them (peak live memory O(chunk), bytes
    /// identical to resident capture + [`Store::store_trace`]), then the
    /// entry is published with an atomic rename. A crash mid-capture
    /// leaves only a `.tmp-*` file — never a half-written entry.
    ///
    /// Unlike [`Store::store_trace`]'s `write_atomic`, the capture runs
    /// *unlocked*: a giga-instruction capture takes far longer than the
    /// advisory lock's staleness window, so holding the entry lock for
    /// the duration would get it stolen. Only the final rename takes the
    /// lock. `on_chunk` sees each chunk plus the running total (progress
    /// reporting, overlap tee). Returns bytes written.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if writing or publishing the entry fails
    /// (the temp file is removed). Callers that treat the store as a
    /// pure accelerator may swallow it; callers feeding a live replay
    /// from `on_chunk` must not, because the replay consumed a stream
    /// that never became an entry.
    pub fn capture_to_store<F>(
        &self,
        spec: &TraceSpec,
        insts: usize,
        on_chunk: F,
    ) -> std::io::Result<u64>
    where
        F: FnMut(&[DynInst], u64),
    {
        let path = self.trace_path(spec, insts);
        let tmp = Self::tmp_path(&path);
        let result = (|| {
            let file = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            spec.capture_streamed(insts, &mut w, on_chunk).map_err(std::io::Error::other)?;
            w.flush()?;
            let bytes = w.get_ref().metadata()?.len();
            drop(w);
            let _lock = EntryLock::acquire(&path);
            fs::rename(&tmp, &path)?;
            Ok(bytes)
        })();
        match &result {
            Ok(bytes) => {
                self.c.bytes_written.fetch_add(*bytes, Ordering::Relaxed);
            }
            Err(_) => {
                fs::remove_file(&tmp).ok();
            }
        }
        result
    }

    /// Single-flight streamed capture with capture/simulate overlap: the
    /// first caller to find `(spec, insts)` absent becomes the leader
    /// and gets an [`OverlappedCapture`] — a background thread captures
    /// the entry to disk while tee'ing the instruction stream into a
    /// bounded channel the leader simulates from, so a cold cell's
    /// capture time hides behind its first simulation. Callers racing on
    /// the same key block until the leader's capture is on disk
    /// ([`StreamCapture::Joined`]) and then stream it from the store;
    /// when the entry already exists the caller gets
    /// [`StreamCapture::CacheHit`] immediately.
    ///
    /// Counter discipline matches [`Store::get_or_capture_shared`]: only
    /// a fresh leader counts a `trace_misses`, so summing leaders across
    /// concurrent consumers counts each entry's creation exactly once.
    pub fn stream_capture_shared(
        self: &Arc<Self>,
        spec: &TraceSpec,
        insts: usize,
    ) -> StreamCapture<'_> {
        let key = format!("{}|{:016x}", spec.name, Self::trace_key(spec, insts));
        loop {
            match self.stream_flights.join(&key) {
                Flight::Leader(lead) => {
                    if fs::metadata(self.trace_path(spec, insts)).is_ok() {
                        lead.complete(());
                        return StreamCapture::CacheHit;
                    }
                    self.c.trace_misses.fetch_add(1, Ordering::Relaxed);
                    let (tx, source) = ChannelSource::bounded(spec.name, insts as u64);
                    let store = Arc::clone(self);
                    let spec = spec.clone();
                    let handle = std::thread::spawn(move || {
                        let start = Instant::now();
                        // A send failure means the consumer gave up; the
                        // capture keeps going so the entry still lands.
                        let tee = |chunk: &[DynInst], _done: u64| {
                            let _ = tx.send(chunk.to_vec().into_boxed_slice());
                        };
                        if let Err(e) = store.capture_to_store(&spec, insts, tee) {
                            panic!("streamed capture of {:?} failed: {e}", spec.name);
                        }
                        start.elapsed().as_millis() as u64
                    });
                    return StreamCapture::Leader(OverlappedCapture {
                        source: Some(source),
                        lead: Some(lead),
                        handle: Some(handle),
                    });
                }
                Flight::Shared(()) => return StreamCapture::Joined,
                // The leader died mid-capture; its detached thread may
                // still have persisted the entry — retry leading and
                // probe the disk again.
                Flight::Failed(_) => continue,
            }
        }
    }

    fn result_path(&self, key: &str) -> PathBuf {
        self.root.join("results").join(format!("{:016x}.xbr", fnv1a64(key.as_bytes())))
    }

    /// Loads a cached result blob for `key`, or `None` on a miss.
    /// Entries failing the CRC check are logged, deleted and reported as
    /// misses.
    pub fn load_result(&self, key: &str) -> Option<String> {
        let path = self.result_path(key);
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(_) => {
                self.c.result_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let mut raw = Vec::new();
        if let Err(e) = file.read_to_end(&mut raw) {
            self.evict(&path, &format!("read failed: {e}"));
            return None;
        }
        match Self::parse_result(&raw, key) {
            Ok(body) => {
                self.c.result_hits.fetch_add(1, Ordering::Relaxed);
                self.c.bytes_read.fetch_add(raw.len() as u64, Ordering::Relaxed);
                Some(body)
            }
            Err(why) => {
                self.evict(&path, &why);
                None
            }
        }
    }

    /// Parses and validates a result-cache entry: magic, CRC over the
    /// key + body, and the full key string (so hash collisions read as
    /// misses, not as wrong results).
    fn parse_result(raw: &[u8], key: &str) -> Result<String, String> {
        if raw.len() < 12 || raw[..4] != RESULT_MAGIC {
            return Err("bad result magic".into());
        }
        let stored_crc = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
        let key_len = u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes")) as usize;
        let rest = &raw[12..];
        if key_len > rest.len() {
            return Err("truncated result entry".into());
        }
        let computed = crc32(rest);
        if computed != stored_crc {
            return Err(format!(
                "CRC mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
            ));
        }
        let (stored_key, body) = rest.split_at(key_len);
        if stored_key != key.as_bytes() {
            return Err("key collision (different key hashed to this entry)".into());
        }
        String::from_utf8(body.to_vec()).map_err(|_| "result body is not UTF-8".into())
    }

    /// Stores a result blob under `key`, atomically. Failures are logged
    /// and swallowed.
    pub fn store_result(&self, key: &str, body: &str) {
        let path = self.result_path(key);
        let mut payload = Vec::with_capacity(key.len() + body.len());
        payload.extend_from_slice(key.as_bytes());
        payload.extend_from_slice(body.as_bytes());
        let crc = crc32(&payload);
        let write = |w: &mut dyn Write| -> std::io::Result<()> {
            w.write_all(&RESULT_MAGIC)?;
            w.write_all(&crc.to_le_bytes())?;
            w.write_all(&(key.len() as u32).to_le_bytes())?;
            w.write_all(&payload)
        };
        match self.write_atomic(&path, write) {
            Ok(bytes) => {
                self.c.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            }
            Err(e) => eprintln!("[xbc-store] failed to store result {}: {e}", path.display()),
        }
    }

    /// Deletes the result entry for `key` and counts it as corrupt.
    ///
    /// For callers that loaded a CRC-valid body ([`Store::load_result`]
    /// returned it, counting a hit) but found it undecodable at a higher
    /// layer — e.g. a sweep row written by an older schema. Eviction
    /// takes the same log + delete + `corrupt_entries` path as any other
    /// bad entry (plus a result miss, since the caller is about to
    /// recompute), so the stale file stops costing a recompute on every
    /// subsequent run.
    pub fn evict_result(&self, key: &str, why: &str) {
        self.evict(&self.result_path(key), why);
    }

    /// Writes `path` via a unique same-directory temp file and a final
    /// rename, so readers only ever see complete files, under the
    /// entry's advisory lock so a concurrent eviction of the same entry
    /// (another process sharing the cache directory) cannot interleave
    /// with the rename. Returns bytes written.
    fn write_atomic<F>(&self, path: &Path, write: F) -> std::io::Result<u64>
    where
        F: FnOnce(&mut dyn Write) -> std::io::Result<()>,
    {
        let _lock = EntryLock::acquire(path);
        let tmp = Self::tmp_path(path);
        let result = (|| {
            let file = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            write(&mut w)?;
            w.flush()?;
            let bytes = w.get_ref().metadata()?.len();
            drop(w);
            fs::rename(&tmp, path)?;
            Ok(bytes)
        })();
        if result.is_err() {
            fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Unique same-directory temp path for the entry at `path`
    /// (`.tmp-<pid>-<seq>-<filename>`): same filesystem, so the final
    /// rename is atomic; unique, so concurrent writers never clobber
    /// each other's partial files.
    fn tmp_path(path: &Path) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = path.parent().expect("store paths have a parent");
        dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
            path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
        ))
    }

    /// Logs and deletes a bad entry, counting it as corrupt + miss. The
    /// deletion happens under the entry's advisory lock so it cannot
    /// race another process's concurrent rewrite of the same entry
    /// (deleting the *repaired* file instead of the corrupt one).
    /// Readers need no lock: an unlink after open does not affect an
    /// already-open descriptor on POSIX, so in-flight loads finish
    /// safely either way.
    fn evict(&self, path: &Path, why: &str) {
        eprintln!("[xbc-store] discarding {}: {why}; regenerating", path.display());
        let _lock = EntryLock::acquire(path);
        fs::remove_file(path).ok();
        self.c.corrupt_entries.fetch_add(1, Ordering::Relaxed);
        if path.extension().is_some_and(|e| e == "xbt") {
            self.c.trace_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.c.result_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_workload::standard_traces;

    /// Unique per-test scratch directory (removed on drop).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir =
                std::env::temp_dir().join(format!("xbc-store-test-{}-{tag}", std::process::id()));
            fs::remove_dir_all(&dir).ok();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn trace_roundtrip_and_hit_accounting() {
        let s = Scratch::new("roundtrip");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[0];
        let fresh = store.get_or_capture(spec, 1_500);
        assert_eq!(store.stats().trace_misses, 1);
        assert!(store.stats().bytes_written > 0);
        let cached = store.get_or_capture(spec, 1_500);
        assert_eq!(store.stats().trace_hits, 1);
        assert_eq!(fresh.insts(), cached.insts());
        assert_eq!(fresh.uop_count(), cached.uop_count());
        assert_eq!(fresh.exec_stats(), cached.exec_stats());
    }

    #[test]
    fn different_insts_are_different_entries() {
        let s = Scratch::new("insts");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[1];
        store.get_or_capture(spec, 1_000);
        store.get_or_capture(spec, 2_000);
        assert_eq!(store.stats().trace_misses, 2);
        assert_eq!(fs::read_dir(s.0.join("traces")).unwrap().count(), 2);
    }

    #[test]
    fn corrupt_trace_is_evicted_and_regenerated() {
        let s = Scratch::new("corrupt");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[2];
        let fresh = store.get_or_capture(spec, 1_200);
        // Flip a byte in the middle of the single cache file.
        let path = fs::read_dir(s.0.join("traces")).unwrap().next().unwrap().unwrap().path();
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x5A;
        fs::write(&path, &raw).unwrap();
        // The corrupt entry must read as a miss and be deleted...
        let again = store.get_or_capture(spec, 1_200);
        assert_eq!(again.insts(), fresh.insts());
        assert_eq!(store.stats().corrupt_entries, 1);
        // ...and the regenerated file must now hit.
        assert!(store.load_trace(spec, 1_200).is_some());
    }

    #[test]
    fn truncated_trace_is_evicted() {
        let s = Scratch::new("trunc");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[3];
        store.get_or_capture(spec, 1_000);
        let path = fs::read_dir(s.0.join("traces")).unwrap().next().unwrap().unwrap().path();
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() / 3]).unwrap();
        assert!(store.load_trace(spec, 1_000).is_none());
        assert!(!path.exists(), "truncated entry must be deleted");
        assert_eq!(store.stats().corrupt_entries, 1);
    }

    #[test]
    fn result_cache_roundtrip() {
        let s = Scratch::new("result");
        let store = Store::open(&s.0).unwrap();
        let key = "row|trace=spec.gcc|fe=xbc-32k|insts=1000|code=1";
        assert!(store.load_result(key).is_none());
        store.store_result(key, "{\"miss_rate\":0.25}");
        assert_eq!(store.load_result(key).as_deref(), Some("{\"miss_rate\":0.25}"));
        let st = store.stats();
        assert_eq!((st.result_hits, st.result_misses), (1, 1));
    }

    #[test]
    fn corrupt_result_is_evicted() {
        let s = Scratch::new("result-corrupt");
        let store = Store::open(&s.0).unwrap();
        store.store_result("k", "body-bytes");
        let path = fs::read_dir(s.0.join("results")).unwrap().next().unwrap().unwrap().path();
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 1;
        fs::write(&path, &raw).unwrap();
        assert!(store.load_result("k").is_none());
        assert!(!path.exists());
        // Different key, same store: independent entry.
        store.store_result("k2", "other");
        assert_eq!(store.load_result("k2").as_deref(), Some("other"));
    }

    #[test]
    fn evict_result_removes_stale_entry() {
        let s = Scratch::new("evict-result");
        let store = Store::open(&s.0).unwrap();
        store.store_result("k", "stale-schema-body");
        assert!(store.load_result("k").is_some());
        // A higher layer found the (CRC-valid) body undecodable.
        store.evict_result("k", "undecodable at the sweep layer");
        assert_eq!(fs::read_dir(s.0.join("results")).unwrap().count(), 0);
        assert_eq!(store.stats().corrupt_entries, 1);
        assert!(store.load_result("k").is_none());
    }

    #[test]
    fn keys_are_stable() {
        // The content address must never change between runs or builds:
        // pin the FNV-1a primitive with a known vector.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn open_trace_stream_hits_validates_and_evicts() {
        let s = Scratch::new("stream");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[0];
        // Absent entry: quiet None, no miss counted (the caller's
        // get_or_capture fallback will count it).
        assert!(store.open_trace_stream(spec, 1_000).is_none());
        assert_eq!(store.stats().trace_misses, 0);
        let resident = store.get_or_capture(spec, 1_000);
        // Validated hit: streamed records match the resident capture.
        let mut stream = store.open_trace_stream(spec, 1_000).expect("warm entry streams");
        assert_eq!(stream.name(), spec.name);
        assert_eq!(stream.inst_count(), 1_000);
        use xbc_workload::InstSource;
        let mut n = 0usize;
        while let Some(d) = stream.next_inst() {
            assert_eq!(d, resident.insts()[n]);
            n += 1;
        }
        assert_eq!(n, 1_000);
        assert_eq!(store.stats().trace_hits, 1);
        // Wrong inst count: different entry, absent, quiet None.
        assert!(store.open_trace_stream(spec, 999).is_none());
        // Corruption is caught by the validation scan, not mid-replay.
        let path = store.trace_path(spec, 1_000);
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x5A;
        fs::write(&path, &raw).unwrap();
        assert!(store.open_trace_stream(spec, 1_000).is_none());
        assert!(!path.exists(), "corrupt entry must be evicted");
        assert_eq!(store.stats().corrupt_entries, 1);
    }

    #[test]
    fn entry_lock_is_created_and_released() {
        let s = Scratch::new("lock");
        fs::create_dir_all(&s.0).unwrap();
        let entry = s.0.join("entry.xbr");
        let lock_path = s.0.join("entry.xbr.lock");
        {
            let lock = EntryLock::acquire(&entry);
            assert!(lock.held);
            assert!(lock_path.exists(), "lock file must exist while held");
        }
        assert!(!lock_path.exists(), "lock file must be removed on drop");
    }

    #[test]
    fn contended_lock_serializes_holders() {
        let s = Scratch::new("lock-contend");
        fs::create_dir_all(&s.0).unwrap();
        let entry = s.0.join("entry.xbr");
        let in_section = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let lock = EntryLock::acquire(&entry);
                        assert!(lock.held, "uncontended-scale acquire must not time out");
                        let now = in_section.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(50));
                        in_section.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "two holders inside the critical section");
        assert!(!s.0.join("entry.xbr.lock").exists());
    }

    #[test]
    fn abandoned_lock_times_out_instead_of_wedging() {
        // A fresh lock file held by a "process" that never releases it:
        // acquire must give up after LOCK_ACQUIRE_MS and proceed
        // unlocked (advisory semantics), not spin forever. (The stale-
        // steal path needs an old mtime, which plain std cannot set;
        // the two-process integration test exercises real contention.)
        let s = Scratch::new("lock-timeout");
        fs::create_dir_all(&s.0).unwrap();
        let entry = s.0.join("entry.xbr");
        let lock_path = s.0.join("entry.xbr.lock");
        fs::write(&lock_path, b"0").unwrap();
        let start = Instant::now();
        let lock = EntryLock::acquire(&entry);
        assert!(!lock.held, "a fresh foreign lock must not be acquired");
        assert!(start.elapsed() >= Duration::from_millis(LOCK_ACQUIRE_MS));
        assert!(start.elapsed() < Duration::from_millis(LOCK_ACQUIRE_MS + 2_000));
        drop(lock);
        assert!(lock_path.exists(), "a lock we never held must not be removed");
        fs::remove_file(&lock_path).unwrap();
    }

    #[test]
    fn single_flight_dedups_concurrent_leaders() {
        let flights: SingleFlight<u64> = SingleFlight::new();
        let computed = AtomicU64::new(0);
        let mut results = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| match flights.join("k") {
                        Flight::Leader(lead) => {
                            // Hold the flight open long enough that the
                            // other threads join as followers.
                            std::thread::sleep(Duration::from_millis(30));
                            let v = computed.fetch_add(1, Ordering::SeqCst) + 1;
                            lead.complete(v * 100);
                            v * 100
                        }
                        Flight::Shared(v) => v,
                        Flight::Failed(e) => panic!("no leader failed: {e}"),
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().unwrap());
            }
        });
        // Exactly one computation ran; everyone saw its value.
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        assert!(results.iter().all(|&v| v == 100), "{results:?}");
        assert_eq!(flights.in_flight(), 0, "completed flights must retire");
    }

    #[test]
    fn single_flight_failure_wakes_followers_and_frees_the_key() {
        let flights: SingleFlight<u32> = SingleFlight::new();
        let Flight::Leader(lead) = flights.join("k") else { panic!("first join leads") };
        std::thread::scope(|scope| {
            let follower = scope.spawn(|| match flights.join("k") {
                Flight::Failed(e) => e,
                _ => panic!("follower of a failing leader must see the failure"),
            });
            std::thread::sleep(Duration::from_millis(20));
            lead.fail("injected");
            assert_eq!(follower.join().unwrap(), "injected");
        });
        // The key is free again: the next join leads.
        match flights.join("k") {
            Flight::Leader(lead) => lead.complete(7),
            _ => panic!("failed flight must free its key"),
        };
    }

    #[test]
    fn dropped_leader_publishes_failure() {
        let flights: SingleFlight<u32> = SingleFlight::new();
        {
            let Flight::Leader(lead) = flights.join("k") else { panic!("first join leads") };
            drop(lead); // e.g. a panic unwound the leader's thread
        }
        assert_eq!(flights.in_flight(), 0);
        assert!(matches!(flights.join("k"), Flight::Leader(_)));
    }

    #[test]
    fn shared_capture_runs_once_across_racing_threads() {
        let s = Scratch::new("shared-capture");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[0];
        let outcomes: Mutex<Vec<CaptureOutcome>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..6 {
                scope.spawn(|| {
                    let (t, outcome) = store.get_or_capture_shared(spec, 1_000);
                    assert_eq!(t.inst_count(), 1_000);
                    outcomes.lock().unwrap().push(outcome);
                });
            }
        });
        let outcomes = outcomes.into_inner().unwrap();
        let captured = outcomes.iter().filter(|o| matches!(o, CaptureOutcome::Captured)).count();
        assert_eq!(captured, 1, "exactly one racer captures: {outcomes:?}");
        // Exactly one miss was counted — the leader's — however many
        // threads raced. (A racer arriving after the flight retired
        // takes the CacheHit path; a racer arriving during it joins.)
        assert_eq!(store.stats().trace_misses, 1);
        // A later call is a plain cache hit.
        let (_, outcome) = store.get_or_capture_shared(spec, 1_000);
        assert_eq!(outcome, CaptureOutcome::CacheHit);
        assert!(store.stats().trace_hits >= 1);
    }

    #[test]
    fn capture_to_store_matches_resident_entry_bytes() {
        let s = Scratch::new("capture-streamed");
        let store = Store::open(&s.0).unwrap();
        let spec = &standard_traces()[0];
        let resident = spec.capture(2_000);
        let mut resident_bytes = Vec::new();
        resident.save(&mut resident_bytes).unwrap();
        let bytes = store.capture_to_store(spec, 2_000, |_, _| {}).unwrap();
        assert_eq!(bytes, resident_bytes.len() as u64);
        let on_disk = fs::read(store.trace_path(spec, 2_000)).unwrap();
        assert_eq!(on_disk, resident_bytes, "streamed entry must be byte-identical");
        // And it reads back as a normal cache hit.
        assert!(store.load_trace(spec, 2_000).is_some());
        assert_eq!(store.stats().trace_hits, 1);
        // No temp litter.
        let litter = fs::read_dir(s.0.join("traces"))
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(litter, 0);
    }

    #[test]
    fn stream_capture_shared_overlaps_and_dedups() {
        let s = Scratch::new("stream-capture-shared");
        let store = Arc::new(Store::open(&s.0).unwrap());
        let spec = &standard_traces()[1];
        let insts = 3_000usize;
        // Leader: consume the live channel while the capture runs.
        let mut cap = match store.stream_capture_shared(spec, insts) {
            StreamCapture::Leader(cap) => cap,
            _ => panic!("first caller on a cold entry must lead"),
        };
        let mut src = cap.take_source();
        use xbc_workload::InstSource;
        let mut n = 0u64;
        while src.next_inst().is_some() {
            n += 1;
        }
        assert_eq!(n, insts as u64);
        let _cap_ms = cap.finish();
        assert_eq!(store.stats().trace_misses, 1);
        // The published entry equals a resident capture.
        let resident = spec.capture(insts);
        let loaded = store.load_trace(spec, insts).expect("published entry loads");
        assert_eq!(loaded.insts(), resident.insts());
        // Warm entry: immediate cache hit, no new flight.
        assert!(matches!(store.stream_capture_shared(spec, insts), StreamCapture::CacheHit));
        assert_eq!(store.stats().trace_misses, 1);
    }

    #[test]
    fn stream_capture_shared_joiners_wait_for_the_leader() {
        let s = Scratch::new("stream-capture-join");
        let store = Arc::new(Store::open(&s.0).unwrap());
        let spec = &standard_traces()[2];
        let insts = 2_000usize;
        let outcomes: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    match store.stream_capture_shared(spec, insts) {
                        StreamCapture::Leader(mut cap) => {
                            use xbc_workload::InstSource;
                            let mut src = cap.take_source();
                            while src.next_inst().is_some() {}
                            cap.finish();
                            outcomes.lock().unwrap().push("leader");
                        }
                        StreamCapture::Joined => {
                            // The entry must be on disk by the time a
                            // joiner wakes.
                            assert!(store.open_trace_stream(spec, insts).is_some());
                            outcomes.lock().unwrap().push("joined");
                        }
                        StreamCapture::CacheHit => {
                            outcomes.lock().unwrap().push("hit");
                        }
                    }
                });
            }
        });
        let outcomes = outcomes.into_inner().unwrap();
        let leaders = outcomes.iter().filter(|o| **o == "leader").count();
        assert_eq!(leaders, 1, "exactly one racer captures: {outcomes:?}");
        assert_eq!(store.stats().trace_misses, 1);
    }

    #[test]
    fn dropped_overlapped_capture_still_persists() {
        let s = Scratch::new("stream-capture-drop");
        let store = Arc::new(Store::open(&s.0).unwrap());
        let spec = &standard_traces()[3];
        let insts = 1_500usize;
        match store.stream_capture_shared(spec, insts) {
            StreamCapture::Leader(cap) => drop(cap), // simulation abandoned
            _ => panic!("cold entry must lead"),
        }
        // The detached capture thread still publishes the entry; a
        // retrying leader finds it on disk (poll briefly — the thread
        // is detached).
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match store.stream_capture_shared(spec, insts) {
                StreamCapture::CacheHit => break,
                StreamCapture::Leader(cap) => {
                    drop(cap);
                    assert!(Instant::now() < deadline, "entry never appeared");
                    std::thread::sleep(Duration::from_millis(20));
                }
                StreamCapture::Joined => break,
            }
        }
        let resident = spec.capture(insts);
        let loaded = store.load_trace(spec, insts).expect("entry persisted");
        assert_eq!(loaded.insts(), resident.insts());
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let s = Scratch::new("threads");
        let store = Store::open(&s.0).unwrap();
        let specs = standard_traces();
        std::thread::scope(|scope| {
            for spec in specs.iter().take(4) {
                scope.spawn(|| {
                    let t = store.get_or_capture(spec, 800);
                    assert_eq!(t.inst_count(), 800);
                });
            }
        });
        assert_eq!(store.stats().trace_misses, 4);
    }
}
