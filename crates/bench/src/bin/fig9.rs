//! Regenerates paper **Figure 9**: XBC versus TC uop miss rate as the
//! cache size varies.
//!
//! The paper's findings: the XBC misses substantially less at every size,
//! the gap is most pronounced at small sizes, the *relative* reduction is
//! roughly constant (~29% in the paper), and the TC needs >50% more
//! capacity to match the XBC's hit rate.
//!
//! ```text
//! cargo run --release -p xbc-bench --bin fig9 [-- --inst N --traces a,b]
//! ```

use xbc_sim::{average_miss_rate, pivot_table, FrontendSpec, HarnessArgs, Row};

/// The swept cache budgets, in uops.
const SIZES: [usize; 6] = [2048, 4096, 8192, 16384, 32768, 65536];

fn main() {
    let args = HarnessArgs::from_env();
    let mut frontends = Vec::new();
    for &s in &SIZES {
        frontends.push(FrontendSpec::Tc { total_uops: s, ways: 4 });
        frontends.push(FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true });
    }
    let rows = args.run_sweep(frontends);

    println!(
        "{}",
        pivot_table(&rows, "Figure 9: uop miss rate (%) vs cache size", |r| 100.0 * r.miss_rate)
    );

    println!("{:>8} {:>10} {:>10} {:>12}", "size", "tc-miss%", "xbc-miss%", "reduction");
    let by = |rows: &[Row], spec: FrontendSpec| -> Vec<Row> {
        rows.iter().filter(|r| r.frontend == spec).cloned().collect()
    };
    for &s in &SIZES {
        let tc = average_miss_rate(&by(&rows, FrontendSpec::Tc { total_uops: s, ways: 4 }));
        let xbc = average_miss_rate(&by(
            &rows,
            FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true },
        ));
        println!(
            "{:>7}K {:>9.2}% {:>9.2}% {:>11.1}%",
            s / 1024,
            100.0 * tc,
            100.0 * xbc,
            100.0 * (1.0 - xbc / tc)
        );
    }
    println!("paper: ~29% fewer misses at all sizes");

    // The "TC needs >50% more capacity" claim: find, for each XBC size,
    // the smallest swept TC size whose average miss rate matches it.
    println!();
    println!("capacity to match (paper: TC must grow by more than 50%):");
    for (i, &s) in SIZES.iter().enumerate() {
        let xbc = average_miss_rate(&by(
            &rows,
            FrontendSpec::Xbc { total_uops: s, ways: 2, promotion: true },
        ));
        let needed = SIZES[i..]
            .iter()
            .find(|&&ts| {
                average_miss_rate(&by(&rows, FrontendSpec::Tc { total_uops: ts, ways: 4 })) <= xbc
            })
            .copied();
        match needed {
            Some(ts) => println!(
                "  xbc @ {:>2}K uops ≈ tc @ {:>2}K uops ({}x)",
                s / 1024,
                ts / 1024,
                ts / s
            ),
            None => println!(
                "  xbc @ {:>2}K uops: no swept TC size reaches it (>{}x needed)",
                s / 1024,
                SIZES.last().unwrap() / s
            ),
        }
    }
    args.maybe_dump_json(&rows);
}
