//! Shared build-mode engine.
//!
//! Both the trace-cache baseline and the XBC frontend fall back to the same
//! IC-based pipeline when their structure misses (paper Figure 6, upper
//! path): the BTB steers fetch, one instruction-cache line is fetched per
//! cycle, the decoder translates a bounded number of instructions, and the
//! decoded uops go to the renamer — while a fill unit observes them to
//! build traces/XBs.

use crate::oracle::OracleStream;
use crate::probe::Probe;
use xbc_isa::{Addr, BranchKind};
use xbc_obs::{CycleKind, Event, EventSink, MispredictKind, UopSource};
use xbc_predict::{
    Btb, BtbConfig, BtbEntry, DirPredictor, GshareConfig, IndirectPredictor, ReturnStack,
};
use xbc_uarch::{Decoder, DecoderConfig, ICache, ICacheConfig};
use xbc_workload::DynInst;

/// Pipeline timing constants shared by all frontends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingConfig {
    /// Cycles lost to a branch misprediction (flush + refill of the
    /// frontend pipe).
    pub mispredict_penalty: u64,
    /// Renamer width in uops per cycle. The paper fixes this at 8.
    pub renamer_width: usize,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig { mispredict_penalty: 10, renamer_width: 8 }
    }
}

/// The predictor set shared between build and delivery modes: the
/// conditional direction predictor (gshare — the paper's XBP), an
/// indirect-target predictor keyed by branch IP and path history, and a
/// return stack of addresses.
#[derive(Clone, Debug)]
pub struct Predictors {
    /// Conditional direction predictor (the paper's XBP; gshare by
    /// default, swappable for ablations).
    pub dir: DirPredictor,
    /// Indirect jump/call target predictor.
    pub indirect: IndirectPredictor<Addr>,
    /// Return address stack.
    pub rsb: ReturnStack<Addr>,
}

impl Predictors {
    /// Creates the paper's predictor complement: 16-bit gshare, a 4K-entry
    /// history-hashed indirect table, and a 32-deep return stack.
    pub fn new(gshare: GshareConfig) -> Self {
        Self::with_dir(DirPredictor::gshare(gshare))
    }

    /// Like [`Predictors::new`] but with an explicit direction predictor
    /// (for predictor ablations).
    pub fn with_dir(dir: DirPredictor) -> Self {
        Predictors { dir, indirect: IndirectPredictor::new(12, 6), rsb: ReturnStack::new(32) }
    }

    /// Resolves one committed branch against the predictors, updating them
    /// and returning `true` if the frontend would have predicted it
    /// correctly. Non-branches return `true` without touching anything.
    ///
    /// `btb_known` tells whether fetch even knew a branch was there (from a
    /// BTB hit or from structure metadata); an unknown *taken* branch is a
    /// mis-fetch regardless of predictor state.
    pub fn resolve(&mut self, d: &DynInst, btb_known: bool) -> bool {
        let ip = d.inst.ip;
        match d.inst.branch {
            BranchKind::None => true,
            BranchKind::CondDirect => {
                let predicted = btb_known && self.dir.predict(ip);
                self.dir.update(ip, d.taken);
                predicted == d.taken
            }
            BranchKind::UncondDirect => btb_known,
            BranchKind::CallDirect => {
                self.rsb.push(d.inst.next_seq());
                btb_known
            }
            BranchKind::IndirectJump => {
                let pred = self.indirect.predict(ip, self.dir.history());
                self.indirect.update(ip, self.dir.history(), d.next_ip);
                btb_known && pred == Some(d.next_ip)
            }
            BranchKind::IndirectCall => {
                let pred = self.indirect.predict(ip, self.dir.history());
                self.indirect.update(ip, self.dir.history(), d.next_ip);
                self.rsb.push(d.inst.next_seq());
                btb_known && pred == Some(d.next_ip)
            }
            BranchKind::Return => {
                let pred = self.rsb.pop();
                btb_known && pred == Some(d.next_ip)
            }
        }
    }
}

/// Observer fed every committed instruction delivered in build mode; fill
/// units (trace-cache fill, the XBC's XFU) implement this.
pub trait FillSink {
    /// Called once per committed instruction, in order.
    fn observe(&mut self, d: &DynInst);
}

/// A sink that builds nothing (pure-IC frontend).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFill;

impl FillSink for NoFill {
    fn observe(&mut self, _d: &DynInst) {}
}

/// The IC-based build pipeline: instruction cache + BTB + decoder.
#[derive(Clone, Debug)]
pub struct BuildEngine {
    icache: ICache,
    btb: Btb,
    decoder: Decoder,
    timing: TimingConfig,
    /// Remaining stall cycles (IC miss or misprediction resteer).
    stall: u64,
}

impl BuildEngine {
    /// Creates a build engine.
    pub fn new(
        icache: ICacheConfig,
        btb: BtbConfig,
        decoder: DecoderConfig,
        timing: TimingConfig,
    ) -> Self {
        BuildEngine {
            icache: ICache::new(icache),
            btb: Btb::new(btb),
            decoder: Decoder::new(decoder),
            timing,
            stall: 0,
        }
    }

    /// Schedules `cycles` of stall (used by frontends to charge delivery-
    /// mode mispredictions through the same mechanism).
    pub fn add_stall(&mut self, cycles: u64) {
        self.stall += cycles;
    }

    /// True if a stall is pending.
    pub fn stalled(&self) -> bool {
        self.stall > 0
    }

    /// Takes the pending stall cycles (used when a frontend switches out of
    /// build mode and must carry the remaining stall with it).
    pub fn take_stall(&mut self) -> u64 {
        std::mem::take(&mut self.stall)
    }

    /// Runs one build-mode cycle: delivers zero or more committed
    /// instructions from the IC path, feeding `fill`. Emits IC-uop and
    /// mispredict events through `probe` and returns the kind of cycle
    /// this was — the *caller* closes the cycle by emitting
    /// `Event::Cycle(kind)` as its last event, so installs and mode
    /// switches that follow this call still land inside the same cycle.
    ///
    /// # Panics
    ///
    /// Panics if called when `oracle` is exhausted.
    pub fn cycle<E: EventSink, F: FillSink>(
        &mut self,
        oracle: &mut OracleStream<'_>,
        preds: &mut Predictors,
        probe: &mut Probe<'_, E>,
        fill: &mut F,
    ) -> CycleKind {
        assert!(!oracle.done(), "build cycle past end of trace");
        if self.stall > 0 {
            self.stall -= 1;
            return CycleKind::Stall;
        }

        let ip = oracle.fetch_ip();
        let access = self.icache.fetch(ip);
        if !access.hit {
            // This cycle initiated the fill; stall for the remainder.
            self.stall += access.penalty;
            return CycleKind::Build;
        }
        let line_start = self.icache.line_of(ip).raw();
        let line_bytes = self.icache.config().line_bytes as u64;
        self.decoder.begin_cycle();
        let mut delivered = 0usize;

        while let Some(d) = oracle.current().copied() {
            let inst_ip = d.inst.ip.raw();
            if inst_ip < line_start || inst_ip >= line_start + line_bytes {
                break; // next fetch line, next cycle
            }
            if !self.decoder.try_consume(&d.inst) {
                break; // decode width exhausted
            }
            if delivered + d.inst.uops as usize > self.timing.renamer_width {
                break; // renamer width exhausted
            }
            fill.observe(&d);
            // The instruction may already be partially delivered if a
            // structure frontend switched to build mode mid-instruction
            // (bank-conflict fetches stop at line, not instruction,
            // boundaries); only the remainder flows through here.
            let n = oracle.take_inst();
            debug_assert!(n >= 1 && n <= d.inst.uops as usize);
            delivered += n;

            if d.inst.branch.is_branch() {
                let btb_known = self.btb.lookup(d.inst.ip).is_some();
                let correct = preds.resolve(&d, btb_known);
                // Train the BTB on every executed branch.
                self.btb.update(d.inst.ip, BtbEntry { kind: d.inst.branch, target: d.inst.target });
                if !correct {
                    self.stall += self.timing.mispredict_penalty;
                    probe.emit(Event::Mispredict(
                        if matches!(d.inst.branch, BranchKind::CondDirect) {
                            MispredictKind::Cond
                        } else {
                            MispredictKind::Target
                        },
                    ));
                    break;
                }
                if d.taken {
                    break; // fetch cannot continue past a taken branch
                }
            }
        }
        if delivered > 0 {
            probe.emit(Event::Uops { src: UopSource::Ic, n: xbc_obs::saturate_u16(delivered) });
        }
        CycleKind::Build
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> xbc_uarch::CacheStats {
        self.icache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FrontendMetrics;
    use xbc_isa::Inst;
    use xbc_workload::{CondBehavior, ProgramBuilder, Trace};

    /// One engine cycle with the metrics-only probe, closing the cycle
    /// the way a frontend's `step` does.
    fn run_cycle<F: FillSink>(
        e: &mut BuildEngine,
        o: &mut OracleStream<'_>,
        p: &mut Predictors,
        m: &mut FrontendMetrics,
        f: &mut F,
    ) {
        let mut probe = Probe::untraced(m);
        let kind = e.cycle(o, p, &mut probe, f);
        probe.emit(Event::Cycle(kind));
    }

    fn straight_line_trace(n_insts: usize) -> Trace {
        // 32 plain 1-byte 1-uop insts then a return, looped by wrap.
        let mut b = ProgramBuilder::new();
        for i in 0..32u64 {
            b.push(Inst::plain(Addr::new(0x100 + i), 1, 1));
        }
        b.push(Inst::new(Addr::new(0x120), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x100), 1);
        Trace::capture("s", &p, 0, n_insts)
    }

    fn engine() -> BuildEngine {
        BuildEngine::new(
            ICacheConfig { size_bytes: 1024, line_bytes: 16, ways: 2, miss_penalty: 3 },
            BtbConfig { entries: 64, ways: 2 },
            DecoderConfig { insts_per_cycle: 4, uops_per_cycle: 6 },
            TimingConfig { mispredict_penalty: 5, renamer_width: 8 },
        )
    }

    #[test]
    fn straight_line_throughput_is_decoder_bound() {
        let t = straight_line_trace(64);
        let mut o = OracleStream::new(&t);
        let mut e = engine();
        let mut p = Predictors::new(GshareConfig { history_bits: 8 });
        let mut m = FrontendMetrics::default();
        while !o.done() {
            run_cycle(&mut e, &mut o, &mut p, &mut m, &mut NoFill);
        }
        assert_eq!(m.ic_uops, 64);
        // 4 insts/cycle max on 1-uop insts, plus IC misses and the return
        // mispredicts; far fewer cycles than 64.
        assert!(m.build_cycles >= 16, "cycles {}", m.build_cycles);
        assert!(m.cycles < 64, "cycles {}", m.cycles);
    }

    #[test]
    fn ic_miss_stalls() {
        let t = straight_line_trace(4);
        let mut o = OracleStream::new(&t);
        let mut e = engine();
        let mut p = Predictors::new(GshareConfig { history_bits: 8 });
        let mut m = FrontendMetrics::default();
        // First cycle: cold IC miss, nothing delivered.
        run_cycle(&mut e, &mut o, &mut p, &mut m, &mut NoFill);
        assert_eq!(m.ic_uops, 0);
        assert!(e.stalled());
        // 3 stall cycles follow.
        for _ in 0..3 {
            run_cycle(&mut e, &mut o, &mut p, &mut m, &mut NoFill);
        }
        assert!(!e.stalled());
        run_cycle(&mut e, &mut o, &mut p, &mut m, &mut NoFill);
        assert!(m.ic_uops > 0);
        assert_eq!(m.stall_cycles, 3);
    }

    #[test]
    fn unknown_taken_branch_mispredicts_then_learns() {
        // A tight always-taken loop: first encounter misses the BTB
        // (mis-fetch); afterwards gshare + BTB predict it.
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x10), 1, 1));
        b.push_cond(
            Inst::new(Addr::new(0x11), 1, 1, BranchKind::CondDirect, Some(Addr::new(0x10))),
            CondBehavior::Bernoulli { p_taken: 1.0 },
        );
        b.push(Inst::new(Addr::new(0x12), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        let t = Trace::capture("l", &p, 0, 400);
        let mut o = OracleStream::new(&t);
        let mut e = engine();
        let mut preds = Predictors::new(GshareConfig { history_bits: 8 });
        let mut m = FrontendMetrics::default();
        while !o.done() {
            run_cycle(&mut e, &mut o, &mut preds, &mut m, &mut NoFill);
        }
        assert!(m.cond_mispredicts >= 1);
        // After warm-up the loop branch predicts perfectly: misses stay low.
        assert!(m.cond_mispredicts < 25, "mispredicts {}", m.cond_mispredicts);
        assert_eq!(m.ic_uops, 400);
    }

    #[test]
    fn fill_sink_sees_every_instruction() {
        struct Count(u64);
        impl FillSink for Count {
            fn observe(&mut self, _d: &DynInst) {
                self.0 += 1;
            }
        }
        let t = straight_line_trace(40);
        let mut o = OracleStream::new(&t);
        let mut e = engine();
        let mut p = Predictors::new(GshareConfig { history_bits: 8 });
        let mut m = FrontendMetrics::default();
        let mut c = Count(0);
        while !o.done() {
            run_cycle(&mut e, &mut o, &mut p, &mut m, &mut c);
        }
        assert_eq!(c.0, 40);
    }

    #[test]
    fn taken_branch_ends_fetch_cycle() {
        // inst at 0x10 (1 uop), taken jmp at 0x11 to 0x18, inst at 0x18, ret.
        let mut b = ProgramBuilder::new();
        b.push(Inst::plain(Addr::new(0x10), 1, 1));
        b.push(Inst::new(Addr::new(0x11), 1, 1, BranchKind::UncondDirect, Some(Addr::new(0x18))));
        b.push(Inst::plain(Addr::new(0x18), 1, 1));
        b.push(Inst::new(Addr::new(0x19), 1, 1, BranchKind::Return, None));
        let p = b.build(Addr::new(0x10), 1);
        let t = Trace::capture("j", &p, 0, 4);
        let mut o = OracleStream::new(&t);
        let mut e = engine();
        let mut preds = Predictors::new(GshareConfig { history_bits: 8 });
        let mut m = FrontendMetrics::default();
        // Warm the IC and BTB first by running to completion once is not
        // possible (single capture); instead check that after the taken jmp
        // at most 2 insts were delivered in its cycle even though all four
        // fit in one line.
        // Cycle 1: IC miss.
        run_cycle(&mut e, &mut o, &mut preds, &mut m, &mut NoFill);
        while e.stalled() {
            run_cycle(&mut e, &mut o, &mut preds, &mut m, &mut NoFill);
        }
        let before = o.inst_index();
        run_cycle(&mut e, &mut o, &mut preds, &mut m, &mut NoFill);
        let after = o.inst_index();
        assert!(after - before <= 2, "taken branch must stop the fetch cycle");
    }
}
