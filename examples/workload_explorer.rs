//! Explores the synthetic workload substrate: the full characterization
//! report behind DESIGN.md §3's substitution argument — block lengths
//! (paper Figure 1), branch mix, predictability, dispatch burstiness,
//! fan-in, and code footprint — for every trace in the 21-trace suite.
//!
//! ```text
//! cargo run --release --example workload_explorer [insts]
//! ```

use xbc_workload::{analyze, standard_traces};

fn main() {
    let insts: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);
    println!("standard suite, {insts} instructions per trace");
    println!();
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>7} {:>7} {:>6} {:>6} {:>9}",
        "trace",
        "bb",
        "xb",
        "promo",
        "dual",
        "cond%",
        "gshare%",
        "sticky%",
        "fanin",
        "join%",
        "footprint"
    );
    for spec in standard_traces() {
        let r = analyze(&spec.capture(insts));
        println!(
            "{:<18} {:>6.2} {:>6.2} {:>6.2} {:>6.2} | {:>5.1}% {:>6.1}% {:>6.1}% {:>6.2} {:>5.1}% {:>8}u",
            spec.name,
            r.blocks.basic_block.mean(),
            r.blocks.xb.mean(),
            r.blocks.xb_promoted.mean(),
            r.blocks.dual_xb.mean(),
            100.0 * r.mix.cond,
            100.0 * r.gshare_accuracy,
            100.0 * r.indirect_repeat_rate,
            r.mean_fanin,
            100.0 * r.join_fraction,
            r.footprint_uops,
        );
    }
    println!();
    println!("paper Figure 1 averages: bb 7.7, xb 8.0, promoted 10.0, dual 12.7 uops");
    println!("columns: gshare% = 16-bit gshare accuracy on this horizon;");
    println!("         sticky% = indirect branches repeating their last target;");
    println!("         fanin   = mean distinct branch sources per taken-target;");
    println!("         join%   = taken-targets reached from 2+ sources.");
}
