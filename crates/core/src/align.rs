//! The reorder & align network (paper §3.7, Figure 7).
//!
//! Each cycle the banks emit up to one line apiece, in *bank* order, with
//! uops stored in *reverse* order inside each line. Two mux layers turn
//! that jumble into the in-order uop stream the renamer sees:
//!
//! 1. the **reorder layer** arranges the lines by (XB priority, descending
//!    order field) — earliest program-order line first, and
//! 2. the **align layer** compacts partially-filled lines so the output is
//!    a dense run of uops ("a careful design ... accomplishes the
//!    reordering and alignment in just one cycle").
//!
//! The simulator's fast path only needs uop *counts*, but this module
//! materializes the actual network output so the datapath is testable: the
//! property `align(reorder(bank outputs)) == read_window(...)` is checked
//! by unit tests and (in debug builds) by the frontend on every fetch.

use crate::array::Assembly;
use crate::array::XbcArray;
use crate::ptr::XbPtr;
use xbc_isa::Uop;

/// One bank's output for the cycle: the raw reverse-ordered uops of the
/// selected line, plus the tag-array metadata steering the muxes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BankOutput {
    /// Which fetch slot (XB) this line belongs to (priority encoder output).
    pub xb_index: usize,
    /// The line's order field (0 = primary/end bank).
    pub order: u8,
    /// Reverse-ordered uops as stored (slot 0 = latest in program order).
    pub uops: Vec<Uop>,
    /// Uops of this line actually selected by the entry offset (from the
    /// end side); `uops.len()` when the whole line is in the window.
    pub selected: usize,
}

/// The reorder layer: sorts bank outputs into program order — by fetch
/// slot, then by *descending* order field (higher order = earlier uops).
pub fn reorder(mut outputs: Vec<BankOutput>) -> Vec<BankOutput> {
    outputs.sort_by(|a, b| a.xb_index.cmp(&b.xb_index).then(b.order.cmp(&a.order)));
    outputs
}

/// The align layer: concatenates the selected uops of reordered lines into
/// the dense, program-ordered stream (un-reversing each line).
pub fn align(reordered: &[BankOutput]) -> Vec<Uop> {
    let mut out = Vec::new();
    for line in reordered {
        // Selected uops are the *oldest* `selected` positions-from-end of
        // this line, i.e. the highest slots; emit them oldest-first.
        let n = line.selected.min(line.uops.len());
        for uop in line.uops[..n].iter().rev() {
            out.push(*uop);
        }
    }
    out
}

/// Convenience: builds the bank outputs a fetch of `ptr` produces from an
/// assembled XB, runs them through both mux layers, and returns the
/// delivered uops in program order.
///
/// # Panics
///
/// Panics if `ptr.offset` exceeds the assembly's stored length.
pub fn fetch_through_network(
    array: &XbcArray,
    set: usize,
    asm: &Assembly,
    ptr: &XbPtr,
    xb_index: usize,
) -> Vec<Uop> {
    let offset = ptr.offset as usize;
    assert!(offset <= asm.total_uops, "entry offset beyond the stored XB");
    let line_uops = array.line_uops();
    let needed = offset.div_ceil(line_uops);
    let mut outputs = Vec::with_capacity(needed);
    for (order, &(bank, way)) in asm.lines[..needed].iter().enumerate() {
        // The host arena stores lines in program order; the hardware bank
        // emits them reverse-ordered (slot 0 = latest), so reconstruct
        // that view for the network model.
        let uops: Vec<Uop> = array
            .line_uops_at(set, bank as usize, way as usize)
            .expect("assembled line present")
            .iter()
            .rev()
            .copied()
            .collect();
        let line_lo = order * line_uops; // position-from-end of slot 0
        let selected = (offset - line_lo).min(uops.len());
        outputs.push(BankOutput { xb_index, order: order as u8, uops, selected });
    }
    align(&reorder(outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XbcConfig;
    use crate::ptr::BankMask;
    use xbc_isa::{Addr, UopId, UopKind};

    fn mk_uop(n: u64) -> Uop {
        Uop::new(
            UopId::new(Addr::new(0x1000 + n), 0),
            UopKind::Alu,
            true,
            xbc_isa::BranchKind::None,
        )
    }

    fn seeded_array(len: usize) -> (XbcArray, Addr, Vec<Uop>) {
        let mut a = XbcArray::new(&XbcConfig { total_uops: 128, ..XbcConfig::default() });
        let uops: Vec<Uop> = (0..len as u64).map(mk_uop).collect();
        let ip = Addr::new(0x1000 + len as u64 - 1);
        a.insert(ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
        (a, ip, uops)
    }

    #[test]
    fn network_reproduces_full_xb() {
        let (mut a, ip, uops) = seeded_array(11);
        let (set, tag) = a.set_and_tag(ip);
        let asm = a.assemble(set, tag, None).unwrap();
        let ptr = XbPtr::new(ip, Addr::new(0x1000), asm.mask, 11);
        let out = fetch_through_network(&a, set, &asm, &ptr, 0);
        assert_eq!(out, uops);
    }

    #[test]
    fn network_reproduces_every_entry_window() {
        let (mut a, ip, uops) = seeded_array(13);
        let (set, tag) = a.set_and_tag(ip);
        let asm = a.assemble(set, tag, None).unwrap();
        for offset in 1..=13u8 {
            let ptr = XbPtr::new(ip, Addr::new(0), asm.mask, offset);
            let out = fetch_through_network(&a, set, &asm, &ptr, 0);
            assert_eq!(out, &uops[13 - offset as usize..], "offset {offset}");
            // And it matches the analytical window read.
            assert_eq!(out, a.read_window(set, &asm, offset as usize));
        }
    }

    #[test]
    fn reorder_sorts_by_slot_then_descending_order() {
        let line = |xb, order| BankOutput { xb_index: xb, order, uops: vec![], selected: 0 };
        let shuffled = vec![line(1, 0), line(0, 0), line(1, 1), line(0, 2), line(0, 1)];
        let sorted = reorder(shuffled);
        let keys: Vec<(usize, u8)> = sorted.iter().map(|l| (l.xb_index, l.order)).collect();
        assert_eq!(keys, vec![(0, 2), (0, 1), (0, 0), (1, 1), (1, 0)]);
    }

    #[test]
    fn align_unreverses_and_compacts() {
        // Two lines of one XB: order 1 holds [u2, u1, u0] reversed means
        // stored slot0=u2? No: reverse storage puts latest first. Build by
        // hand: program order u0..u5; order-1 line stores positions 4..5
        // (u1, u0 at slots 0,1 => [u1, u0]); order-0 stores positions 0..3
        // ([u5, u4, u3, u2]).
        let u: Vec<Uop> = (0..6).map(mk_uop).collect();
        let order1 = BankOutput { xb_index: 0, order: 1, uops: vec![u[1], u[0]], selected: 2 };
        let order0 =
            BankOutput { xb_index: 0, order: 0, uops: vec![u[5], u[4], u[3], u[2]], selected: 4 };
        let out = align(&reorder(vec![order0.clone(), order1.clone()]));
        assert_eq!(out, u);
        // Partial selection: entering 3 uops from the end only.
        let part = BankOutput { selected: 3, ..order0 };
        let out = align(&[part]);
        assert_eq!(out, vec![u[3], u[4], u[5]]);
    }

    #[test]
    fn two_xbs_interleave_correctly() {
        let mut a = XbcArray::new(&XbcConfig { total_uops: 128, ..XbcConfig::default() });
        let u1: Vec<Uop> = (0..6u64).map(mk_uop).collect();
        let ip1 = Addr::new(0x1005);
        let m1 = a.insert(ip1, &u1, 0, BankMask::EMPTY, BankMask::EMPTY);
        let u2: Vec<Uop> = (100..105u64).map(mk_uop).collect();
        let ip2 = Addr::new(0x1068);
        let m2 = a.insert(ip2, &u2, 0, BankMask::EMPTY, m1);
        let (s1, t1) = a.set_and_tag(ip1);
        let (s2, t2) = a.set_and_tag(ip2);
        let a1 = a.assemble(s1, t1, Some(m1)).unwrap();
        let a2 = a.assemble(s2, t2, Some(m2)).unwrap();
        let mut out = fetch_through_network(&a, s1, &a1, &XbPtr::new(ip1, Addr::new(0), m1, 6), 0);
        out.extend(fetch_through_network(&a, s2, &a2, &XbPtr::new(ip2, Addr::new(0), m2, 5), 1));
        let mut expect = u1.clone();
        expect.extend(&u2);
        assert_eq!(out, expect);
    }
}
