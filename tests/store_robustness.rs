//! Exhaustive single-byte corruption sweep over the on-disk store formats.
//!
//! For a small cached `XBT1` trace entry and an `XBR1` result entry, flip
//! every byte of the file in turn and verify that the store (a) never
//! panics, (b) detects the corruption, logs it, evicts the entry, and
//! reports a miss, and (c) regenerates a byte-identical replacement. This
//! pins the whole corruption-handling surface — magic, header fields,
//! varint payload, CRC trailer — not just one lucky offset.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use xbc_sim::{result_key, FrontendSpec, Sweep};
use xbc_store::Store;
use xbc_workload::{standard_traces, TraceSpec};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbc-robust-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// The single file in a store subdirectory.
fn only_file(dir: &std::path::Path) -> PathBuf {
    let mut it = fs::read_dir(dir).unwrap();
    let path = it.next().expect("one cache file").unwrap().path();
    assert!(it.next().is_none(), "expected exactly one cache file");
    path
}

#[test]
fn every_single_byte_flip_in_a_trace_entry_is_caught() {
    let dir = scratch("trace-flips");
    let store = Store::open(&dir).unwrap();
    let spec = &standard_traces()[0];
    // Small on purpose: the sweep is O(file size) loads.
    let original = store.get_or_capture(spec, 40);
    let path = only_file(&dir.join("traces"));
    let pristine = fs::read(&path).unwrap();
    assert!(pristine.len() < 4096, "keep the exhaustive sweep cheap");

    for i in 0..pristine.len() {
        let mut raw = pristine.clone();
        raw[i] ^= 0xA5;
        fs::write(&path, &raw).unwrap();
        // Must be detected: a miss, never a panic, never wrong data.
        assert!(
            store.load_trace(spec, 40).is_none(),
            "flip at byte {i}/{} went undetected",
            pristine.len()
        );
        assert!(!path.exists(), "flip at byte {i}: corrupt entry must be deleted");
    }
    assert_eq!(store.stats().corrupt_entries, pristine.len() as u64);

    // Regeneration restores a byte-identical entry.
    let regenerated = store.get_or_capture(spec, 40);
    assert_eq!(regenerated.insts(), original.insts());
    assert_eq!(fs::read(&path).unwrap(), pristine, "regenerated entry must be byte-identical");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_byte_flip_in_a_result_entry_is_caught() {
    let dir = scratch("result-flips");
    let store = Store::open(&dir).unwrap();
    let key = "row|trace=spec.gcc|fe=xbc-32k|insts=1000|code=1";
    let body = "{\"miss_rate\":0.25,\"uops_per_cycle\":11.5}";
    store.store_result(key, body);
    let path = only_file(&dir.join("results"));
    let pristine = fs::read(&path).unwrap();

    for i in 0..pristine.len() {
        let mut raw = pristine.clone();
        raw[i] ^= 0xA5;
        fs::write(&path, &raw).unwrap();
        assert!(
            store.load_result(key).is_none(),
            "flip at byte {i}/{} went undetected",
            pristine.len()
        );
        assert!(!path.exists(), "flip at byte {i}: corrupt entry must be deleted");
    }
    assert_eq!(store.stats().corrupt_entries, pristine.len() as u64);

    // Regenerate and verify the store serves the true body again.
    store.store_result(key, body);
    assert_eq!(store.load_result(key).as_deref(), Some(body));
    assert_eq!(fs::read(&path).unwrap(), pristine, "rewritten entry must be byte-identical");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn undecodable_cached_row_is_evicted_and_regenerated() {
    // A result entry can pass the store's CRC yet fail to decode at the
    // sweep layer (e.g. a row written by an older schema). The sweep
    // must evict the stale entry — not just recompute around it — so the
    // next run replays a freshly written, decodable row.
    let dir = scratch("undecodable-row");
    let store = Arc::new(Store::open(&dir).unwrap());
    let traces: Vec<TraceSpec> = standard_traces().into_iter().take(2).collect();
    let frontends = vec![FrontendSpec::Ic, FrontendSpec::xbc_default()];
    let mut sweep =
        Sweep::new(traces.clone(), frontends.clone(), 2_000).with_store(Arc::clone(&store));
    sweep.progress = false;
    let fresh = sweep.run();
    assert_eq!(store.stats().result_misses, 4);

    // Forge a CRC-valid entry whose body is not a single-row array.
    let key = result_key(&traces[0], &frontends[1], 2_000);
    store.store_result(&key, "[]");
    let before = store.stats();
    let again = sweep.run();
    let after = store.stats();
    assert_eq!(after.corrupt_entries, before.corrupt_entries + 1, "stale entry must be evicted");
    for (f, a) in fresh.iter().zip(&again) {
        assert_eq!(f.cycles, a.cycles);
        assert_eq!(f.miss_rate, a.miss_rate);
    }

    // The recomputed cell was written back: a third run decodes all four
    // rows from cache with no further eviction and no simulation.
    let third = sweep.run();
    let done = store.stats();
    assert_eq!(done.corrupt_entries, after.corrupt_entries, "no repeat eviction");
    assert_eq!(done.result_hits, after.result_hits + 4);
    assert_eq!(done.trace_hits, after.trace_hits, "a fully cached run touches no trace");
    for (f, t) in fresh.iter().zip(&third) {
        assert_eq!(f.cycles, t.cycles);
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_every_length_is_caught() {
    // Complement of the flip sweep: drop the tail at every possible
    // length, including zero-length files.
    let dir = scratch("trunc-all");
    let store = Store::open(&dir).unwrap();
    let spec = &standard_traces()[1];
    store.get_or_capture(spec, 30);
    let path = only_file(&dir.join("traces"));
    let pristine = fs::read(&path).unwrap();

    for len in 0..pristine.len() {
        fs::write(&path, &pristine[..len]).unwrap();
        assert!(store.load_trace(spec, 30).is_none(), "truncation to {len} bytes went undetected");
    }
    fs::write(&path, &pristine).unwrap();
    assert!(store.load_trace(spec, 30).is_some(), "pristine entry must still load");
    fs::remove_dir_all(&dir).ok();
}
