//! A pluggable conditional-direction predictor.
//!
//! The paper fixes a 16-bit gshare (§4), but the predictor ablation swaps
//! in the classical alternatives through this common interface.

use crate::{
    Bimodal, Gshare, GshareConfig, LocalConfig, LocalPredictor, PredictorStats, Tournament,
    TournamentConfig,
};
use xbc_isa::Addr;

/// A conditional direction predictor of any of the implemented families.
#[derive(Clone, Debug)]
pub enum DirPredictor {
    /// Global-history gshare (the paper's XBP).
    Gshare(Gshare),
    /// Per-address 2-bit counters.
    Bimodal(Bimodal),
    /// Two-level local-history (PAg).
    Local(LocalPredictor),
    /// McFarling combining predictor (gshare + bimodal + chooser).
    Tournament(Tournament),
}

impl DirPredictor {
    /// The paper's default: 16-bit-history gshare.
    pub fn gshare(cfg: GshareConfig) -> Self {
        DirPredictor::Gshare(Gshare::new(cfg))
    }

    /// A bimodal predictor with `2^index_bits` counters.
    pub fn bimodal(index_bits: u32) -> Self {
        DirPredictor::Bimodal(Bimodal::new(index_bits))
    }

    /// A two-level local predictor.
    pub fn local(cfg: LocalConfig) -> Self {
        DirPredictor::Local(LocalPredictor::new(cfg))
    }

    /// A McFarling combining predictor.
    pub fn tournament(cfg: TournamentConfig) -> Self {
        DirPredictor::Tournament(Tournament::new(cfg))
    }

    /// Predicts the direction of the conditional branch at `ip`.
    pub fn predict(&self, ip: Addr) -> bool {
        match self {
            DirPredictor::Gshare(p) => p.predict(ip),
            DirPredictor::Bimodal(p) => p.predict(ip),
            DirPredictor::Local(p) => p.predict(ip),
            DirPredictor::Tournament(p) => p.predict(ip),
        }
    }

    /// Updates with the resolved direction; returns whether the pre-update
    /// state predicted correctly.
    pub fn update(&mut self, ip: Addr, taken: bool) -> bool {
        match self {
            DirPredictor::Gshare(p) => p.update(ip, taken),
            DirPredictor::Bimodal(p) => p.update(ip, taken),
            DirPredictor::Local(p) => p.update(ip, taken),
            DirPredictor::Tournament(p) => p.update(ip, taken),
        }
    }

    /// Global path history for hashing indirect predictors; predictors
    /// without a global history register report 0 (degrading the XiBTB to
    /// a last-target table, which remains correct).
    pub fn history(&self) -> u64 {
        match self {
            DirPredictor::Gshare(p) => p.history(),
            DirPredictor::Tournament(p) => p.history(),
            DirPredictor::Bimodal(_) | DirPredictor::Local(_) => 0,
        }
    }

    /// Accuracy statistics.
    pub fn stats(&self) -> PredictorStats {
        match self {
            DirPredictor::Gshare(p) => p.stats(),
            DirPredictor::Bimodal(p) => p.stats(),
            DirPredictor::Local(p) => p.stats(),
            DirPredictor::Tournament(p) => p.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_learn_a_monotonic_branch() {
        for mut p in [
            DirPredictor::gshare(GshareConfig { history_bits: 10 }),
            DirPredictor::bimodal(10),
            DirPredictor::local(LocalConfig::default()),
            DirPredictor::tournament(TournamentConfig::default()),
        ] {
            let ip = Addr::new(0x30);
            for _ in 0..200 {
                p.update(ip, true);
            }
            assert!(p.predict(ip));
            assert!(p.stats().accuracy() > 0.8);
        }
    }

    #[test]
    fn history_is_zero_for_non_global() {
        let mut b = DirPredictor::bimodal(8);
        b.update(Addr::new(2), true);
        assert_eq!(b.history(), 0);
        let mut g = DirPredictor::gshare(GshareConfig { history_bits: 8 });
        g.update(Addr::new(2), true);
        assert_eq!(g.history() & 1, 1);
    }
}
