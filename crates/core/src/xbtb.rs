//! The XBTB: the pointer table that drives XBC delivery (paper §3.5).
//!
//! The XBC is a multiple-entry structure indexed by *ending* IP, so a
//! branch target IP cannot be looked up in it directly. All navigation
//! goes through the XBTB: each entry, keyed by an XB's identity (its
//! end-IP), records how that XB ends and where execution goes next as
//! [`XbPtr`]s (taken / not-taken for conditionals; callee / return-point
//! for calls). Indirect successors live in the XiBTB and return successors
//! flow through the XRSB (both owned by the frontend).
//!
//! Each entry also carries the 7-bit bias counter and promoted state used
//! by branch promotion (§3.8).

use crate::ptr::{BankMask, XbPtr};
use xbc_isa::{Addr, BranchKind};
use xbc_predict::{Bias, BiasCounter};

/// How an extended block ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum XbEndKind {
    /// Conditional direct branch: successor chosen by the XBP between the
    /// `taken` and `not_taken` pointers.
    Cond,
    /// Direct call: `taken` points at the callee's first XB (XB_func),
    /// `not_taken` at the XB after the return (XB_ret); a frame is pushed
    /// on the XRSB.
    Call,
    /// Return: successor comes from the XRSB.
    Return,
    /// Indirect jump: successor comes from the XiBTB.
    Indirect,
    /// Indirect call: successor comes from the XiBTB *and* a frame is
    /// pushed on the XRSB (the return point is `not_taken`).
    IndirectCall,
    /// No branch: the XB was closed by the 16-uop quota; `taken` points at
    /// the sequential continuation.
    Fall,
}

impl XbEndKind {
    /// Classifies an architectural branch kind (of an XB's last
    /// instruction) into its XBTB end kind.
    pub fn from_branch(branch: BranchKind) -> XbEndKind {
        match branch {
            BranchKind::CondDirect => XbEndKind::Cond,
            BranchKind::CallDirect => XbEndKind::Call,
            BranchKind::Return => XbEndKind::Return,
            BranchKind::IndirectJump => XbEndKind::Indirect,
            BranchKind::IndirectCall => XbEndKind::IndirectCall,
            BranchKind::None | BranchKind::UncondDirect => XbEndKind::Fall,
        }
    }
}

/// The combined block formed by physically merging a promoted XB with its
/// monotonic successor (§3.8, [`crate::PromotionMode::Merge`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergedXb {
    /// Identity of the combined block (= the successor XB1's end IP).
    pub xb_ip: Addr,
    /// Banks holding the combined block.
    pub mask: BankMask,
    /// Total combined length in uops.
    pub total_len: u8,
    /// The XB1 window length included in the combination; entering XB0 at
    /// offset `o` enters the combined block at `o + suffix_len`.
    pub suffix_len: u8,
}

/// One XBTB entry.
#[derive(Clone, Debug)]
pub struct XbtbEntry {
    /// Identity of the XB this entry describes (its ending IP).
    pub xb_ip: Addr,
    /// How the XB ends.
    pub kind: XbEndKind,
    /// Taken-path successor (callee for calls, continuation for `Fall`).
    pub taken: Option<XbPtr>,
    /// Not-taken-path successor (return-point XB for calls).
    pub not_taken: Option<XbPtr>,
    /// 7-bit monotonicity counter (§3.8).
    pub bias: BiasCounter,
    /// Promoted direction, when the ending branch has been promoted.
    pub promoted: Option<Bias>,
    /// Physically merged combination, when promotion mode is `Merge`.
    pub merged: Option<MergedXb>,
}

impl XbtbEntry {
    fn new(xb_ip: Addr, kind: XbEndKind) -> Self {
        XbtbEntry {
            xb_ip,
            kind,
            taken: None,
            not_taken: None,
            bias: BiasCounter::new(),
            promoted: None,
            merged: None,
        }
    }

    /// The successor pointer for a resolved conditional direction.
    pub fn successor(&self, taken: bool) -> Option<XbPtr> {
        if taken {
            self.taken
        } else {
            self.not_taken
        }
    }

    /// Sets the successor pointer for a direction.
    pub fn set_successor(&mut self, taken: bool, ptr: XbPtr) {
        if taken {
            self.taken = Some(ptr);
        } else {
            self.not_taken = Some(ptr);
        }
    }
}

/// XBTB statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XbtbStats {
    /// Lookups that found the entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries allocated.
    pub allocations: u64,
    /// Valid entries displaced by conflicting allocations.
    pub conflict_evictions: u64,
}

/// A 4-way set-associative XBTB (paper: fixed 8K entries; associativity
/// unstated — 4-way avoids the conflict thrashing a direct-mapped table of
/// this size exhibits at SPEC-class working sets).
///
/// # Examples
///
/// ```
/// use xbc::{Xbtb, XbEndKind};
/// use xbc_isa::Addr;
///
/// let mut t = Xbtb::new(1024);
/// t.allocate(Addr::new(0x400), XbEndKind::Cond);
/// assert!(t.get(Addr::new(0x400)).is_some());
/// assert!(t.get(Addr::new(0x800)).is_none());
/// ```
/// The table is stored struct-of-arrays (DESIGN.md §14): the identity and
/// LRU lanes live in their own contiguous planes — a `find` compares the
/// set's four identity words in one cache line instead of walking four
/// ~100-byte entry structs — and the entry payloads sit in a pool that
/// grows with the resident working set. Construction allocates only
/// zero-initialized planes (the allocator serves those from untouched
/// pages), so a cold XBTB costs no page-in until slots are actually used.
#[derive(Clone, Debug)]
pub struct Xbtb {
    /// Identity plane: raw `xb_ip` per slot (gated by `valid`).
    ips: Vec<u64>,
    /// Valid plane: nonzero = slot occupied, and `pool_idx` is live.
    valid: Vec<u8>,
    /// Pool-index plane: slot → `pool` position.
    pool_idx: Vec<u32>,
    /// Entry payloads of the occupied slots, in allocation order.
    pool: Vec<XbtbEntry>,
    lru: Vec<u64>,
    stamp: u64,
    sets: usize,
    ways: usize,
    stats: XbtbStats,
}

/// Associativity of the XBTB.
const XBTB_WAYS: usize = 4;

impl Xbtb {
    /// Creates an empty XBTB with `entries` slots (4-way set-associative).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two of at least the
    /// associativity (4).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries >= XBTB_WAYS,
            "XBTB entries must be a power of two >= {XBTB_WAYS}"
        );
        Xbtb {
            ips: vec![0; entries],
            valid: vec![0; entries],
            pool_idx: vec![0; entries],
            pool: Vec::new(),
            lru: vec![0; entries],
            stamp: 0,
            sets: entries / XBTB_WAYS,
            ways: XBTB_WAYS,
            stats: XbtbStats::default(),
        }
    }

    #[inline]
    fn set_base(&self, xb_ip: Addr) -> usize {
        // Fibonacci hashing: function-strided code layouts otherwise
        // cluster into a few sets and thrash the table.
        let h = xb_ip.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize % self.sets) * self.ways
    }

    #[inline]
    fn find(&self, xb_ip: Addr) -> Option<usize> {
        let base = self.set_base(xb_ip);
        let raw = xb_ip.raw();
        (base..base + self.ways).find(|&i| self.valid[i] != 0 && self.ips[i] == raw)
    }

    /// Finds the slot holding `xb_ip` without touching statistics or LRU.
    ///
    /// The slot stays valid until the next [`Xbtb::allocate`]; the
    /// delivery resolve path probes once and reuses the slot for its
    /// half-dozen reads instead of re-hashing per access.
    pub fn probe_slot(&self, xb_ip: Addr) -> Option<u32> {
        self.find(xb_ip).map(|i| i as u32)
    }

    /// Entry at a probed slot.
    pub fn at(&self, slot: u32) -> &XbtbEntry {
        &self.pool[self.pool_idx[slot as usize] as usize]
    }

    /// Mutable entry at a probed slot (no statistics, like
    /// [`Xbtb::get_mut`]).
    pub fn at_mut(&mut self, slot: u32) -> &mut XbtbEntry {
        &mut self.pool[self.pool_idx[slot as usize] as usize]
    }

    /// Applies the hit-side statistics and LRU accounting of
    /// [`Xbtb::get`] to a probed slot.
    pub fn touch_hit(&mut self, slot: u32) {
        self.stats.hits += 1;
        self.stamp += 1;
        self.lru[slot as usize] = self.stamp;
    }

    /// Applies the miss-side statistics of [`Xbtb::get`].
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Looks up an entry by XB identity, counting hit/miss statistics.
    pub fn get(&mut self, xb_ip: Addr) -> Option<&XbtbEntry> {
        match self.find(xb_ip) {
            Some(i) => {
                self.stats.hits += 1;
                self.stamp += 1;
                self.lru[i] = self.stamp;
                Some(&self.pool[self.pool_idx[i] as usize])
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Mutable lookup (no statistics; used on already-resolved entries).
    pub fn get_mut(&mut self, xb_ip: Addr) -> Option<&mut XbtbEntry> {
        let i = self.find(xb_ip)?;
        Some(&mut self.pool[self.pool_idx[i] as usize])
    }

    /// Returns the entry for `xb_ip`, allocating (and evicting the set's
    /// LRU entry) if needed. An existing entry keeps its pointers but its
    /// `kind` is refreshed.
    pub fn allocate(&mut self, xb_ip: Addr, kind: XbEndKind) -> &mut XbtbEntry {
        self.stamp += 1;
        let stamp = self.stamp;
        let i = match self.find(xb_ip) {
            Some(i) => i,
            None => {
                let base = self.set_base(xb_ip);
                let victim = (base..base + self.ways)
                    .min_by_key(|&i| if self.valid[i] == 0 { 0 } else { self.lru[i] })
                    .expect("ways > 0");
                self.stats.allocations += 1;
                if self.valid[victim] != 0 {
                    self.stats.conflict_evictions += 1;
                    // Reuse the displaced entry's pool slot.
                    self.pool[self.pool_idx[victim] as usize] = XbtbEntry::new(xb_ip, kind);
                } else {
                    self.pool_idx[victim] =
                        u32::try_from(self.pool.len()).expect("pool bounded by slot count");
                    self.pool.push(XbtbEntry::new(xb_ip, kind));
                    self.valid[victim] = 1;
                }
                self.ips[victim] = xb_ip.raw();
                victim
            }
        };
        self.lru[i] = stamp;
        let e = &mut self.pool[self.pool_idx[i] as usize];
        e.kind = kind;
        e
    }

    /// Statistics so far.
    pub fn stats(&self) -> XbtbStats {
        self.stats
    }

    /// Iterates over the valid entries (for audits and reports).
    pub fn entries(&self) -> impl Iterator<Item = &XbtbEntry> {
        (0..self.ips.len())
            .filter(|&i| self.valid[i] != 0)
            .map(|i| &self.pool[self.pool_idx[i] as usize])
    }

    /// Structural audit of the pointer table (paper §3.5):
    ///
    /// * residency — every entry sits in the set its identity hashes to,
    ///   and no identity appears twice;
    /// * pointer sanity — every stored [`XbPtr`] has `1..=max_offset` entry
    ///   offset and a bank mask with at least `ceil(offset / line_uops)`
    ///   bits (an XB spans one distinct bank per line, so a thinner mask
    ///   can never fetch the window it promises);
    /// * promotion — a merged combination (§3.8) exists only while its
    ///   branch is promoted, and its suffix window fits its total length.
    ///
    /// Stored pointers may be *stale* with respect to the array (that is
    /// what set search repairs, §3.9), so this audit checks only intrinsic
    /// pointer well-formedness, never array residency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn audit(&self, line_uops: usize, max_offset: usize) -> Result<(), String> {
        let check_ptr = |who: &str, p: &XbPtr| -> Result<(), String> {
            if p.offset == 0 || p.offset as usize > max_offset {
                return Err(format!("{who}: offset {} out of 1..={max_offset}", p.offset));
            }
            let needed = (p.offset as usize).div_ceil(line_uops);
            if p.mask.count() < needed {
                return Err(format!(
                    "{who}: mask {:?} has {} banks but offset {} needs {}",
                    p.mask,
                    p.mask.count(),
                    p.offset,
                    needed
                ));
            }
            Ok(())
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..self.ips.len() {
            if self.valid[i] == 0 {
                continue;
            }
            let e = &self.pool[self.pool_idx[i] as usize];
            let who = format!("XBTB entry {} at slot {i}", e.xb_ip);
            let base = self.set_base(e.xb_ip);
            if !(base..base + self.ways).contains(&i) {
                return Err(format!("{who}: resident outside its set (base {base})"));
            }
            if !seen.insert(e.xb_ip) {
                return Err(format!("{who}: duplicate identity"));
            }
            if let Some(p) = &e.taken {
                check_ptr(&format!("{who} taken-ptr"), p)?;
            }
            if let Some(p) = &e.not_taken {
                check_ptr(&format!("{who} not-taken-ptr"), p)?;
            }
            if let Some(m) = &e.merged {
                if e.promoted.is_none() {
                    return Err(format!("{who}: merged combination without promotion"));
                }
                if m.suffix_len > m.total_len || m.total_len as usize > max_offset {
                    return Err(format!(
                        "{who}: merged lengths suffix {} / total {} exceed {max_offset}",
                        m.suffix_len, m.total_len
                    ));
                }
                if m.mask.count() == 0 {
                    return Err(format!("{who}: merged combination with an empty mask"));
                }
            }
        }
        Ok(())
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptr::BankMask;

    fn ptr(ip: u64) -> XbPtr {
        XbPtr::new(Addr::new(ip), Addr::new(ip - 7), BankMask::from_bits(0b0011), 8)
    }

    #[test]
    fn allocate_then_hit() {
        let mut t = Xbtb::new(64);
        let e = t.allocate(Addr::new(0x100), XbEndKind::Cond);
        e.set_successor(true, ptr(0x200));
        let got = t.get(Addr::new(0x100)).unwrap();
        assert_eq!(got.kind, XbEndKind::Cond);
        assert_eq!(got.successor(true).unwrap().xb_ip, Addr::new(0x200));
        assert_eq!(got.successor(false), None);
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn conflict_eviction_lru() {
        let mut t = Xbtb::new(4); // one set of 4 ways: everything collides
        for i in 1..=4u64 {
            t.allocate(Addr::new(i), XbEndKind::Cond);
        }
        // Touch entry 1 so entry 2 is the LRU victim.
        assert!(t.get(Addr::new(1)).is_some());
        t.allocate(Addr::new(5), XbEndKind::Return);
        assert!(t.get(Addr::new(2)).is_none());
        assert!(t.get(Addr::new(1)).is_some());
        assert!(t.get(Addr::new(5)).is_some());
        assert_eq!(t.stats().conflict_evictions, 1);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn reallocate_keeps_pointers_refreshes_kind() {
        let mut t = Xbtb::new(64);
        t.allocate(Addr::new(0x10), XbEndKind::Cond).set_successor(false, ptr(0x300));
        let e = t.allocate(Addr::new(0x10), XbEndKind::Cond);
        assert_eq!(e.not_taken.unwrap().xb_ip, Addr::new(0x300));
        assert_eq!(t.stats().allocations, 1, "same identity does not re-allocate");
    }

    #[test]
    fn end_kind_classification() {
        assert_eq!(XbEndKind::from_branch(BranchKind::CondDirect), XbEndKind::Cond);
        assert_eq!(XbEndKind::from_branch(BranchKind::CallDirect), XbEndKind::Call);
        assert_eq!(XbEndKind::from_branch(BranchKind::Return), XbEndKind::Return);
        assert_eq!(XbEndKind::from_branch(BranchKind::IndirectJump), XbEndKind::Indirect);
        assert_eq!(XbEndKind::from_branch(BranchKind::IndirectCall), XbEndKind::IndirectCall);
        assert_eq!(XbEndKind::from_branch(BranchKind::None), XbEndKind::Fall);
        assert_eq!(XbEndKind::from_branch(BranchKind::UncondDirect), XbEndKind::Fall);
    }

    #[test]
    fn get_mut_does_not_touch_stats() {
        let mut t = Xbtb::new(64);
        t.allocate(Addr::new(0x10), XbEndKind::Fall);
        let before = t.stats();
        assert!(t.get_mut(Addr::new(0x10)).is_some());
        assert!(t.get_mut(Addr::new(0x11)).is_none());
        assert_eq!(t.stats().hits, before.hits);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn entries_must_be_power_of_two() {
        let _ = Xbtb::new(100);
    }
}
