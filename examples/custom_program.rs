//! Builds a small program by hand with [`ProgramBuilder`] — a loop calling
//! a helper function with a biased branch — and watches the XBC learn it:
//! XB construction, branch promotion, and the redundancy-free invariant.
//!
//! ```text
//! cargo run --release --example custom_program
//! ```

use xbc::{XbcConfig, XbcFrontend};
use xbc_frontend::Frontend;
use xbc_isa::{Addr, BranchKind, Inst};
use xbc_workload::{CondBehavior, ProgramBuilder, Trace};

fn main() {
    // main:
    //   0x100: work (2 uops)
    //   0x102: call helper (0x200)
    //   0x107: work (1 uop)
    //   0x108: cond branch -> 0x100, 97% taken (a loop)
    //   0x10a: ret (wraps the trace)
    // helper:
    //   0x200: work (3 uops)
    //   0x203: cond branch -> 0x210, 99.5% taken (monotonic: promotable)
    //   0x205: rare-path work (1 uop)       (fall-through, rarely runs)
    //   0x206: jmp 0x210                    (transparent to XBs)
    //   0x210: work (1 uop)
    //   0x211: ret
    let mut b = ProgramBuilder::new();
    b.add_function_entry(Addr::new(0x100));
    b.add_function_entry(Addr::new(0x200));
    b.push(Inst::plain(Addr::new(0x100), 2, 2));
    b.push(Inst::new(Addr::new(0x102), 5, 1, BranchKind::CallDirect, Some(Addr::new(0x200))));
    b.push(Inst::plain(Addr::new(0x107), 1, 1));
    b.push_cond(
        Inst::new(Addr::new(0x108), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x100))),
        CondBehavior::Bernoulli { p_taken: 0.97 },
    );
    b.push(Inst::new(Addr::new(0x10a), 1, 1, BranchKind::Return, None));
    b.push(Inst::plain(Addr::new(0x200), 3, 3));
    b.push_cond(
        Inst::new(Addr::new(0x203), 2, 1, BranchKind::CondDirect, Some(Addr::new(0x210))),
        CondBehavior::Bernoulli { p_taken: 0.995 },
    );
    b.push(Inst::plain(Addr::new(0x205), 1, 1));
    b.push(Inst::new(Addr::new(0x206), 2, 1, BranchKind::UncondDirect, Some(Addr::new(0x210))));
    b.push(Inst::plain(Addr::new(0x210), 1, 1));
    b.push(Inst::new(Addr::new(0x211), 1, 1, BranchKind::Return, None));
    let program = b.build(Addr::new(0x100), 2);

    let trace = Trace::capture("custom", &program, 7, 50_000);
    println!(
        "custom program: {} static uops, trace of {} uops",
        program.stats().static_uops,
        trace.uop_count()
    );

    let mut fe = XbcFrontend::new(XbcConfig { total_uops: 1024, ..XbcConfig::default() });
    let m = fe.run(&trace);

    println!();
    println!("after 50k instructions through a 1K-uop XBC:");
    println!("  miss rate     {:.2}%", 100.0 * m.uop_miss_rate());
    println!("  bandwidth     {:.2} uops/cycle", m.delivery_bandwidth());
    println!("  promotions    {} (the 99.5%-taken branch at 0x203 qualifies)", m.promotions);
    println!("  cond mispred  {} (the 97% loop branch misses ~3% of trips)", m.cond_mispredicts);
    let (stored, distinct) = fe.array().redundancy();
    println!(
        "  array         {} lines, {} stored uops, {} distinct",
        fe.array().valid_lines(),
        stored,
        distinct
    );
    assert!(m.promotions >= 1, "the monotonic branch should promote");
    println!();
    println!("note how the whole program fits in a handful of XBs: one per");
    println!("conditional/call/return boundary, with the 0x206 jump absorbed.");
}
