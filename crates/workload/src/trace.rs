//! Captured dynamic traces.
//!
//! The paper's methodology is trace-driven: a fixed dynamic instruction
//! stream is replayed through each frontend configuration so comparisons
//! see identical committed paths. [`Trace`] materializes a stream from the
//! executor once and hands out slices to any number of simulations.

use crate::exec::{DynInst, ExecStats, Executor};
use crate::program::Program;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// On-disk form of a [`Trace`] (JSON via serde).
#[derive(Serialize, Deserialize)]
struct TraceFile {
    name: String,
    insts: Vec<DynInst>,
}

/// A named, captured dynamic instruction stream.
///
/// # Examples
///
/// ```
/// use xbc_workload::{ProgramGenerator, Trace, WorkloadProfile};
///
/// let program = ProgramGenerator::new(WorkloadProfile::default(), 1).generate();
/// let trace = Trace::capture("demo", &program, 1, 10_000);
/// assert_eq!(trace.inst_count(), 10_000);
/// assert!(trace.uop_count() >= 10_000); // every inst has ≥ 1 uop
/// ```
#[derive(Clone)]
pub struct Trace {
    name: String,
    insts: Vec<DynInst>,
    uops: u64,
    exec_stats: ExecStats,
}

impl Trace {
    /// Runs the executor for `n_insts` dynamic instructions and records the
    /// committed path.
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` is zero.
    pub fn capture(name: &str, program: &Program, seed: u64, n_insts: usize) -> Self {
        Self::capture_with_stickiness(name, program, seed, n_insts, 0.85)
    }

    /// Like [`Trace::capture`] but with explicit indirect-target
    /// stickiness (see [`Executor::with_stickiness`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` is zero.
    pub fn capture_with_stickiness(
        name: &str,
        program: &Program,
        seed: u64,
        n_insts: usize,
        stickiness: f64,
    ) -> Self {
        Self::capture_with_options(name, program, seed, n_insts, stickiness, None)
    }

    /// Full-option capture: stickiness plus asynchronous-interrupt interval
    /// (see [`Executor::with_options`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_insts` is zero.
    pub fn capture_with_options(
        name: &str,
        program: &Program,
        seed: u64,
        n_insts: usize,
        stickiness: f64,
        interrupt_interval: Option<usize>,
    ) -> Self {
        assert!(n_insts > 0, "a trace needs at least one instruction");
        let mut exec = Executor::with_options(program, seed, stickiness, interrupt_interval);
        let mut insts = Vec::with_capacity(n_insts);
        let mut uops = 0u64;
        for _ in 0..n_insts {
            let d = exec.next().expect("executor is infinite");
            uops += d.uops() as u64;
            insts.push(d);
        }
        Trace { name: name.to_owned(), insts, uops, exec_stats: exec.stats() }
    }

    /// Trace name (e.g. `"spec.gcc"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The committed dynamic instructions, in order.
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Number of dynamic instructions.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Number of dynamic uops.
    pub fn uop_count(&self) -> u64 {
        self.uops
    }

    /// Executor corner-case statistics from the capture.
    pub fn exec_stats(&self) -> ExecStats {
        self.exec_stats
    }

    /// Iterates over the dynamic instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInst> {
        self.insts.iter()
    }

    /// Serializes the trace as JSON to `writer` (interchange format for
    /// the `xbcsim capture` / `xbcsim run --from` workflow).
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), Box<dyn std::error::Error>> {
        let file = TraceFile { name: self.name.clone(), insts: self.insts.clone() };
        serde_json::to_writer(writer, &file)?;
        Ok(())
    }

    /// Deserializes a trace previously written by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or parse error, or a validation error if the stream
    /// is empty or disconnected (`next_ip` not matching the next
    /// instruction).
    pub fn load<R: Read>(reader: R) -> Result<Self, Box<dyn std::error::Error>> {
        let file: TraceFile = serde_json::from_reader(reader)?;
        if file.insts.is_empty() {
            return Err("trace file contains no instructions".into());
        }
        for w in file.insts.windows(2) {
            if w[0].next_ip != w[1].inst.ip {
                return Err(format!("disconnected trace at {}", w[0].inst.ip).into());
            }
        }
        let uops = file.insts.iter().map(|d| d.uops() as u64).sum();
        Ok(Trace { name: file.name, insts: file.insts, uops, exec_stats: ExecStats::default() })
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("name", &self.name)
            .field("insts", &self.insts.len())
            .field("uops", &self.uops)
            .finish()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramGenerator, WorkloadProfile};

    fn program() -> Program {
        ProgramGenerator::new(WorkloadProfile { functions: 10, ..Default::default() }, 3).generate()
    }

    #[test]
    fn capture_is_deterministic() {
        let p = program();
        let a = Trace::capture("a", &p, 9, 2000);
        let b = Trace::capture("b", &p, 9, 2000);
        assert_eq!(a.insts(), b.insts());
        assert_eq!(a.uop_count(), b.uop_count());
    }

    #[test]
    fn uop_count_sums_inst_uops() {
        let p = program();
        let t = Trace::capture("t", &p, 1, 500);
        let sum: u64 = t.iter().map(|d| d.uops() as u64).sum();
        assert_eq!(sum, t.uop_count());
    }

    #[test]
    fn into_iterator_walks_all() {
        let p = program();
        let t = Trace::capture("t", &p, 1, 100);
        assert_eq!((&t).into_iter().count(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_capture_rejected() {
        let p = program();
        let _ = Trace::capture("t", &p, 1, 0);
    }

    #[test]
    fn save_load_roundtrip() {
        let p = program();
        let t = Trace::capture("roundtrip", &p, 4, 300);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = Trace::load(buf.as_slice()).unwrap();
        assert_eq!(back.name(), "roundtrip");
        assert_eq!(back.insts(), t.insts());
        assert_eq!(back.uop_count(), t.uop_count());
    }

    #[test]
    fn load_rejects_garbage_and_disconnected() {
        assert!(Trace::load(&b"not json"[..]).is_err());
        assert!(Trace::load(&br#"{"name":"x","insts":[]}"#[..]).is_err());
        // Disconnected: next_ip of the first inst does not match the second.
        let p = program();
        let t = Trace::capture("x", &p, 4, 3);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let mut v: serde_json::Value = serde_json::from_slice(&buf).unwrap();
        v["insts"][0]["next_ip"] = serde_json::json!(12345);
        let bad = serde_json::to_vec(&v).unwrap();
        assert!(Trace::load(bad.as_slice()).is_err());
    }
}
