//! # xbc-check — correctness harness for the XBC reproduction
//!
//! Performance models rot silently: a refactor that flips a stall cycle or
//! drops a uop still "runs", it just reports subtly wrong numbers. This
//! crate is the workspace's defense, in three layers:
//!
//! 1. **Lockstep differential oracle** — [`DiffHarness`] advances any
//!    [`Frontend`](xbc_frontend::Frontend) step by step against the
//!    committed reference stream and stops at the *first* divergence
//!    (stream mismatch, uop-conservation or cycle-partition violation,
//!    livelock), reporting the IP, instruction/uop index, cycle, mode, and
//!    a window of recent history.
//! 2. **Structural invariants** — [`xbc::XbcInvariants`] audits the XBC
//!    array, XBTB, and fill unit; the harness invokes them through
//!    [`Frontend::check_invariants`](xbc_frontend::Frontend::check_invariants),
//!    and the `xbc` crate additionally self-audits after every
//!    install/extend in debug builds or under its `check` feature.
//! 3. **Seeded fuzzing with shrinking** — [`FuzzCase`] derives a random
//!    workload + configuration point from a `u64` seed, [`run_case`]
//!    replays it through every frontend under the harness, and [`shrink`]
//!    greedily reduces a failure to a minimal JSON reproducer that
//!    `tests/repro_replay.rs` picks up automatically.
//!
//! The `xbc-check` binary drives fuzz campaigns; see `xbc-check --help`.
//!
//! # Example
//!
//! ```
//! use xbc_check::{DiffHarness, FuzzCase};
//! use xbc_frontend::{IcFrontend, IcFrontendConfig};
//!
//! let case = FuzzCase { insts: 800, functions: 3, ..FuzzCase::from_seed(1) };
//! let (reference, subject) = case.traces();
//! let mut ic = IcFrontend::new(IcFrontendConfig::default());
//! let metrics = DiffHarness::new().run(&mut ic, &subject, &reference).unwrap();
//! assert_eq!(metrics.total_uops(), reference.uop_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A `Divergence` carries its full diagnostic context (state snapshot plus
// an 8-instruction window); it is built once, at the moment a run fails,
// so the Err path's size is irrelevant to the hot loop.
#![allow(clippy::result_large_err)]

mod diff;
mod fuzz;
mod shrink;

pub use diff::{DiffHarness, DiffOptions, Divergence, DivergenceKind};
pub use fuzz::{run_case, Failure, FuzzCase};
pub use shrink::{shrink, Shrunk, MIN_INSTS};
