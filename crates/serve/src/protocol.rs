//! The `xbc-serve-v1` wire protocol.
//!
//! JSONL over a Unix-domain socket: every message is one JSON object on
//! one line. The conversation is strictly client-driven:
//!
//! ```text
//! server → {"schema":"xbc-serve-v1","type":"hello","threads":8}
//! client → {"type":"ping"}
//! server → {"type":"pong"}
//! client → {"type":"sweep","traces":["spec.gcc"],"frontends":[{"kind":"ic"}],"insts":20000}
//! server → {"type":"row","index":0,"row":{...}}         (index order 0..rows-1)
//! server → {"type":"done","rows":1,"bench":{...},"store":{...}}
//! client → {"type":"shutdown"}
//! server → {"type":"bye"}                               (daemon then exits)
//! ```
//!
//! Errors come back as `{"type":"error","message":"..."}` and leave the
//! connection usable for the next request.
//!
//! The compact row serializer here writes the *same values, in the same
//! field order, with the same `f64` shortest-roundtrip formatting* as
//! `xbc_sim::Row::to_json` — only the whitespace differs. A client that
//! parses wire rows and re-encodes them with `xbc_sim::to_json` gets
//! output byte-identical to a one-shot `xbcsim sweep --json` of the
//! same grid (given the same store), which is what the CI serve gate
//! diffs.

use xbc_sim::json::{escape, Json};
use xbc_sim::{FrontendSpec, Row, SweepBench, WorkerStat};
use xbc_store::StoreStats;

/// Protocol schema identifier, announced in the hello line.
pub const SCHEMA: &str = "xbc-serve-v1";

/// One sweep request: a (trace × frontend) grid at a fixed instruction
/// budget — the same cell model as `xbc_sim::Sweep`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepRequest {
    /// Standard-trace names (see `xbcsim list`).
    pub traces: Vec<String>,
    /// Frontend configurations, one column per entry.
    pub frontends: Vec<FrontendSpec>,
    /// Dynamic instructions per trace.
    pub insts: usize,
}

/// A parsed client request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the server answers `pong`.
    Ping,
    /// Graceful daemon shutdown; the server answers `bye`, drains
    /// queued work, and exits.
    Shutdown,
    /// A sweep grid; the server streams `row` lines then one `done`.
    Sweep(SweepRequest),
}

/// The server's greeting, sent once per connection.
pub fn hello_line(threads: usize) -> String {
    format!("{{\"schema\":\"{SCHEMA}\",\"type\":\"hello\",\"threads\":{threads}}}")
}

/// Reply to [`Request::Ping`].
pub fn pong_line() -> String {
    "{\"type\":\"pong\"}".to_owned()
}

/// Reply to [`Request::Shutdown`].
pub fn bye_line() -> String {
    "{\"type\":\"bye\"}".to_owned()
}

/// An error reply; the connection stays open.
pub fn error_line(msg: &str) -> String {
    format!("{{\"type\":\"error\",\"message\":\"{}\"}}", escape(msg))
}

/// Serializes a sweep request as its wire line.
pub fn render_sweep_request(req: &SweepRequest) -> String {
    let traces: Vec<String> = req.traces.iter().map(|t| format!("\"{}\"", escape(t))).collect();
    let fes: Vec<String> = req.frontends.iter().map(FrontendSpec::to_json).collect();
    format!(
        "{{\"type\":\"sweep\",\"traces\":[{}],\"frontends\":[{}],\"insts\":{}}}",
        traces.join(","),
        fes.join(","),
        req.insts
    )
}

/// Parses one client request line.
///
/// # Errors
///
/// Returns a message naming the malformed or missing field; the caller
/// reports it via [`error_line`] and keeps the connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let j = Json::parse(line)?;
    match j.get("type").and_then(Json::as_str) {
        Some("ping") => Ok(Request::Ping),
        Some("shutdown") => Ok(Request::Shutdown),
        Some("sweep") => {
            let traces = j
                .get("traces")
                .and_then(Json::as_arr)
                .ok_or("sweep request missing traces")?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "trace names must be strings".to_owned())
                })
                .collect::<Result<Vec<_>, _>>()?;
            let frontends = j
                .get("frontends")
                .and_then(Json::as_arr)
                .ok_or("sweep request missing frontends")?
                .iter()
                .map(FrontendSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let insts =
                j.get("insts").and_then(Json::as_usize).ok_or("sweep request missing insts")?;
            Ok(Request::Sweep(SweepRequest { traces, frontends, insts }))
        }
        Some(other) => Err(format!("unknown request type {other:?}")),
        None => Err("request missing type".into()),
    }
}

/// Serializes a row as a single-line JSON object: same fields, same
/// order, same value formatting as `Row::to_json` — whitespace only
/// differs, so parse → `Row` → re-encode is exact either way.
pub fn row_to_compact_json(r: &Row) -> String {
    format!(
        "{{\"trace\":\"{}\",\"suite\":\"{}\",\"frontend\":{},\"insts\":{},\"uops\":{},\
         \"cycles\":{},\"miss_rate\":{},\"bandwidth\":{},\"uops_per_cycle\":{},\
         \"cond_mispredicts\":{},\"target_mispredicts\":{},\"delivery_to_build\":{},\
         \"bank_conflict_uops\":{},\"promotions\":{},\"elapsed_ms\":{}}}",
        escape(&r.trace),
        escape(&r.suite),
        r.frontend.to_json(),
        r.insts,
        r.uops,
        r.cycles,
        r.miss_rate,
        r.bandwidth,
        r.uops_per_cycle,
        r.cond_mispredicts,
        r.target_mispredicts,
        r.delivery_to_build,
        r.bank_conflict_uops,
        r.promotions,
        r.elapsed_ms,
    )
}

/// One `row` line of a sweep response.
pub fn row_line(index: usize, row: &Row) -> String {
    format!("{{\"type\":\"row\",\"index\":{index},\"row\":{}}}", row_to_compact_json(row))
}

/// Serializes a [`SweepBench`] as a single-line JSON object (the wire
/// form of the `xbc-sweep-bench-v1` schema; derived rates are omitted —
/// [`bench_from_json`] recomputes them).
pub fn bench_to_compact_json(b: &SweepBench) -> String {
    let workers: Vec<String> = b
        .workers
        .iter()
        .map(|w| format!("{{\"cells\":{},\"busy_ms\":{}}}", w.cells, w.busy_ms))
        .collect();
    format!(
        "{{\"schema\":\"xbc-sweep-bench-v1\",\"threads\":{},\"traces\":{},\"frontends\":{},\
         \"total_cells\":{},\"cached_cells\":{},\"simulated_cells\":{},\"captures\":{},\
         \"capture_ms\":{},\"sim_ms\":{},\"wall_ms\":{},\"workers\":[{}]}}",
        b.threads,
        b.traces,
        b.frontends,
        b.total_cells,
        b.cached_cells,
        b.simulated_cells,
        b.captures,
        b.capture_ms,
        b.sim_ms,
        b.wall_ms,
        workers.join(","),
    )
}

/// Reconstructs a [`SweepBench`] from a parsed JSON object — accepts
/// both the compact wire form and the multi-line `SweepBench::to_json`
/// artifact (derived-rate fields, when present, are ignored).
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn bench_from_json(j: &Json) -> Result<SweepBench, String> {
    fn u64_field(j: &Json, k: &str) -> Result<u64, String> {
        j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("bench missing {k}"))
    }
    fn usize_field(j: &Json, k: &str) -> Result<usize, String> {
        j.get(k).and_then(Json::as_usize).ok_or_else(|| format!("bench missing {k}"))
    }
    let workers = j
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("bench missing workers")?
        .iter()
        .map(|w| {
            Ok(WorkerStat { cells: usize_field(w, "cells")?, busy_ms: u64_field(w, "busy_ms")? })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SweepBench {
        threads: usize_field(j, "threads")?,
        traces: usize_field(j, "traces")?,
        frontends: usize_field(j, "frontends")?,
        total_cells: usize_field(j, "total_cells")?,
        cached_cells: usize_field(j, "cached_cells")?,
        simulated_cells: usize_field(j, "simulated_cells")?,
        captures: u64_field(j, "captures")?,
        capture_ms: u64_field(j, "capture_ms")?,
        sim_ms: u64_field(j, "sim_ms")?,
        wall_ms: u64_field(j, "wall_ms")?,
        workers,
    })
}

/// Serializes a [`StoreStats`] snapshot (or delta) as a single-line
/// JSON object.
pub fn stats_to_compact_json(s: &StoreStats) -> String {
    format!(
        "{{\"trace_hits\":{},\"trace_misses\":{},\"result_hits\":{},\"result_misses\":{},\
         \"bytes_read\":{},\"bytes_written\":{},\"corrupt_entries\":{}}}",
        s.trace_hits,
        s.trace_misses,
        s.result_hits,
        s.result_misses,
        s.bytes_read,
        s.bytes_written,
        s.corrupt_entries,
    )
}

/// Reconstructs a [`StoreStats`] from a parsed JSON object.
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn stats_from_json(j: &Json) -> Result<StoreStats, String> {
    fn u64_field(j: &Json, k: &str) -> Result<u64, String> {
        j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("store stats missing {k}"))
    }
    Ok(StoreStats {
        trace_hits: u64_field(j, "trace_hits")?,
        trace_misses: u64_field(j, "trace_misses")?,
        result_hits: u64_field(j, "result_hits")?,
        result_misses: u64_field(j, "result_misses")?,
        bytes_read: u64_field(j, "bytes_read")?,
        bytes_written: u64_field(j, "bytes_written")?,
        corrupt_entries: u64_field(j, "corrupt_entries")?,
    })
}

/// Counter delta `after - before` of two snapshots of one store. The
/// store is shared by every client of the daemon, so a per-request
/// delta includes any concurrently-served requests' activity — it is a
/// "what the store did while your request ran" figure, not an exact
/// per-request attribution.
pub fn stats_delta(before: &StoreStats, after: &StoreStats) -> StoreStats {
    StoreStats {
        trace_hits: after.trace_hits.saturating_sub(before.trace_hits),
        trace_misses: after.trace_misses.saturating_sub(before.trace_misses),
        result_hits: after.result_hits.saturating_sub(before.result_hits),
        result_misses: after.result_misses.saturating_sub(before.result_misses),
        bytes_read: after.bytes_read.saturating_sub(before.bytes_read),
        bytes_written: after.bytes_written.saturating_sub(before.bytes_written),
        corrupt_entries: after.corrupt_entries.saturating_sub(before.corrupt_entries),
    }
}

/// The `done` trailer closing a sweep response. `store` is `null` when
/// the daemon runs uncached.
pub fn done_line(rows: usize, bench: &SweepBench, store: Option<&StoreStats>) -> String {
    let store = match store {
        Some(s) => stats_to_compact_json(s),
        None => "null".to_owned(),
    };
    format!(
        "{{\"type\":\"done\",\"rows\":{rows},\"bench\":{},\"store\":{}}}",
        bench_to_compact_json(bench),
        store
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_frontend::FrontendMetrics;

    fn sample_row() -> Row {
        let m = FrontendMetrics {
            cycles: 1000,
            delivery_cycles: 600,
            structure_uops: 4000,
            ic_uops: 2000,
            ..Default::default()
        };
        let mut r = Row::new("spec.gcc", "spec", FrontendSpec::xbc_default(), 5000, &m);
        r.elapsed_ms = 17;
        r
    }

    #[test]
    fn request_roundtrip() {
        let req = SweepRequest {
            traces: vec!["spec.gcc".into(), "games.quake".into()],
            frontends: vec![
                FrontendSpec::Ic,
                FrontendSpec::Xbc { total_uops: 8192, ways: 2, promotion: true },
            ],
            insts: 20_000,
        };
        let line = render_sweep_request(&req);
        assert!(!line.contains('\n'));
        match parse_request(&line).unwrap() {
            Request::Sweep(back) => assert_eq!(back, req),
            other => panic!("parsed {other:?}"),
        }
        assert_eq!(parse_request("{\"type\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"type\":\"shutdown\"}").unwrap(), Request::Shutdown);
        assert!(parse_request("{\"type\":\"zap\"}").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request("{\"type\":\"sweep\"}").is_err());
    }

    #[test]
    fn compact_row_is_exact_and_single_line() {
        let row = sample_row();
        let compact = row_to_compact_json(&row);
        assert!(!compact.contains('\n'));
        let back = Row::from_json(&Json::parse(&compact).unwrap()).unwrap();
        // The wire row re-encodes (via the sim serializer) byte-identically
        // to the original — the fixed point the CI serve gate relies on.
        assert_eq!(
            xbc_sim::to_json(std::slice::from_ref(&back)),
            xbc_sim::to_json(std::slice::from_ref(&row))
        );
        // And the compact form itself is a fixed point too.
        assert_eq!(row_to_compact_json(&back), compact);
    }

    #[test]
    fn row_line_carries_index() {
        let line = row_line(3, &sample_row());
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("type").and_then(Json::as_str), Some("row"));
        assert_eq!(j.get("index").and_then(Json::as_usize), Some(3));
        assert!(j.get("row").is_some());
    }

    #[test]
    fn bench_roundtrip_compact_and_artifact() {
        let bench = SweepBench {
            threads: 4,
            traces: 2,
            frontends: 3,
            total_cells: 6,
            cached_cells: 1,
            simulated_cells: 5,
            captures: 2,
            capture_ms: 30,
            sim_ms: 970,
            wall_ms: 500,
            workers: vec![WorkerStat { cells: 5, busy_ms: 490 }],
        };
        let compact = bench_to_compact_json(&bench);
        assert!(!compact.contains('\n'));
        let back = bench_from_json(&Json::parse(&compact).unwrap()).unwrap();
        assert_eq!(back.total_cells, 6);
        assert_eq!(back.workers, bench.workers);
        // The multi-line artifact form parses through the same reader.
        let art = bench_from_json(&Json::parse(&bench.to_json()).unwrap()).unwrap();
        assert_eq!(art.simulated_cells, 5);
        assert_eq!(art.wall_ms, 500);
    }

    #[test]
    fn stats_roundtrip_and_delta() {
        let before =
            StoreStats { trace_hits: 1, result_hits: 2, bytes_read: 100, ..Default::default() };
        let after = StoreStats {
            trace_hits: 3,
            trace_misses: 1,
            result_hits: 2,
            result_misses: 4,
            bytes_read: 900,
            bytes_written: 50,
            corrupt_entries: 0,
        };
        let d = stats_delta(&before, &after);
        assert_eq!(d.trace_hits, 2);
        assert_eq!(d.result_hits, 0);
        assert_eq!(d.bytes_read, 800);
        let back = stats_from_json(&Json::parse(&stats_to_compact_json(&d)).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn done_line_shape() {
        let line = done_line(6, &SweepBench::default(), Some(&StoreStats::default()));
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("type").and_then(Json::as_str), Some("done"));
        assert_eq!(j.get("rows").and_then(Json::as_usize), Some(6));
        assert!(bench_from_json(j.get("bench").unwrap()).is_ok());
        assert!(stats_from_json(j.get("store").unwrap()).is_ok());
        let uncached = done_line(0, &SweepBench::default(), None);
        assert_eq!(Json::parse(&uncached).unwrap().get("store"), Some(&Json::Null));
    }
}
