//! The banked XBC data/tag array (paper §3.2, §3.4, §3.6, §3.10).
//!
//! Geometry: `sets × banks × ways` lines of `line_uops` uops. An extended
//! block is identified by the (set, tag) derived from its **ending**
//! instruction's IP and occupies one line per `ceil(len / line_uops)`,
//! each in a *different bank*, numbered by an `order` field: order 0 (the
//! *primary* bank) holds the XB's last uops, order 1 the preceding ones,
//! and so on (§3.2). Within a line uops are stored in **reverse order**
//! (§3.4), so extending an XB at its head never moves stored uops.
//!
//! Complex XBs (§3.3 case 3) appear naturally as several lines with the
//! same (set, tag, order) in different ways/banks: alternate prefixes
//! sharing the suffix lines. Pointers disambiguate with their bank mask.
//!
//! # Host data layout (DESIGN.md §14)
//!
//! The array is stored struct-of-arrays: one *lane* per `(set, bank, way)`
//! slot, with the tag, packed metadata (valid/order/count/conflicts) and
//! LRU stamp each in their own contiguous plane, and the uop payloads in
//! one flat backing **arena** of `line_uops` uops per lane. A set's lanes
//! are contiguous (bank-major, way-minor — the reference candidate order),
//! so tag matching is a branchless compare scan over the set's tag/meta
//! lanes, and a line's uops are a contiguous arena slice.
//!
//! Within a lane's arena region the line is stored **right-aligned in
//! program order**: region slot `line_uops - 1 - s` holds the uop at
//! position-from-end `order * line_uops + s`. This is the same reverse-
//! order storage contract as the paper's (§3.4: head extension fills
//! leftward, never moving stored uops) but makes every program-order read
//! a `copy_from_slice` of `region[line_uops - count ..]`.

use crate::config::XbcConfig;
use crate::inline_vec::InlineVec;
use crate::ptr::{BankMask, XbPtr};
use xbc_isa::{Addr, Uop};

/// Upper bound on `banks` (a [`BankMask`] is 8 bits), and therefore on the
/// number of lines in any [`Assembly`].
pub const MAX_BANKS: usize = 8;

/// Memo key marking an assembly computed without a bank-mask restriction.
const UNRESTRICTED_KEY: u16 = 0x100;

/// Valid bit of a packed meta lane.
const META_VALID: u64 = 1 << 63;

/// Packs a meta lane: valid + order + uop count + conflict counter.
#[inline]
const fn meta_pack(order: u8, count: usize, conflicts: u8) -> u64 {
    META_VALID | ((conflicts as u64) << 16) | ((order as u64) << 8) | count as u64
}

/// Uops stored in the line (1..=line_uops).
#[inline]
const fn meta_count(meta: u64) -> usize {
    (meta & 0xFF) as usize
}

/// The line's order field.
#[inline]
const fn meta_order(meta: u64) -> u8 {
    ((meta >> 8) & 0xFF) as u8
}

/// Deferred-fetch events charged to the line (dynamic placement).
#[inline]
const fn meta_conflicts(meta: u64) -> u8 {
    ((meta >> 16) & 0xFF) as u8
}

/// A resolved arrangement of one XB's lines: index `k` is the `(bank, way)`
/// of the order-`k` line. `Copy` and small (the coordinates are `u8` —
/// `banks ≤ 8`, `ways < 256`), so the hot path passes assemblies by value
/// in registers: every memo-hit `assemble`/`lookup` copies one out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assembly {
    /// `(bank, way)` per order, order ascending from 0.
    pub lines: InlineVec<(u8, u8), MAX_BANKS>,
    /// Banks used.
    pub mask: BankMask,
    /// Total uops stored across the lines.
    pub total_uops: usize,
}

/// Reusable buffers for [`XbcArray::assemble`] (DESIGN.md §12): candidate
/// list and per-order buckets survive across calls so the steady-state
/// delivery path never allocates.
#[derive(Clone, Debug, Default)]
struct AssembleScratch {
    cands: Vec<(usize, usize, u8, usize)>,
    by_order: Vec<Vec<(usize, usize, usize)>>,
}

/// One direct-mapped memo slot: the cached result of
/// `assemble(set, tag, within)` at structural generation `generation`.
#[derive(Clone, Copy, Debug)]
struct MemoEntry {
    set: u32,
    tag: u64,
    mask_key: u16,
    generation: u64,
    result: Option<Assembly>,
}

/// Direct-mapped assembly-memo size (power of two).
const MEMO_SLOTS: usize = 2048;

/// Outcome of one XB fetch attempt within a cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum XbFetch {
    /// Tag/assembly failure: the XB (or the entered part) is not in the
    /// array (evicted or moved).
    #[default]
    Miss,
    /// All `offset` uops fetched.
    Full,
    /// Bank conflict: only the leading `fetched` uops (entry side) came
    /// out; `deferred` remain for the next cycle.
    Partial {
        /// Uops fetched this cycle.
        fetched: u8,
        /// Uops deferred to the next cycle.
        deferred: u8,
    },
}

/// A census of the extended blocks resident in the array
/// (see [`XbcArray::population`]).
#[derive(Clone, Debug)]
pub struct Population {
    /// Valid bank lines.
    pub lines: usize,
    /// Stored uops across all lines.
    pub stored_uops: usize,
    /// Distinct resident XBs (unique `(set, tag)` pairs).
    pub xb_count: usize,
    /// XBs with alternate prefixes (complex, §3.3 case 3).
    pub complex_count: usize,
    /// Tag groups whose order-0 line is missing (should stay 0 under
    /// head-first eviction).
    pub truncated_count: usize,
    /// Length distribution of resident XBs, in uops.
    pub length_hist: xbc_uarch::Histogram,
}

/// Array statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Fresh XB insertions.
    pub inserts: u64,
    /// In-place head extensions (§3.3 case 2).
    pub extensions: u64,
    /// Lines evicted by placement.
    pub evicted_lines: u64,
    /// Same-tag lines above an evicted middle line invalidated (truncation).
    pub truncated_lines: u64,
    /// Lines moved by dynamic placement.
    pub relocations: u64,
}

/// The banked data + tag array.
#[derive(Clone, Debug)]
pub struct XbcArray {
    sets: usize,
    banks: usize,
    ways: usize,
    line_uops: usize,
    /// Lanes per set (= `banks * ways`); lane `bank * ways + way`.
    lanes: usize,
    /// Tag plane, one lane per `(set, bank, way)`, set-major.
    tags: Vec<u64>,
    /// Packed meta plane (valid/order/count/conflicts); 0 = invalid lane.
    meta: Vec<u64>,
    /// LRU stamp plane.
    stamps: Vec<u64>,
    /// Flat uop arena: `line_uops` slots per lane, right-aligned
    /// program-order line regions (see the module docs).
    arena: Vec<Uop>,
    stamp: u64,
    conflict_threshold: u8,
    dynamic_placement: bool,
    stats: ArrayStats,
    scratch: AssembleScratch,
    /// Direct-mapped assembly memo (DESIGN.md §12). Entries are validated
    /// against the owning set's structural generation.
    memo: Vec<Option<MemoEntry>>,
    /// Per-set structural generation: bumped on any line write, move,
    /// eviction or `demote_lru`, never on fetch-time LRU-stamp bumps.
    set_generation: Vec<u64>,
}

impl XbcArray {
    /// Creates an empty array for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &XbcConfig) -> Self {
        let sets = cfg.sets();
        assert!(cfg.banks <= MAX_BANKS, "at most {MAX_BANKS} banks (BankMask is 8 bits)");
        let lanes = cfg.banks * cfg.ways;
        assert!(lanes <= 64, "at most 64 lines per set (lane masks are 64 bits)");
        let total = sets * lanes;
        let filler = Uop::new(
            xbc_isa::UopId::new(Addr::new(0), 0),
            xbc_isa::UopKind::Alu,
            false,
            xbc_isa::BranchKind::None,
        );
        XbcArray {
            sets,
            banks: cfg.banks,
            ways: cfg.ways,
            line_uops: cfg.line_uops,
            lanes,
            tags: vec![0; total],
            meta: vec![0; total],
            stamps: vec![0; total],
            arena: vec![filler; total * cfg.line_uops],
            stamp: 0,
            conflict_threshold: cfg.conflict_threshold.max(1),
            dynamic_placement: cfg.dynamic_placement,
            stats: ArrayStats::default(),
            scratch: AssembleScratch::default(),
            memo: vec![None; MEMO_SLOTS],
            set_generation: vec![0; sets],
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Number of ways per bank.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Uops per bank line.
    pub fn line_uops(&self) -> usize {
        self.line_uops
    }

    /// The stored uops of one line in **program order**, if valid — the
    /// line's arena region, feeding the reorder/align network (§3.7).
    /// Borrowed: the datapath read does not copy the line. (The hardware
    /// bank emits the same uops reverse-ordered; the host arena keeps them
    /// right-aligned ascending so windows read as contiguous slices.)
    pub fn line_uops_at(&self, set: usize, bank: usize, way: usize) -> Option<&[Uop]> {
        let idx = self.idx(set, bank, way);
        let m = self.meta[idx];
        if m & META_VALID == 0 {
            return None;
        }
        Some(self.region(idx, meta_count(m)))
    }

    /// Statistics so far.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    /// Derives `(set, tag)` from an XB's ending-instruction IP.
    pub fn set_and_tag(&self, xb_ip: Addr) -> (usize, u64) {
        let key = xb_ip.raw();
        ((key % self.sets as u64) as usize, key / self.sets as u64)
    }

    #[inline]
    fn idx(&self, set: usize, bank: usize, way: usize) -> usize {
        debug_assert!(set < self.sets && bank < self.banks && way < self.ways);
        (set * self.banks + bank) * self.ways + way
    }

    /// The populated (right-aligned) arena slice of lane `idx`, in program
    /// order.
    #[inline]
    fn region(&self, idx: usize, count: usize) -> &[Uop] {
        let l = self.line_uops;
        &self.arena[idx * l + (l - count)..(idx + 1) * l]
    }

    /// The stamp of lane `idx`, 0 when invalid (invalid lanes may hold a
    /// stale stamp value; every LRU comparison must go through here).
    #[inline]
    fn stamp_at(&self, idx: usize) -> u64 {
        if self.meta[idx] & META_VALID != 0 {
            self.stamps[idx]
        } else {
            0
        }
    }

    fn bump(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Marks `set` structurally changed: memo entries recorded against the
    /// old generation stop validating. Cheap, so every mutating path calls
    /// it (redundant bumps are harmless).
    #[inline]
    fn touch_structure(&mut self, set: usize) {
        self.set_generation[set] += 1;
    }

    /// Direct-mapped memo slot for `(set, tag, mask_key)`.
    #[inline]
    fn memo_slot(set: usize, tag: u64, mask_key: u16) -> usize {
        let h = (set as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag.wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(mask_key as u64);
        ((h >> 48) ^ (h >> 21) ^ h) as usize & (MEMO_SLOTS - 1)
    }

    /// Branchless tag-match scan over one set's lanes: bit `i` of the
    /// result is set iff lane `i` (= `bank * ways + way`) is valid and
    /// holds `tag`. The loop has no per-way branches — it compiles to a
    /// compare+mask reduction over the contiguous tag/meta lanes, which
    /// the autovectorizer turns into packed u64 compares.
    #[inline]
    fn match_lanes(&self, set: usize, tag: u64) -> u64 {
        let base = set * self.lanes;
        let tags = &self.tags[base..base + self.lanes];
        let meta = &self.meta[base..base + self.lanes];
        let mut bits = 0u64;
        for i in 0..tags.len() {
            let hit = (tags[i] == tag) & (meta[i] & META_VALID != 0);
            bits |= (hit as u64) << i;
        }
        bits
    }

    /// The lane-bit mask selecting every way of the banks in `within`.
    #[inline]
    fn lane_mask_of(&self, within: BankMask) -> u64 {
        let way_bits = (1u64 << self.ways) - 1;
        let mut m = 0u64;
        for bank in 0..self.banks {
            if within.contains(bank) {
                m |= way_bits << (bank * self.ways);
            }
        }
        m
    }

    /// Collects all `(bank, way, order, count)` whose line matches `tag`,
    /// optionally restricted to banks in `within`, into `out` (banks
    /// ascending, ways ascending — the reference iteration order, which is
    /// exactly ascending lane order).
    fn collect_candidates(
        &self,
        set: usize,
        tag: u64,
        within: Option<BankMask>,
        out: &mut Vec<(usize, usize, u8, usize)>,
    ) {
        let mut bits = self.match_lanes(set, tag);
        if let Some(w) = within {
            bits &= self.lane_mask_of(w);
        }
        let base = set * self.lanes;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let m = self.meta[base + lane];
            out.push((lane / self.ways, lane % self.ways, meta_order(m), meta_count(m)));
        }
    }

    /// Assembles the longest contiguous-order arrangement of `tag`'s lines,
    /// optionally restricted to a bank mask. Lines must occupy distinct
    /// banks; all but the highest order must be full (a partial line is
    /// necessarily the head). When several lines share an order
    /// (complex-XB prefixes), a bounded backtracking search finds the
    /// longest valid arrangement — greedy freshest-first picking can paint
    /// itself into a corner once merges populate sets with alternates.
    ///
    /// Allocation-free: candidate collection and the per-order buckets use
    /// scratch buffers reused across calls, and *unambiguous* results
    /// (at most one candidate line per order, so LRU stamps cannot affect
    /// the outcome) are memoized per `(set, tag, mask)` until the set next
    /// changes structurally — the steady-state delivery path skips the DFS
    /// entirely (DESIGN.md §12).
    pub fn assemble(&mut self, set: usize, tag: u64, within: Option<BankMask>) -> Option<Assembly> {
        let mask_key = within.map(|m| m.bits() as u16).unwrap_or(UNRESTRICTED_KEY);
        let generation = self.set_generation[set];
        let slot = Self::memo_slot(set, tag, mask_key);
        if let Some(e) = &self.memo[slot] {
            if e.set == set as u32
                && e.tag == tag
                && e.mask_key == mask_key
                && e.generation == generation
            {
                return e.result;
            }
        }
        // Exact-key miss: a memoized *unrestricted* assembly answers a
        // restricted query too, whenever its result fits inside the
        // queried mask — the restricted search space is a subset that
        // still contains the unrestricted winner, and any same-length
        // competitor explored earlier would equally have won the
        // unrestricted search.
        if mask_key != UNRESTRICTED_KEY {
            let uslot = Self::memo_slot(set, tag, UNRESTRICTED_KEY);
            if let Some(e) = &self.memo[uslot] {
                if e.set == set as u32
                    && e.tag == tag
                    && e.mask_key == UNRESTRICTED_KEY
                    && e.generation == generation
                {
                    let within = within.expect("restricted query");
                    match &e.result {
                        Some(a) if a.mask.is_subset_of(within) => {
                            return e.result;
                        }
                        // No lines at all: every restriction agrees.
                        None => {
                            return None;
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let (result, unambiguous) = self.assemble_in(set, tag, within, &mut scratch);
        self.scratch = scratch;
        if unambiguous {
            self.memo[slot] =
                Some(MemoEntry { set: set as u32, tag, mask_key, generation, result });
        }
        result
    }

    /// The scratch-buffer assembly: identical search to
    /// [`XbcArray::assemble_reference`], but reusing `scratch` instead of
    /// allocating. Also reports whether the result was *unambiguous*
    /// (no order had more than one candidate), i.e. safe to memoize.
    fn assemble_in(
        &self,
        set: usize,
        tag: u64,
        within: Option<BankMask>,
        scratch: &mut AssembleScratch,
    ) -> (Option<Assembly>, bool) {
        scratch.cands.clear();
        self.collect_candidates(set, tag, within, &mut scratch.cands);
        if scratch.cands.is_empty() {
            return (None, true);
        }
        // Candidates per order, freshest first (preference order for ties).
        if scratch.by_order.len() < self.banks {
            scratch.by_order.resize_with(self.banks, Vec::new);
        }
        let by_order = &mut scratch.by_order[..self.banks];
        for v in by_order.iter_mut() {
            v.clear();
        }
        let mut unambiguous = true;
        for &(bank, way, order, count) in &scratch.cands {
            if (order as usize) < self.banks {
                let bucket = &mut by_order[order as usize];
                if !bucket.is_empty() {
                    unambiguous = false;
                }
                bucket.push((bank, way, count));
            }
        }
        for v in by_order.iter_mut() {
            v.sort_by_key(|&(bank, way, _)| {
                std::cmp::Reverse(self.stamp_at(self.idx(set, bank, way)))
            });
        }
        // DFS over per-order choices; the search space is tiny (≤ ways
        // candidates per order, ≤ banks orders).
        let mut best: Option<Assembly> = None;
        let mut stack: InlineVec<(u8, u8), MAX_BANKS> = InlineVec::new();
        self.assemble_dfs(by_order, 0, BankMask::EMPTY, 0, &mut stack, &mut best);
        (best, unambiguous)
    }

    /// Naive reference assembly: the allocating implementation the memoized
    /// path must agree with, kept for differential testing (it shares only
    /// `assemble_dfs` with the scratch path). Not used on the hot path.
    pub fn assemble_reference(
        &self,
        set: usize,
        tag: u64,
        within: Option<BankMask>,
    ) -> Option<Assembly> {
        let mut cands = Vec::new();
        self.collect_candidates(set, tag, within, &mut cands);
        if cands.is_empty() {
            return None;
        }
        let mut by_order: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); self.banks];
        for &(bank, way, order, count) in &cands {
            if (order as usize) < self.banks {
                by_order[order as usize].push((bank, way, count));
            }
        }
        for v in &mut by_order {
            v.sort_by_key(|&(bank, way, _)| {
                std::cmp::Reverse(self.stamp_at(self.idx(set, bank, way)))
            });
        }
        let mut best: Option<Assembly> = None;
        let mut stack: InlineVec<(u8, u8), MAX_BANKS> = InlineVec::new();
        self.assemble_dfs(&by_order, 0, BankMask::EMPTY, 0, &mut stack, &mut best);
        best
    }

    fn assemble_dfs(
        &self,
        by_order: &[Vec<(usize, usize, usize)>],
        order: usize,
        used: BankMask,
        total: usize,
        stack: &mut InlineVec<(u8, u8), MAX_BANKS>,
        best: &mut Option<Assembly>,
    ) {
        if order > 0 {
            let better = best.as_ref().map(|b| total > b.total_uops).unwrap_or(true);
            if better {
                *best = Some(Assembly { lines: *stack, mask: used, total_uops: total });
            }
        }
        if order >= by_order.len() {
            return;
        }
        for &(bank, way, count) in &by_order[order] {
            if used.contains(bank) {
                continue;
            }
            let mut used2 = used;
            used2.insert(bank);
            stack.push((bank as u8, way as u8));
            if count == self.line_uops {
                self.assemble_dfs(by_order, order + 1, used2, total + count, stack, best);
            } else {
                // Partial line: must be the head; terminate this branch.
                let t = total + count;
                let better = best.as_ref().map(|b| t > b.total_uops).unwrap_or(true);
                if better {
                    *best = Some(Assembly { lines: *stack, mask: used2, total_uops: t });
                }
            }
            stack.pop();
        }
    }

    /// Reads an assembled XB's uops in program order.
    pub fn read_uops(&self, set: usize, asm: &Assembly) -> Vec<Uop> {
        let mut out = Vec::with_capacity(asm.total_uops);
        self.read_uops_into(set, asm, &mut out);
        out
    }

    /// Appends an assembled XB's uops in program order to `out` — the
    /// buffer-reusing form of [`XbcArray::read_uops`]. One contiguous
    /// slice copy per line (highest order — earliest uops — first).
    pub fn read_uops_into(&self, set: usize, asm: &Assembly, out: &mut Vec<Uop>) {
        for &(bank, way) in asm.lines.iter().rev() {
            let idx = self.idx(set, bank as usize, way as usize);
            let m = self.meta[idx];
            debug_assert!(m & META_VALID != 0, "assembled line present");
            out.extend_from_slice(self.region(idx, meta_count(m)));
        }
    }

    /// Reads the **last** `offset` uops of an assembled XB, in program
    /// order (the window a pointer with that offset would fetch).
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the stored length.
    pub fn read_window(&self, set: usize, asm: &Assembly, offset: usize) -> Vec<Uop> {
        let mut out = Vec::with_capacity(offset);
        self.read_window_into(set, asm, offset, &mut out);
        out
    }

    /// Appends the last `offset` uops of an assembled XB to `out` — the
    /// buffer-reusing form of [`XbcArray::read_window`]. The leading
    /// (earliest) `total - offset` uops are skipped by trimming whole
    /// lines and slicing into the first included one; every copy is a
    /// contiguous arena slice.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the stored length.
    pub fn read_window_into(&self, set: usize, asm: &Assembly, offset: usize, out: &mut Vec<Uop>) {
        assert!(offset <= asm.total_uops, "window larger than the stored XB");
        let mut skip = asm.total_uops - offset;
        for &(bank, way) in asm.lines.iter().rev() {
            let idx = self.idx(set, bank as usize, way as usize);
            let m = self.meta[idx];
            debug_assert!(m & META_VALID != 0, "assembled line present");
            let count = meta_count(m);
            if skip >= count {
                skip -= count;
                continue;
            }
            let region = self.region(idx, count);
            out.extend_from_slice(&region[skip..]);
            skip = 0;
        }
    }

    /// The structural generation of `set` — bumped by every structural
    /// mutation (insert, extend, evict, relocation, LRU demotion), which
    /// is what invalidates memoized assemblies of the set.
    #[doc(hidden)] // Exposed for the differential tests only.
    pub fn generation(&self, set: usize) -> u64 {
        self.set_generation[set]
    }

    /// Ages every line of `tag` in `set` to LRU-minimum (paper §3.8: a
    /// promoted XB0's original location is first in line for eviction).
    pub fn demote_lru(&mut self, xb_ip: Addr) {
        let (set, tag) = self.set_and_tag(xb_ip);
        self.touch_structure(set);
        let mut bits = self.match_lanes(set, tag);
        let base = set * self.lanes;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.stamps[base + lane] = 0;
        }
    }

    /// Validates that pointer `ptr` can be fetched: enough contiguous
    /// orders within its mask to cover `ptr.offset` uops.
    pub fn lookup(&mut self, ptr: &XbPtr) -> Option<Assembly> {
        let (set, tag) = self.set_and_tag(ptr.xb_ip);
        let asm = self.assemble(set, tag, Some(ptr.mask))?;
        if asm.total_uops >= ptr.offset as usize {
            Some(asm)
        } else {
            None
        }
    }

    /// Attempts to fetch the XBs pointed to by `ptrs`, in priority order,
    /// within one cycle (one line per bank). Returns per-XB outcomes and
    /// the overall bank usage. Also performs dynamic-placement bookkeeping
    /// for deferred fetches (§3.10).
    pub fn fetch(&mut self, ptrs: &[XbPtr]) -> (InlineVec<XbFetch, { MAX_BANKS + 1 }>, BankMask) {
        // At most MAX_BANKS Full results (each uses ≥1 bank) plus one
        // terminating non-Full result fit in a cycle.
        let mut used = BankMask::EMPTY;
        let mut results = InlineVec::new();
        for ptr in ptrs {
            let r = self.fetch_one(ptr, &mut used);
            let stop = !matches!(r, XbFetch::Full);
            results.push(r);
            if stop {
                break; // later XBs follow this one; no point continuing
            }
        }
        (results, used)
    }

    /// Fetches a single XB within the current cycle's bank budget,
    /// accumulating bank usage into `used`. See [`XbcArray::fetch`].
    pub fn fetch_one(&mut self, ptr: &XbPtr, used: &mut BankMask) -> XbFetch {
        let (set, _tag) = self.set_and_tag(ptr.xb_ip);
        let Some(asm) = self.lookup(ptr) else {
            return XbFetch::Miss;
        };
        let needed = (ptr.offset as usize).div_ceil(self.line_uops);
        debug_assert!(needed <= asm.lines.len());
        // Walk entry-side first: order needed-1 down to 0.
        let mut fetched = 0usize;
        let mut blocked = None;
        for k in (0..needed).rev() {
            let (bank, way) = (asm.lines[k].0 as usize, asm.lines[k].1 as usize);
            if used.contains(bank) {
                blocked = Some((bank, way));
                break;
            }
            used.insert(bank);
            // Uops of this line covered by the entry window.
            let line_lo = k * self.line_uops; // position-from-end of slot 0
            let hi = (ptr.offset as usize - 1).min(line_lo + self.line_uops - 1);
            fetched += hi - line_lo + 1;
            let stamp = self.bump();
            let idx = self.idx(set, bank, way);
            if self.meta[idx] & META_VALID != 0 {
                self.stamps[idx] = stamp;
            }
        }
        if let Some((bank, way)) = blocked {
            let deferred = ptr.offset as usize - fetched;
            self.note_conflict(set, bank, way, *used);
            return XbFetch::Partial { fetched: fetched as u8, deferred: deferred as u8 };
        }
        XbFetch::Full
    }

    /// Charges a deferred fetch to a line; when the threshold is reached
    /// and dynamic placement is enabled, moves the line to an unused bank.
    fn note_conflict(&mut self, set: usize, bank: usize, way: usize, used: BankMask) {
        let idx = self.idx(set, bank, way);
        let m = self.meta[idx];
        if m & META_VALID == 0 {
            return;
        }
        let conflicts = meta_conflicts(m).saturating_add(1);
        self.meta[idx] = meta_pack(meta_order(m), meta_count(m), conflicts);
        if !self.dynamic_placement || conflicts < self.conflict_threshold {
            return;
        }
        // Move to a bank that was idle this cycle, into a free way or over
        // a strictly older line.
        let my_stamp = self.stamps[idx];
        for target_bank in 0..self.banks {
            if used.contains(target_bank) || target_bank == bank {
                continue;
            }
            for target_way in 0..self.ways {
                let tidx = self.idx(set, target_bank, target_way);
                let replaceable = if self.meta[tidx] & META_VALID == 0 {
                    true
                } else {
                    self.stamps[tidx] < my_stamp
                };
                if replaceable {
                    if self.meta[tidx] & META_VALID != 0 {
                        self.stats.evicted_lines += 1;
                    }
                    self.move_lane(idx, tidx);
                    // The move resets the conflict counter.
                    let tm = self.meta[tidx];
                    self.meta[tidx] = meta_pack(meta_order(tm), meta_count(tm), 0);
                    self.stats.relocations += 1;
                    self.touch_structure(set);
                    return;
                }
            }
        }
    }

    /// Moves lane `src`'s tag, meta, stamp and arena region onto lane
    /// `dst` (overwriting it) and invalidates `src`.
    fn move_lane(&mut self, src: usize, dst: usize) {
        self.tags[dst] = self.tags[src];
        self.meta[dst] = self.meta[src];
        self.stamps[dst] = self.stamps[src];
        let l = self.line_uops;
        self.arena.copy_within(src * l..(src + 1) * l, dst * l);
        self.meta[src] = 0;
    }

    /// Picks the replacement victim within `set`, excluding `forbidden`
    /// banks: free ways first, then head lines by LRU, then middle lines by
    /// LRU (the paper's LRU "makes sure that we do not evict a line other
    /// than a head line" whenever one exists, §3.10).
    fn choose_victim(&self, set: usize, forbidden: BankMask) -> Option<(usize, usize)> {
        let mut best: Option<((usize, usize), u64)> = None;
        for bank in 0..self.banks {
            if forbidden.contains(bank) {
                continue;
            }
            for way in 0..self.ways {
                let idx = self.idx(set, bank, way);
                let m = self.meta[idx];
                let (tier, stamp) = if m & META_VALID == 0 {
                    (0u64, 0u64)
                } else {
                    let is_head = !self.has_order_above(set, self.tags[idx], meta_order(m));
                    ((if is_head { 1 } else { 2 }), self.stamps[idx])
                };
                let cost = (tier << 48) | (stamp & 0xFFFF_FFFF_FFFF);
                if best.map(|(_, c)| cost < c).unwrap_or(true) {
                    best = Some(((bank, way), cost));
                }
            }
        }
        best.map(|(slot, _)| slot)
    }

    /// Frees and returns a slot for a new line, honouring smart placement
    /// (§3.10): the line lands in a bank outside `avoid` when possible.
    /// LRU ordering is preserved by *switching* the LRU victim with the
    /// occupant of the desired bank rather than evicting younger lines.
    /// The slot returned is empty.
    fn place_slot(
        &mut self,
        set: usize,
        forbidden: BankMask,
        avoid: BankMask,
    ) -> Option<(usize, usize)> {
        // Free way in a preferred (non-avoided) bank?
        for bank in 0..self.banks {
            if forbidden.contains(bank) || avoid.contains(bank) {
                continue;
            }
            for way in 0..self.ways {
                if self.meta[self.idx(set, bank, way)] & META_VALID == 0 {
                    return Some((bank, way));
                }
            }
        }
        let (vb, vw) = self.choose_victim(set, forbidden)?;
        if self.meta[self.idx(set, vb, vw)] & META_VALID == 0 {
            // Only avoided banks had free ways; accept the conflict.
            return Some((vb, vw));
        }
        if avoid.contains(vb) {
            // Try to keep the new line out of the avoided bank by swapping
            // the desired bank's LRU occupant into the victim's slot.
            let desired = (0..self.banks)
                .filter(|&b| !forbidden.contains(b) && !avoid.contains(b))
                .flat_map(|b| (0..self.ways).map(move |w| (b, w)))
                .min_by_key(|&(b, w)| self.stamp_at(self.idx(set, b, w)));
            if let Some((db, dw)) = desired {
                self.evict(set, vb, vw);
                let didx = self.idx(set, db, dw);
                let vidx = self.idx(set, vb, vw);
                if self.meta[didx] & META_VALID != 0 {
                    self.move_lane(didx, vidx);
                }
                self.touch_structure(set);
                return Some((db, dw));
            }
        }
        self.evict(set, vb, vw);
        Some((vb, vw))
    }

    fn has_order_above(&self, set: usize, tag: u64, order: u8) -> bool {
        let mut bits = self.match_lanes(set, tag);
        let base = set * self.lanes;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if meta_order(self.meta[base + lane]) == order + 1 {
                return true;
            }
        }
        false
    }

    /// Evicts the line at `(set, bank, way)`, truncating its XB if a
    /// middle line was removed (lines with higher orders of the same tag
    /// become unreachable and are invalidated — the paper's LRU avoids
    /// this case; placement only resorts to middle lines when every way is
    /// a middle line).
    fn evict(&mut self, set: usize, bank: usize, way: usize) {
        let idx = self.idx(set, bank, way);
        let m = self.meta[idx];
        if m & META_VALID == 0 {
            return;
        }
        self.meta[idx] = 0;
        self.touch_structure(set);
        self.stats.evicted_lines += 1;
        let (tag, order) = (self.tags[idx], meta_order(m));
        // Invalidate same-tag lines with orders above the hole.
        let mut bits = self.match_lanes(set, tag);
        let base = set * self.lanes;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if meta_order(self.meta[base + lane]) > order {
                self.meta[base + lane] = 0;
                self.stats.truncated_lines += 1;
            }
        }
    }

    /// Writes the lines of a (possibly partially shared) XB.
    ///
    /// `uops` is the **full** XB in program order; lines for orders below
    /// `skip_orders` are assumed shared (complex-XB suffix) and are not
    /// written. `suffix_mask` gives the banks those shared lines occupy
    /// (new lines must avoid them so the assembled XB spans distinct
    /// banks); `avoid` biases placement away from the previous XB's banks
    /// (smart placement, §3.10).
    ///
    /// Returns the mask of banks newly written.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty or longer than the fetch width.
    pub fn insert(
        &mut self,
        xb_ip: Addr,
        uops: &[Uop],
        skip_orders: usize,
        suffix_mask: BankMask,
        avoid: BankMask,
    ) -> BankMask {
        assert!(!uops.is_empty(), "cannot insert an empty XB");
        let len = uops.len();
        assert!(len <= self.banks * self.line_uops, "XB of {len} uops exceeds the fetch width");
        let (set, tag) = self.set_and_tag(xb_ip);
        self.touch_structure(set);
        let n = len.div_ceil(self.line_uops);
        assert!(skip_orders <= n, "cannot skip more lines than the XB has");
        let mut forbidden = suffix_mask;
        let mut added = BankMask::EMPTY;
        for order in skip_orders..n {
            let (bank, way) = self
                .place_slot(set, forbidden, avoid)
                .expect("more orders than banks is impossible by the length assert");
            let lo = order * self.line_uops; // position-from-end of slot 0
            let hi = (lo + self.line_uops).min(len);
            let stamp = self.bump();
            let idx = self.idx(set, bank, way);
            self.write_line(idx, tag, order as u8, stamp, &uops[len - hi..len - lo]);
            forbidden.insert(bank);
            added.insert(bank);
        }
        self.stats.inserts += 1;
        added
    }

    /// Writes one whole line: tag/meta/stamp lanes plus the right-aligned
    /// arena region. `content` is the line's uops in program order.
    fn write_line(&mut self, idx: usize, tag: u64, order: u8, stamp: u64, content: &[Uop]) {
        let l = self.line_uops;
        debug_assert!(!content.is_empty() && content.len() <= l);
        self.tags[idx] = tag;
        self.meta[idx] = meta_pack(order, content.len(), 0);
        self.stamps[idx] = stamp;
        self.arena[idx * l + (l - content.len())..(idx + 1) * l].copy_from_slice(content);
    }

    /// Extends an existing XB at its head with `extra` earlier uops
    /// (program order), in place (§3.3 case 2 / §3.4). Fills the partial
    /// head line first (leftward into its arena region — stored uops do
    /// not move), then allocates new lines.
    ///
    /// Returns the new full mask of the XB.
    ///
    /// # Panics
    ///
    /// Panics if the combined length exceeds the fetch width, or if the
    /// assembly does not belong to this array's `xb_ip` tag.
    pub fn extend(
        &mut self,
        xb_ip: Addr,
        asm: &Assembly,
        extra: &[Uop],
        avoid: BankMask,
    ) -> BankMask {
        let (set, tag) = self.set_and_tag(xb_ip);
        self.touch_structure(set);
        let old_len = asm.total_uops;
        let new_len = old_len + extra.len();
        assert!(
            new_len <= self.banks * self.line_uops,
            "extension to {new_len} uops exceeds the fetch width"
        );
        // Fill the head line's free slots leftward: position-from-end
        // old_len + j is extra[extra.len() - 1 - j], so the head region
        // grows by a contiguous copy of extra's tail.
        let head_order = asm.lines.len() - 1;
        let (hb, hw) = (asm.lines[head_order].0 as usize, asm.lines[head_order].1 as usize);
        let head_lo = head_order * self.line_uops;
        let filled;
        {
            let idx = self.idx(set, hb, hw);
            let stamp = self.bump();
            let m = self.meta[idx];
            assert!(m & META_VALID != 0, "head line present");
            assert_eq!(self.tags[idx], tag, "assembly does not match xb_ip");
            let count = meta_count(m);
            let new_count = (count + extra.len()).min(self.line_uops);
            filled = new_count - count;
            if filled > 0 {
                let l = self.line_uops;
                // New head-line uops: positions-from-end [old_len,
                // head_lo + new_count) = the tail slice of `extra` ending
                // at its last uop, placed just left of the stored region.
                let src_hi = extra.len() - (old_len - head_lo - count);
                self.arena[idx * l + (l - new_count)..idx * l + (l - count)]
                    .copy_from_slice(&extra[src_hi - filled..src_hi]);
                self.meta[idx] = meta_pack(meta_order(m), new_count, meta_conflicts(m));
            }
            self.stamps[idx] = stamp;
        }
        // Allocate whole new lines for the remainder.
        let mut mask = asm.mask;
        let mut forbidden = asm.mask;
        let mut pos = old_len + filled; // next position-from-end to place
        while pos < new_len {
            let order = pos / self.line_uops;
            debug_assert_eq!(pos % self.line_uops, 0);
            let (bank, way) = self
                .place_slot(set, forbidden, avoid)
                .expect("length assert bounds the order count");
            let hi = (pos + self.line_uops).min(new_len);
            let stamp = self.bump();
            let idx = self.idx(set, bank, way);
            // Positions-from-end [pos, hi) are extra's program indices
            // [new_len - hi, new_len - pos).
            self.write_line(idx, tag, order as u8, stamp, &extra[new_len - hi..new_len - pos]);
            forbidden.insert(bank);
            mask.insert(bank);
            pos = hi;
        }
        self.stats.extensions += 1;
        mask
    }

    /// Set search (§3.9): on an XBTB hit whose pointer misses (the XB was
    /// re-placed in different banks), scan the whole set for the tag and
    /// return a repaired mask if the entry window is still stored.
    pub fn set_search(&mut self, xb_ip: Addr, offset: u8) -> Option<BankMask> {
        let (set, tag) = self.set_and_tag(xb_ip);
        let asm = self.assemble(set, tag, None)?;
        if asm.total_uops < offset as usize {
            return None;
        }
        let needed = (offset as usize).div_ceil(self.line_uops);
        let mut mask = BankMask::EMPTY;
        for &(bank, _) in &asm.lines[..needed] {
            mask.insert(bank as usize);
        }
        Some(mask)
    }

    /// Number of valid lines.
    pub fn valid_lines(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }

    /// Total uops stored.
    pub fn stored_uops(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).map(|&m| meta_count(m)).sum()
    }

    /// Population census of the stored extended blocks: how many XBs are
    /// resident, their length distribution, and how many are complex
    /// (alternate prefixes sharing a suffix).
    pub fn population(&self) -> Population {
        use std::collections::HashMap;
        let mut per_tag: HashMap<(usize, u64), Vec<(u8, usize)>> = HashMap::new();
        for set in 0..self.sets {
            let base = set * self.lanes;
            for lane in 0..self.lanes {
                let m = self.meta[base + lane];
                if m & META_VALID != 0 {
                    per_tag
                        .entry((set, self.tags[base + lane]))
                        .or_default()
                        .push((meta_order(m), meta_count(m)));
                }
            }
        }
        let mut pop = Population {
            lines: self.valid_lines(),
            stored_uops: self.stored_uops(),
            xb_count: per_tag.len(),
            complex_count: 0,
            truncated_count: 0,
            length_hist: xbc_uarch::Histogram::new(self.banks * self.line_uops),
        };
        for ((_, _), mut lines) in per_tag {
            lines.sort_unstable();
            // Complex: more than one line at the same order.
            let mut complex = false;
            for w in lines.windows(2) {
                if w[0].0 == w[1].0 {
                    complex = true;
                }
            }
            if complex {
                pop.complex_count += 1;
            }
            // Truncated: order 0 missing (head survived an eviction hole —
            // cannot happen with head-first eviction, but audit anyway).
            if lines[0].0 != 0 {
                pop.truncated_count += 1;
                continue;
            }
            let total: usize = {
                // Longest contiguous-order length (complex alternates count
                // once, by their longest arrangement).
                let mut total = 0;
                let mut expect = 0u8;
                for &(order, count) in &lines {
                    if order == expect {
                        total += count;
                        expect += 1;
                    } else if order > expect {
                        break;
                    }
                }
                total
            };
            if total > 0 {
                pop.length_hist.record(total);
            }
        }
        pop
    }

    /// Metadata of one line, if valid: `(tag, order, uop count)`. Together
    /// with [`XbcArray::line_uops_at`] this exposes enough state for an
    /// *independent* census (see `xbc::XbcInvariants`), so the checker does
    /// not have to trust [`XbcArray::population`].
    pub fn line_meta(&self, set: usize, bank: usize, way: usize) -> Option<(u64, u8, usize)> {
        let idx = self.idx(set, bank, way);
        let m = self.meta[idx];
        if m & META_VALID == 0 {
            return None;
        }
        Some((self.tags[idx], meta_order(m), meta_count(m)))
    }

    /// Structural audit of one set (paper §3.2–§3.4 storage rules):
    ///
    /// * line geometry — `order < banks`, `1..=line_uops` uops per line;
    /// * reverse-order storage — the arena region is right-aligned and in
    ///   program order, so adjacent region slots of the same instruction
    ///   carry ascending uop slots, a branch kind implies `ends_inst`, and
    ///   interior uops carry [`BranchKind::None`](xbc_isa::BranchKind);
    /// * single exit — a boundary-ending branch uop may only sit at
    ///   position-from-end 0 (order 0, last region slot). Tags in
    ///   `merged_tags` are exempt: merge-mode combinations (§3.8) legally
    ///   bury the promoted conditional mid-block.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated storage rule.
    pub fn audit_set(
        &self,
        set: usize,
        merged_tags: &std::collections::HashSet<(usize, u64)>,
    ) -> Result<(), String> {
        for bank in 0..self.banks {
            for way in 0..self.ways {
                let idx = self.idx(set, bank, way);
                let m = self.meta[idx];
                if m & META_VALID == 0 {
                    continue;
                }
                let tag = self.tags[idx];
                let at = format!("set {set} bank {bank} way {way} tag {tag:#x}");
                if (meta_order(m) as usize) >= self.banks {
                    return Err(format!("{at}: order {} >= banks {}", meta_order(m), self.banks));
                }
                let count = meta_count(m);
                if count == 0 || count > self.line_uops {
                    return Err(format!("{at}: {count} uops in a {}-uop line", self.line_uops));
                }
                let merged = merged_tags.contains(&(set, tag));
                let region = self.region(idx, count);
                for (i, u) in region.iter().enumerate() {
                    // The region is in program order; slot s (the paper's
                    // reverse-storage index) is count-1-i positions from
                    // the line's end.
                    let slot = count - 1 - i;
                    if !u.ends_inst && u.branch != xbc_isa::BranchKind::None {
                        return Err(format!(
                            "{at} slot {slot}: interior uop carries branch {:?}",
                            u.branch
                        ));
                    }
                    // Position-from-end of this uop within the XB.
                    let pos = meta_order(m) as usize * self.line_uops + slot;
                    if pos != 0 && u.ends_inst && u.branch.ends_xb_boundary() && !merged {
                        return Err(format!(
                            "{at} slot {slot}: XB-ending branch {:?} at interior position {pos}",
                            u.branch
                        ));
                    }
                    // Reverse storage ⇔ program-order region: adjacent
                    // same-instruction region entries ascend by one slot.
                    if i + 1 < count {
                        let next = &region[i + 1];
                        if u.id.inst_ip == next.id.inst_ip && u.id.slot + 1 != next.id.slot {
                            return Err(format!(
                                "{at} slot {slot}: uop slots not descending ({} then {})",
                                u.id, next.id
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// [`XbcArray::audit_set`] over every set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated storage rule.
    pub fn audit(
        &self,
        merged_tags: &std::collections::HashSet<(usize, u64)>,
    ) -> Result<(), String> {
        for set in 0..self.sets {
            self.audit_set(set, merged_tags)?;
        }
        Ok(())
    }

    /// Redundancy audit: `(stored uop slots, distinct uop identities)`.
    /// The XBC's central claim is that these are (nearly) equal.
    pub fn redundancy(&self) -> (usize, usize) {
        let mut ids = std::collections::HashSet::new();
        let mut total = 0usize;
        for idx in 0..self.meta.len() {
            let m = self.meta[idx];
            if m & META_VALID == 0 {
                continue;
            }
            for u in self.region(idx, meta_count(m)) {
                total += 1;
                ids.insert(u.id);
            }
        }
        (total, ids.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_isa::{BranchKind, UopId, UopKind};

    fn cfg() -> XbcConfig {
        XbcConfig { total_uops: 128, ..XbcConfig::default() } // 4 sets
    }

    fn mk_uops(base_ip: u64, n: usize) -> Vec<Uop> {
        (0..n)
            .map(|i| {
                let last = i + 1 == n;
                Uop::new(
                    UopId::new(Addr::new(base_ip + i as u64), 0),
                    if last { UopKind::Branch } else { UopKind::Alu },
                    true,
                    if last { BranchKind::CondDirect } else { BranchKind::None },
                )
            })
            .collect()
    }

    /// End IP chosen so the XB lands in set 0 of a 4-set array.
    fn end_ip(n: usize) -> Addr {
        Addr::new(0x100 + n as u64 - 1)
    }

    #[test]
    fn insert_and_read_roundtrip() {
        let mut a = XbcArray::new(&cfg());
        let uops = mk_uops(0x100, 10);
        let ip = end_ip(10);
        let mask = a.insert(ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
        assert_eq!(mask.count(), 3); // ceil(10/4)
        let (set, tag) = a.set_and_tag(ip);
        let asm = a.assemble(set, tag, None).unwrap();
        assert_eq!(asm.total_uops, 10);
        assert_eq!(a.read_uops(set, &asm), uops);
    }

    #[test]
    fn reverse_order_storage_head_is_partial() {
        let mut a = XbcArray::new(&cfg());
        let uops = mk_uops(0x200, 9); // 3 lines: 4 + 4 + 1
        let ip = Addr::new(0x200 + 8);
        a.insert(ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
        let (set, tag) = a.set_and_tag(ip);
        let asm = a.assemble(set, tag, None).unwrap();
        assert_eq!(asm.lines.len(), 3);
        // Head line (order 2) holds exactly one uop: the XB's first.
        let (hb, hw) = (asm.lines[2].0 as usize, asm.lines[2].1 as usize);
        let head = a.line_uops_at(set, hb, hw).unwrap();
        assert_eq!(head.len(), 1);
        assert_eq!(head[0], uops[0]);
        let (_, order, count) = a.line_meta(set, hb, hw).unwrap();
        assert_eq!((order, count), (2, 1));
    }

    #[test]
    fn lookup_respects_offset_and_mask() {
        let mut a = XbcArray::new(&cfg());
        let uops = mk_uops(0x300, 8);
        let ip = Addr::new(0x307);
        let mask = a.insert(ip, &uops, 0, BankMask::EMPTY, BankMask::EMPTY);
        let full = XbPtr::new(ip, Addr::new(0x300), mask, 8);
        assert!(a.lookup(&full).is_some());
        // An entry mid-block needs fewer orders.
        let mid = XbPtr::new(ip, Addr::new(0x303), mask, 5);
        assert!(a.lookup(&mid).is_some());
        // A wrong mask fails.
        let bogus = XbPtr::new(ip, Addr::new(0x300), BankMask::from_bits(0b1000), 8);
        // (unless the XB happens to sit in exactly bank 3 alone, impossible
        // for an 8-uop XB needing 2 banks)
        assert!(a.lookup(&bogus).is_none());
    }

    #[test]
    fn extend_prepends_without_moving() {
        let mut a = XbcArray::new(&cfg());
        let full = mk_uops(0x400, 10);
        let ip = Addr::new(0x400 + 9);
        // Insert only the 6-uop suffix first (an XB discovered mid-way).
        a.insert(ip, &full[4..], 0, BankMask::EMPTY, BankMask::EMPTY);
        let (set, tag) = a.set_and_tag(ip);
        let asm = a.assemble(set, tag, None).unwrap();
        assert_eq!(asm.total_uops, 6);
        let before: Vec<(u8, u8)> = asm.lines.to_vec();
        // Extend with the 4 earlier uops.
        let mask = a.extend(ip, &asm, &full[..4], BankMask::EMPTY);
        let asm2 = a.assemble(set, tag, None).unwrap();
        assert_eq!(asm2.total_uops, 10);
        assert_eq!(a.read_uops(set, &asm2), full);
        // The original lines did not move (reverse order property, §3.4).
        assert_eq!(&asm2.lines[..2], &before[..]);
        assert!(mask.count() >= asm.mask.count());
        assert_eq!(a.stats().extensions, 1);
    }

    #[test]
    fn fetch_two_disjoint_xbs_in_one_cycle() {
        let mut a = XbcArray::new(&cfg());
        let u1 = mk_uops(0x500, 8);
        let ip1 = Addr::new(0x507);
        let m1 = a.insert(ip1, &u1, 0, BankMask::EMPTY, BankMask::EMPTY);
        let u2 = mk_uops(0x600, 8);
        let ip2 = Addr::new(0x607);
        // Smart placement avoids the first XB's banks.
        let m2 = a.insert(ip2, &u2, 0, BankMask::EMPTY, m1);
        assert!(!m1.intersects(m2), "smart placement should separate the XBs");
        let p1 = XbPtr::new(ip1, Addr::new(0x500), m1, 8);
        let p2 = XbPtr::new(ip2, Addr::new(0x600), m2, 8);
        let (results, used) = a.fetch(&[p1, p2]);
        assert_eq!(results, [XbFetch::Full, XbFetch::Full]);
        assert_eq!(used.count(), 4);
    }

    #[test]
    fn fetch_conflict_defers_suffix() {
        let mut a = XbcArray::new(&XbcConfig {
            total_uops: 128,
            dynamic_placement: false,
            ..XbcConfig::default()
        });
        let u1 = mk_uops(0x500, 8);
        let ip1 = Addr::new(0x507);
        let m1 = a.insert(ip1, &u1, 0, BankMask::EMPTY, BankMask::EMPTY);
        let u2 = mk_uops(0x600, 8);
        let ip2 = Addr::new(0x607);
        // Force overlap: place XB2 in the same banks as XB1.
        let forbidden_of_others = {
            // compute complement of m1 and forbid it, pushing XB2 into m1's banks
            let mut f = BankMask::EMPTY;
            for b in 0..4 {
                if !m1.contains(b) {
                    f.insert(b);
                }
            }
            f
        };
        let m2 = a.insert(ip2, &u2, 0, forbidden_of_others, BankMask::EMPTY);
        assert!(m1.intersects(m2));
        let p1 = XbPtr::new(ip1, Addr::new(0x500), m1, 8);
        let p2 = XbPtr::new(ip2, Addr::new(0x600), m2, 8);
        let (results, _) = a.fetch(&[p1, p2]);
        assert_eq!(results[0], XbFetch::Full);
        match results[1] {
            XbFetch::Partial { fetched, deferred } => {
                assert_eq!(fetched + deferred, 8);
                assert_eq!(deferred % 4, 0, "deferral happens at line granularity");
            }
            other => panic!("expected partial fetch, got {other:?}"),
        }
    }

    #[test]
    fn mid_entry_fetch_counts_window_only() {
        let mut a = XbcArray::new(&cfg());
        let u = mk_uops(0x700, 12);
        let ip = Addr::new(0x70b);
        let m = a.insert(ip, &u, 0, BankMask::EMPTY, BankMask::EMPTY);
        // Enter with offset 5: only orders 0 and 1 needed.
        let p = XbPtr::new(ip, Addr::new(0x707), m, 5);
        let (results, used) = a.fetch(&[p]);
        assert_eq!(results, [XbFetch::Full]);
        assert_eq!(used.count(), 2);
    }

    #[test]
    fn eviction_truncates_from_head() {
        // 1-set array so everything collides.
        let tiny = XbcConfig { total_uops: 32, ..XbcConfig::default() }; // 1 set
        let mut a = XbcArray::new(&tiny);
        // Fill the set: 2 XBs × 16 uops = 32 uops (8 lines).
        let u1 = mk_uops(0x100, 16);
        let ip1 = Addr::new(0x10f);
        let m1 = a.insert(ip1, &u1, 0, BankMask::EMPTY, BankMask::EMPTY);
        let u2 = mk_uops(0x200, 16);
        let ip2 = Addr::new(0x20f);
        a.insert(ip2, &u2, 0, BankMask::EMPTY, BankMask::EMPTY);
        assert_eq!(a.valid_lines(), 8);
        // A third insert evicts lines; victims should be head lines first,
        // so surviving XB fragments stay fetchable from lower offsets.
        let u3 = mk_uops(0x300, 8);
        let ip3 = Addr::new(0x307);
        a.insert(ip3, &u3, 0, BankMask::EMPTY, BankMask::EMPTY);
        assert!(a.stats().evicted_lines >= 2);
        // XB1 should survive as a (possibly shorter) suffix, if any of it
        // remains reachable.
        let (set, tag) = a.set_and_tag(ip1);
        if let Some(asm) = a.assemble(set, tag, None) {
            assert!(asm.total_uops % 4 == 0 || asm.total_uops == 16);
            let read = a.read_uops(set, &asm);
            assert_eq!(&read[..], &u1[16 - asm.total_uops..]);
        }
        let _ = m1;
    }

    #[test]
    fn set_search_finds_relocated_xb() {
        let mut a = XbcArray::new(&cfg());
        let u = mk_uops(0x800, 8);
        let ip = Addr::new(0x807);
        let m = a.insert(ip, &u, 0, BankMask::EMPTY, BankMask::EMPTY);
        // A stale pointer with the wrong mask misses...
        let mut wrong = BankMask::EMPTY;
        for b in 0..4 {
            if !m.contains(b) {
                wrong.insert(b);
            }
        }
        let stale = XbPtr::new(ip, Addr::new(0x800), wrong, 8);
        assert!(a.lookup(&stale).is_none());
        // ...but set search recovers the true mask.
        let repaired = a.set_search(ip, 8).expect("XB is present");
        assert_eq!(repaired, m);
        assert!(a.lookup(&XbPtr::new(ip, Addr::new(0x800), repaired, 8)).is_some());
    }

    #[test]
    fn no_redundancy_for_distinct_xbs() {
        let mut a = XbcArray::new(&XbcConfig { total_uops: 1024, ..XbcConfig::default() });
        for i in 0..8u64 {
            // Odd stride so the XBs spread over the 32 sets instead of
            // aliasing into one.
            let u = mk_uops(0x1000 + i * 37, 12);
            a.insert(Addr::new(0x1000 + i * 37 + 11), &u, 0, BankMask::EMPTY, BankMask::EMPTY);
        }
        let (total, distinct) = a.redundancy();
        assert_eq!(total, distinct, "distinct XBs must not duplicate uops");
        assert_eq!(total, 96);
    }

    #[test]
    fn complex_xb_shares_suffix_lines() {
        let mut a = XbcArray::new(&cfg());
        // XB_cur = 12 uops ending at ip; XB_new shares the last 8 uops
        // (2 lines) but has a different 4-uop prefix.
        let cur = mk_uops(0x900, 12);
        let ip = Addr::new(0x90b);
        let m_cur = a.insert(ip, &cur, 0, BankMask::EMPTY, BankMask::EMPTY);
        let (set, tag) = a.set_and_tag(ip);
        let asm = a.assemble(set, tag, None).unwrap();
        // Shared suffix: orders 0..1 (8 uops). New prefix: 4 different uops.
        let mut new_xb = mk_uops(0xA00, 4);
        new_xb.extend_from_slice(&cur[4..]);
        let suffix_mask = {
            let mut m = BankMask::EMPTY;
            m.insert(asm.lines[0].0 as usize);
            m.insert(asm.lines[1].0 as usize);
            m
        };
        let added = a.insert(ip, &new_xb, 2, suffix_mask, BankMask::EMPTY);
        assert_eq!(added.count(), 1);
        assert!(!added.intersects(suffix_mask));
        // Both pointers now resolve within their masks.
        let p_new = XbPtr::new(ip, Addr::new(0xA00), suffix_mask.union(added), 12);
        assert!(a.lookup(&p_new).is_some(), "complex prefix must assemble");
        let _ = m_cur;
        // Storage grew by one line only (the shared suffix is not copied).
        assert_eq!(a.valid_lines(), 4);
    }

    #[test]
    fn population_census() {
        let mut a = XbcArray::new(&XbcConfig { total_uops: 1024, ..XbcConfig::default() });
        let u1 = mk_uops(0x100, 10);
        a.insert(Addr::new(0x109), &u1, 0, BankMask::EMPTY, BankMask::EMPTY);
        let u2 = mk_uops(0x200, 5);
        a.insert(Addr::new(0x204), &u2, 0, BankMask::EMPTY, BankMask::EMPTY);
        let pop = a.population();
        assert_eq!(pop.xb_count, 2);
        assert_eq!(pop.lines, 5); // 3 + 2
        assert_eq!(pop.stored_uops, 15);
        assert_eq!(pop.complex_count, 0);
        assert_eq!(pop.truncated_count, 0);
        assert_eq!(pop.length_hist.count(), 2);
        assert!((pop.length_hist.mean() - 7.5).abs() < 1e-9);
        // Add a complex alternate prefix to the first XB.
        let (set, tag) = a.set_and_tag(Addr::new(0x109));
        let asm = a.assemble(set, tag, None).unwrap();
        let mut alt = mk_uops(0x300, 2);
        alt.extend_from_slice(&u1[2..]);
        let mut suffix = BankMask::EMPTY;
        suffix.insert(asm.lines[0].0 as usize);
        suffix.insert(asm.lines[1].0 as usize);
        a.insert(Addr::new(0x109), &alt, 2, suffix, BankMask::EMPTY);
        let pop = a.population();
        assert_eq!(pop.xb_count, 2);
        assert_eq!(pop.complex_count, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the fetch width")]
    fn oversized_xb_rejected() {
        let mut a = XbcArray::new(&cfg());
        let u = mk_uops(0xB00, 17);
        a.insert(Addr::new(0xB10), &u, 0, BankMask::EMPTY, BankMask::EMPTY);
    }
}
