//! The `xbc-serve-v1` wire protocol.
//!
//! JSONL over a Unix-domain or TCP socket (the protocol never cares
//! which — see [`crate::transport`]): every message is one JSON object
//! on one line. The conversation is strictly client-driven:
//!
//! ```text
//! server → {"schema":"xbc-serve-v1","type":"hello","threads":8}
//! client → {"type":"ping"}
//! server → {"type":"pong"}
//! client → {"type":"sweep","traces":["spec.gcc"],"frontends":[{"kind":"ic"}],"insts":20000,"priority":0}
//! server → {"type":"row","index":0,"row":{...}}         (index order 0..rows-1)
//! server → {"type":"done","rows":1,"bench":{...},"store":{...},"sched":{...}}
//! client → {"type":"shutdown"}
//! server → {"type":"bye","draining":3}                  (daemon drains 3 cells, then exits)
//! ```
//!
//! `priority` is optional on the wire (default 0); higher classes are
//! dispatched first, and within a class the daemon round-robins across
//! clients. The `done` trailer's `sched` object snapshots the daemon's
//! queue (depth, per-client cell counts, dedup/retry counters).
//!
//! Errors come back as `{"type":"error","message":"..."}` and leave the
//! connection usable for the next request.
//!
//! The compact row serializer here writes the *same values, in the same
//! field order, with the same `f64` shortest-roundtrip formatting* as
//! `xbc_sim::Row::to_json` — only the whitespace differs. A client that
//! parses wire rows and re-encodes them with `xbc_sim::to_json` gets
//! output byte-identical to a one-shot `xbcsim sweep --json` of the
//! same grid (given the same store), which is what the CI serve gate
//! diffs.

use crate::scheduler::{ClientCells, SchedStats};
use xbc_sim::json::{escape, Json};
use xbc_sim::{FrontendSpec, Row, SweepBench, WorkerStat};
use xbc_store::StoreStats;

/// Protocol schema identifier, announced in the hello line.
pub const SCHEMA: &str = "xbc-serve-v1";

/// One sweep request: a (trace × frontend) grid at a fixed instruction
/// budget — the same cell model as `xbc_sim::Sweep`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepRequest {
    /// Standard-trace names (see `xbcsim list`).
    pub traces: Vec<String>,
    /// Frontend configurations, one column per entry.
    pub frontends: Vec<FrontendSpec>,
    /// Dynamic instructions per trace.
    pub insts: usize,
    /// Scheduling class: queued cells of a higher class always dispatch
    /// before lower ones; equal classes round-robin. Default 0.
    pub priority: u32,
}

/// A parsed client request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the server answers `pong`.
    Ping,
    /// Graceful daemon shutdown; the server answers `bye`, drains
    /// queued work, and exits.
    Shutdown,
    /// A sweep grid; the server streams `row` lines then one `done`.
    Sweep(SweepRequest),
}

/// The server's greeting, sent once per connection.
pub fn hello_line(threads: usize) -> String {
    format!("{{\"schema\":\"{SCHEMA}\",\"type\":\"hello\",\"threads\":{threads}}}")
}

/// Reply to [`Request::Ping`].
pub fn pong_line() -> String {
    "{\"type\":\"pong\"}".to_owned()
}

/// Reply to [`Request::Shutdown`]: `draining` counts the cells (queued
/// or running) the daemon will finish streaming before it exits.
pub fn bye_line(draining: u64) -> String {
    format!("{{\"type\":\"bye\",\"draining\":{draining}}}")
}

/// An error reply; the connection stays open.
pub fn error_line(msg: &str) -> String {
    format!("{{\"type\":\"error\",\"message\":\"{}\"}}", escape(msg))
}

/// Serializes a sweep request as its wire line.
pub fn render_sweep_request(req: &SweepRequest) -> String {
    let traces: Vec<String> = req.traces.iter().map(|t| format!("\"{}\"", escape(t))).collect();
    let fes: Vec<String> = req.frontends.iter().map(FrontendSpec::to_json).collect();
    format!(
        "{{\"type\":\"sweep\",\"traces\":[{}],\"frontends\":[{}],\"insts\":{},\"priority\":{}}}",
        traces.join(","),
        fes.join(","),
        req.insts,
        req.priority
    )
}

/// Parses one client request line.
///
/// # Errors
///
/// Returns a message naming the malformed or missing field; the caller
/// reports it via [`error_line`] and keeps the connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let j = Json::parse(line)?;
    match j.get("type").and_then(Json::as_str) {
        Some("ping") => Ok(Request::Ping),
        Some("shutdown") => Ok(Request::Shutdown),
        Some("sweep") => {
            let traces = j
                .get("traces")
                .and_then(Json::as_arr)
                .ok_or("sweep request missing traces")?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "trace names must be strings".to_owned())
                })
                .collect::<Result<Vec<_>, _>>()?;
            let frontends = j
                .get("frontends")
                .and_then(Json::as_arr)
                .ok_or("sweep request missing frontends")?
                .iter()
                .map(FrontendSpec::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let insts =
                j.get("insts").and_then(Json::as_usize).ok_or("sweep request missing insts")?;
            let priority = match j.get("priority") {
                None => 0,
                Some(p) => {
                    u32::try_from(p.as_u64().ok_or("priority must be a non-negative integer")?)
                        .map_err(|_| "priority exceeds u32 range".to_owned())?
                }
            };
            Ok(Request::Sweep(SweepRequest { traces, frontends, insts, priority }))
        }
        Some(other) => Err(format!("unknown request type {other:?}")),
        None => Err("request missing type".into()),
    }
}

/// Serializes a row as a single-line JSON object: same fields, same
/// order, same value formatting as `Row::to_json` — whitespace only
/// differs, so parse → `Row` → re-encode is exact either way.
pub fn row_to_compact_json(r: &Row) -> String {
    format!(
        "{{\"trace\":\"{}\",\"suite\":\"{}\",\"frontend\":{},\"insts\":{},\"uops\":{},\
         \"cycles\":{},\"miss_rate\":{},\"bandwidth\":{},\"uops_per_cycle\":{},\
         \"cond_mispredicts\":{},\"target_mispredicts\":{},\"delivery_to_build\":{},\
         \"bank_conflict_uops\":{},\"promotions\":{},\"elapsed_ms\":{}}}",
        escape(&r.trace),
        escape(&r.suite),
        r.frontend.to_json(),
        r.insts,
        r.uops,
        r.cycles,
        r.miss_rate,
        r.bandwidth,
        r.uops_per_cycle,
        r.cond_mispredicts,
        r.target_mispredicts,
        r.delivery_to_build,
        r.bank_conflict_uops,
        r.promotions,
        r.elapsed_ms,
    )
}

/// One `row` line of a sweep response.
pub fn row_line(index: usize, row: &Row) -> String {
    format!("{{\"type\":\"row\",\"index\":{index},\"row\":{}}}", row_to_compact_json(row))
}

/// Serializes a [`SweepBench`] as a single-line JSON object (the wire
/// form of the `xbc-sweep-bench-v1` schema; derived rates are omitted —
/// [`bench_from_json`] recomputes them).
pub fn bench_to_compact_json(b: &SweepBench) -> String {
    let workers: Vec<String> = b
        .workers
        .iter()
        .map(|w| format!("{{\"cells\":{},\"busy_ms\":{}}}", w.cells, w.busy_ms))
        .collect();
    format!(
        "{{\"schema\":\"xbc-sweep-bench-v1\",\"threads\":{},\"traces\":{},\"frontends\":{},\
         \"total_cells\":{},\"cached_cells\":{},\"simulated_cells\":{},\"deduped_cells\":{},\
         \"captures\":{},\"capture_ms\":{},\"sim_ms\":{},\
         \"overlapped_cells\":{},\"overlap_ms\":{},\"wall_ms\":{},\"workers\":[{}]}}",
        b.threads,
        b.traces,
        b.frontends,
        b.total_cells,
        b.cached_cells,
        b.simulated_cells,
        b.deduped_cells,
        b.captures,
        b.capture_ms,
        b.sim_ms,
        b.overlapped_cells,
        b.overlap_ms,
        b.wall_ms,
        workers.join(","),
    )
}

/// Reconstructs a [`SweepBench`] from a parsed JSON object — accepts
/// both the compact wire form and the multi-line `SweepBench::to_json`
/// artifact (derived-rate fields, when present, are ignored).
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn bench_from_json(j: &Json) -> Result<SweepBench, String> {
    fn u64_field(j: &Json, k: &str) -> Result<u64, String> {
        j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("bench missing {k}"))
    }
    fn usize_field(j: &Json, k: &str) -> Result<usize, String> {
        j.get(k).and_then(Json::as_usize).ok_or_else(|| format!("bench missing {k}"))
    }
    let workers = j
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("bench missing workers")?
        .iter()
        .map(|w| {
            Ok(WorkerStat { cells: usize_field(w, "cells")?, busy_ms: u64_field(w, "busy_ms")? })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SweepBench {
        threads: usize_field(j, "threads")?,
        traces: usize_field(j, "traces")?,
        frontends: usize_field(j, "frontends")?,
        total_cells: usize_field(j, "total_cells")?,
        cached_cells: usize_field(j, "cached_cells")?,
        simulated_cells: usize_field(j, "simulated_cells")?,
        // Optional: absent in pre-dedup bench artifacts.
        deduped_cells: j.get("deduped_cells").and_then(Json::as_usize).unwrap_or(0),
        captures: u64_field(j, "captures")?,
        capture_ms: u64_field(j, "capture_ms")?,
        sim_ms: u64_field(j, "sim_ms")?,
        // Optional: absent in pre-streaming bench artifacts.
        overlapped_cells: j.get("overlapped_cells").and_then(Json::as_usize).unwrap_or(0),
        overlap_ms: j.get("overlap_ms").and_then(Json::as_u64).unwrap_or(0),
        wall_ms: u64_field(j, "wall_ms")?,
        workers,
    })
}

/// Serializes a [`StoreStats`] snapshot (or delta) as a single-line
/// JSON object.
pub fn stats_to_compact_json(s: &StoreStats) -> String {
    format!(
        "{{\"trace_hits\":{},\"trace_misses\":{},\"result_hits\":{},\"result_misses\":{},\
         \"bytes_read\":{},\"bytes_written\":{},\"corrupt_entries\":{}}}",
        s.trace_hits,
        s.trace_misses,
        s.result_hits,
        s.result_misses,
        s.bytes_read,
        s.bytes_written,
        s.corrupt_entries,
    )
}

/// Reconstructs a [`StoreStats`] from a parsed JSON object.
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn stats_from_json(j: &Json) -> Result<StoreStats, String> {
    fn u64_field(j: &Json, k: &str) -> Result<u64, String> {
        j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("store stats missing {k}"))
    }
    Ok(StoreStats {
        trace_hits: u64_field(j, "trace_hits")?,
        trace_misses: u64_field(j, "trace_misses")?,
        result_hits: u64_field(j, "result_hits")?,
        result_misses: u64_field(j, "result_misses")?,
        bytes_read: u64_field(j, "bytes_read")?,
        bytes_written: u64_field(j, "bytes_written")?,
        corrupt_entries: u64_field(j, "corrupt_entries")?,
    })
}

/// Counter delta `after - before` of two snapshots of one store. The
/// store is shared by every client of the daemon, so a per-request
/// delta includes any concurrently-served requests' activity — it is a
/// "what the store did while your request ran" figure, not an exact
/// per-request attribution.
pub fn stats_delta(before: &StoreStats, after: &StoreStats) -> StoreStats {
    StoreStats {
        trace_hits: after.trace_hits.saturating_sub(before.trace_hits),
        trace_misses: after.trace_misses.saturating_sub(before.trace_misses),
        result_hits: after.result_hits.saturating_sub(before.result_hits),
        result_misses: after.result_misses.saturating_sub(before.result_misses),
        bytes_read: after.bytes_read.saturating_sub(before.bytes_read),
        bytes_written: after.bytes_written.saturating_sub(before.bytes_written),
        corrupt_entries: after.corrupt_entries.saturating_sub(before.corrupt_entries),
    }
}

/// Serializes a [`SchedStats`] queue snapshot as a single-line JSON
/// object.
pub fn sched_to_compact_json(s: &SchedStats) -> String {
    let clients: Vec<String> = s
        .clients
        .iter()
        .map(|c| {
            format!(
                "{{\"client\":{},\"priority\":{},\"queued\":{}}}",
                c.client, c.priority, c.queued
            )
        })
        .collect();
    format!(
        "{{\"queue_depth\":{},\"enqueued_cells\":{},\"completed_cells\":{},\
         \"deduped_cells\":{},\"retried_cells\":{},\"cancelled_cells\":{},\"clients\":[{}]}}",
        s.queue_depth,
        s.enqueued_cells,
        s.completed_cells,
        s.deduped_cells,
        s.retried_cells,
        s.cancelled_cells,
        clients.join(","),
    )
}

/// Reconstructs a [`SchedStats`] from a parsed JSON object.
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn sched_from_json(j: &Json) -> Result<SchedStats, String> {
    fn u64_field(j: &Json, k: &str) -> Result<u64, String> {
        j.get(k).and_then(Json::as_u64).ok_or_else(|| format!("sched stats missing {k}"))
    }
    let clients = j
        .get("clients")
        .and_then(Json::as_arr)
        .ok_or("sched stats missing clients")?
        .iter()
        .map(|c| {
            Ok(ClientCells {
                client: u64_field(c, "client")?,
                priority: u32::try_from(u64_field(c, "priority")?)
                    .map_err(|_| "client priority exceeds u32 range".to_owned())?,
                queued: u64_field(c, "queued")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SchedStats {
        queue_depth: u64_field(j, "queue_depth")?,
        enqueued_cells: u64_field(j, "enqueued_cells")?,
        completed_cells: u64_field(j, "completed_cells")?,
        deduped_cells: u64_field(j, "deduped_cells")?,
        retried_cells: u64_field(j, "retried_cells")?,
        cancelled_cells: u64_field(j, "cancelled_cells")?,
        clients,
    })
}

/// The `done` trailer closing a sweep response. `store` is `null` when
/// the daemon runs uncached; `sched` is the daemon's queue snapshot at
/// completion time (older daemons omitted it, so readers treat it as
/// optional).
pub fn done_line(
    rows: usize,
    bench: &SweepBench,
    store: Option<&StoreStats>,
    sched: Option<&SchedStats>,
) -> String {
    let store = match store {
        Some(s) => stats_to_compact_json(s),
        None => "null".to_owned(),
    };
    let sched = match sched {
        Some(s) => sched_to_compact_json(s),
        None => "null".to_owned(),
    };
    format!(
        "{{\"type\":\"done\",\"rows\":{rows},\"bench\":{},\"store\":{},\"sched\":{}}}",
        bench_to_compact_json(bench),
        store,
        sched
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbc_frontend::FrontendMetrics;

    fn sample_row() -> Row {
        let m = FrontendMetrics {
            cycles: 1000,
            delivery_cycles: 600,
            structure_uops: 4000,
            ic_uops: 2000,
            ..Default::default()
        };
        let mut r = Row::new("spec.gcc", "spec", FrontendSpec::xbc_default(), 5000, &m);
        r.elapsed_ms = 17;
        r
    }

    #[test]
    fn request_roundtrip() {
        let req = SweepRequest {
            traces: vec!["spec.gcc".into(), "games.quake".into()],
            frontends: vec![
                FrontendSpec::Ic,
                FrontendSpec::Xbc { total_uops: 8192, ways: 2, promotion: true },
            ],
            insts: 20_000,
            priority: 3,
        };
        let line = render_sweep_request(&req);
        assert!(!line.contains('\n'));
        match parse_request(&line).unwrap() {
            Request::Sweep(back) => assert_eq!(back, req),
            other => panic!("parsed {other:?}"),
        }
        assert_eq!(parse_request("{\"type\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"type\":\"shutdown\"}").unwrap(), Request::Shutdown);
        assert!(parse_request("{\"type\":\"zap\"}").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request("{\"type\":\"sweep\"}").is_err());
    }

    #[test]
    fn priority_defaults_to_zero_and_rejects_garbage() {
        let line = "{\"type\":\"sweep\",\"traces\":[\"spec.gcc\"],\
                    \"frontends\":[{\"kind\":\"ic\"}],\"insts\":100}";
        match parse_request(line).unwrap() {
            Request::Sweep(req) => assert_eq!(req.priority, 0),
            other => panic!("parsed {other:?}"),
        }
        let bad = line.replace(",\"insts\":100", ",\"insts\":100,\"priority\":\"high\"");
        assert!(parse_request(&bad).unwrap_err().contains("priority"));
    }

    #[test]
    fn compact_row_is_exact_and_single_line() {
        let row = sample_row();
        let compact = row_to_compact_json(&row);
        assert!(!compact.contains('\n'));
        let back = Row::from_json(&Json::parse(&compact).unwrap()).unwrap();
        // The wire row re-encodes (via the sim serializer) byte-identically
        // to the original — the fixed point the CI serve gate relies on.
        assert_eq!(
            xbc_sim::to_json(std::slice::from_ref(&back)),
            xbc_sim::to_json(std::slice::from_ref(&row))
        );
        // And the compact form itself is a fixed point too.
        assert_eq!(row_to_compact_json(&back), compact);
    }

    #[test]
    fn row_line_carries_index() {
        let line = row_line(3, &sample_row());
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("type").and_then(Json::as_str), Some("row"));
        assert_eq!(j.get("index").and_then(Json::as_usize), Some(3));
        assert!(j.get("row").is_some());
    }

    #[test]
    fn bench_roundtrip_compact_and_artifact() {
        let bench = SweepBench {
            threads: 4,
            traces: 2,
            frontends: 3,
            total_cells: 6,
            cached_cells: 1,
            simulated_cells: 3,
            deduped_cells: 2,
            captures: 2,
            capture_ms: 30,
            sim_ms: 970,
            overlapped_cells: 1,
            overlap_ms: 15,
            wall_ms: 500,
            workers: vec![WorkerStat { cells: 5, busy_ms: 490 }],
        };
        let compact = bench_to_compact_json(&bench);
        assert!(!compact.contains('\n'));
        let back = bench_from_json(&Json::parse(&compact).unwrap()).unwrap();
        assert_eq!(back.total_cells, 6);
        assert_eq!(back.deduped_cells, 2);
        assert_eq!(back.overlapped_cells, 1);
        assert_eq!(back.overlap_ms, 15);
        assert_eq!(back.workers, bench.workers);
        // The multi-line artifact form parses through the same reader.
        let art = bench_from_json(&Json::parse(&bench.to_json()).unwrap()).unwrap();
        assert_eq!(art.simulated_cells, 3);
        assert_eq!(art.wall_ms, 500);
        assert_eq!(art.overlap_ms, 15);
        // Pre-dedup / pre-streaming artifacts (missing fields) still parse.
        let legacy = compact
            .replace(",\"deduped_cells\":2", "")
            .replace(",\"overlapped_cells\":1,\"overlap_ms\":15", "");
        let old = bench_from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(old.deduped_cells, 0);
        assert_eq!(old.overlapped_cells, 0);
        assert_eq!(old.overlap_ms, 0);
    }

    #[test]
    fn sched_roundtrip() {
        let stats = SchedStats {
            queue_depth: 4,
            enqueued_cells: 10,
            completed_cells: 6,
            deduped_cells: 2,
            retried_cells: 1,
            cancelled_cells: 0,
            clients: vec![
                ClientCells { client: 1, priority: 0, queued: 3 },
                ClientCells { client: 2, priority: 5, queued: 1 },
            ],
        };
        let compact = sched_to_compact_json(&stats);
        assert!(!compact.contains('\n'));
        let back = sched_from_json(&Json::parse(&compact).unwrap()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn stats_roundtrip_and_delta() {
        let before =
            StoreStats { trace_hits: 1, result_hits: 2, bytes_read: 100, ..Default::default() };
        let after = StoreStats {
            trace_hits: 3,
            trace_misses: 1,
            result_hits: 2,
            result_misses: 4,
            bytes_read: 900,
            bytes_written: 50,
            corrupt_entries: 0,
        };
        let d = stats_delta(&before, &after);
        assert_eq!(d.trace_hits, 2);
        assert_eq!(d.result_hits, 0);
        assert_eq!(d.bytes_read, 800);
        let back = stats_from_json(&Json::parse(&stats_to_compact_json(&d)).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn done_line_shape() {
        let line = done_line(
            6,
            &SweepBench::default(),
            Some(&StoreStats::default()),
            Some(&SchedStats::default()),
        );
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("type").and_then(Json::as_str), Some("done"));
        assert_eq!(j.get("rows").and_then(Json::as_usize), Some(6));
        assert!(bench_from_json(j.get("bench").unwrap()).is_ok());
        assert!(stats_from_json(j.get("store").unwrap()).is_ok());
        assert!(sched_from_json(j.get("sched").unwrap()).is_ok());
        let uncached = done_line(0, &SweepBench::default(), None, None);
        let j = Json::parse(&uncached).unwrap();
        assert_eq!(j.get("store"), Some(&Json::Null));
        assert_eq!(j.get("sched"), Some(&Json::Null));
    }

    #[test]
    fn bye_line_reports_drain_count() {
        let j = Json::parse(&bye_line(7)).unwrap();
        assert_eq!(j.get("type").and_then(Json::as_str), Some("bye"));
        assert_eq!(j.get("draining").and_then(Json::as_u64), Some(7));
    }
}
