//! Static (architectural) instructions of the simulated variable-length ISA.
//!
//! The paper targets IA32: variable-length instructions that the decoder
//! translates into one or more fixed-length RISC-like *uops*. We model a
//! synthetic ISA with the same two properties that matter to the frontend:
//!
//! * instructions are 1–15 bytes long (parallel decode is hard, fetch lines
//!   contain a variable number of instructions), and
//! * each instruction expands to 1–[`Inst::MAX_UOPS`] uops.

use crate::Addr;
use std::fmt;

/// Control-flow class of an instruction.
///
/// The distinction drives every frontend structure in this workspace:
///
/// * conditional and indirect control flow **ends** an extended block
///   (paper §3.1),
/// * unconditional direct jumps do **not** end an extended block but do end
///   a basic block,
/// * calls/returns additionally interact with the return-stack predictors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BranchKind {
    /// Not a branch: execution always falls through.
    #[default]
    None,
    /// Conditional direct branch: taken target is static, may fall through.
    CondDirect,
    /// Unconditional direct jump: exactly one static target.
    UncondDirect,
    /// Unconditional direct call (pushes a return address).
    CallDirect,
    /// Indirect jump through a register/memory operand (multiple targets).
    IndirectJump,
    /// Indirect call (multiple targets, pushes a return address).
    IndirectCall,
    /// Return: indirect through the stack.
    Return,
}

impl BranchKind {
    /// True for any control-flow instruction (anything but [`BranchKind::None`]).
    #[inline]
    pub const fn is_branch(self) -> bool {
        !matches!(self, BranchKind::None)
    }

    /// True if the instruction may resolve to more than one successor at
    /// run time, i.e. it terminates an extended block (paper §3.1).
    ///
    /// Conditional branches (two successors), indirect jumps/calls and
    /// returns (many successors) qualify; unconditional direct jumps and
    /// calls do not.
    #[inline]
    pub const fn ends_xb(self) -> bool {
        matches!(
            self,
            BranchKind::CondDirect
                | BranchKind::IndirectJump
                | BranchKind::IndirectCall
                | BranchKind::Return
        )
    }

    /// True if the instruction ends a classical basic block: any branch
    /// does, including unconditional direct jumps.
    #[inline]
    pub const fn ends_basic_block(self) -> bool {
        self.is_branch()
    }

    /// The *implementation* XB-boundary convention used throughout this
    /// workspace: everything in [`BranchKind::ends_xb`] **plus direct
    /// calls**.
    ///
    /// Paper §3.1 lists only conditional/indirect branches and returns as
    /// XB end conditions, but §3.5 describes XBTB entries for "a XB ended
    /// by the corresponding call" — the XRSB bookkeeping requires call
    /// boundaries. We follow §3.5; only unconditional direct *jumps* are
    /// transparent to XBs.
    #[inline]
    pub const fn ends_xb_boundary(self) -> bool {
        self.ends_xb() || matches!(self, BranchKind::CallDirect)
    }

    /// True for instructions that push a return address (direct and
    /// indirect calls).
    #[inline]
    pub const fn is_call(self) -> bool {
        matches!(self, BranchKind::CallDirect | BranchKind::IndirectCall)
    }

    /// True for indirect transfers (target not encoded in the instruction).
    #[inline]
    pub const fn is_indirect(self) -> bool {
        matches!(self, BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return)
    }

    /// True if the instruction can fall through to the next sequential
    /// instruction (only conditional branches and non-branches).
    #[inline]
    pub const fn may_fall_through(self) -> bool {
        matches!(self, BranchKind::None | BranchKind::CondDirect)
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::None => "none",
            BranchKind::CondDirect => "cond",
            BranchKind::UncondDirect => "jmp",
            BranchKind::CallDirect => "call",
            BranchKind::IndirectJump => "ijmp",
            BranchKind::IndirectCall => "icall",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

/// A static instruction: its address, encoded length, uop expansion count
/// and control-flow behaviour.
///
/// `Inst` is the unit stored in simulated program images and fetched through
/// the instruction cache; the decoder expands it into uops
/// (see [`crate::decode`]).
///
/// # Examples
///
/// ```
/// use xbc_isa::{Addr, BranchKind, Inst};
///
/// let i = Inst::new(Addr::new(0x100), 5, 2, BranchKind::CondDirect, Some(Addr::new(0x40)));
/// assert_eq!(i.next_seq(), Addr::new(0x105));
/// assert!(i.branch.ends_xb());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Inst {
    /// Address of the first byte of this instruction.
    pub ip: Addr,
    /// Encoded length in bytes (1..=15).
    pub len: u8,
    /// Number of uops this instruction decodes into (1..=[`Inst::MAX_UOPS`]).
    pub uops: u8,
    /// Control-flow class.
    pub branch: BranchKind,
    /// Static taken-target for direct branches; `None` for non-branches and
    /// indirect transfers.
    pub target: Option<Addr>,
}

impl Inst {
    /// Maximum uop expansion of a single instruction.
    pub const MAX_UOPS: u8 = 4;
    /// Maximum encoded length in bytes.
    pub const MAX_LEN: u8 = 15;

    /// Creates a new instruction.
    ///
    /// # Panics
    ///
    /// Panics if `len` or `uops` is zero or above the ISA limits, or if a
    /// direct branch is missing its target / a non-direct instruction
    /// carries one.
    pub fn new(ip: Addr, len: u8, uops: u8, branch: BranchKind, target: Option<Addr>) -> Self {
        assert!((1..=Self::MAX_LEN).contains(&len), "invalid encoded length {len}");
        assert!((1..=Self::MAX_UOPS).contains(&uops), "invalid uop count {uops}");
        let wants_target = matches!(
            branch,
            BranchKind::CondDirect | BranchKind::UncondDirect | BranchKind::CallDirect
        );
        assert_eq!(
            wants_target,
            target.is_some(),
            "direct branches carry a static target; others must not (kind={branch:?})"
        );
        Inst { ip, len, uops, branch, target }
    }

    /// Convenience constructor for a plain (non-branch) instruction.
    pub fn plain(ip: Addr, len: u8, uops: u8) -> Self {
        Self::new(ip, len, uops, BranchKind::None, None)
    }

    /// Address of the next sequential instruction (fall-through path).
    #[inline]
    pub fn next_seq(&self) -> Addr {
        self.ip.offset(self.len as u64)
    }

    /// The static taken target.
    ///
    /// # Panics
    ///
    /// Panics if called on an instruction without a static target.
    #[inline]
    pub fn taken_target(&self) -> Addr {
        self.target.expect("instruction has no static target")
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} len={} uops={}", self.ip, self.branch, self.len, self.uops)?;
        if let Some(t) = self.target {
            write!(f, " -> {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xb_end_conditions_follow_the_paper() {
        // Paper §3.1: conditional + indirect branches and returns end a XB;
        // unconditional direct jumps and calls do not.
        assert!(BranchKind::CondDirect.ends_xb());
        assert!(BranchKind::IndirectJump.ends_xb());
        assert!(BranchKind::IndirectCall.ends_xb());
        assert!(BranchKind::Return.ends_xb());
        assert!(!BranchKind::UncondDirect.ends_xb());
        assert!(!BranchKind::CallDirect.ends_xb());
        assert!(!BranchKind::None.ends_xb());
    }

    #[test]
    fn xb_boundary_convention_includes_calls() {
        assert!(BranchKind::CallDirect.ends_xb_boundary());
        assert!(BranchKind::CondDirect.ends_xb_boundary());
        assert!(BranchKind::Return.ends_xb_boundary());
        assert!(!BranchKind::UncondDirect.ends_xb_boundary());
        assert!(!BranchKind::None.ends_xb_boundary());
    }

    #[test]
    fn basic_block_ends_on_any_branch() {
        assert!(BranchKind::UncondDirect.ends_basic_block());
        assert!(BranchKind::CallDirect.ends_basic_block());
        assert!(!BranchKind::None.ends_basic_block());
    }

    #[test]
    fn fall_through_classes() {
        assert!(BranchKind::None.may_fall_through());
        assert!(BranchKind::CondDirect.may_fall_through());
        assert!(!BranchKind::UncondDirect.may_fall_through());
        assert!(!BranchKind::Return.may_fall_through());
    }

    #[test]
    fn next_seq_uses_len() {
        let i = Inst::plain(Addr::new(0x10), 3, 1);
        assert_eq!(i.next_seq(), Addr::new(0x13));
    }

    #[test]
    #[should_panic(expected = "static target")]
    fn direct_branch_requires_target() {
        let _ = Inst::new(Addr::new(0), 1, 1, BranchKind::CondDirect, None);
    }

    #[test]
    #[should_panic(expected = "static target")]
    fn indirect_refuses_target() {
        let _ = Inst::new(Addr::new(4), 1, 1, BranchKind::Return, Some(Addr::new(8)));
    }

    #[test]
    #[should_panic(expected = "invalid uop count")]
    fn uop_count_bounds_checked() {
        let _ = Inst::plain(Addr::new(4), 1, 9);
    }

    #[test]
    fn display_is_informative() {
        let i = Inst::new(Addr::new(0x20), 2, 1, BranchKind::UncondDirect, Some(Addr::new(0x40)));
        let s = format!("{i}");
        assert!(s.contains("jmp"));
        assert!(s.contains("0x0000000000000040"));
    }
}
